"""PW advection end to end: PSyclone-style Fortran → FPGA dataflow kernel.

This drives the paper's first evaluation kernel (the Piacsek and Williams
advection scheme from MONC) through the whole flow:

1. the kernel is written as three Fortran array assignments and parsed by the
   PSyclone-like frontend into the stencil dialect;
2. Stencil-HMLS applies its nine optimisation steps and the Vitis-like
   backend replicates four compute units under the U280's 32-port budget;
3. the functional dataflow simulator checks the result against the numpy
   reference on a small grid;
4. the performance/power/energy of the paper's 8M/32M/134M-point problem
   sizes are modelled and printed.

Run with:  python examples/pw_advection_on_fpga.py
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import StencilHMLSCompiler
from repro.fpga.host import FPGAHost
from repro.kernels.grids import PW_ADVECTION_SIZES, initial_fields
from repro.kernels.pw_advection import (
    PW_INPUT_FIELDS,
    PW_OUTPUT_FIELDS,
    PW_SCALARS,
    build_pw_advection,
    pw_advection_psyclone_kernel,
    pw_advection_small_data,
)
from repro.kernels.reference import pw_advection_reference


def main() -> None:
    # -------------------------------------------------- the Fortran source view
    kernel = pw_advection_psyclone_kernel((8, 8, 8))
    print("=== PSyclone kernel (Fortran statements) ===")
    for statement in kernel.statements:
        print("  " + statement.split("=")[0].strip() + " = ...")
    print(f"  fields: {kernel.field_args}")
    print(f"  small data: {list(kernel.small_data_args)}  scalars: {kernel.scalar_args}")

    # ------------------------------------------------ functional check (small)
    shape = (8, 8, 8)
    compiler = StencilHMLSCompiler()
    xclbin = compiler.compile(build_pw_advection(shape))
    host = FPGAHost()
    host.program(xclbin)

    arrays = initial_fields(shape, PW_INPUT_FIELDS + PW_OUTPUT_FIELDS)
    small = pw_advection_small_data(shape)
    reference = {k: v.copy() for k, v in arrays.items()}
    pw_advection_reference(reference, small, PW_SCALARS, shape)

    sim_arrays = {k: v.copy() for k, v in arrays.items()}
    sim_arrays.update(small)
    result = host.run(sim_arrays, PW_SCALARS, functional=True)
    worst = max(np.max(np.abs(sim_arrays[f] - reference[f])) for f in PW_OUTPUT_FIELDS)
    print("\n=== functional dataflow simulation vs numpy reference ===")
    print(f"  max error over su/sv/sw: {worst:.3e}")

    # ------------------------------------------- paper problem sizes (modelled)
    print("\n=== modelled execution on the Alveo U280 ===")
    print(f"{'size':>6} {'CUs':>4} {'II':>3} {'MPt/s':>10} {'power W':>9} {'energy J':>10}")
    for label, size in PW_ADVECTION_SIZES.items():
        big = compiler.compile(build_pw_advection(size.shape))
        host.program(big)
        estimate = host.run(problem_points=big.plan.domain_points)
        print(
            f"{label:>6} {estimate.timing.compute_units:>4} {estimate.timing.achieved_ii:>3} "
            f"{estimate.mpts:>10.1f} {estimate.average_power_w:>9.1f} {estimate.energy_j:>10.3f}"
        )
    print("\nEach compute unit uses 7 m_axi ports (one per field + one for the"
          "\nsmall data), so four CUs fit the U280 shell's 32-port budget.")


if __name__ == "__main__":
    main()
