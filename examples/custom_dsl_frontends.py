"""Driving Stencil-HMLS from different DSL frontends.

The paper's point about MLIR/xDSL layering is that any frontend able to emit
the stencil dialect gets the FPGA optimisation for free (§2.2, §3).  This
example writes the *same* second-order wave-equation update three ways —
through the PSyclone-like Fortran frontend, the Devito-like symbolic
frontend and the programmatic builder — compiles each with the identical
pipeline and checks that all three produce the same numbers.

Run with:  python examples/custom_dsl_frontends.py
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import StencilHMLSCompiler
from repro.fpga.host import FPGAHost
from repro.frontends.builder import StencilKernelBuilder
from repro.frontends.devito import DevitoConstant, DevitoFunction, DevitoGrid, DevitoOperator, Eq
from repro.frontends.psyclone import PSycloneFrontend, PSycloneKernel

SHAPE = (8, 8, 8)


def from_psyclone():
    kernel = PSycloneKernel(
        name="wave",
        shape=SHAPE,
        field_args=["u", "u_prev", "u_next"],
        scalar_args=["c2"],
        statements=[
            "u_next(i,j,k) = 2.0*u(i,j,k) - u_prev(i,j,k)"
            " + c2*(u(i+1,j,k) + u(i-1,j,k) + u(i,j+1,k) + u(i,j-1,k)"
            " + u(i,j,k+1) + u(i,j,k-1) - 6.0*u(i,j,k))",
        ],
    )
    return PSycloneFrontend().lower(kernel)


def from_devito():
    grid = DevitoGrid(SHAPE)
    u = DevitoFunction("u", grid)
    u_prev = DevitoFunction("u_prev", grid)
    u_next = DevitoFunction("u_next", grid)
    c2 = DevitoConstant("c2")
    laplacian = (
        u[1, 0, 0] + u[-1, 0, 0] + u[0, 1, 0] + u[0, -1, 0]
        + u[0, 0, 1] + u[0, 0, -1] - 6.0 * u[0, 0, 0]
    )
    eq = Eq(u_next, 2.0 * u[0, 0, 0] - u_prev[0, 0, 0] + c2 * laplacian)
    return DevitoOperator([eq], name="wave").build_module()


def from_builder():
    builder = StencilKernelBuilder("wave", SHAPE)
    u = builder.input_field("u")
    u_prev = builder.input_field("u_prev")
    u_next = builder.output_field("u_next")
    c2 = builder.scalar("c2")
    laplacian = (
        u[1, 0, 0] + u[-1, 0, 0] + u[0, 1, 0] + u[0, -1, 0]
        + u[0, 0, 1] + u[0, 0, -1] - 6.0 * u[0, 0, 0]
    )
    builder.add_stencil(u_next, 2.0 * u[0, 0, 0] - u_prev[0, 0, 0] + c2 * laplacian)
    return builder.build()


def main() -> None:
    rng = np.random.default_rng(11)
    u = rng.standard_normal(SHAPE)
    u_prev = rng.standard_normal(SHAPE)
    c2 = 0.05

    compiler = StencilHMLSCompiler()
    host = FPGAHost()
    outputs = {}
    for label, build in (("psyclone", from_psyclone), ("devito", from_devito), ("builder", from_builder)):
        module = build()
        xclbin = compiler.compile(module)
        host.program(xclbin)
        # Argument names differ in declaration order between frontends, so
        # pass everything by name.
        arrays = {"u": u.copy(), "u_prev": u_prev.copy(), "u_next": np.zeros(SHAPE)}
        result = host.run(arrays, {"c2": c2}, functional=True)
        outputs[label] = arrays["u_next"]
        print(f"{label:>9}: kernel {xclbin.kernel_name!r:<14} II={xclbin.design.achieved_ii} "
              f"CUs={xclbin.design.compute_units} streams={len(xclbin.plan.streams)}")

    reference = outputs["builder"]
    for label, value in outputs.items():
        error = np.max(np.abs(value - reference))
        print(f"  {label:>9} vs builder: max difference {error:.3e}")
    assert all(np.allclose(value, reference) for value in outputs.values())
    print("\nAll three frontends produce identical FPGA kernels — the DSL only has"
          "\nto emit the stencil dialect; everything below is shared (Figure 1).")


if __name__ == "__main__":
    main()
