"""Compare Stencil-HMLS against DaCe, SODA-opt, Vitis HLS and StencilFlow.

Reproduces the paper's evaluation sweep (Figures 4-6, Tables 1-2) on the
simulated Alveo U280 and prints the regenerated figures and tables, plus the
headline ratios the paper reports (90-100x faster / 85-92x less energy than
the next best framework on PW advection, 14-21x / 14-22x on tracer
advection).

Run with:  python examples/framework_comparison.py [--quick]
"""

from __future__ import annotations

import sys

from repro.evaluation.harness import DEFAULT_CASES, BenchmarkCase, EvaluationHarness
from repro.evaluation.metrics import energy_ratio, speedup
from repro.evaluation.report import generate_all, results_to_json
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES


def main(argv: list[str]) -> None:
    quick = "--quick" in argv
    harness = EvaluationHarness(repeats=10)
    cases = (
        [
            BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"]),
            BenchmarkCase("tracer_advection", TRACER_ADVECTION_SIZES["8M"]),
        ]
        if quick
        else list(DEFAULT_CASES)
    )
    results = harness.run_all(cases=cases)

    print(generate_all(results))

    index = {(r.framework, r.kernel, r.size_label): r for r in results}
    print("\n=== headline comparisons vs DaCe (the next best framework) ===")
    for kernel, sizes in (("pw_advection", ["8M"] if quick else ["8M", "32M"]),
                          ("tracer_advection", ["8M"] if quick else ["8M", "33M"])):
        for size in sizes:
            ours = index[("Stencil-HMLS", kernel, size)]
            dace = index[("DaCe", kernel, size)]
            print(
                f"  {kernel:>17} @ {size:>4}: "
                f"{speedup(ours, dace):6.1f}x faster, "
                f"{energy_ratio(dace, ours):6.1f}x less energy"
            )

    print("\n=== failures reproduced from the paper ===")
    for result in results:
        if not result.succeeded:
            print(f"  {result.framework:>12} / {result.kernel} @ {result.size_label}: "
                  f"{result.status} — {result.error.splitlines()[0][:80]}")

    path = "results.json"
    results_to_json(results, path)
    print(f"\nresults written to {path}")


if __name__ == "__main__":
    main(sys.argv[1:])
