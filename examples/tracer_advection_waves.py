"""Tracer advection: chained stencils, dependency waves and the split limit.

The NEMO tracer advection kernel has 24 stencil computations whose
dependencies "do not allow a clean split across components" (§4) — exactly
the case where Stencil-HMLS's advantage shrinks from ~100x to ~14-21x.  This
example shows why: it prints the dependency waves the analysis derives, the
per-wave dataflow structure the transformation emits, and compares the
modelled performance of the 1-CU / 17-port tracer kernel against the 4-CU
PW advection kernel.

Run with:  python examples/tracer_advection_waves.py
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import StencilHMLSCompiler
from repro.fpga.host import FPGAHost
from repro.kernels.grids import TRACER_ADVECTION_SIZES, initial_fields
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.grids import PW_ADVECTION_SIZES
from repro.kernels.reference import tracer_advection_reference
from repro.kernels.tracer_advection import (
    TRACER_INPUT_FIELDS,
    TRACER_SCALARS,
    TRACER_WORKSPACE_FIELDS,
    build_tracer_advection,
)
from repro.transforms.stencil_analysis import analyse_module


def main() -> None:
    shape = (6, 6, 6)
    module = build_tracer_advection(shape)
    analysis = analyse_module(module)

    print("=== tracer advection structure ===")
    print(f"  stencil computations : {analysis.num_stencil_stages}")
    print(f"  memory arguments     : {analysis.num_field_ports} (one AXI port each)")
    print(f"  dependency waves     : {analysis.num_waves}")
    for index, wave in enumerate(analysis.dependency_waves()):
        outputs = [analysis.stages[i].output_fields[0] for i in wave]
        print(f"    wave {index:>2}: stencils {wave} -> {outputs}")

    # ------------------------------------------------ compile + functional check
    compiler = StencilHMLSCompiler()
    xclbin = compiler.compile(module)
    print("\n=== generated dataflow kernel ===")
    print(f"  waves          : {xclbin.plan.num_waves}")
    print(f"  compute stages : {xclbin.plan.num_compute_stages}")
    print(f"  streams        : {len(xclbin.plan.streams)}")
    print(f"  compute units  : {xclbin.design.compute_units} "
          f"(17 ports per CU > 32/2, so no replication)")

    arrays = initial_fields(shape, TRACER_INPUT_FIELDS + TRACER_WORKSPACE_FIELDS)
    reference = {k: v.copy() for k, v in arrays.items()}
    tracer_advection_reference(reference, {}, TRACER_SCALARS, shape)
    host = FPGAHost()
    host.program(xclbin)
    sim = {k: v.copy() for k, v in arrays.items()}
    host.run(sim, TRACER_SCALARS, functional=True)
    worst = max(np.max(np.abs(sim[f] - reference[f])) for f in TRACER_WORKSPACE_FIELDS)
    print(f"  functional simulation max error vs numpy: {worst:.3e}")

    # ------------------------------------------------ compare against PW advection
    print("\n=== modelled performance: chained vs independent stencils ===")
    tracer_big = compiler.compile(build_tracer_advection(TRACER_ADVECTION_SIZES["8M"].shape))
    pw_big = compiler.compile(build_pw_advection(PW_ADVECTION_SIZES["8M"].shape))
    for name, artefact in (("tracer advection", tracer_big), ("PW advection", pw_big)):
        host.program(artefact)
        estimate = host.run(problem_points=artefact.plan.domain_points)
        print(f"  {name:>16}: {estimate.mpts:8.1f} MPt/s "
              f"({artefact.design.compute_units} CU, {artefact.plan.num_waves} wave(s))")
    print("\nThe twelve back-to-back waves (plus the single compute unit) are what"
          "\nreduce the advantage over the baselines on this kernel, as in the paper.")


if __name__ == "__main__":
    main()
