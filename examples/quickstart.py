"""Quickstart: write a stencil, compile it with Stencil-HMLS, run it.

This mirrors the flow of Figure 1 of the paper on a small 3-D diffusion
stencil: express the kernel (here through the programmatic builder), then
let the compiler schedule its default textual pipeline through the pass
registry — `canonicalize`, the six staged stencil→HLS sub-passes
(shape-inference → interface-lowering → small-data-buffering →
wave-pipelining → compute-split → bundle-assignment, see
docs/passes.md), `convert-hls-to-llvm` — followed by f++ preprocessing
and Vitis-like synthesis.  Finally "program" the resulting xclbin onto
the simulated Alveo U280 and execute it both functionally (checking the
result against numpy) and as a performance/energy estimate at a
paper-scale size.  Pass `pass_pipeline="..."` to `StencilHMLSCompiler`
(or `--pass-pipeline` on the CLI) to customise the schedule.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CompilerOptions
from repro.core.pipeline import StencilHMLSCompiler
from repro.fpga.host import FPGAHost
from repro.frontends.builder import StencilKernelBuilder


def build_diffusion_kernel(shape: tuple[int, int, int]):
    """A 7-point diffusion stencil: out = u + nu * laplacian(u)."""
    builder = StencilKernelBuilder("diffusion", shape)
    u = builder.input_field("u")
    out = builder.output_field("out")
    nu = builder.scalar("nu")
    laplacian = (
        u[1, 0, 0] + u[-1, 0, 0]
        + u[0, 1, 0] + u[0, -1, 0]
        + u[0, 0, 1] + u[0, 0, -1]
        - 6.0 * u[0, 0, 0]
    )
    builder.add_stencil(out, u[0, 0, 0] + nu * laplacian)
    return builder.build()


def main() -> None:
    # ---------------------------------------------------------------- compile
    shape = (8, 8, 8)
    module = build_diffusion_kernel(shape)
    compiler = StencilHMLSCompiler(CompilerOptions())
    xclbin = compiler.compile(module)

    print("=== synthesised kernel ===")
    for key, value in xclbin.summary().items():
        print(f"  {key:<16}: {value}")
    print(f"  f++ directives  : {xclbin.fpp_report.total_directives}")

    # ------------------------------------------------------- functional check
    rng = np.random.default_rng(42)
    u = rng.standard_normal(shape)
    out = np.zeros(shape)
    nu = 0.1

    host = FPGAHost()
    host.program(xclbin)
    result = host.run({"u": u, "out": out}, {"nu": nu}, functional=True)

    interior = (slice(1, -1),) * 3
    laplacian = (
        u[2:, 1:-1, 1:-1] + u[:-2, 1:-1, 1:-1]
        + u[1:-1, 2:, 1:-1] + u[1:-1, :-2, 1:-1]
        + u[1:-1, 1:-1, 2:] + u[1:-1, 1:-1, :-2]
        - 6.0 * u[1:-1, 1:-1, 1:-1]
    )
    expected = u[interior] + nu * laplacian
    error = np.max(np.abs(result.outputs["out"][interior] - expected))
    print("\n=== functional simulation ===")
    print(f"  max |FPGA - numpy| = {error:.3e}")
    assert error < 1e-12, "functional simulation diverged from numpy"

    # -------------------------------------------- paper-scale performance model
    big_shape = (2048, 64, 64)
    big_xclbin = compiler.compile(build_diffusion_kernel(big_shape))
    host.program(big_xclbin)
    estimate = host.run(problem_points=big_xclbin.plan.domain_points)
    print("\n=== modelled execution at 8M points on the U280 ===")
    print(f"  compute units   : {estimate.timing.compute_units}")
    print(f"  achieved II     : {estimate.timing.achieved_ii}")
    print(f"  performance     : {estimate.mpts:.1f} MPt/s")
    print(f"  average power   : {estimate.average_power_w:.1f} W")
    print(f"  energy          : {estimate.energy_j:.3f} J")


if __name__ == "__main__":
    main()
