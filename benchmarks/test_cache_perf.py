"""Acceptance benchmark for the compile/result cache.

The criterion from the caching PR: a warm (fully cached) re-run of the
default evaluation matrix must be at least 5x faster than the cold run.
Measured with a disk-backed cache and a fresh cache instance for the warm
run, so the speedup comes from the on-disk tier — the same situation as
two consecutive CLI invocations.
"""

from __future__ import annotations

import time

from repro.core.compile_cache import CompileCache
from repro.evaluation.harness import DEFAULT_CASES, EvaluationHarness


def test_warm_matrix_rerun_is_at_least_5x_faster(tmp_path):
    cold_harness = EvaluationHarness(repeats=1, cache=CompileCache(tmp_path))
    start = time.perf_counter()
    cold = cold_harness.run_matrix(cases=DEFAULT_CASES)
    cold_seconds = time.perf_counter() - start
    assert cold_harness.cache.stats.hits["result"] == 0

    warm_harness = EvaluationHarness(repeats=1, cache=CompileCache(tmp_path))
    start = time.perf_counter()
    warm = warm_harness.run_matrix(cases=DEFAULT_CASES)
    warm_seconds = time.perf_counter() - start

    assert warm_harness.cache.stats.hits["result"] == len(cold)
    assert len(warm) == len(cold)
    speedup = cold_seconds / warm_seconds
    assert speedup >= 5.0, (
        f"warm matrix re-run only {speedup:.1f}x faster "
        f"(cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s)"
    )


def test_compiler_stage_cache_speeds_up_recompiles(tmp_path):
    """Per-stage artefact reuse: recompiling the same module through a warm
    compiler cache must skip the middle-end and synthesis work."""
    from repro.core.pipeline import StencilHMLSCompiler
    from repro.kernels.grids import PW_ADVECTION_SIZES
    from repro.kernels.pw_advection import build_pw_advection

    module = build_pw_advection(PW_ADVECTION_SIZES["134M"].shape)
    cache = CompileCache(tmp_path)
    compiler = StencilHMLSCompiler(cache=cache)

    start = time.perf_counter()
    compiler.compile(module)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    compiler.compile(module)
    warm_seconds = time.perf_counter() - start

    assert cache.stats.hits["middle-end"] == 1
    assert cache.stats.hits["synthesis"] == 1
    assert warm_seconds < cold_seconds
