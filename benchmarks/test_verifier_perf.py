"""Micro-benchmark regression for the verifier's per-block index cache.

``ModuleVerifier._value_visible_from`` used to call ``block.index_of``
(a linear scan) for every operand check, which is quadratic on wide
blocks.  The verifier now precomputes one ``{op: index}`` dict per block
and reuses it for every visibility query in that block.  This benchmark
pins the win on a wide tracer-advection-style module — many chained
stages in one function block, the shape that made the scans hurt — and
writes a ``BENCH_verifier.json`` trajectory artifact like the other
micro-benchmarks.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.frontends.builder import StencilKernelBuilder
from repro.ir.verifier import ModuleVerifier
from repro.kernels.grids import TRACER_ADVECTION_SIZES
from repro.kernels.tracer_advection import build_tracer_advection

#: Required advantage of the index-cached verifier over the legacy
#: linear-scan strategy.  Measured ~2.5-3x on the wide module; 1.4x keeps
#: headroom for noisy CI machines while still catching a regression to
#: quadratic scans.
MIN_SPEEDUP = 1.4

_RECORD: dict[str, object] = {}


@pytest.fixture(scope="module", autouse=True)
def bench_artifact():
    """Collect per-test measurements and write the trajectory artifact."""
    yield _RECORD
    path = Path(os.environ.get("BENCH_VERIFIER_JSON", "BENCH_verifier.json"))
    path.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")


def build_wide_tracer_module(stages: int = 48):
    """A tracer-advection variant widened to ``stages`` chained stencil
    stages: every stage reads the three wind fields plus the previous
    tracer, so the function block is long and every operand-visibility
    check in it used to pay a linear scan."""
    builder = StencilKernelBuilder("tracer_advection_wide", (16, 16, 8))
    winds = [builder.input_field(name) for name in ("su", "sv", "sw")]
    prev = None
    for index in range(stages):
        out = builder.output_field(f"tracer{index}")
        expr = winds[0][1, 0, 0] + winds[1][0, 1, 0] + winds[2][0, 0, 1]
        if prev is not None:
            expr = expr + prev[0, 0, 0]
        builder.add_stencil(out, expr)
        prev = out
    return builder.build()


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_index_cache_speeds_up_wide_module_verification():
    module = build_wide_tracer_module()

    # Both strategies must agree before their timings mean anything.
    assert ModuleVerifier(cache_indices=True).verify(module) == []
    assert ModuleVerifier(cache_indices=False).verify(module) == []

    cached = _best_of(
        5, lambda: ModuleVerifier(cache_indices=True).verify(module)
    )
    legacy = _best_of(
        5, lambda: ModuleVerifier(cache_indices=False).verify(module)
    )
    speedup = legacy / cached
    _RECORD["wide_module"] = {
        "ops": sum(1 for _ in module.walk()),
        "cached_seconds": round(cached, 6),
        "legacy_seconds": round(legacy, 6),
        "speedup": round(speedup, 2),
    }
    assert speedup >= MIN_SPEEDUP, (
        f"index-cached verify is only {speedup:.2f}x faster than linear "
        f"scans on the wide module (need >= {MIN_SPEEDUP}x)"
    )


def test_real_tracer_kernel_also_benefits():
    """The stock tracer-advection kernel (the paper's wide kernel) must not
    regress either — smaller module, same direction."""
    module = build_tracer_advection(TRACER_ADVECTION_SIZES["8M"].shape)
    cached = _best_of(
        5, lambda: ModuleVerifier(cache_indices=True).verify(module)
    )
    legacy = _best_of(
        5, lambda: ModuleVerifier(cache_indices=False).verify(module)
    )
    _RECORD["tracer_8M"] = {
        "cached_seconds": round(cached, 6),
        "legacy_seconds": round(legacy, 6),
        "speedup": round(legacy / cached, 2),
    }
    assert cached <= legacy, (
        "index-cached verify slower than linear scans on tracer_advection"
    )
