"""Shared fixtures for the benchmark harness.

Every benchmark regenerates part of the paper's evaluation section (§4).
The full sweep over frameworks, kernels and problem sizes is run once per
session and cached; individual benchmarks then time the interesting step
(compiling with a given flow, estimating an execution) and assert / print
the figure or table they regenerate.
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import DEFAULT_CASES, EvaluationHarness


@pytest.fixture(scope="session")
def harness() -> EvaluationHarness:
    return EvaluationHarness(repeats=10)


@pytest.fixture(scope="session")
def all_results(harness):
    """Every (framework, kernel, size) combination of the paper's evaluation."""
    return harness.run_all(cases=DEFAULT_CASES)


def result_index(results):
    return {(r.framework, r.kernel, r.size_label): r for r in results}
