"""Figure 6 — average power draw and energy consumption, tracer advection.

Regenerates the power/energy bars for the tracer advection kernel: Stencil-
HMLS consumes 14-22x less energy than DaCe while drawing slightly more
power; SODA-opt draws the least power of all frameworks on this kernel.
"""

import pytest

from repro.baselines import StencilHMLSFramework
from repro.evaluation.figures import figure6_tracer_power_energy
from repro.evaluation.harness import BenchmarkCase
from repro.evaluation.metrics import energy_ratio
from repro.evaluation.report import format_figure
from repro.kernels.grids import TRACER_ADVECTION_SIZES

from conftest import result_index


def test_regenerate_figure6(all_results):
    figure = figure6_tracer_power_energy(all_results)
    print()
    print(format_figure(figure["power_w"], "Figure 6a: tracer advection average power", "W"))
    print()
    print(format_figure(figure["energy_j"], "Figure 6b: tracer advection energy", "J"))

    index = result_index(all_results)
    for size in ("8M", "33M"):
        ours = index[("Stencil-HMLS", "tracer_advection", size)]
        dace = index[("DaCe", "tracer_advection", size)]
        soda = index[("SODA-opt", "tracer_advection", size)]
        vitis = index[("Vitis HLS", "tracer_advection", size)]
        # Energy: 14-22x less than DaCe in the paper.
        assert 8 <= energy_ratio(dace, ours) <= 35
        assert ours.energy_j < min(soda.energy_j, vitis.energy_j)
        # Power ordering: ours highest, SODA-opt lowest (paper: "SODA-opt
        # drawing the least power for the tracer advection kernel").
        assert ours.average_power_w >= dace.average_power_w
        assert soda.average_power_w <= vitis.average_power_w
        assert soda.average_power_w <= dace.average_power_w


def test_benchmark_tracer_energy_estimation(benchmark, harness):
    case = BenchmarkCase("tracer_advection", TRACER_ADVECTION_SIZES["8M"])
    framework = StencilHMLSFramework(harness.device)
    artifact = framework.compile(harness.build_module(case.kernel, case.size.shape))

    def measure():
        timing = artifact.estimate_performance()
        return artifact.estimate_power(timing).energy_j

    energy = benchmark(measure)
    assert energy > 0
