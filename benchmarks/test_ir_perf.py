"""Micro-benchmark regression harness for the hash-consed IR layer.

Enforces the measured wins of the interning/incremental-hashing rework and
emits a ``BENCH_ir.json`` trajectory artifact (uploaded by CI) so the
numbers are tracked over time rather than asserted once:

* attribute interning: ≥ 90% intern-hit rate over a compile session, and
  equality degenerates to identity for structurally equal attributes;
* incremental module hashing: re-hash after a single-op mutation is ≥ 5×
  faster than a cold full hash of the same module;
* per-pass-prefix caching: a warm ablation run that toggles only the last
  stencil→HLS sub-pass reuses the whole shared prefix — the per-stage hit
  stats prove zero upstream passes re-ran;
* zero-copy hot path: a worker warm-starting off the shared intern table
  beats full-state unpickling, and mapped cache artifacts restore faster
  than the pickle baseline recorded in the same run.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path

import pytest

from repro.core.compile_cache import CompileCache
from repro.core.pipeline import StencilHMLSCompiler
from repro.evaluation.harness import (
    ABLATION_VARIANTS,
    PIPELINE_VARIANTS,
    STAGED_PIPELINE,
)
from repro.ir.attributes import IntAttr
from repro.ir.hashing import module_hash
from repro.ir.interning import (
    ATTRIBUTE_INTERNER,
    SharedInternTable,
    _prefers_reference,
    activated_table,
    canonical_attributes,
    intern_stats,
    publish_intern_table,
    scratch_interner,
)
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.tracer_advection import build_tracer_advection

_RECORD: dict[str, object] = {}


@pytest.fixture(scope="module", autouse=True)
def bench_artifact():
    """Collect per-test measurements and write the trajectory artifact."""
    yield _RECORD
    path = Path(os.environ.get("BENCH_IR_JSON", "BENCH_ir.json"))
    path.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")


def test_intern_hit_rate_over_compile_session():
    """≥ 90% of attribute constructions during compilation are intern hits."""
    before = intern_stats().snapshot()
    for builder, sizes in (
        (build_pw_advection, PW_ADVECTION_SIZES),
        (build_tracer_advection, TRACER_ADVECTION_SIZES),
    ):
        StencilHMLSCompiler().compile(builder(sizes["8M"].shape))
    after = intern_stats().snapshot()
    hits = after[0] - before[0]
    misses = after[1] - before[1]
    rate = hits / max(hits + misses, 1)
    _RECORD["intern"] = {
        "lookups": hits + misses,
        "hits": hits,
        "unique_attributes": len(ATTRIBUTE_INTERNER),
        "hit_rate": round(rate, 4),
    }
    assert rate >= 0.90, f"intern-hit rate only {rate:.1%}"


def test_attribute_equality_is_identity_on_representative_module():
    """Every attribute/type reachable from a compiled module is canonical:
    an equal attribute is the *same object*, so `==` is a pointer check."""
    xclbin = StencilHMLSCompiler().compile(
        build_pw_advection(PW_ADVECTION_SIZES["8M"].shape)
    )
    seen = 0
    for module in (xclbin.hls_module, xclbin.llvm_module):
        for op in module.walk():
            for attr in op.attributes.values():
                assert ATTRIBUTE_INTERNER.intern(attr) is attr
                seen += 1
            for result in op.results:
                assert ATTRIBUTE_INTERNER.intern(result.type) is result.type
                seen += 1
    _RECORD["identity"] = {"attributes_checked": seen}
    assert seen > 100


def test_incremental_rehash_after_single_op_mutation_is_5x_faster():
    """Re-hash after one attribute edit must beat a cold full hash ≥ 5×."""
    xclbin = StencilHMLSCompiler().compile(
        build_tracer_advection(TRACER_ADVECTION_SIZES["33M"].shape)
    )
    module = xclbin.llvm_module

    cold_times = []
    for _ in range(3):
        fresh = module.clone()  # clones start with empty fingerprint caches
        start = time.perf_counter()
        cold_hash = module_hash(fresh)
        cold_times.append(time.perf_counter() - start)
    cold = min(cold_times)

    working = module.clone()
    baseline = module_hash(working)
    assert baseline == cold_hash
    ops = [op for op in working.walk() if op is not working]
    incremental_times = []
    for step in range(5):
        ops[(step * 97) % len(ops)].attributes["__bench_probe"] = IntAttr(step)
        start = time.perf_counter()
        mutated = module_hash(working)
        incremental_times.append(time.perf_counter() - start)
        assert mutated != baseline
        baseline = mutated
    incremental = min(incremental_times)

    speedup = cold / incremental
    _RECORD["rehash"] = {
        "module_ops": len(ops),
        "cold_ms": round(cold * 1e3, 3),
        "incremental_ms": round(incremental * 1e3, 3),
        "speedup": round(speedup, 1),
    }
    assert speedup >= 5.0, (
        f"incremental re-hash only {speedup:.1f}x faster "
        f"(cold {cold * 1e3:.2f}ms, incremental {incremental * 1e3:.3f}ms)"
    )


def test_prefix_cache_reuses_shared_prefix_across_ablation(tmp_path):
    """Toggling only the last stencil→HLS sub-pass must reuse every
    upstream stage: the hit stats and per-pass notes prove 0 re-runs."""
    module = build_pw_advection(PW_ADVECTION_SIZES["8M"].shape)
    cache = CompileCache(tmp_path)

    start = time.perf_counter()
    StencilHMLSCompiler(pass_pipeline=STAGED_PIPELINE, cache=cache).compile(module)
    cold_seconds = time.perf_counter() - start
    assert cache.stats.hits.get("pass-prefix", 0) == 0

    ablated = StencilHMLSCompiler(
        pass_pipeline=PIPELINE_VARIANTS["single-bundle-staged"], cache=cache
    )
    start = time.perf_counter()
    ablated.compile(module)
    warm_seconds = time.perf_counter() - start

    # The staged spelling shares canonicalize + the first five sub-passes;
    # only `hls-bundle-assignment{bundles=0}` and the LLVM lowering re-run.
    # The chain is walked through the hash sidecar (6 hits); exactly one
    # full snapshot — the longest shared prefix — is unpickled.
    assert cache.stats.hits["pass-prefix-hash"] == 6
    assert cache.stats.hits["pass-prefix"] == 1
    reused = [s for s in ablated.pass_statistics if s.note == "prefix-cached"]
    executed = [s for s in ablated.pass_statistics if s.note != "prefix-cached"]
    assert [s.name for s in reused] == STAGED_PIPELINE.split(",")[:6]
    assert [s.name for s in executed] == [
        "hls-bundle-assignment{bundles=0}",
        "convert-hls-to-llvm",
    ]
    upstream = STAGED_PIPELINE.split(",")[:6]
    upstream_reruns = len([s for s in executed if s.name in upstream])
    assert upstream_reruns == 0
    _RECORD["prefix_cache"] = {
        "prefix_hits": cache.stats.hits["pass-prefix-hash"],
        "upstream_reruns": upstream_reruns,
        "cold_ms": round(cold_seconds * 1e3, 1),
        "warm_suffix_ms": round(warm_seconds * 1e3, 1),
    }


def test_ablation_matrix_sweep_shares_prefixes(tmp_path):
    """A realistic ii/depth/width sweep over the staged axis: every variant
    after the first resumes from a cached prefix (≥ 1 hit per variant)."""
    module = build_pw_advection(PW_ADVECTION_SIZES["8M"].shape)
    cache = CompileCache(tmp_path)
    sweep = ABLATION_VARIANTS
    per_variant_hits: dict[str, int] = {}
    for variant in sweep:
        before = cache.stats.hits.get("pass-prefix-hash", 0)
        StencilHMLSCompiler(
            pass_pipeline=PIPELINE_VARIANTS[variant], cache=cache
        ).compile(module)
        per_variant_hits[variant] = cache.stats.hits.get("pass-prefix-hash", 0) - before
    _RECORD["ablation_sweep"] = per_variant_hits
    assert per_variant_hits["staged"] == 0  # cold
    for variant in sweep[1:]:
        assert per_variant_hits[variant] >= 1, f"variant {variant} resumed cold"
    # The ii/width toggles land on stencil-interface-lowering (3rd entry):
    # canonicalize + shape-inference are reusable.
    assert per_variant_hits["ii-2"] == 2
    assert per_variant_hits["width-256"] == 2
    # depth toggles land on stencil-wave-pipelining: 4-pass shared prefix.
    assert per_variant_hits["depth-8"] == 4
    # The last-sub-pass toggle reuses the whole 6-pass prefix.
    assert per_variant_hits["single-bundle-staged"] == 6


def test_worker_warm_start_off_shared_intern_table_beats_full_unpickle(tmp_path):
    """A pool worker materialising the compound-attribute working set from
    shard payloads warm-starts faster against the shared intern table than
    by unpickling full-state blobs: reference payloads are smaller, and
    every payload after the first hits the table's per-process resolution
    memo instead of rebuilding + re-interning attribute state.

    (Trivial scalar attributes deliberately stay inline — they pickle in
    fewer bytes than a reference and are cheaper to rebuild than to
    resolve — so the payload here is exactly the set the table covers.)
    """
    StencilHMLSCompiler().compile(
        build_pw_advection(PW_ADVECTION_SIZES["8M"].shape)
    )
    working_set = [
        attr for attr in canonical_attributes() if _prefers_reference(attr)
    ]
    assert len(working_set) > 50

    full_blob = pickle.dumps(working_set, protocol=pickle.HIGHEST_PROTOCOL)
    table_dir = tmp_path / "intern-table"
    publish_intern_table(table_dir)
    with activated_table(SharedInternTable.open(table_dir)):
        ref_blob = pickle.dumps(working_set, protocol=pickle.HIGHEST_PROTOCOL)
    assert len(ref_blob) < len(full_blob), "table references must shrink the blob"

    payloads = 8  # shard payloads handled by one (warm) worker process
    rounds = 5

    def warm_start(blob: bytes, with_table: bool) -> float:
        times = []
        for _ in range(rounds):
            with scratch_interner():  # simulate a freshly forked worker
                start = time.perf_counter()
                table = SharedInternTable.open(table_dir) if with_table else None
                with activated_table(table):
                    for _ in range(payloads):
                        pickle.loads(blob)
                times.append(time.perf_counter() - start)
                if table is not None:
                    table.close()
        return min(times)

    full = warm_start(full_blob, with_table=False)
    shared = warm_start(ref_blob, with_table=True)
    speedup = full / shared
    _RECORD["worker_warm_start_ms"] = {
        "working_set_attrs": len(working_set),
        "payloads_per_worker": payloads,
        "full_blob_bytes": len(full_blob),
        "ref_blob_bytes": len(ref_blob),
        "pickle_ms": round(full * 1e3, 3),
        "shared_table_ms": round(shared * 1e3, 3),
        "speedup": round(speedup, 2),
    }
    assert speedup > 1.0, (
        f"shared-table warm start only {speedup:.2f}x "
        f"(full {full * 1e3:.2f}ms, table {shared * 1e3:.2f}ms)"
    )


def test_artifact_restore_mapped_beats_pickle(tmp_path):
    """Warm restores from a ``mapped`` cache must beat the ``pickle``
    baseline recorded in the same run: hits mmap the container and decode
    sections lazily into private objects (a shallow ``with_note`` restamp)
    instead of round-tripping the artifact through full pickle clones."""
    module = build_pw_advection(PW_ADVECTION_SIZES["8M"].shape)
    dirs = {"pickle": tmp_path / "cache-pkl", "mapped": tmp_path / "cache-shmc"}
    for fmt, cache_dir in dirs.items():  # cold populate both formats
        StencilHMLSCompiler(
            pass_pipeline=STAGED_PIPELINE, cache=CompileCache(cache_dir, fmt=fmt)
        ).compile(module)

    rounds = 5
    timings: dict[str, float] = {}
    restored: dict[str, dict] = {}
    for fmt, cache_dir in dirs.items():
        times = []
        for _ in range(rounds):
            # A fresh cache instance per round: warm *disk*, cold memory —
            # the worker-picks-up-a-shard restore path.
            cache = CompileCache(cache_dir, fmt=fmt)
            compiler = StencilHMLSCompiler(
                pass_pipeline=STAGED_PIPELINE, cache=cache
            )
            start = time.perf_counter()
            xclbin = compiler.compile(module)
            times.append(time.perf_counter() - start)
            assert cache.stats.hits.get("middle-end", 0) == 1
        timings[fmt] = min(times)
        restored[fmt] = xclbin.summary()

    assert restored["mapped"] == restored["pickle"]
    speedup = timings["pickle"] / timings["mapped"]
    _RECORD["artifact_restore_ms"] = {
        "pickle_ms": round(timings["pickle"] * 1e3, 3),
        "mapped_ms": round(timings["mapped"] * 1e3, 3),
        "speedup": round(speedup, 2),
    }
    assert speedup > 1.0, (
        f"mapped restore only {speedup:.2f}x "
        f"(pickle {timings['pickle'] * 1e3:.2f}ms, "
        f"mapped {timings['mapped'] * 1e3:.2f}ms)"
    )
