"""Table 1 — resource utilisation for the PW advection kernel.

Regenerates the %LUT / %FF / %BRAM / %DSP rows for every framework and
problem size, including the StencilFlow rows (its PW advection bitstreams
build even though execution deadlocks).  The qualitative shape preserved
from the paper: Stencil-HMLS (and StencilFlow, which also builds shift
buffers) are the BRAM-heavy designs; SODA-opt and Vitis HLS are tiny and
essentially constant across problem sizes.
"""

import pytest

from repro.baselines import StencilHMLSFramework, VitisHLSFramework
from repro.evaluation.harness import BenchmarkCase
from repro.evaluation.report import format_table
from repro.evaluation.tables import table1_pw_resources
from repro.kernels.grids import PW_ADVECTION_SIZES

from conftest import result_index


def test_regenerate_table1(all_results):
    rows = table1_pw_resources(all_results)
    print()
    print(format_table(rows, "Table 1: resource usage for the PW advection kernel"))

    frameworks = {row["framework"] for row in rows}
    assert frameworks == {"Stencil-HMLS", "DaCe", "SODA-opt", "Vitis HLS", "StencilFlow"}

    index = result_index(all_results)
    ours = index[("Stencil-HMLS", "pw_advection", "8M")].utilisation
    dace = index[("DaCe", "pw_advection", "8M")].utilisation
    soda = index[("SODA-opt", "pw_advection", "8M")].utilisation
    vitis = index[("Vitis HLS", "pw_advection", "8M")].utilisation
    stencilflow = index[("StencilFlow", "pw_advection", "8M")].utilisation

    # Shift buffers + local small-data copies make ours the BRAM-heavy design.
    assert ours["BRAM"] > dace["BRAM"] > 0
    assert ours["BRAM"] > 10 * soda["BRAM"]
    # StencilFlow builds a comparable dataflow pipeline (Table 1 shows it close to ours).
    assert stencilflow["BRAM"] > soda["BRAM"]
    assert stencilflow["DSPs"] > vitis["DSPs"]
    # The naive flows are small.
    assert soda["LUTs"] < 2.0 and vitis["LUTs"] < 2.0
    # Nothing exceeds the device.
    for row in rows:
        for column in ("LUTs", "FFs", "BRAM", "DSPs"):
            assert 0 <= row[column] < 95

    # Vitis HLS utilisation does not vary with the problem size (paper: "roughly
    # no variation ... since there are no local arrays of size dependent of the
    # problem size").
    vitis_rows = [row for row in rows if row["framework"] == "Vitis HLS"]
    assert len({tuple(sorted(r.items())) for r in
                ({k: v for k, v in row.items() if k not in ("size", "points")} for row in vitis_rows)}) == 1


def test_benchmark_stencil_hmls_synthesis(benchmark, harness):
    """Time the full Stencil-HMLS compile + synthesis at the 8M size."""
    case = BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"])
    module = harness.build_module(case.kernel, case.size.shape)
    framework = StencilHMLSFramework(harness.device)
    artifact = benchmark(lambda: framework.compile(module))
    assert artifact.design.compute_units == 4


def test_benchmark_vitis_baseline_synthesis(benchmark, harness):
    case = BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"])
    module = harness.build_module(case.kernel, case.size.shape)
    framework = VitisHLSFramework(harness.device)
    artifact = benchmark(lambda: framework.compile(module))
    assert artifact.design.compute_units == 1
