"""Micro-benchmark locking in the worklist driver's O(changed) behaviour.

A ~2k-operation synthetic module is canonicalised and the driver's pattern
invocation counters are asserted against a bound proportional to the module
size plus the number of rewrites — counts, not wall-clock, so the guarantee
holds on any machine.  A full-module sweep driver re-walks everything once
per sweep; the worklist driver must not.
"""

from repro.dialects import arith
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir.rewriter import SweepRewriteDriver, WorklistRewriteDriver
from repro.ir.types import f64
from repro.transforms.canonicalize import FoldBinaryConstants, SimplifyIdentities

#: Identity additions in the synthetic chain (module ends up ~2k ops).
CHAIN_LENGTH = 2000


def build_chain_module(n: int = CHAIN_LENGTH) -> ModuleOp:
    """f(x) = ((x + 0) + 0) + … — every addition folds away."""
    module = ModuleOp()
    func = FuncOp.with_body("chain", [f64], [f64])
    module.add_op(func)
    zero = arith.ConstantOp.from_float(0.0)
    func.entry_block.add_op(zero)
    value = func.entry_block.args[0]
    for _ in range(n):
        add = arith.AddfOp(value, zero.result)
        func.entry_block.add_op(add)
        value = add.result
    func.entry_block.add_op(ReturnOp([value]))
    return module


def run_worklist(module: ModuleOp) -> WorklistRewriteDriver:
    driver = WorklistRewriteDriver([FoldBinaryConstants(), SimplifyIdentities()])
    driver.rewrite_module(module)
    return driver


class TestWorklistDriverPerf:
    def test_bounded_pattern_invocations(self, benchmark):
        driver = benchmark(lambda: run_worklist(build_chain_module()))
        module_size = CHAIN_LENGTH + 4  # module + func + const + return
        # Every identity add is rewritten exactly once …
        assert driver.rewrites_applied == CHAIN_LENGTH
        # … and total pattern work is O(initial size + changes): each op is
        # consulted by both patterns when seeded plus a small constant number
        # of re-visits per rewrite (users + operand definers), never a
        # sweeps × module-size product.
        bound = 2 * (module_size + 6 * driver.rewrites_applied)
        assert driver.pattern_invocations <= bound

    def test_deep_chain_converges_where_bounded_sweeps_cannot(self):
        # The same workload through the legacy sweep driver, capped at 4
        # sweeps, does strictly more pattern work per progress made: each
        # sweep re-consults every remaining op.  The worklist driver reaches
        # the same fixpoint while touching only affected ops.
        module = build_chain_module(400)
        sweep = SweepRewriteDriver(
            [FoldBinaryConstants(), SimplifyIdentities()], max_iterations=4
        )
        sweep.rewrite_module(module)

        fresh = build_chain_module(400)
        worklist = run_worklist(fresh)
        func = fresh.get_symbol("chain")
        ret = func.entry_block.terminator
        assert ret.operands[0] is func.entry_block.args[0]
        assert worklist.rewrites_applied == 400
