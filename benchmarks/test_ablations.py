"""Ablation benchmarks for the design choices DESIGN.md calls out (A1-A4).

Each ablation disables one of the nine transformation steps (or a synthesis
decision) and measures the modelled performance impact on the 8M-point PW
advection kernel, quantifying why the paper's transformation makes each
choice.
"""

import pytest

from repro.core.config import CompilerOptions
from repro.core.pipeline import StencilHMLSCompiler
from repro.fpga.dataflow_sim import TimingModel
from repro.fpga.device import ALVEO_U280, VCK5000
from repro.kernels.grids import PW_ADVECTION_SIZES
from repro.kernels.pw_advection import build_pw_advection

SHAPE = PW_ADVECTION_SIZES["8M"].shape


def compile_and_time(options: CompilerOptions, device=ALVEO_U280, pass_pipeline=None):
    module = build_pw_advection(SHAPE)
    xclbin = StencilHMLSCompiler(options, device, pass_pipeline=pass_pipeline).compile(module)
    timing = TimingModel().estimate(xclbin.design)
    return xclbin, timing


def compile_with_pipeline(spec: str, device=ALVEO_U280):
    return compile_and_time(CompilerOptions(), device, pass_pipeline=spec)


@pytest.fixture(scope="module")
def baseline():
    return compile_and_time(CompilerOptions())


class TestA1PerFieldSplit:
    def test_ablation(self, benchmark, baseline):
        xclbin, timing = benchmark(lambda: compile_and_time(CompilerOptions(split_compute_per_field=False)))
        base_xclbin, base_timing = baseline
        print(f"\nA1 per-field split: {base_timing.mpts:.0f} MPt/s with split, "
              f"{timing.mpts:.0f} MPt/s without (x{base_timing.mpts / timing.mpts:.1f})")
        assert base_timing.mpts > timing.mpts
        assert xclbin.design.achieved_ii > base_xclbin.design.achieved_ii


class TestA2InterfacePacking:
    def test_ablation(self, benchmark, baseline):
        xclbin, timing = benchmark(lambda: compile_and_time(CompilerOptions(pack_interfaces=False)))
        base_xclbin, base_timing = baseline
        print(f"\nA2 512-bit packing: {base_timing.mpts:.0f} MPt/s packed, "
              f"{timing.mpts:.0f} MPt/s scalar interfaces")
        assert base_timing.mpts >= timing.mpts
        assert max(i.packed_lanes for i in base_xclbin.plan.interfaces) == 8
        assert max(i.packed_lanes for i in xclbin.plan.interfaces) == 1


class TestA3SeparateBundles:
    def test_ablation(self, benchmark, baseline):
        xclbin, timing = benchmark(lambda: compile_and_time(CompilerOptions(separate_bundles=False)))
        base_xclbin, base_timing = baseline
        print(f"\nA3 AXI bundles: {base_timing.mpts:.0f} MPt/s with per-argument bundles, "
              f"{timing.mpts:.0f} MPt/s with one shared port")
        assert base_timing.mpts > timing.mpts
        assert base_xclbin.design.ports_per_cu == 7
        assert xclbin.design.ports_per_cu < 7


class TestA4ComputeUnitReplication:
    def test_single_cu(self, benchmark, baseline):
        xclbin, timing = benchmark(lambda: compile_and_time(CompilerOptions(replicate_compute_units=False)))
        base_xclbin, base_timing = baseline
        print(f"\nA4 CU replication: {base_timing.mpts:.0f} MPt/s with 4 CUs, "
              f"{timing.mpts:.0f} MPt/s with 1 CU")
        assert base_xclbin.design.compute_units == 4
        assert xclbin.design.compute_units == 1
        assert base_timing.mpts > timing.mpts

    def test_vck5000_profile(self, benchmark, baseline):
        """Paper future work: a device without the 32-port limit replicates further."""
        xclbin, timing = benchmark(lambda: compile_and_time(CompilerOptions(), device=VCK5000))
        base_xclbin, base_timing = baseline
        print(f"\nA4 VCK5000 profile: {xclbin.design.compute_units} CUs vs "
              f"{base_xclbin.design.compute_units} on the U280")
        assert xclbin.design.compute_units >= base_xclbin.design.compute_units


class TestPipelineSpecAblations:
    """The A1–A3 toggles, driven by sub-pass pipeline options instead of
    coarse CompilerOptions booleans — each must reproduce the corresponding
    option-based ablation exactly."""

    def test_compute_split_toggle(self, benchmark, baseline):
        xclbin, timing = benchmark(lambda: compile_with_pipeline(
            "canonicalize,convert-stencil-to-hls{split=0},convert-hls-to-llvm"
        ))
        option_xclbin, option_timing = compile_and_time(CompilerOptions(split_compute_per_field=False))
        base_xclbin, base_timing = baseline
        assert xclbin.design.achieved_ii == option_xclbin.design.achieved_ii
        assert timing.mpts == pytest.approx(option_timing.mpts)
        assert base_timing.mpts > timing.mpts

    def test_packing_toggle(self, baseline):
        xclbin, _ = compile_with_pipeline(
            "canonicalize,convert-stencil-to-hls{pack=0},convert-hls-to-llvm"
        )
        base_xclbin, _ = baseline
        assert max(i.packed_lanes for i in xclbin.plan.interfaces) == 1
        assert max(i.packed_lanes for i in base_xclbin.plan.interfaces) == 8

    def test_bundle_toggle(self, baseline):
        xclbin, timing = compile_with_pipeline(
            "canonicalize,convert-stencil-to-hls{bundles=0},convert-hls-to-llvm"
        )
        base_xclbin, base_timing = baseline
        assert xclbin.design.ports_per_cu < base_xclbin.design.ports_per_cu == 7
        assert base_timing.mpts > timing.mpts

    def test_small_data_stage_omission(self):
        """Dropping `stencil-small-data-buffering` from the staged pipeline is
        the BRAM-copy ablation (no coarse option needed)."""
        xclbin, _ = compile_with_pipeline(
            "canonicalize,stencil-shape-inference,stencil-interface-lowering,"
            "stencil-wave-pipelining,stencil-compute-split,hls-bundle-assignment,"
            "convert-hls-to-llvm"
        )
        assert not xclbin.plan.small_copies
        option_xclbin, _ = compile_and_time(CompilerOptions(copy_small_data_to_bram=False))
        assert xclbin.design.achieved_ii == option_xclbin.design.achieved_ii
        assert xclbin.plan.on_chip_buffer_bits == option_xclbin.plan.on_chip_buffer_bits


class TestCompileOptLevel:
    def test_vitis_o0_requirement(self, benchmark, baseline):
        """The paper compiles the generated LLVM-IR with -O0; higher levels hurt."""
        xclbin, timing = benchmark(lambda: compile_and_time(CompilerOptions(vitis_opt_level=2)))
        base_xclbin, base_timing = baseline
        assert xclbin.design.achieved_ii > base_xclbin.design.achieved_ii
        assert base_timing.mpts > timing.mpts
