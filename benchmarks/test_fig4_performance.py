"""Figure 4 — performance (MPt/s) of every framework on both kernels.

Regenerates the two bar charts of Figure 4: PW advection at 8M/32M/134M
points and tracer advection at 8M/33M points, across Stencil-HMLS, DaCe,
SODA-opt and Vitis HLS (StencilFlow produced no runtime numbers in the
paper, and produces none here: PW advection deadlocks, tracer advection is
unsupported).
"""

import pytest

from repro.baselines import DaCeFramework, SODAOptFramework, StencilHMLSFramework, VitisHLSFramework
from repro.evaluation.figures import figure4_performance
from repro.evaluation.harness import BenchmarkCase
from repro.evaluation.metrics import speedup
from repro.evaluation.report import format_figure
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES

from conftest import result_index


def test_regenerate_figure4(all_results):
    figure = figure4_performance(all_results)
    print()
    print(format_figure(figure["pw_advection"], "Figure 4a: PW advection performance", "MPt/s"))
    print()
    print(format_figure(figure["tracer_advection"], "Figure 4b: tracer advection performance", "MPt/s"))

    index = result_index(all_results)
    # Stencil-HMLS is 90-100x faster than the next best (DaCe) on PW advection.
    for size in ("8M", "32M"):
        ratio = speedup(index[("Stencil-HMLS", "pw_advection", size)],
                        index[("DaCe", "pw_advection", size)])
        assert 60 <= ratio <= 150
    # ... and 14-21x faster on tracer advection.
    for size in ("8M", "33M"):
        ratio = speedup(index[("Stencil-HMLS", "tracer_advection", size)],
                        index[("DaCe", "tracer_advection", size)])
        assert 10 <= ratio <= 30
    # DaCe cannot handle the largest PW advection size; Stencil-HMLS can.
    assert figure["pw_advection"]["DaCe"]["134M"] is None
    assert figure["pw_advection"]["Stencil-HMLS"]["134M"] > 0


@pytest.mark.parametrize("framework_cls", [StencilHMLSFramework, DaCeFramework,
                                           SODAOptFramework, VitisHLSFramework])
def test_benchmark_pw_8m_compile_and_estimate(benchmark, harness, framework_cls):
    """Time compiling + modelling one PW advection execution per framework."""
    case = BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"])
    result = benchmark(lambda: harness.run_case(framework_cls, case))
    assert result.succeeded


@pytest.mark.parametrize("framework_cls", [StencilHMLSFramework, DaCeFramework])
def test_benchmark_tracer_8m_compile_and_estimate(benchmark, harness, framework_cls):
    case = BenchmarkCase("tracer_advection", TRACER_ADVECTION_SIZES["8M"])
    result = benchmark(lambda: harness.run_case(framework_cls, case))
    assert result.succeeded
    assert result.achieved_ii in (1, 9)
