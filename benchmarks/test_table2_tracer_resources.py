"""Table 2 — resource utilisation for the tracer advection kernel.

Regenerates the tracer advection resource rows.  StencilFlow has no rows
(the kernel cannot be expressed); Stencil-HMLS is by far the largest design
(the paper reports ~63% BRAM for its single compute unit) while the naive
flows stay tiny and flat across the two problem sizes.
"""

import pytest

from repro.baselines import StencilHMLSFramework
from repro.evaluation.harness import BenchmarkCase
from repro.evaluation.report import format_table
from repro.evaluation.tables import table2_tracer_resources
from repro.kernels.grids import TRACER_ADVECTION_SIZES

from conftest import result_index


def test_regenerate_table2(all_results):
    rows = table2_tracer_resources(all_results)
    print()
    print(format_table(rows, "Table 2: resource usage for the tracer advection kernel"))

    frameworks = {row["framework"] for row in rows}
    assert frameworks == {"Stencil-HMLS", "DaCe", "SODA-opt", "Vitis HLS"}
    assert "StencilFlow" not in frameworks

    index = result_index(all_results)
    for size in ("8M", "33M"):
        ours = index[("Stencil-HMLS", "tracer_advection", size)].utilisation
        dace = index[("DaCe", "tracer_advection", size)].utilisation
        soda = index[("SODA-opt", "tracer_advection", size)].utilisation
        vitis = index[("Vitis HLS", "tracer_advection", size)].utilisation
        # Ours is the big BRAM consumer (paper: 62.75%); still fits the U280.
        assert 30 <= ours["BRAM"] < 95
        assert ours["BRAM"] > dace["BRAM"]
        assert ours["BRAM"] > 10 * soda["BRAM"]
        # Naive flows: small, nearly identical to each other.
        assert abs(soda["BRAM"] - vitis["BRAM"]) < 2.0
        assert dace["LUTs"] > soda["LUTs"]

    # SODA-opt / Vitis utilisation is flat across problem sizes.
    for framework in ("SODA-opt", "Vitis HLS"):
        util_8m = index[(framework, "tracer_advection", "8M")].utilisation
        util_33m = index[(framework, "tracer_advection", "33M")].utilisation
        assert util_8m == util_33m


def test_benchmark_tracer_synthesis(benchmark, harness):
    """Time the full 24-stencil tracer advection compile (the heaviest build)."""
    case = BenchmarkCase("tracer_advection", TRACER_ADVECTION_SIZES["8M"])
    module = harness.build_module(case.kernel, case.size.shape)
    framework = StencilHMLSFramework(harness.device)
    artifact = benchmark(lambda: framework.compile(module))
    assert artifact.design.compute_units == 1
    assert artifact.design.ports_per_cu == 17
