"""Soak benchmark for the compile-service front door.

~32 concurrent clients fire a mixed warm/cold request schedule at one
served process and the run must demonstrate the service's two headline
properties *under load*, with real counters:

* **single-flight**: a 32-client thundering herd on one cold spec runs
  exactly one compile — the cache-miss counter after the herd equals the
  miss count of one solo cold compile;
* **warm worker-free fast path**: warm-hit requests never enqueue work on
  the compile executor (the pool's submit counter is rigged to count).

Latency percentiles (p50/p99 for warm hits and for the whole soak) and
the coalesced ratio land in ``BENCH_service.json`` — a trajectory
artifact uploaded by CI, so the front door's behaviour is tracked over
time rather than asserted once.
"""

from __future__ import annotations

import json
import os
import statistics
import threading
import time
from pathlib import Path

import pytest

from repro.core.compile_cache import CompileCache
from repro.evaluation.harness import EvaluationHarness
from repro.fpga.device import ALVEO_U280
from repro.service import ServiceClient, ServiceThread, parse_request

_RECORD: dict[str, object] = {}

CLIENTS = 32
HERD_SPEC = {"kernel": "pw_advection", "size": "8M", "repeats": 1}
#: The cold tail of the mixed schedule: distinct, deliberately cheap
#: specs (baseline frameworks) so the soak exercises admission + distinct
#: flights without multiplying Stencil-HMLS compile time into the suite.
COLD_SPECS = [
    {"kernel": "pw_advection", "size": "8M", "frameworks": ["DaCe"], "repeats": 1},
    {"kernel": "pw_advection", "size": "8M", "frameworks": ["Vitis HLS"], "repeats": 1},
    {"kernel": "tracer_advection", "size": "8M", "frameworks": ["DaCe"], "repeats": 1},
]


@pytest.fixture(scope="module", autouse=True)
def bench_artifact():
    """Collect per-test measurements and write the trajectory artifact."""
    yield _RECORD
    path = Path(os.environ.get("BENCH_SERVICE_JSON", "BENCH_service.json"))
    path.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")


class CountingPool:
    """A ThreadPoolExecutor wrapper that counts every submit()."""

    def __init__(self, pool):
        self.pool = pool
        self.submitted = 0
        self._lock = threading.Lock()

    def submit(self, *args, **kwargs):
        with self._lock:
            self.submitted += 1
        return self.pool.submit(*args, **kwargs)


def _percentiles(samples):
    ordered = sorted(samples)
    return {
        "p50_ms": round(statistics.median(ordered) * 1e3, 3),
        "p99_ms": round(ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))] * 1e3, 3),
        "max_ms": round(ordered[-1] * 1e3, 3),
        "samples": len(ordered),
    }


def test_soak_32_clients_single_flight_and_worker_free_warm_hits(tmp_path):
    # Control: how many cache misses does exactly one solo cold compile
    # of the herd spec cost?  (The acceptance bar for the whole herd.)
    control_cache = CompileCache(tmp_path / "control")
    control = EvaluationHarness(device=ALVEO_U280, repeats=1, cache=control_cache)
    control.run_matrix(cases=parse_request(HERD_SPEC).cases())
    one_compile_misses = control_cache.stats.total_misses

    cache = CompileCache(tmp_path / "cache")
    with ServiceThread(cache=cache, max_inflight=8) as server:
        service = server.service
        pool = CountingPool(service._compile_pool)
        service._compile_pool = pool

        # ---- Phase 1: thundering herd (all 32 clients, one cold spec) ----
        latencies = [None] * CLIENTS
        outs = [None] * CLIENTS
        barrier = threading.Barrier(CLIENTS)

        def herd(i):
            client = ServiceClient("127.0.0.1", server.port)
            barrier.wait(timeout=60)
            start = time.perf_counter()
            outs[i] = client.compile_with_retry(HERD_SPEC)
            latencies[i] = time.perf_counter() - start

        threads = [threading.Thread(target=herd, args=(i,)) for i in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)

        # Single-flight, by real counters: the herd cost exactly one cold
        # compile's worth of cache misses and one compiled case.
        assert cache.stats.total_misses == one_compile_misses
        assert service.stats.cases_compiled == 1
        herd_dispatches = pool.submitted
        assert herd_dispatches == 1
        # Every client saw the same final result set.
        finals = {json.dumps(o["complete"]["results"], sort_keys=True) for o in outs}
        assert len(finals) == 1
        coalesced_ratio = service.table.coalesced / CLIENTS
        herd_misses = cache.stats.total_misses
        herd_compiles = service.stats.cases_compiled

        # ---- Phase 2: mixed warm/cold soak ----
        # Warm clients re-request the herd spec; cold clients bring new
        # distinct specs.  Warm requests must stay off the executor.
        mixed_outs = [None] * CLIENTS
        mixed_lat = [None] * CLIENTS
        warm_clients = CLIENTS - len(COLD_SPECS)
        schedule = [HERD_SPEC] * warm_clients + COLD_SPECS
        barrier2 = threading.Barrier(CLIENTS)

        def soak(i):
            client = ServiceClient("127.0.0.1", server.port)
            barrier2.wait(timeout=60)
            start = time.perf_counter()
            mixed_outs[i] = client.compile_with_retry(schedule[i])
            mixed_lat[i] = time.perf_counter() - start

        threads = [threading.Thread(target=soak, args=(i,)) for i in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)

        # Worker-free warm hits: dispatches grew only for the cold specs.
        assert pool.submitted - herd_dispatches <= len(COLD_SPECS)
        warm_hits = [
            (out, lat)
            for out, lat in zip(mixed_outs, mixed_lat)
            if out["accepted"]["warm"]
        ]
        assert len(warm_hits) >= warm_clients  # every warm client hit warm
        assert all(out["complete"]["ok"] for out in mixed_outs)

        stats = service.stats
        _RECORD["service_soak"] = {
            "clients": CLIENTS,
            "herd": {
                "latency": _percentiles(latencies),
                "coalesced_ratio": round(coalesced_ratio, 4),
                "compiles": herd_compiles,
                "cache_misses": herd_misses,
                "one_solo_compile_misses": one_compile_misses,
                "dispatches": herd_dispatches,
            },
            "mixed": {
                "latency": _percentiles(mixed_lat),
                "warm_latency": _percentiles([lat for _, lat in warm_hits]),
                "warm_hits": len(warm_hits),
                "cold_dispatches": pool.submitted - herd_dispatches,
                "shed": stats.shed,
            },
            "totals": {
                "requests": stats.requests,
                "warm_requests": stats.warm_requests,
                "coalesced": service.table.coalesced,
                "led": service.table.led,
                "cases_streamed": stats.cases_streamed,
                "cache_probes": cache.stats.probes,
            },
        }
