"""Figure 5 — average power draw and energy consumption, PW advection.

Regenerates the power (W) and energy (J) bars for the PW advection kernel.
The qualitative claims reproduced: Stencil-HMLS draws marginally more power
than the other frameworks but consumes 85-92x less energy than DaCe (the
next most energy efficient); SODA-opt and Vitis HLS draw the least power but
their long runtimes make their energy the highest.
"""

import pytest

from repro.baselines import StencilHMLSFramework
from repro.evaluation.figures import figure5_pw_power_energy
from repro.evaluation.harness import BenchmarkCase
from repro.evaluation.metrics import energy_ratio
from repro.evaluation.report import format_figure
from repro.kernels.grids import PW_ADVECTION_SIZES

from conftest import result_index


def test_regenerate_figure5(all_results):
    figure = figure5_pw_power_energy(all_results)
    print()
    print(format_figure(figure["power_w"], "Figure 5a: PW advection average power", "W"))
    print()
    print(format_figure(figure["energy_j"], "Figure 5b: PW advection energy", "J"))

    index = result_index(all_results)
    for size in ("8M", "32M"):
        ours = index[("Stencil-HMLS", "pw_advection", size)]
        dace = index[("DaCe", "pw_advection", size)]
        soda = index[("SODA-opt", "pw_advection", size)]
        vitis = index[("Vitis HLS", "pw_advection", size)]
        # Energy: ours lowest by a wide margin (paper: 85x and 92x vs DaCe).
        assert 50 <= energy_ratio(dace, ours) <= 130
        assert ours.energy_j < soda.energy_j and ours.energy_j < vitis.energy_j
        # Power: ours marginally greater; SODA/Vitis draw the least.
        assert ours.average_power_w > dace.average_power_w
        assert ours.average_power_w < 2.0 * dace.average_power_w
        assert soda.average_power_w <= dace.average_power_w
        # DaCe is the next most energy efficient.
        assert dace.energy_j < soda.energy_j and dace.energy_j < vitis.energy_j


def test_benchmark_power_model_evaluation(benchmark, harness):
    """Time the power/energy estimation for one Stencil-HMLS PW execution."""
    case = BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"])
    framework = StencilHMLSFramework(harness.device)
    artifact = framework.compile(harness.build_module(case.kernel, case.size.shape))

    def measure():
        timing = artifact.estimate_performance()
        return artifact.estimate_power(timing)

    report = benchmark(measure)
    assert report.average_power_w > 0
    assert report.energy_j == pytest.approx(report.average_power_w * artifact.estimate_performance().runtime_s)
