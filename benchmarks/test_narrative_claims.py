"""§4 narrative claims that are not bars in a figure or rows in a table.

* initiation intervals: Stencil-HMLS 1, DaCe 9, SODA-opt 164, Vitis HLS 163
  (on the tracer advection critical path);
* the PW advection advantage decomposition 4 (CUs) x 9 (II) x 3 (split) = 108;
* the AXI-port budget: 4 CUs x 7 ports for PW advection fits the 32-port
  shell, the tracer advection kernel's 17 ports force a single CU;
* StencilFlow outcomes: PW advection compiles but deadlocks, tracer advection
  cannot be expressed, the largest PW size cannot be allocated;
* DaCe cannot compile the 134M-point PW advection case (no automatic
  multi-bank assignment).
"""

import pytest

from repro.baselines import (
    CompilationFailure,
    DaCeFramework,
    DeadlockError,
    SODAOptFramework,
    StencilFlowFramework,
    StencilHMLSFramework,
    UnsupportedKernelError,
    VitisHLSFramework,
)
from repro.evaluation.metrics import speedup
from repro.fpga.device import ALVEO_U280
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.tracer_advection import build_tracer_advection

from conftest import result_index


def test_initiation_intervals(all_results):
    index = result_index(all_results)
    assert index[("Stencil-HMLS", "pw_advection", "8M")].achieved_ii == 1
    assert index[("Stencil-HMLS", "tracer_advection", "8M")].achieved_ii == 1
    assert index[("DaCe", "pw_advection", "8M")].achieved_ii == 9
    vitis = index[("Vitis HLS", "tracer_advection", "8M")].achieved_ii
    soda = index[("SODA-opt", "tracer_advection", "8M")].achieved_ii
    print(f"\ncritical-path II: Vitis HLS {vitis}, SODA-opt {soda} (paper: 163 / 164)")
    assert 140 <= vitis <= 200
    assert vitis <= soda <= vitis + 10


def test_pw_advantage_decomposition(all_results):
    index = result_index(all_results)
    ours = index[("Stencil-HMLS", "pw_advection", "8M")]
    dace = index[("DaCe", "pw_advection", "8M")]
    ratio = speedup(ours, dace)
    print(f"\nPW advection advantage: {ratio:.1f}x (paper model: 4 x 9 x 3 = 108)")
    assert ratio == pytest.approx(4 * 9 * 3, rel=0.2)


def test_axi_port_budget(all_results):
    index = result_index(all_results)
    pw = index[("Stencil-HMLS", "pw_advection", "8M")]
    tracer = index[("Stencil-HMLS", "tracer_advection", "8M")]
    assert pw.compute_units == 4
    assert tracer.compute_units == 1
    assert 4 * 7 <= ALVEO_U280.max_axi_ports
    assert 2 * 17 > ALVEO_U280.max_axi_ports


def test_stencilflow_outcomes(benchmark):
    framework = StencilFlowFramework()
    pw_module = build_pw_advection(PW_ADVECTION_SIZES["8M"].shape)
    artifact = benchmark(lambda: framework.compile(pw_module))
    assert artifact.achieved_ii == 1
    with pytest.raises(DeadlockError):
        framework.execute(artifact)
    with pytest.raises(UnsupportedKernelError):
        framework.compile(build_tracer_advection(TRACER_ADVECTION_SIZES["8M"].shape))
    with pytest.raises(CompilationFailure):
        framework.compile(build_pw_advection(PW_ADVECTION_SIZES["134M"].shape))


def test_dace_multibank_limitation(all_results):
    index = result_index(all_results)
    assert index[("DaCe", "pw_advection", "134M")].status == "compile_failed"
    assert index[("DaCe", "pw_advection", "32M")].succeeded
    assert index[("Stencil-HMLS", "pw_advection", "134M")].succeeded


def test_every_framework_modelled(all_results):
    frameworks = {r.framework for r in all_results}
    assert frameworks == {"Stencil-HMLS", "DaCe", "SODA-opt", "Vitis HLS", "StencilFlow"}
