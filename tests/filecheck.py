"""FileCheck-lite: golden-IR matching in the spirit of LLVM's FileCheck.

Supported directives (with the default ``CHECK`` prefix):

* ``CHECK: <pat>``       — match the first line at/after the current
  position containing the pattern; the position advances past it.
* ``CHECK-NEXT: <pat>``  — the *immediately following* line must match.
* ``CHECK-DAG: <pat>``   — consecutive ``CHECK-DAG`` directives form a
  group whose patterns may match in any order; the position then advances
  past the furthest match.
* ``CHECK-NOT: <pat>``   — the pattern must not occur between the previous
  match and the next positive match (or the end of input).

Patterns are literal substrings except for ``{{...}}`` segments, which are
regular expressions (e.g. ``%{{[0-9]+}}``).  Directives may live in a
standalone check file (lines starting with ``//`` comments are fine) or be
embedded in any text handed to :func:`parse_check_lines`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable


class FileCheckError(AssertionError):
    """A CHECK directive failed to match (or a check file is malformed)."""


@dataclass(frozen=True)
class CheckDirective:
    kind: str          # 'check' | 'next' | 'dag' | 'not'
    pattern: str       # raw pattern text as written
    regex: "re.Pattern[str]"
    line_no: int       # line in the check file, for error messages

    def describe(self) -> str:
        suffix = {"check": "", "next": "-NEXT", "dag": "-DAG", "not": "-NOT"}[self.kind]
        return f"CHECK{suffix}: {self.pattern}  (check line {self.line_no})"


def compile_pattern(pattern: str) -> "re.Pattern[str]":
    """Literal text with ``{{...}}`` regex islands → compiled regex."""
    parts: list[str] = []
    pos = 0
    while True:
        start = pattern.find("{{", pos)
        if start < 0:
            parts.append(re.escape(pattern[pos:]))
            break
        end = pattern.find("}}", start + 2)
        if end < 0:
            raise FileCheckError(f"unterminated '{{{{' in pattern: {pattern!r}")
        parts.append(re.escape(pattern[pos:start]))
        parts.append(f"(?:{pattern[start + 2:end]})")
        pos = end + 2
    return re.compile("".join(parts))


def parse_check_lines(text: str, *, prefix: str = "CHECK") -> list[CheckDirective]:
    """Extract CHECK directives from a check file / annotated source."""
    directives: list[CheckDirective] = []
    spec = re.compile(rf"{re.escape(prefix)}(-NEXT|-DAG|-NOT)?\s*:\s?(.*)$")
    for line_no, line in enumerate(text.splitlines(), start=1):
        found = spec.search(line)
        if found is None:
            continue
        kind = {None: "check", "-NEXT": "next", "-DAG": "dag", "-NOT": "not"}[found.group(1)]
        pattern = found.group(2).rstrip()
        directives.append(
            CheckDirective(kind, pattern, compile_pattern(pattern), line_no)
        )
    return directives


def _fail(directive: CheckDirective, lines: list[str], position: int, reason: str) -> None:
    window = "\n".join(
        f"    {i + 1:>4} | {line}"
        for i, line in enumerate(lines)
        if position <= i < position + 8
    )
    raise FileCheckError(
        f"{reason}\n  directive: {directive.describe()}\n"
        f"  scanning from input line {position + 1}:\n{window or '    <end of input>'}"
    )


def run_filecheck(
    text: str,
    checks: str | Path | Iterable[CheckDirective],
    *,
    prefix: str = "CHECK",
) -> None:
    """Verify ``text`` against CHECK directives; raises :class:`FileCheckError`.

    ``checks`` may be a check-file path, the check file's contents, or
    pre-parsed directives.
    """
    if isinstance(checks, Path):
        directives = parse_check_lines(checks.read_text(), prefix=prefix)
    elif isinstance(checks, str):
        directives = parse_check_lines(checks, prefix=prefix)
    else:
        directives = list(checks)
    if not directives:
        raise FileCheckError(f"no {prefix} directives found")

    lines = text.splitlines()
    position = 0  # next input line eligible for matching
    pending_nots: list[CheckDirective] = []

    def flush_nots(until: int) -> None:
        """Verify queued CHECK-NOT patterns over lines[position:until]."""
        for banned in pending_nots:
            hit = next(
                (i for i in range(position, until) if banned.regex.search(lines[i])),
                None,
            )
            if hit is not None:
                _fail(
                    banned, lines, hit,
                    f"CHECK-NOT pattern unexpectedly matched input line {hit + 1}",
                )
        pending_nots.clear()

    index = 0
    while index < len(directives):
        directive = directives[index]
        if directive.kind == "not":
            pending_nots.append(directive)
            index += 1
            continue
        if directive.kind == "dag":
            # A maximal run of consecutive DAG directives matches unordered.
            group: list[CheckDirective] = []
            while index < len(directives) and directives[index].kind == "dag":
                group.append(directives[index])
                index += 1
            taken: set[int] = set()
            for member in group:
                hit = next(
                    (
                        i
                        for i in range(position, len(lines))
                        if i not in taken and member.regex.search(lines[i])
                    ),
                    None,
                )
                if hit is None:
                    _fail(member, lines, position, "CHECK-DAG pattern not found")
                taken.add(hit)
            flush_nots(min(taken))
            position = max(taken) + 1
            continue
        if directive.kind == "next":
            flush_nots(position)
            if position >= len(lines) or not directive.regex.search(lines[position]):
                _fail(directive, lines, position, "CHECK-NEXT did not match the next line")
            position += 1
        else:
            hit = next(
                (i for i in range(position, len(lines)) if directive.regex.search(lines[i])),
                None,
            )
            if hit is None:
                _fail(directive, lines, position, "CHECK pattern not found")
            flush_nots(hit)
            position = hit + 1
        index += 1
    flush_nots(len(lines))
