"""Fleet fault tolerance: chaos kills, retry/backoff, straggler replacement,
work-stealing, worker log capture, the shared network cache tier across
workers, and the byte-offset event forwarder."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.evaluation.harness import BenchmarkCase, EvaluationHarness
from repro.evaluation.orchestrator import (
    EventWriter,
    RemoteLauncher,
    SubprocessLauncher,
    _EventForwarder,
    orchestrate,
    pin_cases,
    plan_matrix,
    read_events,
)
from repro.evaluation.report import merge_results, results_to_json
from repro.kernels.grids import PW_ADVECTION_SIZES


def _hmls_cases(variants: list[str]) -> list[BenchmarkCase]:
    return EvaluationHarness(repeats=1).cases_for(
        "pw_advection", ["8M"], frameworks=["Stencil-HMLS"], variants=variants
    )


def _baseline_cases() -> list[BenchmarkCase]:
    return [
        BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"], "Vitis HLS"),
        BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"], "DaCe"),
    ]


def _serial_report(cases: list[BenchmarkCase]) -> str:
    """What a single-process run would merge to, byte for byte."""
    results = EvaluationHarness(repeats=1).run_matrix(cases=cases)
    entries = json.loads(results_to_json(results, deterministic=True))
    return json.dumps(merge_results(entries), indent=2, sort_keys=True)


def _stage_hits(cache_stats: dict, stage: str) -> int:
    return cache_stats["stages"].get(stage, {}).get("hits", 0)


class TestChaosKillAndSteal:
    def test_sigkill_mid_shard_converges_byte_identical(self, tmp_path):
        """The acceptance criterion: SIGKILL a worker mid-sweep; with
        retry + work-stealing the merged report must come out byte-identical
        to a serial run, with zero recompiles of already-manifested cases —
        asserted on the real cache counters, not on log text."""
        cases = _hmls_cases(["staged", "ii-2", "depth-8", "depth-64"])
        plan = plan_matrix(cases, shards=2)
        victim = max(plan.shards, key=lambda s: len(s.cases)).index
        assert len(plan.shards[victim - 1].cases) >= 2  # the kill is mid-shard
        events_path = tmp_path / "events.jsonl"
        code, merged = orchestrate(
            plan,
            state_dir=tmp_path / "state",
            launcher=SubprocessLauncher(),
            cache_dir=str(tmp_path / "cache"),
            events=EventWriter(events_path),
            output=tmp_path / "merged.json",
            max_retries=2,
            retry_backoff=0.0,
            chaos_kill_shard=victim,
            chaos_kill_after=1,
        )
        assert code == 0
        events = read_events(events_path)
        kinds = [e["event"] for e in events]
        assert "chaos_kill" in kinds          # the worker really died …
        assert "shard_failed" in kinds        # … the fleet noticed …
        assert "shard_requeued" in kinds      # … and re-queued the remainder.
        assert (tmp_path / "merged.json").read_text() == _serial_report(cases)

        # Zero recompiles: every planned case finished exactly once across
        # the whole fleet (victim + survivors + replacements) …
        digests = [e["digest"] for e in events if e["event"] == "case_finished"]
        assert len(digests) == len(set(digests)) == len(pin_cases(cases))
        # … and no worker ever re-served a finished case from the result
        # cache (the shared cache started cold, so any result hit would
        # mean a manifested case was re-attempted).
        stats = [
            e["cache_stats"] for e in events if e["event"] == "shard_finished"
        ]
        assert stats
        assert all(_stage_hits(s, "result") == 0 for s in stats)
        # The stolen work warm-started from pass-prefix artefacts the dead
        # worker had already published to the shared cache: a replacement
        # shard (index above the planned two) shows cross-worker hits.
        replacement_stats = [
            e["cache_stats"]
            for e in events
            if e["event"] == "shard_finished" and e["shard"] > 2
        ]
        assert replacement_stats
        assert any(
            _stage_hits(s, "pass-prefix") + _stage_hits(s, "pass-prefix-hash") > 0
            for s in replacement_stats
        )

    def test_crash_after_full_manifest_is_recovered(self, tmp_path):
        """A worker killed *after* manifesting its last case (e.g. while
        writing the shard results file) loses nothing: the manifest is the
        merge source, so the sweep still exits 0 with a full report."""
        cases = _baseline_cases()
        plan = plan_matrix(cases, shards=2)
        code, merged = orchestrate(
            plan,
            state_dir=tmp_path / "state",
            launcher=SubprocessLauncher(),
            events=EventWriter(tmp_path / "events.jsonl"),
            output=tmp_path / "merged.json",
            retry_backoff=0.0,
            chaos_kill_shard=1,
            chaos_kill_after=len(plan.shards[0].cases),
        )
        assert code == 0
        assert (tmp_path / "merged.json").read_text() == _serial_report(cases)
        events = read_events(tmp_path / "events.jsonl")
        assert not [e for e in events if e["event"] == "shard_requeued"]


class _SleepyLauncher(SubprocessLauncher):
    """First attempt of the victim shard hangs forever (a straggler)."""

    def __init__(self, victim_shard: int) -> None:
        super().__init__()
        self.victim_shard = victim_shard
        self.hung_once = False

    def command_for(self, spec_path: Path, host: str | None) -> list[str]:
        spec = json.loads(Path(spec_path).read_text())
        if spec["shard"] == self.victim_shard and not self.hung_once:
            self.hung_once = True
            return [sys.executable, "-c", "import time; time.sleep(600)"]
        return super().command_for(spec_path, host)


class TestStragglerReplacement:
    def test_stalled_worker_is_killed_and_its_work_stolen(self, tmp_path):
        cases = _baseline_cases()
        plan = plan_matrix(cases, shards=2)
        events_path = tmp_path / "events.jsonl"
        code, merged = orchestrate(
            plan,
            state_dir=tmp_path / "state",
            launcher=_SleepyLauncher(victim_shard=1),
            events=EventWriter(events_path),
            output=tmp_path / "merged.json",
            straggler_timeout=2.0,
            retry_backoff=0.0,
        )
        assert code == 0
        events = read_events(events_path)
        stragglers = [e for e in events if e["event"] == "shard_straggler"]
        assert stragglers and stragglers[0]["shard"] == 1
        failed = [e for e in events if e["event"] == "shard_failed"]
        assert failed and failed[0]["cause"] == "straggler"
        requeued = [e for e in events if e["event"] == "shard_requeued"]
        assert requeued and requeued[0]["from_shard"] == 1
        assert (tmp_path / "merged.json").read_text() == _serial_report(cases)


class _ExplodingLauncher(SubprocessLauncher):
    """Workers that leave a distinctive log line and die, every attempt."""

    def command_for(self, spec_path: Path, host: str | None) -> list[str]:
        return [
            sys.executable, "-c",
            "print('BoomMarker: injected worker crash'); raise SystemExit(7)",
        ]


class TestWorkerLogCapture:
    def test_crash_leaves_log_and_failure_quotes_its_tail(self, tmp_path, capsys):
        state = tmp_path / "state"
        plan = plan_matrix(_baseline_cases()[:1], shards=1)
        code, merged = orchestrate(
            plan,
            state_dir=state,
            launcher=_ExplodingLauncher(),
            max_retries=1,
            retry_backoff=0.0,
        )
        assert code == 1
        assert merged == []
        err = capsys.readouterr().err
        assert "failed with exit code 7" in err
        assert "BoomMarker: injected worker crash" in err  # quoted log tail
        logs = list(state.glob("shard*.log"))
        assert logs and any("BoomMarker" in p.read_text() for p in logs)


class TestRemoteLauncher:
    def test_default_template_renders_ssh_argv(self, tmp_path):
        launcher = RemoteLauncher(["node-a"], python="python3")
        command = launcher.command_for(tmp_path / "shard1.json", "node-a")
        assert command[:4] == ["ssh", "node-a", "--", "python3"]
        assert command[4:] == [
            "-m", "repro.evaluation.orchestrator",
            "--run-shard", str(tmp_path / "shard1.json"),
        ]

    def test_template_with_embedded_argv_token_is_quoted(self, tmp_path):
        launcher = RemoteLauncher(
            ["node-a"],
            template="ssh {host} bash -lc 'cd /mnt/repro && {argv}'",
            python="python3",
        )
        command = launcher.command_for(tmp_path / "s.json", "node-a")
        assert command[:2] == ["ssh", "node-a"]
        assert command[-1].startswith("cd /mnt/repro && python3 -m")

    def test_hosts_are_picked_least_busy_first(self):
        launcher = RemoteLauncher(["a", "b"])
        first, second = launcher.pick_host(), launcher.pick_host()
        assert {first, second} == {"a", "b"}
        launcher.release_host(first)
        assert launcher.pick_host() == first  # the freed host wins
        assert launcher.capacity() == 2

    def test_empty_host_list_is_rejected(self):
        with pytest.raises(ValueError):
            RemoteLauncher([])


class TestSharedCacheTierAcrossWorkers:
    def test_second_sweep_is_served_from_the_remote_tier(self, tmp_path):
        """Two sweeps in fresh state dirs sharing only ``remote_cache_dir``:
        the second fleet's workers (fresh processes, no local cache) must
        serve every result from the network tier."""
        cases = _baseline_cases()
        remote = str(tmp_path / "netcache")
        orchestrate(
            plan_matrix(cases, shards=2),
            state_dir=tmp_path / "state1",
            launcher=SubprocessLauncher(),
            remote_cache_dir=remote,
        )
        events_path = tmp_path / "events2.jsonl"
        code, merged = orchestrate(
            plan_matrix(cases, shards=2),
            state_dir=tmp_path / "state2",
            launcher=SubprocessLauncher(),
            remote_cache_dir=remote,
            events=EventWriter(events_path),
            output=tmp_path / "merged.json",
        )
        assert code == 0
        assert (tmp_path / "merged.json").read_text() == _serial_report(cases)
        stats = [
            e["cache_stats"]
            for e in read_events(events_path)
            if e["event"] == "shard_finished"
        ]
        assert stats
        assert sum(_stage_hits(s, "result") for s in stats) == len(pin_cases(cases))
        assert sum(s["remote_hits"] for s in stats) > 0
        assert all(s["remote_stores"] == 0 for s in stats)  # nothing recomputed


class TestZeroCopyFleet:
    def test_chaos_kill_with_mapped_cache_and_intern_table(self, tmp_path):
        """The zero-copy hot path under fire: mapped cache artefacts + the
        shared intern table, a worker SIGKILLed mid-shard and its work
        stolen.  The merged report must still be byte-identical to a serial
        run, with zero recompiles and cross-worker mapped-artefact reuse —
        and the stolen (replacement) shard must inherit both flags."""
        cases = _hmls_cases(["staged", "ii-2", "depth-8", "depth-64"])
        plan = plan_matrix(cases, shards=2)
        victim = max(plan.shards, key=lambda s: len(s.cases)).index
        events_path = tmp_path / "events.jsonl"
        table_dir = tmp_path / "intern-table"
        code, merged = orchestrate(
            plan,
            state_dir=tmp_path / "state",
            launcher=SubprocessLauncher(),
            cache_dir=str(tmp_path / "cache"),
            cache_format="mapped",
            intern_table=str(table_dir),
            events=EventWriter(events_path),
            output=tmp_path / "merged.json",
            max_retries=2,
            retry_backoff=0.0,
            chaos_kill_shard=victim,
            chaos_kill_after=1,
        )
        assert code == 0
        assert (tmp_path / "merged.json").read_text() == _serial_report(cases)

        events = read_events(events_path)
        kinds = [e["event"] for e in events]
        assert "chaos_kill" in kinds and "shard_requeued" in kinds
        # The parent published the table before launching the fleet …
        published = [e for e in events if e["event"] == "intern_table"]
        assert published and published[0]["records"] > 0
        assert list(table_dir.glob("seg-*.bin"))
        # … and workers republished after their shards (append-only, so
        # concurrent publishers at worst add whole new segment files).

        digests = [e["digest"] for e in events if e["event"] == "case_finished"]
        assert len(digests) == len(set(digests)) == len(pin_cases(cases))
        replacement_stats = [
            e["cache_stats"]
            for e in events
            if e["event"] == "shard_finished" and e["shard"] > 2
        ]
        assert replacement_stats  # the steal really happened, under mapped
        assert any(
            _stage_hits(s, "pass-prefix") + _stage_hits(s, "pass-prefix-hash") > 0
            for s in replacement_stats
        )

    def test_stale_intern_table_degrades_to_per_process_interning(self, tmp_path):
        """A worker whose spec points at a vanished intern table must run
        the shard normally (identity falls back to per-process interning)."""
        from repro.evaluation.orchestrator import run_shard_spec, shard_spec

        cases = _baseline_cases()
        plan = plan_matrix(cases, shards=1)
        state = tmp_path / "state"
        state.mkdir()
        spec = shard_spec(
            plan.shards[0],
            state_dir=state,
            cache_format="mapped",
            intern_table=str(tmp_path / "never-published"),
        )
        assert run_shard_spec(spec) == 0
        results = json.loads((state / "results-shard1.json").read_text())
        assert len(results) == len(cases)


class TestEventForwarderByteOffsets:
    def test_multibyte_names_do_not_desync_the_tail(self, tmp_path):
        """Regression: the forwarder seeked byte offsets but advanced them
        by ``len(line)`` in *characters*; the first non-ASCII kernel or
        variant name desynced the tail and corrupted every later event."""
        shard_file = tmp_path / "events-shard1.jsonl"
        sink_path = tmp_path / "sink.jsonl"
        forwarder = _EventForwarder([shard_file], EventWriter(sink_path))
        writer = EventWriter(shard_file)
        label = "pw_advección/8M/Sténcil-HMLS@dépth-8"
        writer.emit("case_finished", label=label, index=1)
        assert forwarder.poll() == 1
        writer.emit("shard_finished", shard=1, completed=1)
        assert forwarder.poll() == 1  # char-counted offsets re-read junk here
        got = read_events(sink_path)
        assert [e["event"] for e in got] == ["case_finished", "shard_finished"]
        assert got[0]["label"] == label

    def test_partial_line_is_deferred_not_dropped(self, tmp_path):
        shard_file = tmp_path / "events-shard1.jsonl"
        sink_path = tmp_path / "sink.jsonl"
        forwarder = _EventForwarder([shard_file], EventWriter(sink_path))
        with shard_file.open("w", encoding="utf-8") as handle:
            handle.write('{"event": "case_finished", "label": "ü')
        assert forwarder.poll() == 0  # incomplete write: wait, do not guess
        with shard_file.open("a", encoding="utf-8") as handle:
            handle.write('ber"}\n')
        assert forwarder.poll() == 1
        assert read_events(sink_path)[0]["label"] == "über"
