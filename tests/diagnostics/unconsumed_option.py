"""Seeded defect: a pipeline option whose consuming pass is not scheduled.

``depth`` (stream_depth) is consumed by ``stencil-wave-pipelining``, which
this truncated pipeline never runs — the override would silently do
nothing at compile time.
"""

from repro.frontends.builder import StencilKernelBuilder

# expected-warning: pipeline '{{.*}}': warning: option 'depth' on pass 'stencil-shape-inference' is consumed by no scheduled pass: 'stencil-wave-pipelining' is not in the pipeline [unconsumed-option]

SPEC = "canonicalize,stencil-shape-inference{depth=64}"
SHAPE = (8, 8, 8)


def build():
    b = StencilKernelBuilder("unconsumed_kernel", SHAPE)
    src = b.input_field("src")
    out = b.output_field("out")
    b.add_stencil(out, src[0, 0, 0] + src[0, 0, 1])
    return b.build()
