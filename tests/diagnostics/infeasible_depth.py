"""Seeded defect: a stream depth the resource model proves infeasible.

A FIFO depth of one million elements needs more BRAM than the whole U280
offers, before a single compute stage is counted.
"""

from repro.frontends.builder import StencilKernelBuilder

# expected-error: func @deep_kernel: error: configuration is infeasible for Alveo U280: floor estimate exceeds the device ({{.*}}BRAM {{[0-9]+}}/{{[0-9]+}}{{.*}}) [infeasible-config]

SPEC = (
    "canonicalize,stencil-shape-inference,stencil-interface-lowering,"
    "stencil-small-data-buffering,stencil-wave-pipelining{depth=1000000},"
    "stencil-compute-split,hls-bundle-assignment,convert-hls-to-llvm"
)
SHAPE = (8, 8, 8)


def build():
    b = StencilKernelBuilder("deep_kernel", SHAPE)
    src = b.input_field("src")
    out = b.output_field("out")
    b.add_stencil(out, src[0, 0, 0] + src[0, 0, 1])
    return b.build()
