"""Seeded defects: a kernel argument never used and a stage result never
stored (field written, never read)."""

from repro.dialects import stencil
from repro.frontends.builder import StencilKernelBuilder

# expected-warning: func @dead_kernel: warning: kernel argument 'ghost' is never read or written [dead-field]
# expected-warning: {{.*}}stencil.apply: warning: stencil stage result is never stored or read{{.*}}[dead-field]

SHAPE = (8, 8, 8)


def build():
    b = StencilKernelBuilder("dead_kernel", SHAPE)
    src = b.input_field("src")
    b.field("ghost")  # declared, never read or written
    out = b.output_field("out")
    b.add_stencil(out, src[0, 0, 0] + src[0, 0, 1])
    module = b.build()
    # Sever the store so the apply's result is computed but never consumed.
    store = next(iter(module.walk_type(stencil.StoreOp)))
    store.erase()
    return module
