"""Seeded defect: a stencil access offset escaping the field bounds.

The explicit iteration domain covers the whole grid, so the +1 offset in
the k dimension reads one plane past the field's upper bound.
"""

from repro.frontends.builder import StencilKernelBuilder

# expected-error: {{.*}}stencil.access: error: stencil access offset (0, 0, 1) on field 'src' reads outside the field bounds [out-of-bounds-access]

SHAPE = (8, 8, 8)


def build():
    b = StencilKernelBuilder("oob_kernel", SHAPE)
    src = b.input_field("src")
    out = b.output_field("out")
    b.add_stencil(out, src[0, 0, 1] + src[0, 0, 0], lower=(0, 0, 0), upper=SHAPE)
    return b.build()
