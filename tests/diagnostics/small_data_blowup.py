"""Seeded defect: a "small" constant array far past the BRAM-copy budget.

100k double-precision elements need ~174 BRAM blocks — well within the
device, but past the 5% small-data budget the lint enforces.
"""

from repro.frontends.builder import StencilKernelBuilder

# expected-warning: func @blowup_kernel: warning: small data promoted to BRAM needs {{[0-9]+}} BRAM blocks, past the small_data budget of {{[0-9]+}} on Alveo U280 [small-data-budget]

SHAPE = (8, 8, 8)


def build():
    b = StencilKernelBuilder("blowup_kernel", SHAPE)
    src = b.input_field("src")
    out = b.output_field("out")
    coeff = b.small_data("coeff", 100_000, dim=2)
    b.add_stencil(out, src[0, 0, 0] * coeff.here)
    return b.build()
