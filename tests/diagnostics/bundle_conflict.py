"""Seeded defect: per-field AXI bundles exceeding the U280's 32-port shell.

33 input fields plus the output need 34 master ports per compute unit with
``separate_bundles`` on — more than the shell supports.
"""

from repro.frontends.builder import StencilKernelBuilder

# expected-error: func @bundle_kernel: error: kernel needs 34 AXI ports per compute unit but Alveo U280 supports at most 32 [bundle-conflict]

SHAPE = (8, 8, 8)
NUM_INPUTS = 33


def build():
    b = StencilKernelBuilder("bundle_kernel", SHAPE)
    inputs = [b.input_field(f"f{i}") for i in range(NUM_INPUTS)]
    out = b.output_field("out")
    expr = inputs[0].centre
    for handle in inputs[1:]:
        expr = expr + handle.centre
    b.add_stencil(out, expr)
    return b.build()
