"""Tests for the kernel-argument classification and structural analysis (step 1)."""

import pytest

from repro.frontends.builder import StencilKernelBuilder
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.tracer_advection import TRACER_ROUNDS, build_tracer_advection
from repro.transforms.stencil_analysis import AnalysisError, analyse_module
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp


class TestArgumentClassification:
    def test_pw_classification(self, pw_module):
        analysis = analyse_module(pw_module)
        kinds = {a.name: a.kind for a in analysis.arguments}
        assert kinds["u"] == "field_input"
        assert kinds["su"] == "field_output"
        assert kinds["tzc1"] == "small_data"
        assert kinds["tcx"] == "scalar"
        assert len(analysis.field_inputs) == 3
        assert len(analysis.field_outputs) == 3
        assert len(analysis.small_data) == 4
        assert len(analysis.scalars) == 2

    def test_pw_ports(self, pw_module):
        analysis = analyse_module(pw_module)
        # One port per field plus one shared port for the small data (§4).
        assert analysis.num_field_ports == 6
        assert analysis.ports_per_cu(bundle_small_data=True) == 7
        assert analysis.ports_per_cu(bundle_small_data=False) == 10

    def test_tracer_ports(self, tracer_module):
        analysis = analyse_module(tracer_module)
        # 17 memory arguments, each mapped to a separate port (§4).
        assert analysis.num_field_ports == 17
        assert analysis.ports_per_cu() == 17

    def test_argument_shapes_recorded(self, pw_module, small_shape):
        analysis = analyse_module(pw_module)
        u = next(a for a in analysis.arguments if a.name == "u")
        assert u.shape == small_shape
        assert u.lower == (0, 0, 0)
        tzc1 = next(a for a in analysis.arguments if a.name == "tzc1")
        assert tzc1.num_elements == small_shape[2]


class TestStageAnalysis:
    def test_pw_stage_structure(self, pw_module):
        analysis = analyse_module(pw_module)
        assert analysis.num_stencil_stages == 3
        assert analysis.num_waves == 1          # all three stencils are independent
        outputs = [stage.output_fields[0] for stage in analysis.stages]
        assert outputs == ["su", "sv", "sw"]
        for stage in analysis.stages:
            assert set(stage.input_fields) == {"u", "v", "w"}
            assert stage.radius == 1
            assert stage.window_size() == 27
            assert stage.flops > 10
            assert stage.depends_on == []

    def test_pw_offsets_recorded(self, pw_module):
        analysis = analyse_module(pw_module)
        su_stage = analysis.stages[0]
        assert (-1, 0, 0) in su_stage.offsets["u"]
        assert (0, 0, 1) in su_stage.offsets["w"]

    def test_tracer_stage_structure(self, tracer_module):
        analysis = analyse_module(tracer_module)
        assert analysis.num_stencil_stages == 2 * TRACER_ROUNDS == 24
        assert analysis.num_waves == TRACER_ROUNDS == 12
        waves = analysis.dependency_waves()
        assert all(len(wave) == 2 for wave in waves)
        # Later stages must depend on earlier ones.
        assert analysis.stages[4].depends_on != []

    def test_domain(self, pw_module, small_shape):
        analysis = analyse_module(pw_module)
        assert analysis.domain_lower == (1, 1, 1)
        assert analysis.domain_upper == tuple(s - 1 for s in small_shape)
        expected = 1
        for extent in small_shape:
            expected *= extent - 2
        assert analysis.domain_points == expected
        assert analysis.total_grid_points == small_shape[0] * small_shape[1] * small_shape[2]

    def test_total_flops(self, pw_module):
        analysis = analyse_module(pw_module)
        assert analysis.total_flops_per_point == sum(s.flops for s in analysis.stages)
        assert analysis.max_radius == 1

    def test_module_without_stencils_rejected(self):
        module = ModuleOp()
        func = FuncOp.with_body("empty", [], [])
        func.entry_block.add_op(ReturnOp([]))
        module.add_op(func)
        with pytest.raises(AnalysisError):
            analyse_module(module)

    def test_multiple_kernels_need_explicit_name(self, small_shape):
        b1 = StencilKernelBuilder("k1", small_shape)
        u1, o1 = b1.input_field("u"), b1.output_field("o")
        b1.add_stencil(o1, u1[0, 0, 0])
        b2 = StencilKernelBuilder("k2", small_shape)
        u2, o2 = b2.input_field("u"), b2.output_field("o")
        b2.add_stencil(o2, u2[0, 0, 0])
        module = ModuleOp()
        module.add_op(b1.build().get_symbol("k1").detach())
        module.add_op(b2.build().get_symbol("k2").detach())
        with pytest.raises(AnalysisError):
            analyse_module(module)
        assert analyse_module(module, "k2").func_name == "k2"

    def test_analysis_scales_with_problem_size(self):
        small = analyse_module(build_pw_advection((6, 5, 4)))
        large = analyse_module(build_pw_advection((32, 16, 8)))
        assert large.domain_points > small.domain_points
        assert large.num_stencil_stages == small.num_stencil_stages

    def test_tracer_uses_all_17_memory_args(self, tracer_module):
        analysis = analyse_module(tracer_module)
        used = set()
        for stage in analysis.stages:
            used.update(stage.input_args)
            used.update(stage.output_args)
        memory_args = {a.name for a in analysis.arguments if a.is_field}
        assert used == memory_args
