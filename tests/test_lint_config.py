"""The ruff/mypy baseline gate, where the tools are installed.

The container the tier-1 suite usually runs in does not ship ruff or
mypy, so these tests skip cleanly there; the CI ``lint-smoke`` job
installs both and runs the same commands, keeping the configured
baseline (``[tool.ruff]`` / ``[tool.mypy]`` in pyproject.toml) clean.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def run_tool(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        argv, cwd=REPO, capture_output=True, text=True, timeout=600
    )


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_baseline_is_clean():
    proc = run_tool("ruff", "check", "src", "tests", "benchmarks")
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_layers_are_clean():
    proc = run_tool("mypy", "src/repro/ir", "src/repro/service")
    assert proc.returncode == 0, proc.stdout + proc.stderr
