"""Diagnostics engine, analysis manager and shmls-lint tests.

Covers the four tentpole pieces end to end:

* :mod:`repro.ir.diagnostics` — op-path rendering, the engine's emit /
  severity / pass-scope API and :class:`DiagnosticError`;
* :mod:`repro.ir.analysis` — fingerprint-keyed caching with real hit/miss
  counters, including the acceptance-criterion check that a staged
  pipeline run produces cross-pass cache hits;
* :mod:`repro.tools.lint` — every rule fires on its seeded-defect corpus
  fixture and stays quiet on the paper kernels;
* the ``--verify-diagnostics`` harness — expectation parsing, ``{{...}}``
  regex islands and strict 1:1 matching.
"""

import json
from pathlib import Path

import pytest

from repro.dialects import stencil
from repro.evaluation.harness import STAGED_PIPELINE
from repro.frontends.builder import StencilKernelBuilder
from repro.ir.analysis import AnalysisManager, AnalysisStats
from repro.ir.diagnostics import (
    Diagnostic,
    DiagnosticEngine,
    DiagnosticError,
    op_path,
)
from repro.ir.pass_registry import PassRegistry
from repro.kernels.grids import PW_ADVECTION_SIZES
from repro.kernels.pw_advection import build_pw_advection
from repro.tools.lint import (
    ExpectedDiagnostic,
    compile_expectation,
    lint_corpus_file,
    main as lint_main,
    parse_expected_diagnostics,
    verify_diagnostics,
)

CORPUS = Path(__file__).parent / "diagnostics"


def small_kernel():
    builder = StencilKernelBuilder("k", (8, 8, 8))
    src = builder.input_field("src")
    out = builder.output_field("out")
    builder.add_stencil(out, src[0, 0, 1] + src[0, 0, -1])
    return builder.build()


class TestOpPath:
    def test_nested_access_path(self):
        module = small_kernel()
        access = next(iter(module.walk_type(stencil.AccessOp)))
        path = op_path(access)
        assert path.startswith("func @k / block 0 / op ")
        assert "stencil.apply / block 0 / op " in path
        assert path.endswith(": stencil.access")

    def test_symbol_label(self):
        from repro.dialects.func import FuncOp

        module = small_kernel()
        func = next(iter(module.walk_type(FuncOp)))
        assert op_path(func) == "func @k"

    def test_detached_op_renders_plain_label(self):
        module = small_kernel()
        assert op_path(module) == "builtin.module"


class TestDiagnosticEngine:
    def test_emit_attaches_op_path(self):
        module = small_kernel()
        access = next(iter(module.walk_type(stencil.AccessOp)))
        engine = DiagnosticEngine()
        diag = engine.error("bad access", op=access, rule="demo")
        assert diag.path == op_path(access)
        assert diag.render().endswith("error: bad access [demo]")

    def test_severity_counters_and_exit_queries(self):
        engine = DiagnosticEngine()
        engine.warning("w1")
        engine.remark("fyi")
        assert not engine.has_errors and engine.has_warnings
        engine.error("e1")
        assert engine.has_errors
        assert engine.count("warning") == 1
        assert [d.severity for d in engine.errors] == ["error"]

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            DiagnosticEngine().emit("fatal", "nope")

    def test_pass_scope_stamps_pass_name(self):
        engine = DiagnosticEngine()
        with engine.pass_scope("canonicalize"):
            inner = engine.warning("inside")
        outer = engine.warning("outside")
        assert inner.pass_name == "canonicalize"
        assert outer.pass_name == ""

    def test_check_raises_with_structured_payload(self):
        engine = DiagnosticEngine()
        engine.warning("only a warning")
        engine.check()  # warnings alone never raise
        engine.error("boom", path="func @k")
        with pytest.raises(DiagnosticError) as err:
            engine.check()
        assert err.value.diagnostics[0].message == "boom"
        assert "func @k: error: boom" in str(err.value)

    def test_notes_render_indented(self):
        diag = Diagnostic("error", "msg", path="p", notes=("why", "how"))
        assert diag.render_lines() == ["p: error: msg", "  note: why", "  note: how"]

    def test_as_dict_omits_empty_fields(self):
        diag = Diagnostic("warning", "msg")
        assert diag.as_dict() == {
            "severity": "warning",
            "message": "msg",
            "path": "",
        }


class TestAnalysisManager:
    def test_unknown_analysis(self):
        with pytest.raises(KeyError):
            AnalysisManager().get("nope", small_kernel())

    def test_repeat_get_is_a_cache_hit(self):
        manager = AnalysisManager()
        module = small_kernel()
        first = manager.get("def-use", module)
        second = manager.get("def-use", module)
        assert first is second
        assert manager.stats.hits == {"def-use": 1}
        assert manager.stats.misses == {"def-use": 1}

    def test_mutation_invalidates_the_fingerprint_key(self):
        manager = AnalysisManager()
        module = small_kernel()
        manager.get("verify", module)
        next(iter(module.walk_type(stencil.StoreOp))).erase()
        manager.get("verify", module)
        assert manager.stats.misses == {"verify": 2}
        assert manager.stats.total_hits == 0

    def test_lru_eviction_respects_max_entries(self):
        manager = AnalysisManager(max_entries=1)
        module = small_kernel()
        manager.get("def-use", module)
        manager.get("verify", module)  # evicts def-use
        manager.get("def-use", module)
        assert manager.stats.hits.get("def-use", 0) == 0
        assert manager.stats.misses["def-use"] == 2
        assert len(manager) == 1

    def test_def_use_reports_unused_results(self):
        module = small_kernel()
        next(iter(module.walk_type(stencil.StoreOp))).erase()
        analysis = AnalysisManager().get("def-use", module)
        assert any(
            isinstance(result.op, stencil.ApplyOp)
            for result in analysis.unused_results
        )

    def test_access_bounds_flags_explicit_oob_domain(self):
        builder = StencilKernelBuilder("oob", (8, 8, 8))
        src = builder.input_field("src")
        out = builder.output_field("out")
        builder.add_stencil(
            out, src[0, 0, 1], lower=(0, 0, 0), upper=(8, 8, 8)
        )
        analysis = AnalysisManager().get("access-bounds", builder.build())
        assert len(analysis.violations) == 1
        record = analysis.violations[0]
        assert record.out_of_bounds_axes == (2,)
        assert record.access_upper[2] == 9 and record.field_upper[2] == 8

    def test_stencil_deps_transitive_reachability(self):
        builder = StencilKernelBuilder("chain", (8, 8, 8))
        src = builder.input_field("src")
        a = builder.field("a")
        b = builder.output_field("b")
        builder.add_stencil(a, src[0, 0, 1] + src[0, 0, -1])
        builder.add_stencil(b, a[0, 0, 1] + a[0, 0, -1])
        deps = AnalysisManager().get("stencil-deps", builder.build())
        assert deps.reaches(0, 1)
        assert not deps.reaches(1, 0)
        assert len(deps.waves) == 2

    def test_stats_summary_lines(self):
        stats = AnalysisStats()
        stats.record_miss("verify")
        stats.record_hit("verify")
        assert stats.summary_lines() == ["analysis verify: 1 hits, 1 misses"]


class TestCrossPassCaching:
    def test_staged_pipeline_has_real_cross_pass_hits(self):
        """Acceptance criterion: the pass manager's before/after verification
        over the staged ablation pipeline produces cache *hits* on the real
        counters — each pass's input check reuses the previous pass's
        output check."""
        manager = PassRegistry.parse(STAGED_PIPELINE)
        module = build_pw_advection((16, 16, 8))
        manager.run(module)
        stats = manager.context.get(AnalysisManager).stats
        num_passes = len(manager.passes)
        assert stats.total_hits > 0
        # 2N logical checks (initial + each pass's input and output) ...
        assert stats.hits["verify"] + stats.misses["verify"] == 2 * num_passes
        # ... of which at least every input re-check after the first pass is
        # a hit on the previous pass's output check (no-change passes make
        # their own output check a hit too).
        assert stats.hits["verify"] >= num_passes - 1

    def test_compiler_surfaces_analysis_statistics(self):
        from repro.core.pipeline import StencilHMLSCompiler

        compiler = StencilHMLSCompiler()
        compiler.compile(build_pw_advection(PW_ADVECTION_SIZES["8M"].shape))
        stats = compiler.analysis_statistics
        assert stats is not None
        assert stats.total_hits > 0


FIXTURE_RULES = {
    "oob_access.py": "out-of-bounds-access",
    "dead_field.py": "dead-field",
    "small_data_blowup.py": "small-data-budget",
    "unconsumed_option.py": "unconsumed-option",
    "bundle_conflict.py": "bundle-conflict",
    "infeasible_depth.py": "infeasible-config",
}


class TestLintCorpus:
    def test_corpus_is_complete(self):
        assert {p.name for p in CORPUS.glob("*.py")} == set(FIXTURE_RULES)

    @pytest.mark.parametrize("fixture,rule", sorted(FIXTURE_RULES.items()))
    def test_fixture_fires_its_rule_with_a_location(self, fixture, rule):
        failures, engine = lint_corpus_file(str(CORPUS / fixture))
        assert failures == []
        fired = [d for d in engine.diagnostics if d.rule == rule]
        assert fired, f"{fixture} never fired {rule}"
        assert all(d.path for d in fired)

    def test_clean_kernels_lint_clean(self):
        code = lint_main(
            ["sweep", "--kernels", "pw_advection,tracer_advection",
             "--sizes", "8M", "--variants", "default,staged"]
        )
        assert code == 0


class TestVerifyDiagnosticsHarness:
    def test_regex_islands(self):
        pattern = compile_expectation("needs {{[0-9]+}} ports (max {{[0-9]+}})")
        assert pattern.search("kernel needs 34 ports (max 32)")
        assert not pattern.search("kernel needs many ports (max 32)")

    def test_expectation_requires_matching_severity(self):
        diag = Diagnostic("warning", "late option", path="pipeline 'x'")
        assert ExpectedDiagnostic("warning", "late option").matches(diag)
        assert not ExpectedDiagnostic("error", "late option").matches(diag)

    def test_parse_expected_comments(self):
        text = (
            "# expected-error: boom\n"
            "code = 1\n"
            "# expected-warning: careful {{[a-z]+}}\n"
        )
        expectations = parse_expected_diagnostics(text)
        assert [(e.severity, e.pattern) for e in expectations] == [
            ("error", "boom"),
            ("warning", "careful {{[a-z]+}}"),
        ]

    def test_unexpected_diagnostic_is_a_failure(self):
        failures = verify_diagnostics(
            [], [Diagnostic("error", "surprise", path="p")]
        )
        assert failures == ["unexpected diagnostic: p: error: surprise"]

    def test_unmatched_expectation_is_a_failure(self):
        failures = verify_diagnostics([ExpectedDiagnostic("error", "boom")], [])
        assert failures == ["expected-error never emitted: boom"]

    def test_matching_is_one_to_one(self):
        diag = Diagnostic("error", "boom", path="p")
        failures = verify_diagnostics(
            [ExpectedDiagnostic("error", "boom"), ExpectedDiagnostic("error", "boom")],
            [diag],
        )
        assert failures == ["expected-error never emitted: boom"]

    def test_remarks_are_free_unless_expected(self):
        assert verify_diagnostics([], [Diagnostic("remark", "fyi")]) == []


class TestLintCLI:
    def test_kernel_subcommand_clean(self, capsys):
        assert lint_main(["kernel", "pw_advection", "--size", "8M"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_error_exit_code_and_json_shape(self, capsys):
        code = lint_main(["corpus", str(CORPUS / "oob_access.py"), "--json"])
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 2
        (target,) = payload["targets"]
        assert target["errors"] >= 1
        diag = target["diagnostics"][0]
        assert diag["severity"] == "error"
        assert diag["rule"] == "out-of-bounds-access"
        assert "stencil.access" in diag["path"]

    def test_warning_exit_code(self):
        assert lint_main(["corpus", str(CORPUS / "unconsumed_option.py")]) == 1

    def test_verify_diagnostics_over_the_whole_corpus(self, capsys):
        files = sorted(str(p) for p in CORPUS.glob("*.py"))
        assert lint_main(["corpus", *files, "--verify-diagnostics"]) == 0
        assert "all diagnostics match" in capsys.readouterr().out

    def test_verify_diagnostics_fails_on_drift(self, tmp_path, capsys):
        fixture = tmp_path / "drift.py"
        fixture.write_text(
            (CORPUS / "oob_access.py").read_text().replace(
                "# expected-error:", "# expected-error: NOT EMITTED\n#"
            )
        )
        assert lint_main(["corpus", str(fixture), "--verify-diagnostics"]) == 2
        out = capsys.readouterr().out
        assert "never emitted" in out or "unexpected diagnostic" in out


class TestOrchestratorDryRunLint:
    def test_clean_plan_exits_zero(self, capsys):
        from repro.evaluation.orchestrator import lint_plan, plan_matrix

        plan = plan_matrix(
            kernels=["pw_advection"], sizes=["8M"], variants=["staged"],
            frameworks=["Stencil-HMLS"],
        )
        assert lint_plan(plan) == 0
        assert "none doomed" in capsys.readouterr().out

    def test_doomed_case_exits_two(self, monkeypatch, capsys):
        from repro.evaluation import harness as harness_module
        from repro.evaluation.orchestrator import lint_plan, plan_matrix

        monkeypatch.setitem(
            harness_module.PIPELINE_VARIANTS,
            "doomed",
            STAGED_PIPELINE.replace(
                "stencil-wave-pipelining", "stencil-wave-pipelining{depth=1000000}"
            ),
        )
        plan = plan_matrix(
            kernels=["pw_advection"], sizes=["8M"], variants=["doomed"],
            frameworks=["Stencil-HMLS"],
        )
        assert lint_plan(plan) == 2
        out = capsys.readouterr().out
        assert "doomed" in out and "infeasible-config" in out

    def test_dry_run_cli_reports_lint(self, tmp_path, capsys):
        from repro.evaluation.orchestrator import main as orchestrator_main

        code = orchestrator_main(
            ["--dry-run", "--quick", "--kernels", "pw_advection",
             "--variants", "staged", "--state-dir", str(tmp_path / "state")]
        )
        assert code == 0
        assert "lint:" in capsys.readouterr().out

    def test_no_lint_opt_out(self, tmp_path, capsys):
        from repro.evaluation.orchestrator import main as orchestrator_main

        code = orchestrator_main(
            ["--dry-run", "--no-lint", "--quick", "--kernels", "pw_advection",
             "--variants", "staged", "--state-dir", str(tmp_path / "state")]
        )
        assert code == 0
        assert "lint:" not in capsys.readouterr().out
