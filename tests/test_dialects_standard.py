"""Tests for the arith/math/func/scf/memref/llvm dialects."""

import math

import pytest

from repro.dialects import arith, llvm as llvm_d, math as math_d, memref as memref_d, scf
from repro.dialects.builtin import ModuleOp, UnrealizedConversionCastOp
from repro.dialects.func import CallOp, FuncOp, ReturnOp
from repro.ir.core import Block, Region, VerifyException
from repro.ir.types import (
    FunctionType,
    LLVMPointerType,
    LLVMStructType,
    MemRefType,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
)


def fconst(value: float):
    return arith.ConstantOp.from_float(value)


class TestArith:
    def test_constants(self):
        assert fconst(1.5).value == 1.5
        assert arith.ConstantOp.from_int(3, i32).value == 3
        assert arith.ConstantOp.from_index(4).result.type == index

    def test_binary_type_checking(self):
        a, b = fconst(1.0), arith.ConstantOp.from_int(1)
        op = arith.AddfOp(a.result, a.result)
        op.verify_()
        bad = arith.AddfOp(a.result, a.result)
        bad.replace_operand(1, b.result)
        with pytest.raises(VerifyException):
            bad.verify_()

    def test_float_op_requires_float(self):
        a = arith.ConstantOp.from_int(1)
        op = arith.MulfOp(a.result, a.result)
        with pytest.raises(VerifyException):
            op.verify_()

    def test_int_op_requires_int(self):
        a = fconst(1.0)
        op = arith.AddiOp(a.result, a.result)
        with pytest.raises(VerifyException):
            op.verify_()

    def test_py_func_semantics(self):
        assert arith.AddfOp.py_func(2.0, 3.0) == 5.0
        assert arith.SubfOp.py_func(2.0, 3.0) == -1.0
        assert arith.MulfOp.py_func(2.0, 3.0) == 6.0
        assert arith.DivfOp.py_func(3.0, 2.0) == 1.5
        assert arith.MaximumfOp.py_func(2.0, 3.0) == 3.0
        assert arith.RemsiOp.py_func(7, 3) == 1

    def test_cmpf_predicates(self):
        a, b = fconst(1.0), fconst(2.0)
        lt = arith.CmpfOp("olt", a.result, b.result)
        assert lt.result.type == i1
        assert lt.py_func(1.0, 2.0) is True
        with pytest.raises(VerifyException):
            arith.CmpfOp("bogus", a.result, b.result)

    def test_cmpi_predicates(self):
        a = arith.ConstantOp.from_int(1)
        op = arith.CmpiOp("sle", a.result, a.result)
        assert op.py_func(1, 1) is True
        with pytest.raises(VerifyException):
            arith.CmpiOp("??", a.result, a.result)

    def test_select_type_check(self):
        cond = arith.ConstantOp.from_int(1, i32)
        a, b = fconst(1.0), fconst(2.0)
        op = arith.SelectOp(cond.result, a.result, b.result)
        op.verify_()
        bad = arith.SelectOp(cond.result, a.result, arith.ConstantOp.from_int(1).result)
        with pytest.raises(VerifyException):
            bad.verify_()

    def test_casts_have_result_types(self):
        a = arith.ConstantOp.from_index(3)
        assert arith.IndexCastOp(a.result, i64).result.type == i64
        assert arith.SIToFPOp(a.result, f64).result.type == f64
        b = fconst(1.0)
        assert arith.FPToSIOp(b.result, i64).result.type == i64
        assert arith.TruncFOp(b.result, f32).result.type == f32


class TestMath:
    def test_unary_ops(self):
        a = fconst(4.0)
        for cls, expected in [
            (math_d.SqrtOp, 2.0),
            (math_d.AbsFOp, 4.0),
            (math_d.ExpOp, math.exp(4.0)),
            (math_d.LogOp, math.log(4.0)),
        ]:
            op = cls(a.result)
            assert op.result.type == f64
            assert cls.py_func(4.0) == pytest.approx(expected)

    def test_unary_requires_float(self):
        a = arith.ConstantOp.from_int(4)
        with pytest.raises(VerifyException):
            math_d.SqrtOp(a.result).verify_()

    def test_powf_and_fma(self):
        a, b, c = fconst(2.0), fconst(3.0), fconst(1.0)
        assert math_d.PowFOp(a.result, b.result).result.type == f64
        assert math_d.FmaOp(a.result, b.result, c.result).result.type == f64


class TestFunc:
    def test_declaration_vs_definition(self):
        decl = FuncOp.declaration("ext", [f64], [])
        assert decl.is_declaration
        defn = FuncOp.with_body("f", [f64], [])
        defn.entry_block.add_op(ReturnOp([]))
        assert not defn.is_declaration
        assert defn.sym_name == "f"
        assert len(defn.args) == 1

    def test_function_type_mismatch_detected(self):
        func = FuncOp.with_body("f", [f64], [])
        func.entry_block.add_op(ReturnOp([]))
        func.set_function_type(FunctionType([f64, f64], []))
        with pytest.raises(VerifyException):
            func.verify_()

    def test_call_records_callee(self):
        call = CallOp("load_data", [], [])
        assert call.callee == "load_data"


class TestSCF:
    def make_bounds(self):
        return (arith.ConstantOp.from_index(0), arith.ConstantOp.from_index(10),
                arith.ConstantOp.from_index(1))

    def test_for_structure(self):
        lo, hi, st = self.make_bounds()
        loop = scf.ForOp(lo.result, hi.result, st.result)
        assert loop.induction_variable.type == index
        loop.body.add_op(scf.YieldOp())
        loop.verify_()

    def test_for_with_iter_args(self):
        lo, hi, st = self.make_bounds()
        init = fconst(0.0)
        loop = scf.ForOp(lo.result, hi.result, st.result, [init.result])
        assert len(loop.results) == 1
        add = arith.AddfOp(loop.body_iter_args[0], loop.body_iter_args[0])
        loop.body.add_ops([add, scf.YieldOp([add.result])])
        loop.verify_()

    def test_for_yield_arity_checked(self):
        lo, hi, st = self.make_bounds()
        init = fconst(0.0)
        loop = scf.ForOp(lo.result, hi.result, st.result, [init.result])
        loop.body.add_op(scf.YieldOp())
        with pytest.raises(VerifyException):
            loop.verify_()

    def test_for_requires_index_bounds(self):
        bad = fconst(0.0)
        hi = arith.ConstantOp.from_index(4)
        loop = scf.ForOp(bad.result, hi.result, hi.result)
        loop.body.add_op(scf.YieldOp())
        with pytest.raises(VerifyException):
            loop.verify_()

    def test_if_blocks(self):
        cond = arith.ConstantOp.from_int(1, i32)
        branch = scf.IfOp(cond.result)
        assert not branch.has_else
        branch.else_block.add_op(fconst(0.0))
        assert branch.has_else

    def test_parallel_structure(self):
        lo, hi, st = self.make_bounds()
        par = scf.ParallelOp([lo.result], [hi.result], [st.result])
        assert par.rank == 1
        assert len(par.induction_variables) == 1
        par.body.add_op(scf.YieldOp())
        par.verify_()


class TestMemref:
    def test_alloc_load_store(self):
        t = MemRefType([4, 4], f64)
        alloc = memref_d.AllocOp(t)
        idx = arith.ConstantOp.from_index(1)
        load = memref_d.LoadOp(alloc.result, [idx.result, idx.result])
        assert load.result.type == f64
        store = memref_d.StoreOp(load.result, alloc.result, [idx.result, idx.result])
        store.verify_()

    def test_load_rank_check(self):
        t = MemRefType([4, 4], f64)
        alloc = memref_d.AllocOp(t)
        idx = arith.ConstantOp.from_index(0)
        bad = memref_d.LoadOp(alloc.result, [idx.result])
        with pytest.raises(VerifyException):
            bad.verify_()

    def test_load_requires_memref(self):
        a = fconst(1.0)
        with pytest.raises(VerifyException):
            memref_d.LoadOp(a.result, [])

    def test_dim_copy_cast(self):
        t = MemRefType([4], f64)
        alloc = memref_d.AllocOp(t)
        other = memref_d.AllocOp(t)
        dim = memref_d.DimOp(alloc.result, arith.ConstantOp.from_index(0).result)
        assert dim.result.type == index
        copy = memref_d.CopyOp(alloc.result, other.result)
        assert copy.source is alloc.result
        cast = memref_d.CastOp(alloc.result, MemRefType([-1], f64))
        assert not cast.result.type.has_static_shape

    def test_global_ops(self):
        g = memref_d.GlobalOp("weights", MemRefType([8], f64))
        assert g.sym_name == "weights"
        get = memref_d.GetGlobalOp("weights", MemRefType([8], f64))
        assert get.result.type.shape == (8,)


class TestLLVM:
    def test_stream_legality_helpers(self):
        struct = LLVMStructType([f64])
        ptr = LLVMPointerType(struct)
        assert llvm_d.is_legal_stream_type(ptr)
        assert llvm_d.stream_element_type(ptr) == f64
        assert not llvm_d.is_legal_stream_type(LLVMPointerType(f64))
        with pytest.raises(VerifyException):
            llvm_d.stream_element_type(LLVMPointerType(f64))

    def test_alloca_gep(self):
        one = llvm_d.ConstantOp(1, i32)
        alloca = llvm_d.AllocaOp(one.result, LLVMStructType([f64]))
        gep = llvm_d.GEPOp(alloca.result, [0, 0], f64)
        assert gep.indices == (0, 0)
        gep.verify_()
        bad = llvm_d.GEPOp(alloca.result, [0], f64)
        bad.replace_operand(0, one.result)
        with pytest.raises(VerifyException):
            bad.verify_()

    def test_extract_insert_value(self):
        undef = llvm_d.UndefOp(LLVMStructType([f64, f64]))
        val = fconst(3.0)
        ins = llvm_d.InsertValueOp(undef.result, val.result, [1])
        assert ins.position == (1,)
        ext = llvm_d.ExtractValueOp(ins.result, [1], f64)
        assert ext.position == (1,)

    def test_call_and_func(self):
        decl = llvm_d.LLVMFuncOp("llvm.fpga.set.stream.depth", [LLVMPointerType(f64), i32])
        assert decl.sym_name == "llvm.fpga.set.stream.depth"
        call = llvm_d.CallOp("llvm.fpga.set.stream.depth", [])
        assert call.callee == "llvm.fpga.set.stream.depth"


class TestBuiltin:
    def test_unrealized_cast(self):
        a = fconst(1.0)
        cast = UnrealizedConversionCastOp(a.result, i64)
        assert cast.input is a.result
        assert cast.result.type == i64

    def test_module_add_op(self):
        module = ModuleOp([FuncOp.declaration("x", [], [])])
        assert module.get_symbol("x") is not None
