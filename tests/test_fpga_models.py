"""Tests for the FPGA substrate: device, AXI, HBM, resources, power, synthesis."""

import pytest

from repro.core.config import CompilerOptions
from repro.core.plan import InterfaceSpec
from repro.fpga import axi
from repro.fpga.device import ALVEO_U280, VCK5000, device_by_name
from repro.fpga.hbm import HBMAllocationError, HBMAllocator, streaming_time_seconds
from repro.fpga.power_model import PowerModel
from repro.fpga.resource_model import ResourceUsage, estimate_loop_kernel, estimate_stencil_hmls
from repro.fpga.synthesis import SynthesisError, VitisHLSBackend
from repro.ir.passes import PassManager
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.tracer_advection import build_tracer_advection
from repro.transforms.stencil_to_hls import StencilToHLSPass


def plan_for(module_builder, shape, options=None):
    module = module_builder(shape)
    pass_ = StencilToHLSPass(options or CompilerOptions())
    PassManager([pass_]).run(module)
    return next(iter(pass_.plans.values()))


def m_axi(count):
    return [InterfaceSpec(f"a{i}", f"gmem{i}", "m_axi", "in") for i in range(count)]


class TestDevice:
    def test_u280_budget(self):
        assert ALVEO_U280.max_axi_ports == 32
        assert ALVEO_U280.hbm.banks == 32
        assert ALVEO_U280.hbm.capacity_bytes == 8 * 1024**3
        assert ALVEO_U280.resources.dsps == 9024

    def test_usable_excludes_shell(self):
        assert ALVEO_U280.usable.luts < ALVEO_U280.resources.luts

    def test_max_compute_units(self):
        assert ALVEO_U280.max_compute_units(7) == 4          # the paper's PW advection case
        assert ALVEO_U280.max_compute_units(17) == 1         # the tracer advection case
        assert VCK5000.max_compute_units(17) == 64           # no port limit (future work)

    def test_lookup_by_name(self):
        assert device_by_name("alveo u280") is ALVEO_U280
        with pytest.raises(KeyError):
            device_by_name("versal?")


class TestAXI:
    def test_ports_count_distinct_bundles(self):
        interfaces = m_axi(5) + [InterfaceSpec("s", "control", "s_axilite", "in")]
        assert axi.ports_for_interfaces(interfaces) == 5

    def test_allocation_respects_budget(self):
        interfaces = m_axi(7)
        allocation = axi.allocate_ports(interfaces, ALVEO_U280, 4)
        assert allocation.total_ports == 28
        with pytest.raises(axi.PortAllocationError):
            axi.allocate_ports(interfaces, ALVEO_U280, 5)

    def test_max_compute_units_capped(self):
        interfaces = m_axi(7)
        assert axi.max_compute_units(interfaces, ALVEO_U280) == 4
        assert axi.max_compute_units(interfaces, ALVEO_U280, requested_max=2) == 2
        assert axi.max_compute_units(m_axi(40), ALVEO_U280) == 1

    def test_contention_factor(self):
        interfaces = m_axi(6)
        assert axi.contention_factor(interfaces, separate_bundles=True) == 1.0
        assert axi.contention_factor(interfaces, separate_bundles=False) == 6.0
        assert axi.contention_factor([], True) == 1.0


class TestHBM:
    def test_multi_bank_allocation(self):
        allocator = HBMAllocator(ALVEO_U280, multi_bank=True)
        assignment = allocator.allocate({"u": 10 * 2**20, "v": 10 * 2**20})
        assert assignment.banks_used == 2

    def test_capacity_exceeded(self):
        allocator = HBMAllocator(ALVEO_U280, multi_bank=True)
        with pytest.raises(HBMAllocationError):
            allocator.allocate({"u": 9 * 1024**3})

    def test_single_bank_per_buffer_limit(self):
        allocator = HBMAllocator(ALVEO_U280, multi_bank=False)
        bank = ALVEO_U280.hbm.capacity_bytes // 32
        allocator.allocate({"u": bank})                     # exactly one bank: fine
        with pytest.raises(HBMAllocationError):
            allocator.allocate({"u": bank + 8})             # one byte over: rejected

    def test_effective_bandwidth_and_streaming_time(self):
        allocator = HBMAllocator(ALVEO_U280)
        assert allocator.effective_bandwidth_gbs(2) == pytest.approx(2 * 14.375)
        assert allocator.effective_bandwidth_gbs(999) == pytest.approx(32 * 14.375)
        assert streaming_time_seconds(1_000_000_000, 4, ALVEO_U280) > 0


class TestResourceModel:
    def test_utilisation_and_fits(self):
        usage = ResourceUsage(luts=130368, flip_flops=260736, bram_36k=202, dsps=90)
        util = usage.utilisation(ALVEO_U280)
        assert util["LUTs"] == pytest.approx(10.0)
        assert util["FFs"] == pytest.approx(10.0)
        assert usage.fits(ALVEO_U280)
        assert not ResourceUsage(luts=2 * ALVEO_U280.resources.luts).fits(ALVEO_U280)

    def test_scaled_and_add(self):
        usage = ResourceUsage(luts=10, bram_36k=2)
        assert usage.scaled(4).luts == 40
        assert (usage + usage).bram_36k == 4

    def test_stencil_hmls_estimate_scales_with_cus(self, small_shape):
        plan = plan_for(build_pw_advection, small_shape)
        one = estimate_stencil_hmls(plan, 1)
        four = estimate_stencil_hmls(plan, 4)
        assert four.luts == 4 * one.luts
        assert one.bram_36k > 0 and one.dsps > 0

    def test_loop_kernel_estimate_is_small(self, small_shape):
        plan = plan_for(build_pw_advection, small_shape)
        dataflow = estimate_stencil_hmls(plan, 1)
        loops = estimate_loop_kernel(num_stages=3, flops_per_point=60, num_ports=7)
        assert loops.bram_36k < dataflow.bram_36k
        assert loops.luts < dataflow.luts


class TestPowerModel:
    def test_energy_is_power_times_runtime(self):
        model = PowerModel(ALVEO_U280)
        usage = ResourceUsage(luts=100_000, flip_flops=150_000, bram_36k=300, dsps=500)
        report = model.estimate(usage, activity=1.0, sustained_bandwidth_gbs=50.0, runtime_s=2.0)
        assert report.energy_j == pytest.approx(report.average_power_w * 2.0)
        assert report.average_power_w > ALVEO_U280.static_power_w

    def test_activity_scales_dynamic_power(self):
        model = PowerModel(ALVEO_U280)
        usage = ResourceUsage(luts=100_000, flip_flops=150_000, bram_36k=300, dsps=500)
        busy = model.estimate(usage, activity=1.0, sustained_bandwidth_gbs=0.0, runtime_s=1.0)
        idle = model.estimate(usage, activity=0.1, sustained_bandwidth_gbs=0.0, runtime_s=1.0)
        assert busy.dynamic_power_w > idle.dynamic_power_w
        assert idle.dynamic_power_w > 0.0

    def test_bandwidth_adds_hbm_power(self):
        model = PowerModel(ALVEO_U280)
        usage = ResourceUsage(luts=10_000)
        with_bw = model.estimate(usage, activity=1.0, sustained_bandwidth_gbs=100.0, runtime_s=1.0)
        without = model.estimate(usage, activity=1.0, sustained_bandwidth_gbs=0.0, runtime_s=1.0)
        assert with_bw.hbm_power_w > without.hbm_power_w


class TestSynthesis:
    def test_pw_design_matches_paper_configuration(self, pw_xclbin):
        design = pw_xclbin.design
        assert design.compute_units == 4
        assert design.ports_per_cu == 7
        assert design.total_ports == 28 <= ALVEO_U280.max_axi_ports
        assert design.achieved_ii == 1
        assert design.resources.fits(ALVEO_U280)
        assert design.framework == "Stencil-HMLS"

    def test_tracer_design_single_cu(self, tracer_xclbin):
        design = tracer_xclbin.design
        assert design.compute_units == 1
        assert design.ports_per_cu == 17
        assert design.achieved_ii == 1
        assert len(design.stage_groups) == 12          # one group per dependency wave

    def test_no_replication_option(self, small_shape):
        plan = plan_for(build_pw_advection, small_shape,
                        CompilerOptions(replicate_compute_units=False))
        design = VitisHLSBackend().synthesise(plan)
        assert design.compute_units == 1

    def test_max_compute_units_option(self, small_shape):
        plan = plan_for(build_pw_advection, small_shape, CompilerOptions(max_compute_units=2))
        design = VitisHLSBackend(ALVEO_U280).synthesise(plan)
        assert design.compute_units == 2

    def test_higher_opt_level_degrades_ii(self, small_shape):
        options = CompilerOptions(vitis_opt_level=2)
        plan = plan_for(build_pw_advection, small_shape, options)
        design = VitisHLSBackend().synthesise(plan, options=options)
        assert design.achieved_ii > 1

    def test_vck5000_profile_allows_more_cus_for_pw(self, small_shape):
        plan = plan_for(build_pw_advection, small_shape)
        u280 = VitisHLSBackend(ALVEO_U280).synthesise(plan)
        vck = VitisHLSBackend(VCK5000).synthesise(plan)
        assert vck.compute_units >= u280.compute_units

    def test_utilisation_dict_keys(self, pw_xclbin):
        util = pw_xclbin.design.utilisation()
        assert set(util) == {"LUTs", "FFs", "BRAM", "DSPs"}
        assert all(0 <= value < 100 for value in util.values())
