"""End-to-end tests: the full compilation flow, ablation options and the CLI."""

import numpy as np
import pytest

from repro.cli import main_bench, main_compile
from repro.core.config import CompilerOptions
from repro.core.pipeline import StencilHMLSCompiler
from repro.fpga.dataflow_sim import TimingModel
from repro.fpga.device import VCK5000
from repro.fpga.host import FPGAHost
from repro.frontends.builder import StencilKernelBuilder
from repro.frontends.devito import DevitoFunction, DevitoGrid, DevitoOperator, Eq
from repro.kernels.grids import initial_fields
from repro.kernels.pw_advection import (
    PW_INPUT_FIELDS,
    PW_OUTPUT_FIELDS,
    PW_SCALARS,
    build_pw_advection,
    pw_advection_small_data,
)
from repro.kernels.reference import pw_advection_reference


class TestCompilerDriver:
    def test_artifacts_exposed(self, pw_module):
        compiler = StencilHMLSCompiler()
        artifacts = compiler.compile_with_artifacts(pw_module)
        assert artifacts.plan.kernel_name == "pw_advection_hls"
        assert artifacts.fpp_report.total_directives > 0
        assert artifacts.design.compute_units == 4
        # The original stencil module is left untouched.
        assert pw_module.get_symbol("pw_advection") is not None

    def test_options_validation(self):
        with pytest.raises(ValueError):
            CompilerOptions(interface_width_bits=100).validate()
        with pytest.raises(ValueError):
            CompilerOptions(target_ii=0).validate()
        with pytest.raises(ValueError):
            StencilHMLSCompiler(CompilerOptions(stream_depth=0))

    def test_empty_module_rejected(self):
        from repro.dialects.builtin import ModuleOp

        with pytest.raises(ValueError):
            StencilHMLSCompiler().compile(ModuleOp())

    def test_kernel_name_selection(self, pw_module):
        compiler = StencilHMLSCompiler()
        xclbin = compiler.compile(pw_module, kernel_name="pw_advection")
        assert xclbin.kernel_name == "pw_advection_hls"
        with pytest.raises(KeyError):
            compiler.compile(pw_module, kernel_name="not_there")


class TestCustomKernelEndToEnd:
    def test_builder_kernel_through_full_flow(self, small_shape):
        builder = StencilKernelBuilder("diffuse", small_shape)
        u = builder.input_field("u")
        out = builder.output_field("out")
        nu = builder.scalar("nu")
        builder.add_stencil(
            out,
            u[0, 0, 0]
            + nu * (u[1, 0, 0] + u[-1, 0, 0] + u[0, 1, 0] + u[0, -1, 0]
                    + u[0, 0, 1] + u[0, 0, -1] - 6.0 * u[0, 0, 0]),
        )
        module = builder.build()
        xclbin = StencilHMLSCompiler().compile(module)
        host = FPGAHost()
        host.program(xclbin)
        rng = np.random.default_rng(7)
        arrays = {"u": rng.standard_normal(small_shape), "out": np.zeros(small_shape)}
        result = host.run(arrays, {"nu": 0.1}, functional=True)
        u_arr = arrays["u"]
        interior = (slice(1, -1),) * 3
        lap = (
            u_arr[2:, 1:-1, 1:-1] + u_arr[:-2, 1:-1, 1:-1]
            + u_arr[1:-1, 2:, 1:-1] + u_arr[1:-1, :-2, 1:-1]
            + u_arr[1:-1, 1:-1, 2:] + u_arr[1:-1, 1:-1, :-2]
            - 6.0 * u_arr[1:-1, 1:-1, 1:-1]
        )
        expected = u_arr[interior] + 0.1 * lap
        assert np.allclose(result.outputs["out"][interior], expected)

    def test_devito_kernel_through_full_flow(self, small_shape):
        grid = DevitoGrid(small_shape)
        u = DevitoFunction("u", grid)
        w = DevitoFunction("w", grid)
        module = DevitoOperator([Eq(w, 0.5 * (u[1, 0, 0] + u[-1, 0, 0]))], name="avg").build_module()
        xclbin = StencilHMLSCompiler().compile(module)
        assert xclbin.design.achieved_ii == 1
        assert xclbin.plan.num_compute_stages == 1


class TestAblations:
    """The design-choice ablations listed in DESIGN.md (A1-A4)."""

    def _timing(self, options, shape=(2048, 64, 64)):
        module = build_pw_advection(shape)
        xclbin = StencilHMLSCompiler(options).compile(module)
        return xclbin, TimingModel().estimate(xclbin.design)

    def test_a1_split_improves_concurrency(self):
        split, t_split = self._timing(CompilerOptions(split_compute_per_field=True))
        fused, t_fused = self._timing(CompilerOptions(split_compute_per_field=False))
        # The split variant fans the window streams out to one pipeline per
        # output field; the fused variant time-multiplexes one pipeline.
        assert len(split.plan.streams) > len(fused.plan.streams)
        assert split.design.achieved_ii < fused.design.achieved_ii
        assert t_split.mpts > t_fused.mpts

    def test_a2_packing_reduces_memory_pressure(self):
        packed, t_packed = self._timing(CompilerOptions(pack_interfaces=True))
        scalar, t_scalar = self._timing(CompilerOptions(pack_interfaces=False))
        assert t_packed.mpts >= t_scalar.mpts
        lanes_packed = max(i.packed_lanes for i in packed.plan.interfaces)
        lanes_scalar = max(i.packed_lanes for i in scalar.plan.interfaces)
        assert lanes_packed == 8 and lanes_scalar == 1

    def test_a3_separate_bundles_beat_shared_port(self):
        separate, t_separate = self._timing(CompilerOptions(separate_bundles=True))
        shared, t_shared = self._timing(CompilerOptions(separate_bundles=False))
        assert separate.design.ports_per_cu > shared.design.ports_per_cu
        assert t_separate.mpts > t_shared.mpts

    def test_a4_cu_replication_under_port_budget(self):
        replicated, t_rep = self._timing(CompilerOptions(replicate_compute_units=True))
        single, t_single = self._timing(CompilerOptions(replicate_compute_units=False))
        assert replicated.design.compute_units == 4
        assert single.design.compute_units == 1
        assert t_rep.mpts > t_single.mpts

    def test_a4_vck5000_removes_port_limit(self):
        module = build_pw_advection((2048, 64, 64))
        u280 = StencilHMLSCompiler().compile(module)
        vck = StencilHMLSCompiler(device=VCK5000).compile(module)
        assert vck.design.compute_units >= u280.design.compute_units


class TestCLI:
    def test_compile_command(self, capsys):
        exit_code = main_compile(["pw_advection", "--size", "8M"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "compiled pw_advection" in out
        assert "compute_units" in out

    def test_compile_with_metadata_and_print(self, tmp_path, capsys):
        meta = tmp_path / "meta.json"
        exit_code = main_compile(["pw_advection", "--size", "8M", "--no-split", "--metadata", str(meta)])
        assert exit_code == 0
        assert meta.exists()

    def test_compile_rejects_unknown_size(self):
        with pytest.raises(SystemExit):
            main_compile(["pw_advection", "--size", "1G"])

    def test_bench_quick_figure(self, capsys):
        exit_code = main_bench(["--quick", "--figure", "4", "--repeats", "1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 4a" in out
        assert "Stencil-HMLS" in out
