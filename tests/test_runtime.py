"""Tests for the dataflow runtime: streams, window ordering, data movers."""

import numpy as np
import pytest

from repro.core.config import CompilerOptions
from repro.ir.passes import PassManager
from repro.kernels.pw_advection import build_pw_advection
from repro.runtime.data_movers import (
    duplicate_stream,
    load_data,
    make_externals,
    shift_buffer,
    write_data,
)
from repro.runtime.streams import FIFOStream, StreamClosedError
from repro.runtime.window import window_index, window_offsets, window_size, window_strides
from repro.transforms.stencil_to_hls import StencilToHLSPass


class TestFIFOStream:
    def test_fifo_order(self):
        stream = FIFOStream("s", depth=4)
        for value in range(5):
            stream.write(value)
        assert [stream.read() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_empty_and_full(self):
        stream = FIFOStream("s", depth=2)
        assert stream.empty() and not stream.full()
        stream.write(1)
        stream.write(2)
        assert stream.full()
        stream.read()
        assert not stream.full()

    def test_read_empty_raises(self):
        with pytest.raises(StreamClosedError):
            FIFOStream("s").read()

    def test_statistics(self):
        stream = FIFOStream("s")
        stream.extend([1, 2, 3])
        stream.read()
        assert stream.total_pushed == 3
        assert stream.total_popped == 1
        assert stream.high_water_mark == 3
        assert len(stream) == 2

    def test_drain(self):
        stream = FIFOStream("s")
        stream.extend([1, 2])
        assert stream.drain() == [1, 2]
        assert stream.empty()


class TestWindowOrdering:
    def test_window_size(self):
        assert window_size(1, 1) == 3
        assert window_size(2, 1) == 9
        assert window_size(3, 1) == 27       # the paper's 1/9/27 values
        assert window_size(3, 2) == 125

    def test_offsets_cover_window_exactly_once(self):
        offsets = window_offsets(3, 1)
        assert len(offsets) == 27
        assert len(set(offsets)) == 27
        assert (0, 0, 0) in offsets
        assert (-1, -1, -1) in offsets and (1, 1, 1) in offsets

    def test_index_matches_offset_order(self):
        offsets = window_offsets(3, 1)
        for lane, offset in enumerate(offsets):
            assert window_index(offset, 1) == lane

    def test_strides(self):
        assert window_strides(3, 1) == (9, 3, 1)
        assert window_strides(2, 2) == (5, 1)

    def test_out_of_window_offset_rejected(self):
        with pytest.raises(ValueError):
            window_index((2, 0, 0), 1)


class TestDataMovers:
    def test_load_data_packs_lanes(self):
        array = np.arange(20.0).reshape(4, 5)
        stream = FIFOStream("in")
        load_data([array], [stream], lanes=8)
        packs = stream.drain()
        assert len(packs) == 3                 # ceil(20 / 8)
        assert np.array_equal(packs[0], np.arange(8.0))
        assert len(packs[-1]) == 4

    def test_shift_buffer_windows_match_direct_gather(self):
        shape = (4, 4, 4)
        rng = np.random.default_rng(0)
        field = rng.standard_normal(shape)
        in_stream, out_stream = FIFOStream("in"), FIFOStream("out")
        load_data([field], [in_stream], lanes=8)
        shift_buffer(
            in_stream, out_stream,
            grid_shape=shape, field_lower=(0, 0, 0),
            domain_lower=(1, 1, 1), domain_upper=(3, 3, 3), radius=1,
        )
        offsets = window_offsets(3, 1)
        expected_points = [(i, j, k) for i in range(1, 3) for j in range(1, 3) for k in range(1, 3)]
        windows = out_stream.drain()
        assert len(windows) == len(expected_points)
        for point, window in zip(expected_points, windows):
            for lane, offset in enumerate(offsets):
                idx = tuple(p + o for p, o in zip(point, offset))
                assert window[lane] == field[idx]

    def test_duplicate_stream(self):
        source = FIFOStream("src")
        source.extend([np.array([1.0]), np.array([2.0])])
        copies = [FIFOStream("a"), FIFOStream("b")]
        duplicate_stream(source, copies)
        assert source.empty()
        for copy in copies:
            assert [float(v[0]) for v in copy.drain()] == [1.0, 2.0]

    def test_write_data_places_domain_values(self):
        stream = FIFOStream("res")
        values = list(range(8))
        stream.extend([float(v) for v in values])
        out = np.zeros((4, 4, 4))
        write_data(
            [stream], [out],
            [{"lower": (1, 1, 1), "upper": (3, 3, 3), "field_lower": (0, 0, 0)}],
            lanes=8,
        )
        assert out[1, 1, 1] == 0.0 and out[2, 2, 2] == 7.0
        assert out[0, 0, 0] == 0.0                      # halo untouched
        assert np.count_nonzero(out) == 7               # value 0.0 at (1,1,1)


class TestExternalsFactory:
    def test_externals_cover_every_runtime_callee(self, small_shape):
        module = build_pw_advection(small_shape)
        pass_ = StencilToHLSPass(CompilerOptions())
        PassManager([pass_]).run(module)
        plan = pass_.plans["pw_advection_hls"]
        externals = make_externals(plan)
        expected = {plan.waves[0].load.callee, plan.waves[0].write.callee}
        expected.update(s.callee for s in plan.waves[0].shifts)
        expected.update(d.callee for d in plan.waves[0].duplicates)
        assert expected == set(externals)
        assert all(callable(fn) for fn in externals.values())
