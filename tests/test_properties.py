"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dialects import arith
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.frontends.builder import StencilKernelBuilder
from repro.frontends.expr import BinOp, Constant, Expr, FieldAccess, ScalarRef, UnaryOp
from repro.interp import Interpreter, interpret_stencil_module
from repro.ir.attributes import FloatAttr, IntAttr, UnitAttr
from repro.ir.hashing import canonical_module_text, module_hash
from repro.ir.parser import parse_module
from repro.ir.passes import PassManager
from repro.ir.printer import print_module
from repro.ir.types import f64
from repro.kernels.reference import evaluate_expression
from repro.runtime.streams import FIFOStream
from repro.runtime.window import window_index, window_offsets, window_size
from repro.transforms.canonicalize import CanonicalizePass
from repro.transforms.stencil_to_scf import StencilToSCFPass

# ---------------------------------------------------------------------------
# Window ordering invariants
# ---------------------------------------------------------------------------


@given(rank=st.integers(1, 3), radius=st.integers(1, 3))
def test_window_offsets_are_a_bijection_onto_lane_indices(rank, radius):
    offsets = window_offsets(rank, radius)
    assert len(offsets) == window_size(rank, radius)
    lanes = [window_index(offset, radius) for offset in offsets]
    assert lanes == list(range(len(offsets)))


@given(
    radius=st.integers(1, 3),
    offset=st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-3, 3)),
)
def test_window_index_in_range_or_rejected(radius, offset):
    if all(abs(component) <= radius for component in offset):
        lane = window_index(offset, radius)
        assert 0 <= lane < window_size(3, radius)
    else:
        with pytest.raises(ValueError):
            window_index(offset, radius)


# ---------------------------------------------------------------------------
# FIFO stream invariants
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=200))
def test_fifo_preserves_order_and_counts(values):
    stream = FIFOStream("s", depth=8)
    for value in values:
        stream.write(value)
    popped = [stream.read() for _ in range(len(values))]
    assert popped == values
    assert stream.total_pushed == len(values)
    assert stream.total_popped == len(values)
    assert stream.empty()


@given(st.lists(st.integers(), min_size=1, max_size=50), st.integers(1, 10))
def test_fifo_high_water_mark_bounds_queue_length(values, batch):
    stream = FIFOStream("s")
    for start in range(0, len(values), batch):
        for value in values[start : start + batch]:
            stream.write(value)
        while not stream.empty():
            stream.read()
    assert stream.high_water_mark <= batch + stream.high_water_mark * 0 + len(values)
    assert stream.empty()


# ---------------------------------------------------------------------------
# Random stencil expressions: numpy reference == IR interpreter == CPU lowering
# ---------------------------------------------------------------------------


def expression_strategy(max_depth=3):
    offsets = st.tuples(st.integers(-1, 1), st.integers(-1, 1), st.integers(-1, 1))
    leaf = st.one_of(
        st.builds(FieldAccess, st.just("u"), offsets),
        st.builds(FieldAccess, st.just("v"), offsets),
        st.builds(Constant, st.floats(-2.0, 2.0).map(lambda x: round(x, 3))),
        st.just(ScalarRef("alpha")),
    )

    def extend(children):
        return st.one_of(
            st.builds(BinOp, st.sampled_from(["+", "-", "*", "max", "min"]), children, children),
            st.builds(UnaryOp, st.sampled_from(["neg", "abs"]), children),
        )

    return st.recursive(leaf, extend, max_leaves=8)


@settings(max_examples=25, deadline=None)
@given(expr=expression_strategy())
def test_random_expressions_agree_between_reference_and_interpreter(expr):
    shape = (5, 4, 4)
    builder = StencilKernelBuilder("rand_kernel", shape)
    u = builder.input_field("u")
    v = builder.input_field("v")
    out = builder.output_field("out")
    alpha = builder.scalar("alpha")
    builder.add_stencil(out, expr + 0.0 * (u[0, 0, 0] + v[0, 0, 0] + alpha))
    module = builder.build()

    rng = np.random.default_rng(0)
    arrays = {
        "u": rng.standard_normal(shape),
        "v": rng.standard_normal(shape),
        "out": np.zeros(shape),
    }
    scalars = {"alpha": 0.75}

    lower, upper = builder.default_domain()
    expected_interior = evaluate_expression(expr, arrays, scalars, {}, lower, upper)

    data = {k: v.copy() for k, v in arrays.items()}
    data.update(scalars)
    interpret_stencil_module(module, "rand_kernel", data)
    interior = tuple(slice(l, u) for l, u in zip(lower, upper))
    assert np.allclose(data["out"][interior], expected_interior, atol=1e-12)


@settings(max_examples=10, deadline=None)
@given(expr=expression_strategy())
def test_cpu_lowering_agrees_with_stencil_interpreter(expr):
    shape = (5, 4, 4)

    def build():
        builder = StencilKernelBuilder("rand_kernel", shape)
        u = builder.input_field("u")
        v = builder.input_field("v")
        out = builder.output_field("out")
        alpha = builder.scalar("alpha")
        builder.add_stencil(out, expr + 0.0 * (u[0, 0, 0] + v[0, 0, 0] + alpha))
        return builder.build()

    rng = np.random.default_rng(1)
    arrays = {
        "u": rng.standard_normal(shape),
        "v": rng.standard_normal(shape),
    }

    stencil_module = build()
    data_a = {"u": arrays["u"].copy(), "v": arrays["v"].copy(), "out": np.zeros(shape), "alpha": 0.5}
    interpret_stencil_module(stencil_module, "rand_kernel", data_a)

    lowered = build()
    PassManager([StencilToSCFPass()]).run(lowered)
    func = lowered.get_symbol("rand_kernel")
    data_b = {"u": arrays["u"].copy(), "v": arrays["v"].copy(), "out": np.zeros(shape), "alpha": 0.5}
    ordered = [data_b[arg.name_hint] for arg in func.entry_block.args]
    Interpreter(lowered).run("rand_kernel", *ordered)
    assert np.allclose(data_a["out"], data_b["out"], atol=1e-12)


# ---------------------------------------------------------------------------
# Canonicalisation preserves semantics of scalar programs
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(-10, 10).map(lambda x: round(x, 3)), min_size=2, max_size=6),
    x=st.floats(-10, 10).map(lambda x: round(x, 3)),
)
def test_canonicalisation_preserves_scalar_semantics(values, x):
    def build():
        module = ModuleOp()
        func = FuncOp.with_body("f", [f64], [f64])
        module.add_op(func)
        current = func.args[0]
        ops = []
        for index, value in enumerate(values):
            const = arith.ConstantOp.from_float(value)
            op_class = [arith.AddfOp, arith.MulfOp, arith.SubfOp][index % 3]
            combined = op_class(current, const.result)
            ops.extend([const, combined])
            current = combined.result
        func.entry_block.add_ops(ops + [ReturnOp([current])])
        return module

    plain = build()
    canonical = build()
    PassManager([CanonicalizePass()]).run(canonical)
    before = Interpreter(plain).run("f", x)[0]
    after = Interpreter(canonical).run("f", x)[0]
    assert after == pytest.approx(before, rel=1e-12, abs=1e-12)


# ---------------------------------------------------------------------------
# Module content hashing (compile-cache keys)
# ---------------------------------------------------------------------------


def _random_stencil_module(expr) -> ModuleOp:
    shape = (5, 4, 4)
    builder = StencilKernelBuilder("rand_kernel", shape)
    u = builder.input_field("u")
    v = builder.input_field("v")
    out = builder.output_field("out")
    alpha = builder.scalar("alpha")
    builder.add_stencil(out, expr + 0.0 * (u[0, 0, 0] + v[0, 0, 0] + alpha))
    return builder.build()


@settings(max_examples=25, deadline=None)
@given(expr=expression_strategy())
def test_module_hash_is_stable_across_print_parse_roundtrip(expr):
    module = _random_stencil_module(expr)
    reparsed = parse_module(print_module(module))
    assert module_hash(reparsed) == module_hash(module)
    assert canonical_module_text(reparsed) == canonical_module_text(module)


@settings(max_examples=25, deadline=None)
@given(expr=expression_strategy())
def test_module_hash_ignores_ssa_name_hints(expr):
    module = _random_stencil_module(expr)
    baseline = module_hash(module)
    for op in module.walk():
        for result in op.results:
            result.name_hint = None
    assert module_hash(module) == baseline


@settings(max_examples=40, deadline=None)
@given(expr=expression_strategy(), data=st.data())
def test_module_hash_changes_under_any_mutation(expr, data):
    module = _random_stencil_module(expr)
    baseline = module_hash(module)
    ops = [op for op in module.walk() if op is not module]
    op = ops[data.draw(st.integers(0, len(ops) - 1), label="op index")]
    mutation = data.draw(
        st.sampled_from(["add_attr", "tweak_attr", "drop_attr"]), label="mutation"
    )
    if mutation == "tweak_attr" or mutation == "drop_attr":
        mutable = [
            name
            for name, attr in op.attributes.items()
            if mutation == "drop_attr" or isinstance(attr, (IntAttr, FloatAttr))
        ]
        if not mutable:
            mutation = "add_attr"
        else:
            name = mutable[data.draw(st.integers(0, len(mutable) - 1), label="attr")]
            if mutation == "drop_attr":
                del op.attributes[name]
            else:
                attr = op.attributes[name]
                if isinstance(attr, IntAttr):
                    op.attributes[name] = IntAttr(attr.value + 1, attr.type)
                else:
                    op.attributes[name] = FloatAttr(attr.value + 1.0, attr.type)
    if mutation == "add_attr":
        op.attributes["__mutation_probe"] = UnitAttr()
    assert module_hash(module) != baseline


@settings(max_examples=40, deadline=None)
@given(expr=expression_strategy(), data=st.data())
def test_incremental_rehash_equals_cold_hash(expr, data):
    """The cached-fingerprint fast path must agree with a cold recompute.

    Hash once (filling every cache), mutate a random op, and compare the
    incremental re-hash against hashing a fresh clone (whose caches start
    empty) — the incremental path may only ever be *faster*, never
    different.
    """
    module = _random_stencil_module(expr)
    module_hash(module)  # populate fingerprint caches bottom-up
    ops = [op for op in module.walk() if op is not module]
    op = ops[data.draw(st.integers(0, len(ops) - 1), label="op index")]
    mutation = data.draw(st.sampled_from(["add_attr", "erase", "hint"]), label="mutation")
    if mutation == "erase" and (op.regions or any(r.num_uses for r in op.results)):
        mutation = "add_attr"
    if mutation == "erase":
        op.erase()
    elif mutation == "add_attr":
        op.attributes["__probe"] = IntAttr(data.draw(st.integers(0, 7), label="value"))
    else:  # name hints must not participate in the hash at all
        for result in op.results:
            result.name_hint = "renamed"
    incremental = module_hash(module)
    cold = module_hash(module.clone())
    assert incremental == cold
    assert incremental == module_hash(parse_module(print_module(module)))


def test_module_hash_distinguishes_op_order():
    def build(order):
        module = ModuleOp()
        func = FuncOp.with_body("f", [f64], [f64])
        module.add_op(func)
        a = arith.ConstantOp.from_float(1.0)
        b = arith.ConstantOp.from_float(2.0)
        first, second = (a, b) if order else (b, a)
        add = arith.AddfOp(first.result, second.result)
        func.entry_block.add_ops([a, b, add, ReturnOp([add.result])])
        return module

    assert module_hash(build(True)) != module_hash(build(False))


# ---------------------------------------------------------------------------
# Expression AST invariants
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(expr=expression_strategy())
def test_expression_queries_are_consistent(expr):
    assert expr.fields_read() <= {"u", "v"}
    assert expr.max_radius() <= 1
    assert expr.count_flops() >= 0
    assert len(expr.accesses()) >= 0


# ---------------------------------------------------------------------------
# Service request-spec canonicalisation invariants
# ---------------------------------------------------------------------------

from repro.evaluation.harness import (  # noqa: E402
    KERNEL_SIZES,
    PIPELINE_VARIANTS,
    EvaluationHarness,
    FRAMEWORKS_BY_NAME,
)
from repro.service.singleflight import SingleFlightTable  # noqa: E402
from repro.service.spec import parse_request, request_digest  # noqa: E402

#: One module-level harness so kernel modules are built/hashed once and
#: every hypothesis example after the first is cheap.
_SPEC_HARNESS = EvaluationHarness(repeats=1)


@st.composite
def service_request_payloads(draw):
    """A valid request payload plus a field/list permutation of itself."""
    kernels = draw(
        st.lists(st.sampled_from(sorted(KERNEL_SIZES)), min_size=1, max_size=2, unique=True)
    )
    size_pool = sorted({s for k in kernels for s in KERNEL_SIZES[k]})
    sizes = draw(st.lists(st.sampled_from(size_pool), min_size=1, max_size=2, unique=True))
    frameworks = draw(
        st.lists(st.sampled_from(sorted(FRAMEWORKS_BY_NAME)), max_size=3, unique=True)
    )
    variants = draw(
        st.lists(st.sampled_from(sorted(PIPELINE_VARIANTS)), max_size=2, unique=True)
    )
    if any(v != "default" for v in variants) and frameworks and (
        "Stencil-HMLS" not in frameworks
    ):
        frameworks.append("Stencil-HMLS")

    def payload():
        fields = {}
        # Each list field independently: permuted order, duplicated
        # entries, and a singular alias when it holds one value.
        for singular, plural, values in (
            ("kernel", "kernels", kernels),
            ("size", "sizes", sizes),
            ("framework", "frameworks", frameworks),
            ("variant", "variants", variants),
        ):
            if not values:
                continue
            shuffled = draw(st.permutations(values))
            if draw(st.booleans()):
                shuffled = shuffled + [draw(st.sampled_from(values))]
            if len(shuffled) == 1 and draw(st.booleans()):
                fields[singular] = shuffled[0]
            else:
                fields[plural] = shuffled
        # JSON object key order is also part of the permutation space.
        keys = draw(st.permutations(sorted(fields)))
        return {key: fields[key] for key in keys}

    return payload(), payload()


@settings(max_examples=25, deadline=None)
@given(payloads=service_request_payloads())
def test_request_canonicalisation_is_order_insensitive(payloads):
    """Permuting field order, list order and singular/plural spelling (plus
    duplicate list entries) never changes the parsed spec, its CacheKey
    digests or its request digest — so the single-flight table coalesces
    the permutations onto one flight."""
    first, second = payloads
    spec_a, spec_b = parse_request(first), parse_request(second)
    assert spec_a == spec_b
    keys_a = [k.digest("result") for k in spec_a.result_keys(_SPEC_HARNESS)]
    keys_b = [k.digest("result") for k in spec_b.result_keys(_SPEC_HARNESS)]
    assert keys_a == keys_b
    digest_a = request_digest(spec_a, _SPEC_HARNESS)
    digest_b = request_digest(spec_b, _SPEC_HARNESS)
    assert digest_a == digest_b

    # Digest equality is exactly the coalescing condition.
    table = SingleFlightTable()
    flight, leader = table.join(digest_a)
    joined, follower = table.join(digest_b)
    assert flight is joined and leader and not follower


@settings(max_examples=25, deadline=None)
@given(payloads=service_request_payloads())
def test_request_spec_round_trips_through_its_canonical_json(payloads):
    """parse(spec.as_dict()) is the identity on canonical specs — the JSON
    the server echoes back re-parses to the very same request."""
    spec = parse_request(payloads[0])
    assert parse_request(spec.as_dict()) == spec


def test_raw_pipeline_spec_brace_option_order_is_canonicalised():
    """Raw textual pipeline variants with permuted {…} options parse to
    the same spec and the same digest (describe() renders key-sorted)."""
    base = {"kernel": "pw_advection", "size": "8M"}
    a = parse_request(
        {**base, "variant": "convert-stencil-to-hls{split=0,pack=0},convert-hls-to-llvm"}
    )
    b = parse_request(
        {**base, "variant": "convert-stencil-to-hls{pack=0,split=0},convert-hls-to-llvm"}
    )
    assert a == b
    assert request_digest(a, _SPEC_HARNESS) == request_digest(b, _SPEC_HARNESS)
