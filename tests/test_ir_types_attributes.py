"""Unit tests for the type system and builtin attributes."""

import pytest

from repro.ir.attributes import (
    ArrayAttr,
    BoolAttr,
    DenseIntArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    py_value,
)
from repro.ir.core import VerifyException
from repro.ir.types import (
    DYNAMIC,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    LLVMArrayType,
    LLVMPointerType,
    LLVMStructType,
    MemRefType,
    TensorType,
    VectorType,
    bitwidth_of,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
    packed_interface_type,
)


class TestScalarTypes:
    def test_equality_is_structural(self):
        assert IntegerType(32) == i32
        assert IntegerType(32) != IntegerType(64)
        assert FloatType(64) == f64
        assert IndexType() == index

    def test_hashable(self):
        assert len({IntegerType(32), i32, i64}) == 2

    def test_str(self):
        assert str(i1) == "i1"
        assert str(f32) == "f32"
        assert str(index) == "index"

    def test_invalid_widths(self):
        with pytest.raises(VerifyException):
            IntegerType(0)
        with pytest.raises(VerifyException):
            FloatType(80)

    def test_bitwidths(self):
        assert bitwidth_of(f64) == 64
        assert bitwidth_of(i32) == 32
        assert bitwidth_of(index) == 64


class TestShapedTypes:
    def test_memref_shape(self):
        t = MemRefType([4, 5, 6], f64)
        assert t.rank == 3
        assert t.num_elements == 120
        assert t.has_static_shape
        assert str(t) == "memref<4x5x6xf64>"

    def test_dynamic_memref(self):
        t = MemRefType([DYNAMIC, 4], f64)
        assert not t.has_static_shape
        with pytest.raises(VerifyException):
            _ = t.num_elements
        assert "?" in str(t)

    def test_invalid_dim(self):
        with pytest.raises(VerifyException):
            MemRefType([-5], f64)

    def test_tensor_and_vector_strings(self):
        assert str(TensorType([2, 2], f32)) == "tensor<2x2xf32>"
        assert str(VectorType([8], f64)) == "vector<8xf64>"

    def test_function_type(self):
        t = FunctionType([f64, i32], [f64])
        assert "f64" in str(t)
        assert t.inputs == (f64, i32)


class TestLLVMTypes:
    def test_packed_interface_type(self):
        packed = packed_interface_type(f64, 512)
        assert isinstance(packed, LLVMStructType)
        inner = packed.element_types[0]
        assert isinstance(inner, LLVMArrayType)
        assert inner.count == 8
        assert bitwidth_of(packed) == 512

    def test_packed_interface_type_f32(self):
        packed = packed_interface_type(f32, 512)
        assert packed.element_types[0].count == 16

    def test_packing_must_divide(self):
        with pytest.raises(VerifyException):
            packed_interface_type(FloatType(64), 100)

    def test_pointer_str(self):
        assert str(LLVMPointerType(f64)) == "!llvm.ptr<f64>"
        assert str(LLVMPointerType()) == "!llvm.ptr"

    def test_array_requires_positive_count(self):
        with pytest.raises(VerifyException):
            LLVMArrayType(0, f64)


class TestAttributes:
    def test_int_attr(self):
        attr = IntAttr(7, i32)
        assert attr.value == 7
        assert py_value(attr) == 7
        with pytest.raises(VerifyException):
            IntAttr(1.5, i32)  # type: ignore[arg-type]
        with pytest.raises(VerifyException):
            IntAttr(1, f64)

    def test_float_attr(self):
        attr = FloatAttr(2.5)
        assert attr.value == 2.5
        with pytest.raises(VerifyException):
            FloatAttr(1.0, i32)

    def test_string_and_symbol(self):
        assert StringAttr("hi").data == "hi"
        assert py_value(SymbolRefAttr("f")) == "f"
        with pytest.raises(VerifyException):
            StringAttr(3)  # type: ignore[arg-type]

    def test_dense_int_array(self):
        attr = DenseIntArrayAttr([-1, 0, 1])
        assert attr.as_tuple() == (-1, 0, 1)
        assert list(attr) == [-1, 0, 1]
        assert attr[2] == 1
        assert len(attr) == 3

    def test_array_and_dict(self):
        arr = ArrayAttr([IntAttr(1), IntAttr(2)])
        assert len(arr) == 2
        d = DictionaryAttr({"a": IntAttr(1)})
        assert "a" in d
        assert py_value(d) == {"a": 1}

    def test_bool_and_type_attr(self):
        assert BoolAttr(True).value is True
        assert py_value(TypeAttr(f64)) == f64

    def test_equality_and_hash(self):
        assert IntAttr(3) == IntAttr(3)
        assert IntAttr(3) != IntAttr(4)
        assert hash(DenseIntArrayAttr([1, 2])) == hash(DenseIntArrayAttr([1, 2]))
