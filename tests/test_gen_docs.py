"""The generated pass reference must track the registry exactly."""

from __future__ import annotations

from pathlib import Path

from repro.ir.pass_registry import PassRegistry
from repro.tools.gen_docs import (
    default_output_path,
    main as gen_docs_main,
    render_pass_reference,
)

REPO_DOCS = Path(__file__).resolve().parents[1] / "docs" / "passes.md"


def test_committed_passes_md_is_up_to_date():
    """Mirror of the CI `--check` gate: regenerate and fail on drift so a
    registry change cannot land without refreshing docs/passes.md."""
    assert default_output_path() == REPO_DOCS
    assert REPO_DOCS.read_text() == render_pass_reference(), (
        "docs/passes.md is stale; run `python -m repro.tools.gen_docs`"
    )


def test_reference_covers_every_registered_pass_with_an_anchor():
    rendered = render_pass_reference()
    registry = PassRegistry.default()
    for name in registry.registered_names:
        assert f"### `{name}`" in rendered
        assert f'<a id="{name}"></a>' in rendered
    # Aliases and the option-alias table are part of the contract too.
    assert "`stencil-to-hls`" in rendered
    assert "#compileroptions-pipeline-aliases" in rendered
    assert "| `ii` | `target_ii` |" in rendered


def test_check_mode_detects_drift(tmp_path, capsys):
    stale = tmp_path / "passes.md"
    stale.write_text("out of date")
    assert gen_docs_main(["--check", "--output", str(stale)]) == 1
    assert gen_docs_main(["--output", str(stale)]) == 0
    assert gen_docs_main(["--check", "--output", str(stale)]) == 0
    capsys.readouterr()
