"""Two-dimensional kernels through the full flow.

The paper's shift buffer provides 3 values in 1-D, 9 in 2-D and 27 in 3-D;
the evaluation kernels are 3-D, so these tests make sure the whole flow
(analysis, window mapping, runtime, functional simulation) is not hard-wired
to rank 3.
"""

import numpy as np
import pytest

from repro.core.pipeline import StencilHMLSCompiler
from repro.fpga.host import FPGAHost
from repro.frontends.builder import StencilKernelBuilder
from repro.interp import interpret_stencil_module
from repro.ir.verifier import verify_module
from repro.runtime.window import window_size
from repro.transforms.stencil_analysis import analyse_module


def build_2d_smoother(shape=(8, 7)):
    builder = StencilKernelBuilder("smooth2d", shape)
    u = builder.input_field("u")
    out = builder.output_field("out")
    w = builder.scalar("w")
    expr = (1.0 - w) * u[0, 0] + 0.25 * w * (u[1, 0] + u[-1, 0] + u[0, 1] + u[0, -1])
    builder.add_stencil(out, expr)
    return builder


def expected_smoother(u, w):
    out = u.copy()
    out[1:-1, 1:-1] = (1.0 - w) * u[1:-1, 1:-1] + 0.25 * w * (
        u[2:, 1:-1] + u[:-2, 1:-1] + u[1:-1, 2:] + u[1:-1, :-2]
    )
    return out


class TestRank2Flow:
    def test_analysis(self):
        module = build_2d_smoother().build()
        verify_module(module)
        analysis = analyse_module(module)
        assert analysis.rank == 2
        assert analysis.stages[0].window_size() == 9          # the paper's 2-D window
        assert analysis.domain_lower == (1, 1)

    def test_interpreter_matches_numpy(self):
        shape = (8, 7)
        module = build_2d_smoother(shape).build()
        rng = np.random.default_rng(3)
        u = rng.standard_normal(shape)
        data = {"u": u.copy(), "out": u.copy(), "w": 0.6}
        interpret_stencil_module(module, "smooth2d", data)
        assert np.allclose(data["out"], expected_smoother(u, 0.6))

    def test_full_fpga_flow(self):
        shape = (8, 7)
        module = build_2d_smoother(shape).build()
        xclbin = StencilHMLSCompiler().compile(module)
        assert xclbin.design.achieved_ii == 1
        shift = xclbin.plan.waves[0].shifts[0]
        assert shift.window_size == window_size(2, 1) == 9
        host = FPGAHost()
        host.program(xclbin)
        rng = np.random.default_rng(4)
        u = rng.standard_normal(shape)
        arrays = {"u": u.copy(), "out": u.copy()}
        host.run(arrays, {"w": 0.3}, functional=True)
        interior = (slice(1, -1), slice(1, -1))
        assert np.allclose(arrays["out"][interior], expected_smoother(u, 0.3)[interior])

    def test_two_coupled_2d_stencils(self):
        shape = (7, 6)
        builder = StencilKernelBuilder("coupled2d", shape)
        u = builder.input_field("u")
        tmp = builder.field("tmp", output=True)
        out = builder.output_field("out")
        builder.add_stencil(tmp, 0.5 * (u[1, 0] + u[-1, 0]))
        builder.add_stencil(out, tmp[0, 1] - tmp[0, -1])
        module = builder.build()
        analysis = analyse_module(module)
        assert analysis.num_waves == 2                    # chained through 'tmp'
        xclbin = StencilHMLSCompiler().compile(module)
        assert xclbin.plan.num_waves == 2
        host = FPGAHost()
        host.program(xclbin)
        rng = np.random.default_rng(5)
        u_arr = rng.standard_normal(shape)
        arrays = {"u": u_arr.copy(), "tmp": np.zeros(shape), "out": np.zeros(shape)}
        host.run(arrays, {}, functional=True)
        tmp_ref = np.zeros(shape)
        tmp_ref[1:-1, 1:-1] = 0.5 * (u_arr[2:, 1:-1] + u_arr[:-2, 1:-1])
        out_ref = np.zeros(shape)
        out_ref[1:-1, 1:-1] = tmp_ref[1:-1, 2:] - tmp_ref[1:-1, :-2]
        assert np.allclose(arrays["out"][1:-1, 1:-1], out_ref[1:-1, 1:-1])
