"""Tests for the pass registry, textual pipeline specs and staged lowering."""

import pytest

from repro.core.config import CompilerOptions, resolve_option_overrides
from repro.core.pipeline import StencilHMLSCompiler, select_plan
from repro.dialects import hls, stencil
from repro.dialects.func import FuncOp
from repro.ir.pass_registry import (
    PassRegistry,
    PipelineParseError,
    parse_pipeline_spec,
)
from repro.ir.passes import PassContext, PassManager
from repro.ir.printer import print_module
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.tracer_advection import build_tracer_advection
from repro.transforms.stencil_hls import LoweringContext
from repro.transforms.stencil_to_hls import StencilToHLSPass

SUB_PASS_SPEC = (
    "stencil-shape-inference,stencil-interface-lowering,"
    "stencil-small-data-buffering,stencil-wave-pipelining,"
    "stencil-compute-split,hls-bundle-assignment"
)


class TestSpecParsing:
    def test_simple_list(self):
        entries = parse_pipeline_spec("canonicalize,cse,dce")
        assert entries == [("canonicalize", {}), ("cse", {}), ("dce", {})]

    def test_options_are_parsed_and_typed(self):
        entries = parse_pipeline_spec(
            "convert-stencil-to-hls{pack=0,depth=32,bundles=false,label=x}"
        )
        assert entries == [
            ("convert-stencil-to-hls", {"pack": 0, "depth": 32, "bundles": False, "label": "x"})
        ]

    def test_commas_inside_braces_do_not_split(self):
        entries = parse_pipeline_spec("a{x=1,y=2},b")
        assert [name for name, _ in entries] == ["a", "b"]

    def test_bare_flag_means_true(self):
        assert parse_pipeline_spec("p{pack}") == [("p", {"pack": True})]

    def test_whitespace_tolerated(self):
        entries = parse_pipeline_spec(" canonicalize , cse ")
        assert [name for name, _ in entries] == ["canonicalize", "cse"]

    def test_unbalanced_braces_rejected(self):
        with pytest.raises(PipelineParseError):
            parse_pipeline_spec("a{x=1")
        with pytest.raises(PipelineParseError):
            parse_pipeline_spec("a}x")


class TestRegistry:
    def test_known_passes_registered(self):
        registry = PassRegistry.default()
        for name in (
            "canonicalize", "cse", "dce",
            "convert-stencil-to-hls", "convert-hls-to-llvm",
            "stencil-shape-inference", "stencil-interface-lowering",
            "stencil-small-data-buffering", "stencil-wave-pipelining",
            "stencil-compute-split", "hls-bundle-assignment",
        ):
            assert name in registry.registered_names

    def test_aliases_resolve_to_canonical_names(self):
        registry = PassRegistry.default()
        assert registry.resolve("stencil-to-hls") == "convert-stencil-to-hls"
        assert registry.resolve("hls-to-llvm") == "convert-hls-to-llvm"

    def test_unknown_pass_rejected(self):
        with pytest.raises(PipelineParseError, match="unknown pass"):
            PassRegistry.parse("canonicalize,no-such-pass")

    def test_unknown_option_rejected_at_apply(self, small_shape):
        manager = PassRegistry.parse("convert-stencil-to-hls{frobnicate=1}")
        with pytest.raises(ValueError, match="unknown compiler option"):
            manager.run(build_pw_advection(small_shape))

    def test_round_trip_pipeline_description(self):
        spec = "canonicalize,convert-stencil-to-hls{pack=0},convert-hls-to-llvm"
        manager = PassRegistry.parse(spec)
        description = manager.pipeline_description()
        assert description == spec
        again = PassRegistry.parse(description)
        assert again.pipeline_description() == description

    def test_aliases_normalise_in_description(self):
        manager = PassRegistry.parse("stencil-to-hls,hls-to-llvm")
        description = manager.pipeline_description()
        assert description == "convert-stencil-to-hls,convert-hls-to-llvm"
        assert PassRegistry.parse(description).pipeline_description() == description


class TestStagedLowering:
    def test_sub_pass_pipeline_matches_composite(self, small_shape):
        composite_module = build_pw_advection(small_shape)
        composite = StencilToHLSPass(CompilerOptions())
        PassManager([composite]).run(composite_module)

        staged_module = build_pw_advection(small_shape)
        context = PassContext()
        context.set(LoweringContext(options=CompilerOptions()))
        PassRegistry.parse(SUB_PASS_SPEC, context=context).run(staged_module)

        assert print_module(staged_module) == print_module(composite_module)
        lowering = context.get(LoweringContext)
        assert set(lowering.plans) == set(composite.plans)

    def test_out_of_order_pipeline_reports_missing_stage(self, small_shape):
        module = build_pw_advection(small_shape)
        manager = PassRegistry.parse("stencil-shape-inference,stencil-compute-split")
        with pytest.raises(ValueError, match="stencil-wave-pipelining"):
            manager.run(module)

    def test_optional_stage_scheduled_too_late_rejected(self, small_shape):
        # stencil-small-data-buffering after wave-pipelining must raise, not
        # silently skip (the user asked for BRAM copies and would get none).
        module = build_pw_advection(small_shape)
        manager = PassRegistry.parse(
            "stencil-shape-inference,stencil-interface-lowering,"
            "stencil-wave-pipelining,stencil-small-data-buffering"
        )
        with pytest.raises(ValueError, match="too late"):
            manager.run(module)

    def test_llvm_lowering_between_stages_reports_reorder(self, small_shape):
        # convert-hls-to-llvm wedged between wave-pipelining and compute-split
        # destroys the wave anchors; the error must say how to fix the spec.
        module = build_pw_advection(small_shape)
        manager = PassRegistry.parse(
            "stencil-shape-inference,stencil-interface-lowering,"
            "stencil-small-data-buffering,stencil-wave-pipelining,"
            "convert-hls-to-llvm,stencil-compute-split",
            verify_each=False,
        )
        with pytest.raises(ValueError, match="reorder the pipeline spec"):
            manager.run(module)

    def test_composite_is_thin(self, small_shape):
        # The composite must not lower anything itself: running the sub-pass
        # list under its context reproduces its whole effect (checked above),
        # and the composite exposes the plans the sub-passes recorded.
        module = build_pw_advection(small_shape)
        pass_ = StencilToHLSPass()
        PassManager([pass_]).run(module)
        lowering = pass_.ctx.get(LoweringContext)
        assert lowering is not None
        assert pass_.plans == dict(lowering.plans)

    def test_composite_reports_inner_stage_changes(self, small_shape):
        # Kernels arriving at the composite already at PHASE_COMPUTED still
        # get their bundle stage run; the composite must report changed=True.
        module = build_pw_advection(small_shape)
        context = PassContext()
        PassRegistry.parse(
            "stencil-shape-inference,stencil-interface-lowering,"
            "stencil-small-data-buffering,stencil-wave-pipelining,"
            "stencil-compute-split",
            context=context,
        ).run(module)
        composite = StencilToHLSPass()
        manager = PassManager([composite])
        manager.context = context
        manager.run(module)
        assert manager.statistics[-1].changed
        assert composite.plans["pw_advection_hls"].interfaces

    def test_original_function_gone_and_no_stencil_left(self, small_shape):
        module = build_tracer_advection(small_shape)
        PassRegistry.parse(SUB_PASS_SPEC).run(module)
        assert module.get_symbol("tracer_advection") is None
        kernel = module.get_symbol("tracer_advection_hls")
        assert isinstance(kernel, FuncOp)
        assert not list(kernel.walk_type(stencil.ApplyOp))

    def test_too_late_sub_pass_override_rejected(self, small_shape):
        # `split` is consumed by stencil-wave-pipelining (stream duplication);
        # overriding it on the later compute-split stage would leave the IR
        # and plan inconsistent, so it must be refused outright.
        module = build_pw_advection(small_shape)
        spec = SUB_PASS_SPEC.replace(
            "stencil-compute-split", "stencil-compute-split{split=0}"
        )
        with pytest.raises(ValueError, match="stencil-wave-pipelining"):
            PassRegistry.parse(spec).run(module)

    def test_override_on_consuming_pass_matches_option_ablation(self, small_shape):
        staged = build_pw_advection(small_shape)
        context = PassContext()
        spec = SUB_PASS_SPEC.replace(
            "stencil-wave-pipelining", "stencil-wave-pipelining{split=0}"
        )
        PassRegistry.parse(spec, context=context).run(staged)
        plan = context.get(LoweringContext).plans["pw_advection_hls"]

        option_module = build_pw_advection(small_shape)
        option_pass = StencilToHLSPass(CompilerOptions(split_compute_per_field=False))
        PassManager([option_pass]).run(option_module)
        option_plan = option_pass.plans["pw_advection_hls"]

        assert print_module(staged) == print_module(option_module)
        assert len(plan.streams) == len(option_plan.streams)
        assert not any(s.kind == "window_copy" for s in plan.streams)

    def test_global_override_after_explicit_shape_inference(self, small_shape):
        # Shape inference seeds kernel states with the default options; a
        # composite override arriving afterwards (but before any lowering)
        # must still take effect instead of being silently dropped.
        module = build_pw_advection(small_shape)
        context = PassContext()
        PassRegistry.parse(
            "stencil-shape-inference,convert-stencil-to-hls{pack=0}",
            context=context,
        ).run(module)
        plan = context.get(LoweringContext).plans["pw_advection_hls"]
        assert all(i.packed_lanes == 1 for i in plan.interfaces)

    def test_global_override_after_lowering_started_rejected(self, small_shape):
        module = build_pw_advection(small_shape)
        manager = PassRegistry.parse(
            "stencil-shape-inference,stencil-interface-lowering,"
            "convert-stencil-to-hls{pack=0}"
        )
        with pytest.raises(ValueError, match="already lowered past shape inference"):
            manager.run(module)

    def test_explicit_options_object_on_late_sub_pass_rejected(self, small_shape):
        from repro.transforms.stencil_hls import (
            StencilInterfaceLoweringPass,
            StencilShapeInferencePass,
            StencilWavePipeliningPass,
            StencilSmallDataBufferingPass,
        )

        module = build_pw_advection(small_shape)
        manager = PassManager([
            StencilShapeInferencePass(),
            StencilInterfaceLoweringPass(),
            StencilSmallDataBufferingPass(),
            # Interface lowering already baked 8-lane packed types into the
            # IR; a full options object must not sneak pack=False past the
            # timing check either.
            StencilWavePipeliningPass(CompilerOptions(pack_interfaces=False)),
        ])
        with pytest.raises(ValueError, match="pack_interfaces"):
            manager.run(module)

    def test_pipeline_option_override_pack(self, small_shape):
        module = build_pw_advection(small_shape)
        context = PassContext()
        PassRegistry.parse(
            "convert-stencil-to-hls{pack=0}", context=context
        ).run(module)
        lowering = context.get(LoweringContext)
        plan = lowering.plans["pw_advection_hls"]
        assert all(i.packed_lanes == 1 for i in plan.interfaces)
        assert plan.options.pack_interfaces is False


class TestCompilerPipelineSpec:
    def test_custom_spec_matches_default_flow(self, small_shape):
        module = build_pw_advection(small_shape)
        default = StencilHMLSCompiler(CompilerOptions()).compile(module)
        custom = StencilHMLSCompiler(
            CompilerOptions(),
            pass_pipeline="canonicalize,stencil-to-hls,hls-to-llvm",
        ).compile(module)
        assert custom.design.compute_units == default.design.compute_units
        assert custom.design.achieved_ii == default.design.achieved_ii
        assert print_module(custom.llvm_module) == print_module(default.llvm_module)

    def test_pipeline_without_llvm_lowering_is_completed(self, small_shape):
        module = build_pw_advection(small_shape)
        compiler = StencilHMLSCompiler(
            CompilerOptions(), pass_pipeline="canonicalize,stencil-to-hls"
        )
        xclbin = compiler.compile(module)
        # The implicit tail lowering must leave no HLS ops in the LLVM module.
        assert not any(
            isinstance(op, hls.DIALECT_OPERATIONS) for op in xclbin.llvm_module.walk()
        )
        assert any(s.name.startswith("convert-hls-to-llvm") for s in compiler.pass_statistics)

    def test_pipeline_missing_bundle_assignment_is_completed(self, small_shape):
        # Without convert-hls-to-llvm in the spec the compiler can still run
        # the forgotten bundle stage itself (the interface ops are intact).
        module = build_pw_advection(small_shape)
        compiler = StencilHMLSCompiler(
            CompilerOptions(),
            pass_pipeline=f"canonicalize,{SUB_PASS_SPEC.replace(',hls-bundle-assignment', '')}",
        )
        xclbin = compiler.compile(module)
        assert xclbin.plan.interfaces
        assert xclbin.design.ports_per_cu == 7
        assert any(s.name == "hls-bundle-assignment" for s in compiler.pass_statistics)

    def test_bundle_assignment_after_llvm_lowering_rejected(self, small_shape):
        # Once convert-hls-to-llvm ran, the hls.interface ops are gone; a
        # bundle-less plan must be refused, not silently synthesised with
        # zero AXI ports.
        module = build_pw_advection(small_shape)
        spec = (
            f"canonicalize,{SUB_PASS_SPEC.replace(',hls-bundle-assignment', '')}"
            ",convert-hls-to-llvm"
        )
        compiler = StencilHMLSCompiler(CompilerOptions(), pass_pipeline=spec)
        with pytest.raises(ValueError, match="hls-bundle-assignment"):
            compiler.compile(module)

    def test_llvm_lowering_before_stencil_lowering_still_completes(self, small_shape):
        # convert-hls-to-llvm scheduled first no-ops on a stencil module; the
        # compiler must neither snapshot that raw module as "HLS" nor skip
        # the real LLVM lowering afterwards.
        module = build_pw_advection(small_shape)
        compiler = StencilHMLSCompiler(
            CompilerOptions(),
            pass_pipeline="convert-hls-to-llvm,convert-stencil-to-hls",
        )
        xclbin = compiler.compile(module)
        assert any(isinstance(op, hls.DIALECT_OPERATIONS) for op in xclbin.hls_module.walk())
        assert not list(xclbin.hls_module.walk_type(stencil.ApplyOp))
        assert not any(
            isinstance(op, hls.DIALECT_OPERATIONS) for op in xclbin.llvm_module.walk()
        )
        assert xclbin.fpp_report.dataflow_functions > 0

    def test_bundle_assignment_scheduled_after_llvm_rejected(self, small_shape):
        module = build_pw_advection(small_shape)
        spec = (
            f"canonicalize,{SUB_PASS_SPEC.replace(',hls-bundle-assignment', '')}"
            ",convert-hls-to-llvm,hls-bundle-assignment"
        )
        compiler = StencilHMLSCompiler(CompilerOptions(), pass_pipeline=spec)
        with pytest.raises(ValueError, match="before\\s+.?convert-hls-to-llvm"):
            compiler.compile(module)

    def test_pipeline_without_stencil_lowering_fails_clearly(self, small_shape):
        # The module *has* a kernel; the spec simply forgot the lowering.
        module = build_pw_advection(small_shape)
        compiler = StencilHMLSCompiler(CompilerOptions(), pass_pipeline="canonicalize")
        with pytest.raises(ValueError, match="schedules no stencil lowering stage"):
            compiler.compile(module)

    def test_module_without_kernels_fails_clearly(self):
        from repro.dialects.builtin import ModuleOp

        compiler = StencilHMLSCompiler(CompilerOptions())
        with pytest.raises(ValueError, match="no stencil kernel"):
            compiler.compile(ModuleOp())

    def test_stalled_pipeline_names_the_forgotten_stage(self, small_shape):
        # Forgetting compute-split leaves kernels mid-lowering: the error must
        # name the missing sub-pass, not claim the module has no kernel.
        module = build_pw_advection(small_shape)
        compiler = StencilHMLSCompiler(
            CompilerOptions(),
            pass_pipeline=(
                "canonicalize,stencil-shape-inference,stencil-interface-lowering,"
                "stencil-small-data-buffering,stencil-wave-pipelining,"
                "convert-hls-to-llvm"
            ),
        )
        with pytest.raises(ValueError, match="add 'stencil-compute-split'"):
            compiler.compile(module)

    def test_statistics_recorded_per_pass(self, small_shape):
        module = build_pw_advection(small_shape)
        compiler = StencilHMLSCompiler(CompilerOptions())
        compiler.compile(module)
        names = [s.name for s in compiler.pass_statistics]
        assert names == ["canonicalize", "convert-stencil-to-hls", "convert-hls-to-llvm"]
        assert all(s.seconds >= 0 for s in compiler.pass_statistics)
        assert compiler.pass_statistics[1].changed

    def test_select_plan_normalised_lookup(self, small_shape):
        module = build_pw_advection(small_shape)
        compiler = StencilHMLSCompiler(CompilerOptions())
        artifacts = compiler.compile_with_artifacts(module, kernel_name="pw_advection")
        assert artifacts.plan.kernel_name == "pw_advection_hls"
        artifacts = compiler.compile_with_artifacts(module, kernel_name="pw_advection_hls")
        assert artifacts.plan.kernel_name == "pw_advection_hls"

    def test_select_plan_errors_list_available_kernels(self):
        plans = {"a_hls": object(), "b_hls": object()}
        with pytest.raises(ValueError, match="a_hls, b_hls"):
            select_plan(plans, None)
        with pytest.raises(KeyError, match="a_hls, b_hls"):
            select_plan(plans, "missing")


class TestOptionOverrides:
    def test_aliases_and_coercion(self):
        base = CompilerOptions()
        resolved = resolve_option_overrides(
            base, {"pack": 0, "depth": "32", "split": "false", "target_ii": 2}
        )
        assert resolved.pack_interfaces is False
        assert resolved.stream_depth == 32
        assert resolved.split_compute_per_field is False
        assert resolved.target_ii == 2
        # The base object is never mutated.
        assert base.pack_interfaces is True and base.stream_depth == 16

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            resolve_option_overrides(CompilerOptions(), {"pack": "maybe"})
        with pytest.raises(ValueError):
            resolve_option_overrides(CompilerOptions(), {"width": 100})
