"""Tests for the benchmark kernels, problem sizes and numpy references."""

import numpy as np
import pytest

from repro.interp import interpret_stencil_module
from repro.kernels.grids import (
    PW_ADVECTION_SIZES,
    TRACER_ADVECTION_SIZES,
    ProblemSize,
    initial_fields,
    profile_array,
)
from repro.kernels.pw_advection import (
    PW_INPUT_FIELDS,
    PW_OUTPUT_FIELDS,
    PW_SCALARS,
    PW_SMALL_DATA,
    build_pw_advection,
    pw_advection_psyclone_kernel,
    pw_advection_small_data,
)
from repro.kernels.reference import (
    evaluate_expression,
    pw_advection_reference,
    tracer_advection_reference,
)
from repro.kernels.tracer_advection import (
    TRACER_INPUT_FIELDS,
    TRACER_ROUNDS,
    TRACER_SCALARS,
    TRACER_WORKSPACE_FIELDS,
    build_tracer_advection,
    round_coefficient,
    tracer_advection_stencil_count,
)
from repro.frontends.expr import Constant, FieldAccess
from repro.ir.verifier import verify_module
from repro.transforms.stencil_analysis import analyse_module


class TestProblemSizes:
    def test_pw_sizes_match_paper_labels(self):
        assert set(PW_ADVECTION_SIZES) == {"8M", "32M", "134M"}
        assert PW_ADVECTION_SIZES["8M"].points == pytest.approx(8.4e6, rel=0.05)
        assert PW_ADVECTION_SIZES["32M"].points == pytest.approx(33.5e6, rel=0.05)
        assert PW_ADVECTION_SIZES["134M"].points == pytest.approx(134e6, rel=0.05)

    def test_tracer_sizes(self):
        assert set(TRACER_ADVECTION_SIZES) == {"8M", "33M"}
        assert TRACER_ADVECTION_SIZES["33M"].points == pytest.approx(33.5e6, rel=0.05)

    def test_problem_size_helpers(self):
        size = ProblemSize("x", (10, 10, 10))
        assert size.points == 1000
        assert size.megapoints == pytest.approx(0.001)
        assert "10x10x10" in str(size)

    def test_initial_fields_deterministic(self):
        a = initial_fields((4, 4, 4), ["u"], seed=1)["u"]
        b = initial_fields((4, 4, 4), ["u"], seed=1)["u"]
        assert np.array_equal(a, b)
        c = initial_fields((4, 4, 4), ["u"], seed=2)["u"]
        assert not np.array_equal(a, c)

    def test_profile_array_shape(self):
        assert profile_array(64, "tzc1").shape == (64,)


class TestPWAdvectionKernel:
    def test_psyclone_declaration(self, small_shape):
        kernel = pw_advection_psyclone_kernel(small_shape)
        assert len(kernel.statements) == 3
        assert set(kernel.small_data_args) == set(PW_SMALL_DATA)
        assert kernel.field_args == PW_INPUT_FIELDS + PW_OUTPUT_FIELDS

    def test_module_verifies_and_has_three_stencils(self, pw_module):
        verify_module(pw_module)
        analysis = analyse_module(pw_module)
        assert analysis.num_stencil_stages == 3

    def test_reference_changes_only_interior(self, small_shape, pw_data):
        arrays, small, scalars = pw_data
        before = {k: v.copy() for k, v in arrays.items()}
        pw_advection_reference(arrays, small, scalars, small_shape)
        for name in PW_OUTPUT_FIELDS:
            assert not np.array_equal(arrays[name], before[name])
            assert np.array_equal(arrays[name][0], before[name][0])

    def test_interpreter_matches_reference(self, pw_module, pw_data, small_shape):
        arrays, small, scalars = pw_data
        reference = {k: v.copy() for k, v in arrays.items()}
        pw_advection_reference(reference, small, scalars, small_shape)
        data = {k: v.copy() for k, v in arrays.items()}
        data.update({k: v.copy() for k, v in small.items()})
        data.update(scalars)
        interpret_stencil_module(pw_module, "pw_advection", data)
        for name in PW_OUTPUT_FIELDS:
            assert np.allclose(data[name], reference[name])

    def test_small_data_values(self, small_shape):
        small = pw_advection_small_data(small_shape)
        assert set(small) == set(PW_SMALL_DATA)
        assert all(v.shape == (small_shape[2],) for v in small.values())


class TestTracerAdvectionKernel:
    def test_stencil_count_matches_paper(self):
        assert tracer_advection_stencil_count() == 24

    def test_seventeen_memory_arguments(self, tracer_module):
        analysis = analyse_module(tracer_module)
        memory_args = [a for a in analysis.arguments if a.is_field or a.kind == "small_data"]
        assert len(memory_args) == 17

    def test_round_coefficients_bounded(self):
        coefficients = [round_coefficient(r) for r in range(TRACER_ROUNDS)]
        assert all(0 < c <= 0.5 for c in coefficients)
        assert coefficients == sorted(coefficients, reverse=True)

    def test_module_verifies(self, tracer_module):
        verify_module(tracer_module)

    def test_reference_matches_interpreter(self, tracer_module, tracer_data, small_shape):
        arrays, _, scalars = tracer_data
        reference = {k: v.copy() for k, v in arrays.items()}
        tracer_advection_reference(reference, {}, scalars, small_shape)
        data = {k: v.copy() for k, v in arrays.items()}
        data.update(scalars)
        interpret_stencil_module(tracer_module, "tracer_advection", data)
        for name in TRACER_WORKSPACE_FIELDS:
            assert np.allclose(data[name], reference[name])

    def test_mydomain_written_last_round_only(self, small_shape, tracer_data):
        arrays, _, scalars = tracer_data
        before = arrays["mydomain"].copy()
        tracer_advection_reference(arrays, {}, scalars, small_shape)
        interior_changed = not np.array_equal(arrays["mydomain"][1:-1, 1:-1, 1:-1],
                                              before[1:-1, 1:-1, 1:-1])
        assert interior_changed


class TestReferenceExecutor:
    def test_evaluate_expression_slicing(self):
        u = np.arange(27.0).reshape(3, 3, 3)
        expr = FieldAccess("u", (1, 0, 0)) - FieldAccess("u", (-1, 0, 0))
        value = evaluate_expression(expr, {"u": u}, {}, {}, (1, 1, 1), (2, 2, 2))
        assert value.shape == (1, 1, 1)
        assert value[0, 0, 0] == u[2, 1, 1] - u[0, 1, 1]

    def test_evaluate_constant_and_scalar(self):
        expr = Constant(2.0) * FieldAccess("u", (0, 0, 0))
        u = np.ones((3, 3, 3))
        value = evaluate_expression(expr, {"u": u}, {}, {}, (1, 1, 1), (2, 2, 2))
        assert np.all(value == 2.0)
