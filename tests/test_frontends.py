"""Tests for the expression AST, kernel builder, PSyclone and Devito frontends."""

import numpy as np
import pytest

from repro.dialects import stencil
from repro.dialects.func import FuncOp
from repro.frontends.builder import FrontendError, StencilKernelBuilder
from repro.frontends.devito import DevitoConstant, DevitoError, DevitoFunction, DevitoGrid, DevitoOperator, Eq
from repro.frontends.expr import (
    BinOp,
    Constant,
    FieldAccess,
    GridIndex,
    ScalarRef,
    SmallDataAccess,
    UnaryOp,
    fabs,
    fmax,
    fmin,
    sqrt,
)
from repro.frontends.psyclone import PSycloneFrontend, PSycloneKernel, PSycloneParseError, _tokenise
from repro.interp import interpret_stencil_module
from repro.ir.verifier import verify_module
from repro.transforms.stencil_analysis import analyse_module


class TestExpressionAST:
    def test_operator_overloads(self):
        a = FieldAccess("u", (0, 0, 0))
        expr = (a + 1.0) * 2.0 - a / 3.0
        assert isinstance(expr, BinOp)
        assert expr.fields_read() == {"u"}
        assert expr.count_flops() == 4

    def test_reverse_operators_and_neg(self):
        a = FieldAccess("u", (0,))
        assert isinstance(1.0 + a, BinOp)
        assert isinstance(2.0 * a, BinOp)
        assert isinstance(1.0 - a, BinOp)
        assert isinstance(1.0 / a, BinOp)
        assert isinstance(-a, UnaryOp)

    def test_queries(self):
        expr = FieldAccess("u", (1, 0, 0)) * ScalarRef("dt") + SmallDataAccess("c", 2)
        assert expr.scalars_read() == {"dt"}
        assert expr.small_data_read() == {"c"}
        assert expr.max_radius() == 1
        assert len(expr.accesses()) == 1

    def test_helpers(self):
        assert fmax(1.0, 2.0).op == "max"
        assert fmin(FieldAccess("u", (0,)), 0.0).op == "min"
        assert fabs(-1.0).op == "abs"
        assert sqrt(4.0).op == "sqrt"

    def test_invalid_operators_rejected(self):
        with pytest.raises(ValueError):
            BinOp("%", Constant(1.0), Constant(2.0))
        with pytest.raises(ValueError):
            UnaryOp("sin?", Constant(1.0))
        with pytest.raises(TypeError):
            FieldAccess("u", (0,)) + "nope"  # type: ignore[operator]


class TestKernelBuilder:
    def build_laplacian(self, shape=(8, 8, 8)):
        b = StencilKernelBuilder("laplacian", shape)
        u = b.input_field("u")
        out = b.output_field("out")
        expr = (
            u[1, 0, 0] + u[-1, 0, 0] + u[0, 1, 0] + u[0, -1, 0]
            + u[0, 0, 1] + u[0, 0, -1] - 6.0 * u[0, 0, 0]
        )
        b.add_stencil(out, expr)
        return b

    def test_module_structure(self):
        builder = self.build_laplacian()
        module = builder.build()
        verify_module(module)
        func = module.get_symbol("laplacian")
        assert isinstance(func, FuncOp)
        assert len(list(module.walk_type(stencil.ApplyOp))) == 1
        assert len(list(module.walk_type(stencil.StoreOp))) == 1

    def test_laplacian_matches_numpy(self):
        shape = (6, 6, 6)
        module = self.build_laplacian(shape).build()
        u = np.random.default_rng(0).standard_normal(shape)
        out = np.zeros(shape)
        interpret_stencil_module(module, "laplacian", {"u": u, "out": out})
        expected = np.zeros(shape)
        expected[1:-1, 1:-1, 1:-1] = (
            u[2:, 1:-1, 1:-1] + u[:-2, 1:-1, 1:-1]
            + u[1:-1, 2:, 1:-1] + u[1:-1, :-2, 1:-1]
            + u[1:-1, 1:-1, 2:] + u[1:-1, 1:-1, :-2]
            - 6.0 * u[1:-1, 1:-1, 1:-1]
        )
        assert np.allclose(out, expected)

    def test_duplicate_declaration_rejected(self):
        b = StencilKernelBuilder("k", (4, 4, 4))
        b.field("u")
        with pytest.raises(FrontendError):
            b.field("u")
        with pytest.raises(FrontendError):
            b.scalar("u")

    def test_undeclared_reads_rejected(self):
        b = StencilKernelBuilder("k", (4, 4, 4))
        out = b.output_field("out")
        with pytest.raises(FrontendError):
            b.add_stencil(out, FieldAccess("ghost", (0, 0, 0)))
        with pytest.raises(FrontendError):
            b.add_stencil(out, ScalarRef("dt"))
        with pytest.raises(FrontendError):
            b.add_stencil(out, SmallDataAccess("c", 2))

    def test_build_requires_stencils(self):
        b = StencilKernelBuilder("k", (4, 4, 4))
        b.field("u")
        with pytest.raises(FrontendError):
            b.build()

    def test_field_handle_rank_check(self):
        b = StencilKernelBuilder("k", (4, 4, 4))
        u = b.field("u")
        with pytest.raises(FrontendError):
            _ = u[0, 0]
        assert u.centre.offset == (0, 0, 0)

    def test_default_domain_uses_radius(self):
        b = StencilKernelBuilder("k", (10, 10, 10))
        u = b.input_field("u")
        out = b.output_field("out")
        b.add_stencil(out, u[2, 0, 0] + u[-2, 0, 0])
        lower, upper = b.default_domain()
        assert lower == (2, 2, 2)
        assert upper == (8, 8, 8)

    def test_writing_an_input_promotes_it_to_output(self):
        b = StencilKernelBuilder("k", (6, 6, 6))
        u = b.input_field("u")
        w = b.input_field("w")
        b.add_stencil(w, u[0, 0, 0] * 2.0)
        module = b.build()
        analysis = analyse_module(module)
        kinds = {a.name: a.kind for a in analysis.arguments}
        assert kinds["w"] == "field_output"
        assert kinds["u"] == "field_input"

    def test_grid_index_and_small_data(self):
        shape = (5, 5, 6)
        b = StencilKernelBuilder("k", shape)
        u = b.input_field("u")
        out = b.output_field("out")
        prof = b.small_data("prof", shape[2])
        b.add_stencil(out, u[0, 0, 0] * prof.here + GridIndex(2))
        module = b.build()
        verify_module(module)
        rng = np.random.default_rng(1)
        arrays = {"u": rng.standard_normal(shape), "out": np.zeros(shape),
                  "prof": rng.standard_normal(shape[2])}
        interpret_stencil_module(module, "k", arrays)
        k_index = np.arange(shape[2]).reshape(1, 1, -1)
        expected = arrays["u"] * arrays["prof"].reshape(1, 1, -1) + k_index
        assert np.allclose(arrays["out"][1:-1, 1:-1, 1:-1], expected[1:-1, 1:-1, 1:-1])


class TestPSycloneFrontend:
    def test_tokeniser(self):
        tokens = _tokenise("su(i,j,k) = 0.5d0*u(i-1,j,k)")
        kinds = [t.kind for t in tokens]
        assert "name" in kinds and "number" in kinds and "symbol" in kinds

    def test_tokeniser_rejects_garbage(self):
        with pytest.raises(PSycloneParseError):
            _tokenise("a = b @ c")

    def make_kernel(self, statements):
        return PSycloneKernel(
            name="k",
            shape=(6, 6, 6),
            field_args=["u", "v", "out"],
            scalar_args=["dt"],
            small_data_args={"prof": 6},
            statements=statements,
        )

    def test_parse_simple_statement(self):
        kernel = self.make_kernel(["out(i,j,k) = dt*(u(i+1,j,k) - u(i-1,j,k)) + prof(k)"])
        target, expr = PSycloneFrontend().parse_statement(kernel.statements[0], kernel)
        assert target == "out"
        assert expr.fields_read() == {"u"}
        assert expr.scalars_read() == {"dt"}
        assert expr.small_data_read() == {"prof"}

    def test_intrinsics(self):
        kernel = self.make_kernel(["out(i,j,k) = max(abs(u(i,j,k)), sqrt(v(i,j,k)))"])
        _, expr = PSycloneFrontend().parse_statement(kernel.statements[0], kernel)
        assert isinstance(expr, BinOp) and expr.op == "max"

    def test_fortran_double_literal(self):
        kernel = self.make_kernel(["out(i,j,k) = 0.25d0 * u(i,j,k)"])
        _, expr = PSycloneFrontend().parse_statement(kernel.statements[0], kernel)
        assert expr.lhs.value == 0.25

    def test_parse_errors(self):
        frontend = PSycloneFrontend()
        bad_statements = [
            "out(i,j,k) = ghost(i,j,k)",           # undeclared array
            "out(i,j,k) = u(i,j)",                  # wrong arity
            "out(i+1,j,k) = u(i,j,k)",              # off-centre target
            "out(i,j,k) = u(i,j,k) +",              # dangling operator
            "out(i,j,k) = u(i,j,k)) ",              # unbalanced parens
            "dt = u(i,j,k)",                        # scalar target
            "out(i,j,k) = unknown",                 # undeclared symbol
        ]
        for statement in bad_statements:
            kernel = self.make_kernel([statement])
            with pytest.raises(PSycloneParseError):
                frontend.parse_statement(statement, kernel)

    def test_lower_builds_verified_module(self):
        kernel = self.make_kernel(["out(i,j,k) = u(i,j,k) + v(i,j,k)*dt"])
        module = PSycloneFrontend().lower(kernel)
        verify_module(module)
        assert module.get_symbol("k") is not None

    def test_empty_kernel_rejected(self):
        kernel = self.make_kernel([])
        with pytest.raises(PSycloneParseError):
            PSycloneFrontend().lower(kernel)

    def test_psyclone_matches_builder_semantics(self):
        """The same maths written in Fortran and via the builder must agree."""
        shape = (6, 5, 4)
        kernel = PSycloneKernel(
            name="k", shape=shape, field_args=["u", "out"], scalar_args=["a"],
            statements=["out(i,j,k) = a*u(i+1,j,k) - u(i,j,k-1)"],
        )
        module_f = PSycloneFrontend().lower(kernel)

        b = StencilKernelBuilder("k", shape)
        u = b.input_field("u")
        out = b.output_field("out")
        a = b.scalar("a")
        b.add_stencil(out, a * u[1, 0, 0] - u[0, 0, -1])
        module_b = b.build()

        rng = np.random.default_rng(3)
        data = rng.standard_normal(shape)
        out_f, out_b = np.zeros(shape), np.zeros(shape)
        interpret_stencil_module(module_f, "k", {"u": data.copy(), "out": out_f, "a": 1.5})
        interpret_stencil_module(module_b, "k", {"u": data.copy(), "out": out_b, "a": 1.5})
        assert np.allclose(out_f, out_b)


class TestDevitoFrontend:
    def test_operator_builds_module(self):
        grid = DevitoGrid((6, 6, 6))
        u = DevitoFunction("u", grid)
        v = DevitoFunction("v", grid)
        eq = Eq(v, 0.5 * (u[1, 0, 0] + u[-1, 0, 0]))
        module = DevitoOperator([eq], name="smooth").build_module()
        verify_module(module)
        analysis = analyse_module(module)
        assert {a.name for a in analysis.field_outputs} == {"v"}

    def test_constants_become_scalars(self):
        grid = DevitoGrid((6, 6, 6))
        u = DevitoFunction("u", grid)
        dt = DevitoConstant("dt")
        module = DevitoOperator([Eq(u, u[0, 0, 0] * dt)]).build_module()
        analysis = analyse_module(module)
        assert [a.name for a in analysis.scalars] == ["dt"]

    def test_offset_rank_checked(self):
        grid = DevitoGrid((6, 6, 6))
        u = DevitoFunction("u", grid)
        with pytest.raises(DevitoError):
            _ = u[1, 0]

    def test_lhs_must_be_centre(self):
        grid = DevitoGrid((6, 6, 6))
        u = DevitoFunction("u", grid)
        with pytest.raises(DevitoError):
            Eq(u[1, 0, 0], u[0, 0, 0]).target_name

    def test_empty_operator_rejected(self):
        with pytest.raises(DevitoError):
            DevitoOperator([])

    def test_devito_matches_builder(self):
        shape = (6, 5, 4)
        grid = DevitoGrid(shape)
        u = DevitoFunction("u", grid)
        w = DevitoFunction("w", grid)
        module_d = DevitoOperator([Eq(w, u[1, 0, 0] - 2.0 * u[0, 0, 0] + u[-1, 0, 0])],
                                  name="d2").build_module()
        rng = np.random.default_rng(5)
        data = rng.standard_normal(shape)
        out = np.zeros(shape)
        interpret_stencil_module(module_d, "d2", {"u": data, "w": out})
        expected = data[2:, 1:-1, 1:-1] - 2 * data[1:-1, 1:-1, 1:-1] + data[:-2, 1:-1, 1:-1]
        assert np.allclose(out[1:-1, 1:-1, 1:-1], expected)
