"""Interning (hash-consing) edge cases: identity equality, pickling across
process boundaries, nested-attribute equality and fingerprint invalidation."""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor

from repro.dialects import stencil
from repro.dialects.hls import AxiProtocolAttr, StreamType
from repro.ir.attributes import (
    ArrayAttr,
    BoolAttr,
    DenseIntArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntAttr,
    StringAttr,
    UnitAttr,
)
from repro.ir.hashing import (
    block_fingerprint,
    module_hash,
    operation_fingerprint,
    region_fingerprint,
)
from repro.ir.interning import ATTRIBUTE_INTERNER, intern_stats
from repro.ir.types import (
    FunctionType,
    IntegerType,
    MemRefType,
    f32,
    f64,
    i32,
    packed_interface_type,
)


class TestIdentityEquality:
    def test_scalar_types_are_uniqued(self):
        assert IntegerType(32) is IntegerType(32)
        assert IntegerType(32) is i32
        assert IntegerType(32) is not IntegerType(64)

    def test_data_attributes_are_uniqued(self):
        assert IntAttr(7) is IntAttr(7)
        assert IntAttr(7) is not IntAttr(8)
        assert IntAttr(7, i32) is not IntAttr(7)  # type participates
        assert FloatAttr(1.5) is FloatAttr(1.5)
        assert StringAttr("x") is StringAttr("x")
        assert BoolAttr(True) is BoolAttr(True)
        assert UnitAttr() is UnitAttr()

    def test_bool_int_attrs_do_not_collide(self):
        # bool == int in Python; the intern key includes the class.
        assert BoolAttr(True) is not IntAttr(1)
        assert BoolAttr(True) != IntAttr(1)

    def test_composite_types_are_uniqued(self):
        assert MemRefType((4, 4), f64) is MemRefType((4, 4), f64)
        assert MemRefType((4, 4), f64) is not MemRefType((4, 4), f64, "hbm")
        assert FunctionType([f64], [f32]) is FunctionType([f64], [f32])
        assert packed_interface_type(f64) is packed_interface_type(f64)

    def test_dialect_types_are_uniqued(self):
        assert StreamType(f64) is StreamType(f64)
        assert AxiProtocolAttr("m_axi") is AxiProtocolAttr(0)
        field = stencil.FieldType([(0, 8), (0, 8)], f64)
        assert field is stencil.FieldType([(0, 8), (0, 8)], f64)

    def test_equality_is_identity_for_equal_constructions(self):
        samples = [
            IntAttr(3),
            DenseIntArrayAttr([1, -2, 3]),
            ArrayAttr([IntAttr(1), FloatAttr(2.0)]),
            DictionaryAttr({"a": IntAttr(1), "b": StringAttr("s")}),
            StreamType(packed_interface_type(f32, 256)),
        ]
        clones = [
            IntAttr(3),
            DenseIntArrayAttr([1, -2, 3]),
            ArrayAttr([IntAttr(1), FloatAttr(2.0)]),
            DictionaryAttr({"b": StringAttr("s"), "a": IntAttr(1)}),
            StreamType(packed_interface_type(f32, 256)),
        ]
        for a, b in zip(samples, clones):
            assert a == b
            assert a is b
            assert hash(a) == hash(b)


class TestNestedEquality:
    def test_dense_int_array_nested_in_array_attr(self):
        inner = DenseIntArrayAttr([0, 1, 0])
        outer = ArrayAttr([inner, DenseIntArrayAttr([1, 0, 0])])
        rebuilt = ArrayAttr([DenseIntArrayAttr([0, 1, 0]), DenseIntArrayAttr([1, 0, 0])])
        assert outer is rebuilt
        assert outer[0] is inner
        assert list(outer[1]) == [1, 0, 0]

    def test_array_attr_order_matters(self):
        assert ArrayAttr([IntAttr(1), IntAttr(2)]) is not ArrayAttr([IntAttr(2), IntAttr(1)])


def _worker_identity_probe(attr):
    """Pool worker: the unpickled attribute must re-intern in this process."""
    local = DenseIntArrayAttr([4, 5, 6])
    return (
        attr is DenseIntArrayAttr([4, 5, 6]),
        attr == local,
        pickle.loads(pickle.dumps(attr)) is attr,
    )


class TestPickleReinterning:
    def test_roundtrip_restores_identity(self):
        for attr in (
            IntAttr(42),
            DenseIntArrayAttr([1, 2, 3]),
            ArrayAttr([IntAttr(1), DenseIntArrayAttr([7])]),
            MemRefType((8,), f64),
            StreamType(f64),
        ):
            assert pickle.loads(pickle.dumps(attr)) is attr

    def test_roundtrip_reinterns_nested_members(self):
        outer = pickle.loads(pickle.dumps(ArrayAttr([IntAttr(5), StringAttr("k")])))
        assert outer[0] is IntAttr(5)
        assert outer[1] is StringAttr("k")

    def test_identity_survives_process_pool(self):
        attr = DenseIntArrayAttr([4, 5, 6])
        with ProcessPoolExecutor(max_workers=1) as pool:
            interned_there, equal_there, repickled_there = pool.submit(
                _worker_identity_probe, attr
            ).result()
        assert interned_there
        assert equal_there
        assert repickled_there

    def test_reduce_excludes_precomputed_hash(self):
        attr = IntAttr(99)
        _, (cls, state) = attr.__reduce__()
        assert cls is IntAttr
        assert "_hash" not in state
        assert state["value"] == 99


class TestInternStats:
    def test_hits_accumulate_on_reconstruction(self):
        before = intern_stats().snapshot()
        probe = StringAttr("intern-stats-probe")
        StringAttr("intern-stats-probe")
        StringAttr("intern-stats-probe")
        hits, misses = intern_stats().snapshot()
        assert hits - before[0] >= 2
        assert misses - before[1] >= 1
        assert ATTRIBUTE_INTERNER.intern(probe) is probe  # table holds it
        assert 0.0 <= intern_stats().hit_rate <= 1.0


class TestFingerprintInvalidation:
    def test_attribute_dict_mutation_invalidates_cached_hash(self, pw_module):
        module = pw_module.clone()
        baseline = module_hash(module)
        ops = [op for op in module.walk() if op is not module]
        target = ops[len(ops) // 2]
        target.attributes["__probe"] = UnitAttr()
        changed = module_hash(module)
        assert changed != baseline
        del target.attributes["__probe"]
        assert module_hash(module) == baseline

    def test_block_and_region_fingerprints_track_operand_bindings(self):
        """[op(%a,%b)] and [op(%b,%a)] must fingerprint differently."""
        from repro.dialects import arith
        from repro.dialects.func import FuncOp, ReturnOp
        from repro.ir.types import f64

        def build(swapped: bool) -> FuncOp:
            func = FuncOp.with_body("f", [f64, f64], [f64])
            a, b = func.args
            add = arith.AddfOp(*((b, a) if swapped else (a, b)))
            func.entry_block.add_ops([add, ReturnOp([add.result])])
            return func

        straight, swapped = build(False), build(True)
        s_digest, s_free = block_fingerprint(straight.entry_block)
        w_digest, w_free = block_fingerprint(swapped.entry_block)
        assert s_digest != w_digest
        assert len(s_free) == len(w_free) == 0  # args are defined in-block
        assert block_fingerprint(build(False).entry_block)[0] == s_digest
        r_straight = region_fingerprint(straight.regions[0])
        r_swapped = region_fingerprint(swapped.regions[0])
        assert r_straight != r_swapped
        assert region_fingerprint(build(False).regions[0]) == r_straight

    def test_drop_all_references_on_attached_op_invalidates_ancestors(self, pw_module):
        """Regression: dropping references without erasing is a mutation too."""
        module = pw_module.clone()
        baseline = module_hash(module)
        victim = next(
            op for op in module.walk()
            if op is not module and op.operands and not op.results
        )
        victim.drop_all_references()
        incremental = module_hash(module)
        assert incremental != baseline
        assert incremental == module_hash(module.clone())

    def test_detached_subtree_keeps_valid_fingerprint(self, pw_module):
        module = pw_module.clone()
        module_hash(module)  # populate caches bottom-up
        func = module.body.ops[0]
        digest, free = operation_fingerprint(func)
        func.detach()
        assert func._fingerprint == (digest, free)  # reusable on re-insertion
        assert module._fingerprint is None  # parent chain invalidated
        module.add_op(func)
        assert operation_fingerprint(func) == (digest, free)
