"""Compile-service concurrency battery: thundering herds, single-flight
coalescing, warm fast paths, admission control, error fan-out, and
kill-the-server-mid-stream fault tolerance.

Determinism notes: herd tests gate the compile on a :class:`threading.
Event` the test releases only after every client has joined, so "all N
requests coalesce onto one flight" is guaranteed, not a race the test
hopes to win.  The mid-stream kill test reuses the orchestrator's chaos
convention — the server SIGKILLs *itself* after N manifest appends — so
the interruption point is exact.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.compile_cache import CompileCache
from repro.evaluation.harness import EvaluationHarness
from repro.fpga.device import ALVEO_U280
from repro.service import (
    RequestFailed,
    RequestRejected,
    ServiceClient,
    ServiceSaturated,
    ServiceThread,
    StreamInterrupted,
    parse_request,
    wait_for_service,
)

SPEC = {"kernel": "pw_advection", "size": "8M", "repeats": 1}
#: Baseline-only spec for the subprocess chaos test (cheap, two cases).
BASELINE_SPEC = {
    "kernel": "pw_advection",
    "size": "8M",
    "frameworks": ["DaCe", "Vitis HLS"],
    "repeats": 1,
}


def _gate_compile(service, gate, error=None):
    """Replace the service's compile step with one that waits for ``gate``
    (then optionally raises ``error`` instead of compiling)."""
    real = service._compile_sync

    def gated(*args, **kwargs):
        assert gate.wait(timeout=60), "test never released the compile gate"
        if error is not None:
            raise error
        return real(*args, **kwargs)

    service._compile_sync = gated
    return real


def _raw_stream(host, port, spec, connect_only=False, settle=None):
    """POST ``spec`` over a raw socket; return the response's raw lines.

    ``connect_only`` sends the request but defers reading (the slow-reader
    scenario); call the returned ``finish()`` later to drain the stream.
    """
    body = json.dumps(spec).encode()
    sock = socket.create_connection((host, port), timeout=120)
    sock.sendall(
        (
            f"POST /compile HTTP/1.1\r\nHost: x\r\nContent-Length: {len(body)}"
            "\r\nConnection: close\r\n\r\n"
        ).encode()
        + body
    )

    def finish():
        stream = sock.makefile("rb")
        raw = stream.read()
        stream.close()
        sock.close()
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200"), head
        return payload.splitlines()

    if settle is not None:
        settle.set()
    if connect_only:
        return finish
    return finish()


def _wait_until(predicate, timeout=30, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError(f"timed out waiting for {message}")
        time.sleep(0.01)


class TestThunderingHerd:
    def test_herd_coalesces_to_one_compile_with_identical_streams(self, tmp_path):
        """The headline guarantee: N concurrent identical requests run
        exactly ONE compile (real CacheStats counters, not mocks) and
        every client streams a byte-identical result set."""
        herd = 8

        # Control: the same cases through a plain harness + fresh cache
        # establish how many cache misses exactly one cold compile costs.
        control_cache = CompileCache(tmp_path / "control")
        control = EvaluationHarness(device=ALVEO_U280, repeats=1, cache=control_cache)
        control.run_matrix(cases=parse_request(SPEC).cases())
        one_compile_misses = control_cache.stats.total_misses
        assert one_compile_misses > 0

        cache = CompileCache(tmp_path / "cache")
        with ServiceThread(cache=cache) as server:
            service = server.service
            gate = threading.Event()
            _gate_compile(service, gate)

            streams = [None] * herd
            def drive(i):
                streams[i] = _raw_stream("127.0.0.1", server.port, SPEC)

            threads = [threading.Thread(target=drive, args=(i,)) for i in range(herd)]
            for t in threads:
                t.start()
            # Every request joins the flight before the compile may run.
            _wait_until(lambda: service.stats.requests == herd, message="herd joined")
            gate.set()
            for t in threads:
                t.join(timeout=120)

            # Exactly one compile: one flight led, one dispatch, one
            # compiled case, and precisely one cold compile's worth of
            # real cache misses.
            assert service.table.led == 1
            assert service.table.coalesced == herd - 1
            assert service.stats.dispatched == 1
            assert service.stats.cases_compiled == 1
            assert cache.stats.total_misses == one_compile_misses
            assert len(service.table) == 0

            # Byte-identical result sets.  The preamble legitimately
            # differs (exactly one client is the non-coalesced leader);
            # everything after it must match to the byte.
            preambles = [json.loads(lines[0]) for lines in streams]
            assert sorted(p["coalesced"] for p in preambles) == [False] + [True] * (herd - 1)
            assert len({p["digest"] for p in preambles}) == 1
            tails = {b"\n".join(lines[1:]) for lines in streams}
            assert len(tails) == 1
            final = json.loads(streams[0][-1])
            assert final["event"] == "request_complete" and final["ok"]

            # A second herd is pure warm fast path: zero new misses.
            before = (cache.stats.total_misses, service.stats.dispatched)
            again = ServiceClient("127.0.0.1", server.port).compile(SPEC)
            assert again["accepted"]["warm"] is True
            assert (cache.stats.total_misses, service.stats.dispatched) == before
            assert again["complete"]["results"] == final["results"]

    def test_distinct_specs_are_not_coalesced(self, tmp_path):
        with ServiceThread(cache=CompileCache(tmp_path / "cache")) as server:
            client = ServiceClient("127.0.0.1", server.port)
            a = client.compile(SPEC)
            b = client.compile({**SPEC, "variants": ["no-pack"]})
            assert a["accepted"]["digest"] != b["accepted"]["digest"]
            assert server.service.table.led == 2
            assert server.service.table.coalesced == 0
            assert server.service.stats.cases_compiled == 2

    def test_slow_reader_does_not_stall_other_waiters(self, tmp_path):
        """A coalesced client that never reads must not hold up the herd:
        each connection drains its own queue at its own pace."""
        with ServiceThread(cache=CompileCache(tmp_path / "cache")) as server:
            service = server.service
            gate = threading.Event()
            _gate_compile(service, gate)
            sent = threading.Event()
            slow_finish = {}

            def slow():
                slow_finish["fn"] = _raw_stream(
                    "127.0.0.1", server.port, SPEC, connect_only=True, settle=sent
                )

            slow_thread = threading.Thread(target=slow)
            slow_thread.start()
            assert sent.wait(timeout=30)
            _wait_until(lambda: service.stats.requests == 1, message="slow client joined")

            fast_lines = {}
            fast_thread = threading.Thread(
                target=lambda: fast_lines.update(
                    lines=_raw_stream("127.0.0.1", server.port, SPEC)
                )
            )
            fast_thread.start()
            _wait_until(lambda: service.stats.requests == 2, message="fast client joined")
            gate.set()
            fast_thread.join(timeout=120)  # completes while slow never read
            assert not fast_thread.is_alive()
            assert json.loads(fast_lines["lines"][-1])["event"] == "request_complete"

            slow_thread.join(timeout=10)
            slow_lines = slow_finish["fn"]()  # now drain the slow stream
            assert slow_lines[1:] == fast_lines["lines"][1:]


class TestWarmFastPath:
    def test_warm_requests_never_touch_the_compile_executor(self, tmp_path):
        """Cache-warm requests are served on the event loop: enqueueing
        *anything* on the compile pool after warm-up fails the test."""
        with ServiceThread(cache=CompileCache(tmp_path / "cache")) as server:
            cold = ServiceClient("127.0.0.1", server.port).compile(SPEC)

        class NoDispatch:
            def submit(self, *args, **kwargs):
                raise AssertionError("warm request reached the compile executor")

        # A *fresh* service over the same cache directory: no in-memory
        # memo, no manifest — warmth must come from the cache tiers, and
        # the executor is rigged to fail the test if touched at all.
        cache = CompileCache(tmp_path / "cache")
        with ServiceThread(cache=cache) as server:
            server.service._compile_pool = NoDispatch()
            warm = ServiceClient("127.0.0.1", server.port).compile(SPEC)
            assert warm["accepted"]["warm"] is True
            assert warm["accepted"]["coalesced"] is False
            # Presence came from the restore-free probe, results from get().
            assert cache.stats.probes > 0
            assert warm["complete"]["results"] == cold["complete"]["results"]
            assert [e["source"] for e in warm["events"]] == ["cache"]
            assert server.service.stats.dispatched == 0

    def test_stats_and_health_endpoints(self, tmp_path):
        with ServiceThread(cache=CompileCache(tmp_path / "cache")) as server:
            client = ServiceClient("127.0.0.1", server.port)
            assert client.healthz() is True
            client.compile(SPEC)
            stats = client.stats()
            assert stats["service"]["requests"] == 1
            assert stats["singleflight"] == {"led": 1, "coalesced": 0, "inflight": 0}
            assert stats["cache"]["misses"] > 0
            # No state dir: the manifest memo is in-memory only.
            assert stats["manifest_entries"] == 1

    def test_bad_requests_are_rejected_not_crashed(self, tmp_path):
        with ServiceThread() as server:
            client = ServiceClient("127.0.0.1", server.port)
            with pytest.raises(RequestRejected) as exc:
                client.compile({"kernel": "pw_advection", "size": "8M", "bogus": 1})
            assert exc.value.status == 400 and "bogus" in str(exc.value)
            with pytest.raises(RequestRejected) as exc:
                client.compile({"size": "8M"})
            assert "kernel" in str(exc.value)
            with pytest.raises(RequestRejected) as exc:
                client._json_request("GET", "/nope")
            assert exc.value.status == 404
            # Malformed JSON body → 400, not a wedged connection.
            status, _, stream = client._request("POST", "/compile", b"{nope")
            stream.close()
            assert status == 400
            assert client.healthz() is True  # still serving


class TestAdmissionControl:
    def test_saturation_sheds_with_retry_after_but_still_coalesces(self, tmp_path):
        """Past ``max_inflight`` the server sheds NEW work with 429 +
        Retry-After — but a request identical to one already in flight
        coalesces instead of being shed (it costs no compile)."""
        with ServiceThread(
            cache=CompileCache(tmp_path / "cache"), max_inflight=1, retry_after=0.05
        ) as server:
            service = server.service
            gate = threading.Event()
            _gate_compile(service, gate)
            client = ServiceClient("127.0.0.1", server.port)

            first = {}
            leader = threading.Thread(
                target=lambda: first.update(out=client.compile(SPEC))
            )
            leader.start()
            _wait_until(lambda: service.stats.dispatched == 1, message="leader dispatched")

            distinct = {**SPEC, "variants": ["no-pack"]}
            with pytest.raises(ServiceSaturated) as exc:
                client.compile(distinct)
            assert exc.value.retry_after == pytest.approx(0.05)
            assert service.stats.shed == 1

            # Identical request: coalesced onto the gated flight, not shed.
            rider = {}
            rider_thread = threading.Thread(
                target=lambda: rider.update(out=client.compile(SPEC))
            )
            rider_thread.start()
            _wait_until(lambda: service.table.coalesced == 1, message="rider coalesced")
            assert service.stats.shed == 1  # unchanged

            gate.set()
            leader.join(timeout=120)
            rider_thread.join(timeout=120)
            assert first["out"]["complete"]["results"] == rider["out"]["complete"]["results"]

            # The shed spec succeeds once capacity frees up — the client's
            # reference retry loop honours Retry-After.
            out = client.compile_with_retry(distinct, attempts=50)
            assert out["complete"]["ok"] is True
            # The abandoned flight never poisoned the table.
            assert len(service.table) == 0


class TestFaultTolerance:
    def test_compile_error_fans_out_to_every_waiter_without_wedging(self, tmp_path):
        """A compile exception becomes a structured ``request_failed``
        event for ALL coalesced waiters, the in-flight table drains, and
        the next identical request starts a fresh (working) flight."""
        with ServiceThread(cache=CompileCache(tmp_path / "cache")) as server:
            service = server.service
            gate = threading.Event()
            real = _gate_compile(
                service, gate, error=RuntimeError("injected compile failure")
            )

            failures = []
            def drive():
                try:
                    ServiceClient("127.0.0.1", server.port).compile(SPEC)
                except RequestFailed as err:
                    failures.append(str(err))

            threads = [threading.Thread(target=drive) for _ in range(4)]
            for t in threads:
                t.start()
            _wait_until(lambda: service.stats.requests == 4, message="waiters joined")
            gate.set()
            for t in threads:
                t.join(timeout=60)

            assert len(failures) == 4
            assert all("injected compile failure" in msg for msg in failures)
            assert service.stats.failed_flights == 1  # one flight, N waiters
            assert len(service.table) == 0  # never wedged

            # Recovery: the table accepted a fresh flight and it works.
            service._compile_sync = real
            out = ServiceClient("127.0.0.1", server.port).compile(SPEC)
            assert out["complete"]["ok"] is True

    def test_manifest_resume_in_process(self, tmp_path):
        """Restarting the service over the same state dir serves previous
        work warm from the manifest — even with NO compile cache at all."""
        state = tmp_path / "state"
        with ServiceThread(state_dir=state) as server:
            first = ServiceClient("127.0.0.1", server.port).compile(SPEC)
            assert server.service.stats.cases_compiled == 1
        with ServiceThread(state_dir=state) as server:
            assert server.service.manifest_entries == 1
            again = ServiceClient("127.0.0.1", server.port).compile(SPEC)
            assert again["accepted"]["warm"] is True
            assert server.service.stats.dispatched == 0
            assert server.service.stats.cases_compiled == 0
            assert [e["source"] for e in again["events"]] == ["manifest"]
            assert again["complete"]["results"] == first["complete"]["results"]


class TestKillTheServer:
    """The acceptance scenario: SIGKILL the served process mid-stream; a
    reconnecting client resumes from the manifest with zero recompiles of
    the completed cases and a byte-identical final result set."""

    def _spawn(self, tmp_path, *extra):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        port_file = tmp_path / f"port-{len(list(tmp_path.glob('port-*')))}"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service.server",
                "--port", "0", "--port-file", str(port_file),
                "--state-dir", str(tmp_path / "state"),
                "--cache-dir", str(tmp_path / "cache"),
                *extra,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        _wait_until(
            lambda: port_file.exists() and port_file.read_text().strip(),
            timeout=60, message="server port file",
        )
        port = int(port_file.read_text().strip())
        return proc, wait_for_service("127.0.0.1", port, timeout=60)

    def test_kill_mid_stream_then_reconnect_resumes_without_recompiling(self, tmp_path):
        proc, client = self._spawn(tmp_path, "--chaos-kill-after", "1")
        try:
            with pytest.raises((StreamInterrupted, ConnectionError, OSError)):
                client.compile(BASELINE_SPEC)
            assert proc.wait(timeout=60) == -9  # really SIGKILLed
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()

        # One case made it into the manifest before the kill.
        manifest = (tmp_path / "state" / "manifest-service.jsonl").read_text()
        assert len(manifest.strip().splitlines()) == 1

        proc, client = self._spawn(tmp_path)
        try:
            out = client.compile_with_retry(BASELINE_SPEC)
            assert out["complete"]["ok"] is True
            sources = sorted(e["source"] for e in out["events"])
            # The manifested case streamed back without recompiling; only
            # the case the kill interrupted may have actually run.
            assert "manifest" in sources
            assert sum(s == "compile" for s in sources) <= 1
            stats = client.stats()
            assert stats["service"]["cases_compiled"] <= 1

            # And a third, fully-warm request: byte-identical final result
            # set, zero dispatches on top of the resumed run.
            warm = client.compile(BASELINE_SPEC)
            assert warm["accepted"]["warm"] is True
            assert json.dumps(warm["complete"]["results"], sort_keys=True) == json.dumps(
                out["complete"]["results"], sort_keys=True
            )
            assert client.stats()["service"]["dispatched"] == stats["service"]["dispatched"]
        finally:
            proc.kill()
            proc.wait(timeout=30)
