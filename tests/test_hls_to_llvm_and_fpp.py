"""Tests for the HLS→LLVM lowering (§3.2) and the f++ preprocessing step."""

import pytest

from repro.core.config import CompilerOptions
from repro.dialects import arith, hls, llvm as llvm_d, scf
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import CallOp, FuncOp, ReturnOp
from repro.fpp.preprocessor import FPPError, run_fpp
from repro.ir.passes import PassManager
from repro.ir.types import LLVMPointerType, LLVMStructType, f64
from repro.ir.verifier import verify_module
from repro.kernels.pw_advection import build_pw_advection
from repro.transforms.hls_to_llvm import (
    DATAFLOW_ANNOTATION,
    FIFO_READ,
    FIFO_WRITE,
    HLSToLLVMPass,
    INTERFACE_ANNOTATION,
    PIPELINE_PREFIX,
    UNROLL_PREFIX,
)
from repro.transforms.stencil_to_hls import StencilToHLSPass


def small_hls_kernel():
    """A hand-written HLS-dialect kernel exercising every lowering rule."""
    module = ModuleOp()
    func = FuncOp.with_body("kernel", [f64], [], attributes={"hls.kernel": arith.IntAttr(1)})
    module.add_op(func)
    block = func.entry_block
    block.add_op(hls.InterfaceOp(func.args[0], "m_axi", "gmem0"))
    stream = hls.CreateStreamOp(f64, depth=8)
    block.add_op(stream)
    producer = hls.DataflowOp(label="producer")
    block.add_op(producer)
    value = arith.ConstantOp.from_float(1.0)
    producer.body.add_ops([value, hls.WriteOp(stream.result, value.result)])
    consumer = hls.DataflowOp(label="consumer")
    block.add_op(consumer)
    zero = arith.ConstantOp.from_index(0)
    ten = arith.ConstantOp.from_index(10)
    one = arith.ConstantOp.from_index(1)
    loop = scf.ForOp(zero.result, ten.result, one.result)
    loop.body.add_op(hls.PipelineOp(2))
    loop.body.add_op(hls.UnrollOp(4))
    read = hls.ReadOp(stream.result)
    loop.body.add_ops([read, scf.YieldOp()])
    consumer.body.add_ops([zero, ten, one, loop])
    block.add_op(ReturnOp([]))
    return module, func


def lowered_pw(small_shape):
    module = build_pw_advection(small_shape)
    PassManager([StencilToHLSPass(CompilerOptions()), HLSToLLVMPass()]).run(module)
    return module


class TestHLSToLLVM:
    def test_no_hls_ops_remain(self):
        module, _ = small_hls_kernel()
        PassManager([HLSToLLVMPass()]).run(module)
        assert not [op for op in module.walk() if isinstance(op, hls.DIALECT_OPERATIONS)]
        verify_module(module)

    def test_stream_lowering_produces_legal_vitis_stream(self):
        module, _ = small_hls_kernel()
        PassManager([HLSToLLVMPass()]).run(module)
        allocas = [op for op in module.walk() if isinstance(op, llvm_d.AllocaOp)]
        assert len(allocas) == 1
        assert llvm_d.is_legal_stream_type(allocas[0].result.type)
        geps = [op for op in module.walk() if isinstance(op, llvm_d.GEPOp)]
        assert geps and geps[0].indices == (0, 0)
        depth_calls = [
            op for op in module.walk()
            if isinstance(op, llvm_d.CallOp) and op.callee == llvm_d.SET_STREAM_DEPTH_INTRINSIC
        ]
        assert len(depth_calls) == 1

    def test_directives_become_void_annotation_calls(self):
        module, _ = small_hls_kernel()
        PassManager([HLSToLLVMPass()]).run(module)
        callees = [op.callee for op in module.walk() if isinstance(op, CallOp)]
        assert f"{PIPELINE_PREFIX}2" in callees
        assert f"{UNROLL_PREFIX}4" in callees
        assert DATAFLOW_ANNOTATION in callees
        assert INTERFACE_ANNOTATION in callees
        # Annotation functions are declared as externals.
        declared = {op.sym_name for op in module.body.ops if isinstance(op, FuncOp) and op.is_declaration}
        assert f"{PIPELINE_PREFIX}2" in declared

    def test_dataflow_regions_outlined_into_stage_functions(self):
        module, func = small_hls_kernel()
        PassManager([HLSToLLVMPass()]).run(module)
        stage_funcs = [
            op for op in module.body.ops
            if isinstance(op, FuncOp) and "hls.dataflow_stage" in op.attributes
        ]
        assert len(stage_funcs) == 2
        # The kernel now calls the stage functions instead of holding regions.
        kernel_calls = [op.callee for op in func.walk() if isinstance(op, CallOp)]
        assert any(c.endswith("producer") for c in kernel_calls)
        assert any(c.endswith("consumer") for c in kernel_calls)
        assert not list(func.walk_type(hls.DataflowOp))

    def test_fifo_accesses_lowered_to_intrinsics(self):
        module, _ = small_hls_kernel()
        PassManager([HLSToLLVMPass()]).run(module)
        callees = [op.callee for op in module.walk() if isinstance(op, llvm_d.CallOp)]
        assert FIFO_READ in callees
        assert FIFO_WRITE in callees

    def test_full_kernel_lowering_verifies(self, small_shape):
        module = lowered_pw(small_shape)
        verify_module(module)
        assert not [op for op in module.walk() if isinstance(op, hls.DIALECT_OPERATIONS)]


class TestFPP:
    def test_report_counts_on_pw_kernel(self, small_shape):
        module = lowered_pw(small_shape)
        report = run_fpp(module)
        assert report.dataflow_functions == 1
        assert report.interface_annotations == 12          # one per kernel argument
        # 6 small-data copy loops + 3 compute loops are pipelined.
        assert report.pipelined_loops == 9
        assert report.streams_checked == 18
        assert report.array_partitions == 6
        assert report.kernel_functions == ["pw_advection_hls"]
        assert any(name.startswith("load_data") for name in report.runtime_functions)
        assert report.total_directives > 20

    def test_annotation_calls_removed_and_metadata_attached(self, small_shape):
        module = lowered_pw(small_shape)
        run_fpp(module)
        callees = [op.callee for op in module.walk() if isinstance(op, CallOp)]
        assert not any(c.startswith("_hls_") for c in callees)
        pipelined = [
            op for op in module.walk()
            if isinstance(op, scf.ForOp) and "llvm.loop.pipeline.ii" in op.attributes
        ]
        assert pipelined
        assert all(op.attributes["llvm.loop.pipeline.ii"].value == 1 for op in pipelined)
        dataflow_funcs = [
            op for op in module.walk_type(FuncOp) if "fpga.dataflow.func" in op.attributes
        ]
        assert dataflow_funcs

    def test_unroll_metadata_attached_to_loop(self):
        module, _ = small_hls_kernel()
        PassManager([HLSToLLVMPass()]).run(module)
        report = run_fpp(module)
        assert report.unrolled_loops == 1
        loops = [op for op in module.walk() if isinstance(op, scf.ForOp)]
        assert any("llvm.loop.unroll.count" in op.attributes for op in loops)

    def test_missing_stream_depth_rejected(self):
        module, _ = small_hls_kernel()
        PassManager([HLSToLLVMPass()]).run(module)
        for op in list(module.walk()):
            if isinstance(op, llvm_d.CallOp) and op.callee == llvm_d.SET_STREAM_DEPTH_INTRINSIC:
                op.erase()
        with pytest.raises(FPPError):
            run_fpp(module)
        # Non-strict mode tolerates it (useful while debugging lowerings).
        report = run_fpp(module, strict=False)
        assert report.streams_checked == 1

    def test_unroll_outside_loop_rejected(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [], [])
        module.add_op(func)
        func.entry_block.add_ops([CallOp(f"{UNROLL_PREFIX}2", []), ReturnOp([])])
        with pytest.raises(FPPError):
            run_fpp(module)

    def test_idempotent_on_plain_module(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [], [])
        func.entry_block.add_op(ReturnOp([]))
        module.add_op(func)
        report = run_fpp(module)
        assert report.total_directives == 0
