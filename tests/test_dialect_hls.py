"""Tests for the paper's HLS dialect (Listings 2 and 3)."""

import pytest

from repro.dialects import arith, hls
from repro.ir.core import VerifyException
from repro.ir.types import f64, i1


def make_stream(element=f64, depth=8):
    return hls.CreateStreamOp(element, depth=depth)


class TestAttributes:
    def test_axi_protocol_names_and_codes(self):
        attr = hls.AxiProtocolAttr("m_axi")
        assert attr.code == 0
        assert hls.AxiProtocolAttr(2).protocol == "s_axilite"
        assert "m_axi" in str(attr)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(VerifyException):
            hls.AxiProtocolAttr("pcie")
        with pytest.raises(VerifyException):
            hls.AxiProtocolAttr(99)

    def test_stream_type(self):
        t = hls.StreamType(f64)
        assert t.element_type == f64
        assert str(t) == "!hls.stream<f64>"
        assert hls.StreamType(f64) == hls.StreamType(f64)


class TestStreamOps:
    def test_create_stream(self):
        stream = make_stream(depth=32)
        assert isinstance(stream.result.type, hls.StreamType)
        assert stream.element_type == f64
        assert stream.depth == 32

    def test_create_stream_depth_check(self):
        with pytest.raises(VerifyException):
            hls.CreateStreamOp(f64, depth=0)

    def test_read_write(self):
        stream = make_stream()
        read = hls.ReadOp(stream.result)
        assert read.result.type == f64
        value = arith.ConstantOp.from_float(1.0)
        write = hls.WriteOp(stream.result, value.result)
        write.verify_()

    def test_write_type_mismatch(self):
        stream = make_stream()
        bad = arith.ConstantOp.from_int(1)
        write = hls.WriteOp(stream.result, bad.result)
        with pytest.raises(VerifyException):
            write.verify_()

    def test_read_requires_stream(self):
        value = arith.ConstantOp.from_float(1.0)
        with pytest.raises(VerifyException):
            hls.ReadOp(value.result)
        with pytest.raises(VerifyException):
            hls.WriteOp(value.result, value.result)

    def test_empty_full(self):
        stream = make_stream()
        assert hls.EmptyOp(stream.result).result.type == i1
        assert hls.FullOp(stream.result).result.type == i1
        value = arith.ConstantOp.from_float(1.0)
        with pytest.raises(VerifyException):
            hls.EmptyOp(value.result)
        with pytest.raises(VerifyException):
            hls.FullOp(value.result)


class TestDirectiveOps:
    def test_pipeline(self):
        assert hls.PipelineOp(1).ii == 1
        assert hls.PipelineOp(4).ii == 4
        with pytest.raises(VerifyException):
            hls.PipelineOp(0)

    def test_unroll(self):
        assert hls.UnrollOp(0).factor == 0
        assert hls.UnrollOp(8).factor == 8
        with pytest.raises(VerifyException):
            hls.UnrollOp(-1)

    def test_array_partition(self):
        op = hls.ArrayPartitionOp(kind="cyclic", factor=4, dim=1)
        assert op.kind == "cyclic"

    def test_interface(self):
        value = arith.ConstantOp.from_float(1.0)
        op = hls.InterfaceOp(value.result, "m_axi", "gmem_u")
        assert op.protocol == "m_axi"
        assert op.bundle == "gmem_u"
        assert op.argument is value.result

    def test_dataflow_region(self):
        region = hls.DataflowOp(label="load_stage")
        assert region.label == "load_stage"
        assert len(region.body.ops) == 0
        region.body.add_op(arith.ConstantOp.from_float(1.0))
        assert len(region.body.ops) == 1
        assert hls.DataflowOp().label == ""


class TestDialectSurface:
    def test_exactly_ten_operations(self):
        # The paper describes ten operations (Listing 3).
        assert len(hls.DIALECT_OPERATIONS) == 10
        names = {op.name for op in hls.DIALECT_OPERATIONS}
        assert names == {
            "hls.interface", "hls.pipeline", "hls.unroll", "hls.array_partition",
            "hls.dataflow", "hls.create_stream", "hls.read", "hls.write",
            "hls.empty", "hls.full",
        }
