"""Unit tests for the SSA IR core: values, operations, blocks, regions."""

import pytest

from repro.dialects import arith
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir.core import Block, Operation, Region, VerifyException
from repro.ir.types import f64, i64


def make_add():
    a = arith.ConstantOp.from_float(1.0)
    b = arith.ConstantOp.from_float(2.0)
    add = arith.AddfOp(a.result, b.result)
    return a, b, add


class TestSSAValues:
    def test_result_belongs_to_op(self):
        a = arith.ConstantOp.from_float(1.0)
        assert a.result.op is a
        assert a.result.index == 0
        assert a.result.type == f64

    def test_use_tracking(self):
        a, b, add = make_add()
        assert a.result.num_uses == 1
        assert b.result.num_uses == 1
        assert add in a.result.users

    def test_replace_all_uses_with(self):
        a, b, add = make_add()
        c = arith.ConstantOp.from_float(3.0)
        a.result.replace_all_uses_with(c.result)
        assert add.operands[0] is c.result
        assert a.result.num_uses == 0
        assert c.result.num_uses == 1

    def test_replace_all_uses_with_self_is_noop(self):
        a, _, add = make_add()
        a.result.replace_all_uses_with(a.result)
        assert add.operands[0] is a.result

    def test_block_argument_owner(self):
        block = Block([f64, i64])
        assert block.args[0].owner() is block
        assert block.args[1].index == 1

    def test_result_property_requires_single_result(self):
        ret = ReturnOp([])
        with pytest.raises(ValueError):
            _ = ret.result


class TestOperations:
    def test_operands_are_tuples(self):
        _, _, add = make_add()
        assert isinstance(add.operands, tuple)
        assert len(add.operands) == 2

    def test_non_ssa_operand_rejected(self):
        a = arith.ConstantOp.from_float(1.0)
        with pytest.raises(TypeError):
            arith.AddfOp(a.result, 3.0)  # type: ignore[arg-type]

    def test_set_operands_rewires_uses(self):
        a, b, add = make_add()
        c = arith.ConstantOp.from_float(4.0)
        add.set_operands([c.result, c.result])
        assert a.result.num_uses == 0
        assert b.result.num_uses == 0
        assert c.result.num_uses == 2

    def test_erase_with_uses_raises(self):
        a, _, _ = make_add()
        with pytest.raises(VerifyException):
            a.erase()

    def test_erase_unused_ok(self):
        a = arith.ConstantOp.from_float(1.0)
        block = Block()
        block.add_op(a)
        a.erase()
        assert a.parent is None
        assert block.ops == ()

    def test_detach_keeps_operands(self):
        a, _, add = make_add()
        block = Block()
        block.add_ops([a, add])
        add.detach()
        assert add.parent is None
        assert a.result.num_uses == 1

    def test_parent_links(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [f64], [])
        module.add_op(func)
        const = arith.ConstantOp.from_float(1.0)
        func.entry_block.add_op(const)
        assert const.parent_op() is func
        assert func.parent_op() is module
        assert const.parent_region() is func.body

    def test_walk_preorder(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [], [])
        module.add_op(func)
        const = arith.ConstantOp.from_float(1.0)
        func.entry_block.add_op(const)
        names = [op.name for op in module.walk()]
        assert names == ["builtin.module", "func.func", "arith.constant"]

    def test_walk_type(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [], [])
        module.add_op(func)
        func.entry_block.add_ops([arith.ConstantOp.from_float(1.0), ReturnOp([])])
        assert len(list(module.walk_type(arith.ConstantOp))) == 1

    def test_clone_remaps_operands(self):
        a, b, add = make_add()
        c = arith.ConstantOp.from_float(9.0)
        cloned = add.clone({a.result: c.result})
        assert cloned.operands[0] is c.result
        assert cloned.operands[1] is b.result
        assert cloned is not add

    def test_clone_regions_and_block_args(self):
        func = FuncOp.with_body("f", [f64], [])
        arg = func.entry_block.args[0]
        neg = arith.NegfOp(arg)
        func.entry_block.add_op(neg)
        value_map = {}
        cloned = func.clone(value_map)
        cloned_neg = list(cloned.walk_type(arith.NegfOp))[0]
        assert cloned_neg.operands[0] is cloned.entry_block.args[0]
        assert cloned_neg.operands[0] is not arg

    def test_traits(self):
        assert arith.AddfOp(arith.ConstantOp.from_float(1.0).result,
                            arith.ConstantOp.from_float(1.0).result).is_pure
        assert ReturnOp([]).is_terminator
        assert not ReturnOp([]).is_pure


class TestBlocksAndRegions:
    def test_insert_before_after(self):
        block = Block()
        a = arith.ConstantOp.from_float(1.0)
        c = arith.ConstantOp.from_float(3.0)
        block.add_ops([a, c])
        b = arith.ConstantOp.from_float(2.0)
        block.insert_op_after(b, a)
        assert [op.attributes["value"].value for op in block.ops] == [1.0, 2.0, 3.0]
        d = arith.ConstantOp.from_float(0.0)
        block.insert_op_before(d, a)
        assert block.ops[0] is d

    def test_double_attach_rejected(self):
        block1, block2 = Block(), Block()
        op = arith.ConstantOp.from_float(1.0)
        block1.add_op(op)
        with pytest.raises(VerifyException):
            block2.add_op(op)

    def test_terminator_property(self):
        block = Block()
        block.add_op(arith.ConstantOp.from_float(1.0))
        assert block.terminator is None
        block.add_op(ReturnOp([]))
        assert isinstance(block.terminator, ReturnOp)

    def test_block_add_and_erase_arg(self):
        block = Block()
        arg = block.add_arg(f64, "x")
        assert arg.name_hint == "x"
        block.erase_arg(arg)
        assert block.args == []

    def test_erase_used_block_arg_rejected(self):
        block = Block([f64])
        neg = arith.NegfOp(block.args[0])
        block.add_op(neg)
        with pytest.raises(VerifyException):
            block.erase_arg(block.args[0])

    def test_region_single_block_accessor(self):
        region = Region([Block()])
        assert region.block is region.blocks[0]
        region.add_block(Block())
        with pytest.raises(ValueError):
            _ = region.block

    def test_region_from_ops(self):
        region = Region.from_ops([arith.ConstantOp.from_float(1.0)])
        assert len(region.block.ops) == 1

    def test_module_symbol_lookup(self):
        module = ModuleOp()
        func = FuncOp.with_body("kernel", [], [])
        module.add_op(func)
        assert module.get_symbol("kernel") is func
        assert module.get_symbol("missing") is None
