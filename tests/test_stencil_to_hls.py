"""Tests for the nine-step Stencil-HMLS transformation (§3.3)."""

import pytest

from repro.core.config import CompilerOptions
from repro.dialects import hls, llvm as llvm_d, memref as memref_d, scf, stencil
from repro.dialects.func import CallOp, FuncOp
from repro.ir.passes import PassManager
from repro.ir.types import LLVMPointerType, LLVMStructType, MemRefType
from repro.ir.verifier import verify_module
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.tracer_advection import build_tracer_advection
from repro.runtime.window import window_index
from repro.transforms.stencil_to_hls import StencilToHLSPass


def lower(module, options=None):
    pass_ = StencilToHLSPass(options or CompilerOptions())
    PassManager([pass_]).run(module)
    return pass_


@pytest.fixture()
def pw_lowered(small_shape):
    module = build_pw_advection(small_shape)
    pass_ = lower(module)
    plan = pass_.plans["pw_advection_hls"]
    kernel = module.get_symbol("pw_advection_hls")
    return module, kernel, plan


class TestKernelStructure:
    def test_original_function_replaced(self, pw_lowered):
        module, kernel, _ = pw_lowered
        assert module.get_symbol("pw_advection") is None
        assert isinstance(kernel, FuncOp)
        assert "hls.kernel" in kernel.attributes

    def test_module_still_verifies(self, pw_lowered):
        module, _, _ = pw_lowered
        verify_module(module)

    def test_no_stencil_ops_left_in_kernel(self, pw_lowered):
        _, kernel, _ = pw_lowered
        assert not list(kernel.walk_type(stencil.ApplyOp))
        assert not list(kernel.walk_type(stencil.AccessOp))
        assert not list(kernel.walk_type(stencil.StoreOp))

    def test_runtime_declarations_added(self, pw_lowered):
        module, _, plan = pw_lowered
        declared = {
            op.sym_name for op in module.body.ops
            if isinstance(op, FuncOp) and op.is_declaration
        }
        assert plan.waves[0].load.callee in declared
        assert plan.waves[0].write.callee in declared
        for shift in plan.waves[0].shifts:
            assert shift.callee in declared


class TestStep2InterfacePacking:
    def test_field_args_become_512bit_packed_pointers(self, pw_lowered):
        _, kernel, _ = pw_lowered
        for arg in kernel.entry_block.args:
            if arg.name_hint in ("u", "v", "w", "su", "sv", "sw"):
                assert isinstance(arg.type, LLVMPointerType)
                struct = arg.type.pointee
                assert isinstance(struct, LLVMStructType)
                assert struct.element_types[0].count == 8      # 8 x f64 = 512 bits
            elif arg.name_hint.startswith("tz"):
                assert isinstance(arg.type, MemRefType)        # small data stays addressable

    def test_packing_can_be_disabled(self, small_shape):
        module = build_pw_advection(small_shape)
        pass_ = lower(module, CompilerOptions(pack_interfaces=False))
        kernel = module.get_symbol("pw_advection_hls")
        u = next(a for a in kernel.entry_block.args if a.name_hint == "u")
        assert isinstance(u.type, LLVMPointerType)
        assert not isinstance(u.type.pointee, LLVMStructType)
        plan = pass_.plans["pw_advection_hls"]
        assert all(i.packed_lanes == 1 for i in plan.interfaces if i.protocol == "m_axi")


class TestStep3Streams:
    def test_streams_created_for_inputs_and_windows(self, pw_lowered):
        _, kernel, plan = pw_lowered
        creates = list(kernel.walk_type(hls.CreateStreamOp))
        assert len(creates) == len(plan.streams)
        kinds = {s.kind for s in plan.streams}
        assert kinds == {"raw_in", "window", "window_copy", "result"}

    def test_window_streams_duplicated_per_consumer(self, pw_lowered):
        _, _, plan = pw_lowered
        # Three compute stages all read u, v and w: each window stream must be
        # copied once per consuming stage.
        copies = [s for s in plan.streams if s.kind == "window_copy"]
        assert len(copies) == 9
        assert len(plan.waves[0].duplicates) == 3

    def test_shift_buffer_stage_per_input_field(self, pw_lowered):
        _, kernel, plan = pw_lowered
        wave = plan.waves[0]
        assert {s.field_name for s in wave.shifts} == {"u", "v", "w"}
        for shift in wave.shifts:
            assert shift.radius == 1
            assert shift.window_size == 27        # 3-D unit-radius window (Figure 2)
            assert shift.buffer_elements > 27

    def test_dataflow_regions_cover_figure3_structure(self, pw_lowered):
        _, kernel, plan = pw_lowered
        labels = [op.label for op in kernel.walk_type(hls.DataflowOp)]
        assert any(l.startswith("load_") for l in labels)
        assert sum(1 for l in labels if l.startswith("shift_")) == 3
        assert sum(1 for l in labels if l.startswith("duplicate_")) == 3
        assert sum(1 for l in labels if l.startswith("compute_")) == 3
        assert any(l.startswith("write_data") for l in labels)


class TestStep4ComputeSplit:
    def test_one_compute_stage_per_output_field(self, pw_lowered):
        _, _, plan = pw_lowered
        computes = plan.waves[0].computes
        assert len(computes) == 3
        assert sorted(c.output_fields[0] for c in computes) == ["su", "sv", "sw"]

    def test_split_can_be_disabled(self, small_shape):
        module = build_pw_advection(small_shape)
        pass_ = lower(module, CompilerOptions(split_compute_per_field=False))
        kernel = module.get_symbol("pw_advection_hls")
        compute_regions = [
            op for op in kernel.walk_type(hls.DataflowOp) if op.label.startswith("compute_")
        ]
        assert len(compute_regions) == 1
        plan = pass_.plans["pw_advection_hls"]
        assert not plan.waves[0].duplicates      # a single consumer needs no copies


class TestStep5OffsetMapping:
    def test_accesses_become_window_extracts(self, pw_lowered):
        _, kernel, _ = pw_lowered
        extracts = list(kernel.walk_type(llvm_d.ExtractValueOp))
        assert extracts
        # All lanes must be inside the 27-value window.
        for extract in extracts:
            assert 0 <= extract.position[0] < 27
        # The centre lane must be used somewhere.
        assert any(e.position[0] == window_index((0, 0, 0), 1) for e in extracts)

    def test_pipeline_directive_in_compute_loops(self, pw_lowered):
        _, kernel, _ = pw_lowered
        for region in kernel.walk_type(hls.DataflowOp):
            if not region.label.startswith("compute_"):
                continue
            loops = list(region.walk_type(scf.ForOp))
            assert loops
            assert any(isinstance(op, hls.PipelineOp) and op.ii == 1
                       for op in loops[0].body.ops)


class TestStep6And7DataMovers:
    def test_single_load_and_write_call_per_wave(self, pw_lowered):
        _, kernel, plan = pw_lowered
        calls = [op for op in kernel.walk_type(CallOp)]
        load_calls = [c for c in calls if c.callee.startswith("load_data")]
        write_calls = [c for c in calls if c.callee.startswith("write_data")]
        assert len(load_calls) == plan.num_waves == 1
        assert len(write_calls) == 1
        # The specialised load receives every input field plus its stream.
        assert len(load_calls[0].operands) == 2 * len(plan.waves[0].load.fields)

    def test_write_spec_covers_every_output(self, pw_lowered):
        _, _, plan = pw_lowered
        written = {f.field_name for f in plan.waves[0].write.fields}
        assert written == {"su", "sv", "sw"}
        for spec in plan.waves[0].write.fields:
            assert spec.lower == (1, 1, 1)


class TestStep8SmallData:
    def test_small_data_copied_per_consuming_stage(self, pw_lowered):
        _, kernel, plan = pw_lowered
        allocas = list(kernel.walk_type(memref_d.AllocaOp))
        # tzc1/tzc2 are used by the su and sv stages, tzd1/tzd2 by sw: 6 copies.
        assert len(allocas) == 6
        assert len(plan.small_copies) == 6
        assert {c.arg_name for c in plan.small_copies} == {"tzc1", "tzc2", "tzd1", "tzd2"}
        # Copy loops are pipelined.
        copy_loops = [op for op in kernel.entry_block.ops if isinstance(op, scf.ForOp)]
        assert len(copy_loops) == 6

    def test_small_data_copy_can_be_disabled(self, small_shape):
        module = build_pw_advection(small_shape)
        pass_ = lower(module, CompilerOptions(copy_small_data_to_bram=False))
        kernel = module.get_symbol("pw_advection_hls")
        assert not list(kernel.walk_type(memref_d.AllocaOp))
        assert not pass_.plans["pw_advection_hls"].small_copies


class TestStep9Interfaces:
    def test_every_argument_gets_an_interface(self, pw_lowered):
        _, kernel, plan = pw_lowered
        interfaces = list(kernel.walk_type(hls.InterfaceOp))
        assert len(interfaces) == len(kernel.entry_block.args)
        assert len(plan.interfaces) == len(interfaces)

    def test_fields_get_own_bundles_small_data_shares(self, pw_lowered):
        _, _, plan = pw_lowered
        field_bundles = {i.bundle for i in plan.interfaces if not i.is_small_data and i.protocol == "m_axi"}
        assert len(field_bundles) == 6
        small_bundles = {i.bundle for i in plan.interfaces if i.is_small_data}
        assert small_bundles == {"gmem_small"}
        scalar_ifaces = [i for i in plan.interfaces if i.protocol == "s_axilite"]
        assert {i.arg_name for i in scalar_ifaces} == {"tcx", "tcy"}
        assert plan.ports_per_cu == 7

    def test_single_bundle_ablation(self, small_shape):
        module = build_pw_advection(small_shape)
        pass_ = lower(module, CompilerOptions(separate_bundles=False))
        plan = pass_.plans["pw_advection_hls"]
        m_axi_bundles = {i.bundle for i in plan.interfaces if i.protocol == "m_axi"}
        assert m_axi_bundles == {"gmem0", "gmem_small"}
        assert plan.ports_per_cu == 2


class TestMultiWaveKernels:
    def test_tracer_waves_and_stage_counts(self, small_shape):
        module = build_tracer_advection(small_shape)
        pass_ = lower(module)
        plan = pass_.plans["tracer_advection_hls"]
        assert plan.num_waves == 12
        assert plan.num_compute_stages == 24
        # Every wave has its own load and write stages (chained dependencies
        # prevent the single-load structure of PW advection).
        kernel = module.get_symbol("tracer_advection_hls")
        calls = [op.callee for op in kernel.walk_type(CallOp)]
        assert sum(1 for c in calls if c.startswith("load_data")) == 12
        assert sum(1 for c in calls if c.startswith("write_data")) == 12
        assert plan.ports_per_cu == 17

    def test_plan_summary_mentions_key_numbers(self, pw_lowered):
        _, _, plan = pw_lowered
        summary = plan.summary()
        assert "compute stages" in summary
        assert "waves" in summary
