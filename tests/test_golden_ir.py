"""Golden-IR tests: each stencil→HLS sub-pass locked by a FileCheck-lite file.

Every ``tests/golden/*.filecheck`` file carries a header naming the kernel
and the pipeline prefix to run::

    // RUN: pipeline=stencil-shape-inference,stencil-interface-lowering
    // KERNEL: pw_advection@8M

The driver builds the kernel, runs the pipeline through the pass registry,
prints the module and matches it against the file's CHECK directives.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.ir.pass_registry import PassRegistry
from repro.ir.passes import PassContext
from repro.ir.printer import print_module
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.tracer_advection import build_tracer_advection
from repro.transforms.stencil_hls import LoweringContext

from filecheck import FileCheckError, run_filecheck

GOLDEN_DIR = Path(__file__).parent / "golden"

_KERNELS = {
    "pw_advection": (build_pw_advection, PW_ADVECTION_SIZES),
    "tracer_advection": (build_tracer_advection, TRACER_ADVECTION_SIZES),
}


def _load_header(text: str, key: str, default: str | None = None) -> str:
    found = re.search(rf"//\s*{key}:\s*(\S+)", text)
    if found is None:
        if default is None:
            raise AssertionError(f"golden file is missing a '// {key}:' header")
        return default
    return found.group(1)


def golden_files() -> list[Path]:
    return sorted(GOLDEN_DIR.glob("*.filecheck"))


def test_golden_directory_covers_all_six_sub_passes():
    specs = [
        _load_header(path.read_text(), "RUN").removeprefix("pipeline=")
        for path in golden_files()
    ]
    scheduled = {name for spec in specs for name in spec.split(",")}
    assert {
        "stencil-shape-inference",
        "stencil-interface-lowering",
        "stencil-small-data-buffering",
        "stencil-wave-pipelining",
        "stencil-compute-split",
        "hls-bundle-assignment",
    } <= scheduled


@pytest.mark.parametrize("path", golden_files(), ids=lambda p: p.stem)
def test_golden_ir(path: Path):
    text = path.read_text()
    spec = _load_header(text, "RUN").removeprefix("pipeline=")
    kernel_ref = _load_header(text, "KERNEL", "pw_advection@8M")
    kernel, _, size = kernel_ref.partition("@")
    builder, sizes = _KERNELS[kernel]
    module = builder(sizes[size].shape)

    context = PassContext()
    context.set(LoweringContext())
    PassRegistry.parse(spec, context=context).run(module)

    try:
        run_filecheck(print_module(module), text)
    except FileCheckError as err:
        pytest.fail(f"{path.name}: {err}", pytrace=False)
