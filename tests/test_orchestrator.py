"""The distributed shard orchestrator: prefix-aware planning, launchers,
streaming events, resumability manifest and merged-report determinism."""

from __future__ import annotations

import json

import pytest

from repro.core.compile_cache import CompileCache
from repro.evaluation.harness import (
    ABLATION_VARIANTS,
    BenchmarkCase,
    EvaluationHarness,
)
from repro.evaluation.orchestrator import (
    EXIT_INTERRUPTED,
    EventWriter,
    LocalLauncher,
    case_from_dict,
    case_to_dict,
    load_manifest,
    main as orchestrator_main,
    orchestrate,
    order_for_prefix_sharing,
    pin_cases,
    plan_matrix,
    read_events,
    shared_prefix_depth,
    ShardHandle,
    split_shards,
    SubprocessLauncher,
)
from repro.evaluation.report import main as report_main
from repro.evaluation.report import merge_results, results_to_json
from repro.kernels.grids import PW_ADVECTION_SIZES, ProblemSize


def _ablation_cases() -> list[BenchmarkCase]:
    return EvaluationHarness(repeats=1).cases_for(
        "pw_advection", ["8M"], frameworks=["Stencil-HMLS"],
        variants=list(ABLATION_VARIANTS),
    )


class TestCaseSerialisation:
    def test_round_trip(self):
        case = BenchmarkCase(
            "pw_advection", PW_ADVECTION_SIZES["8M"], "Stencil-HMLS", "depth-8"
        )
        assert case_from_dict(case_to_dict(case)) == case

    def test_custom_problem_size_survives(self):
        case = BenchmarkCase("pw_advection", ProblemSize("3M", (768, 64, 64)))
        restored = case_from_dict(json.loads(json.dumps(case_to_dict(case))))
        assert restored.size.shape == (768, 64, 64)
        assert restored.framework is None


class TestPrefixScheduling:
    def test_shared_prefix_depth_of_ablation_family(self):
        cases = {c.variant: c for c in _ablation_cases()}
        # depth-8 / depth-64 toggle the 5th pass: 4 shared upstream passes.
        assert shared_prefix_depth(cases["depth-8"], cases["depth-64"]) == 4
        # ii-* toggles the 3rd pass: only canonicalize + shape-inference shared.
        assert shared_prefix_depth(cases["ii-2"], cases["ii-4"]) == 2
        # Different modules never share prefix artefacts.
        other = BenchmarkCase(
            "pw_advection", PW_ADVECTION_SIZES["32M"], "Stencil-HMLS", "depth-8"
        )
        assert shared_prefix_depth(cases["depth-8"], other) == 0

    def test_prefix_order_clusters_families(self):
        ordered = order_for_prefix_sharing(_ablation_cases())
        variants = [case.variant for case in ordered]
        # Same-pass toggles end up adjacent.
        assert abs(variants.index("depth-8") - variants.index("depth-64")) == 1
        assert abs(variants.index("ii-2") - variants.index("ii-4")) == 1
        assert abs(variants.index("width-256") - variants.index("width-1024")) == 1

    def test_split_shards_partitions_exactly(self):
        cases = order_for_prefix_sharing(_ablation_cases())
        for count in (1, 2, 3, len(cases), len(cases) + 2):
            shards = split_shards(cases, count)
            assert len(shards) == count
            flattened = [case for shard in shards for case in shard]
            assert flattened == cases  # contiguous, nothing lost or reordered

    def test_split_shards_rejects_bad_count(self):
        with pytest.raises(ValueError):
            split_shards([], 0)

    def test_split_shards_survives_tail_affinity_cliff(self):
        """Regression: a low-affinity cut at the tail used to starve later
        boundaries of candidates (min() over an empty list) when shard
        count approached the case count."""
        harness = EvaluationHarness(repeats=1)
        cases = harness.cases_for(
            "pw_advection", ["8M"], frameworks=["Stencil-HMLS"],
            variants=["staged", "depth-8", "depth-64"],
        ) + harness.cases_for(
            "tracer_advection", ["8M"], frameworks=["Stencil-HMLS"]
        )
        ordered = order_for_prefix_sharing(cases)
        shards = split_shards(ordered, 3)
        assert [case for shard in shards for case in shard] == ordered
        assert all(shard for shard in shards)  # no shard starved empty

    def test_plan_matrix_orders(self):
        prefix_plan = plan_matrix(
            _ablation_cases(), shards=2, order="prefix"
        )
        case_plan = plan_matrix(_ablation_cases(), shards=2, order="case")
        assert prefix_plan.planned_cases == case_plan.planned_cases == len(
            ABLATION_VARIANTS
        )
        predicted_prefix = sum(s.prefix_reuse_depth for s in prefix_plan.shards)
        predicted_case = sum(s.prefix_reuse_depth for s in case_plan.shards)
        assert predicted_prefix > predicted_case
        with pytest.raises(ValueError):
            plan_matrix(_ablation_cases(), order="zigzag")

    def test_describe_names_every_case(self):
        plan = plan_matrix(_ablation_cases(), shards=2)
        text = plan.describe()
        assert "predicted prefix reuse" in text
        for variant in ABLATION_VARIANTS:
            assert f"@{variant}" in text


def _prefix_cache_hits(shards: list[list[BenchmarkCase]]) -> int:
    """Evaluate each shard with its own fresh in-memory cache; total the
    pass-prefix stage hits (chain sidecar reads + artefact restores)."""
    hits = 0
    for shard in shards:
        if not shard:
            continue
        cache = CompileCache()
        harness = EvaluationHarness(repeats=1, cache=cache)
        harness.run_matrix(cases=shard)
        hits += cache.stats.hits.get("pass-prefix-hash", 0)
        hits += cache.stats.hits.get("pass-prefix", 0)
    return hits


def test_prefix_order_beats_case_major_on_prefix_hits():
    """The acceptance criterion: on the staged ablation axis, prefix-aware
    ordering yields strictly more pass-prefix cache hits than legacy
    case-major (strided) ordering, measured on the real cache counters."""
    variants = ["staged", "ii-2", "depth-8", "depth-64"]
    cases = EvaluationHarness(repeats=1).cases_for(
        "pw_advection", ["8M"], frameworks=["Stencil-HMLS"], variants=variants
    )
    prefix_plan = plan_matrix(cases, shards=2, order="prefix")
    case_plan = plan_matrix(cases, shards=2, order="case")
    prefix_hits = _prefix_cache_hits([s.cases for s in prefix_plan.shards])
    case_hits = _prefix_cache_hits([s.cases for s in case_plan.shards])
    assert prefix_hits > case_hits


class TestEventChannel:
    def test_writer_and_reader_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = EventWriter(path)
        events.emit("plan", shards=2)
        events.emit("case_finished", label="x", cached=False)
        records = read_events(path)
        assert [r["event"] for r in records] == ["plan", "case_finished"]
        assert records[0]["shards"] == 2

    def test_run_matrix_on_result_streams_cached_flag(self, tmp_path):
        cases = [
            BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"], "Vitis HLS"),
            BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"], "DaCe"),
        ]
        cache = CompileCache(tmp_path)
        seen: list[tuple[str, bool]] = []
        harness = EvaluationHarness(repeats=1, cache=cache)
        harness.run_matrix(
            cases=cases,
            on_result=lambda case, fw, result, cached: seen.append((fw, cached)),
        )
        assert seen == [("Vitis HLS", False), ("DaCe", False)]
        seen.clear()
        warm = EvaluationHarness(repeats=1, cache=CompileCache(tmp_path))
        warm.run_matrix(
            cases=cases,
            on_result=lambda case, fw, result, cached: seen.append((fw, cached)),
        )
        assert seen == [("Vitis HLS", True), ("DaCe", True)]

    def test_report_cli_stream_emits_jsonl(self, capsys):
        code = report_main(
            ["--quick", "--repeats", "1", "--shard", "1/2", "--stream"]
        )
        assert code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        finished = [l for l in lines if l.get("event") == "case_finished"]
        assert finished and all("label" in l for l in finished)


class TestOrchestrateEndToEnd:
    def _quick_cases(self):
        return EvaluationHarness(repeats=1).cases_for(sizes=["8M"])

    def test_merged_report_matches_single_process_run(self, tmp_path):
        plan = plan_matrix(self._quick_cases(), shards=2)
        code, merged = orchestrate(
            plan,
            state_dir=tmp_path / "state",
            launcher=LocalLauncher(),
            output=tmp_path / "merged.json",
        )
        assert code == 0
        serial = EvaluationHarness(repeats=1).run_matrix(cases=self._quick_cases())
        serial_entries = json.loads(results_to_json(serial, deterministic=True))
        expected = json.dumps(
            merge_results(serial_entries), indent=2, sort_keys=True
        )
        assert (tmp_path / "merged.json").read_text() == expected

    def test_interrupt_and_resume_recompiles_nothing(self, tmp_path):
        state = tmp_path / "state"
        cases = self._quick_cases()
        plan = plan_matrix(cases, shards=2)
        events = EventWriter(tmp_path / "events1.jsonl")
        code, _ = orchestrate(
            plan,
            state_dir=state,
            launcher=LocalLauncher(),
            max_cases_per_shard=1,
            events=events,
        )
        assert code == EXIT_INTERRUPTED
        manifest = load_manifest(state)
        assert len(manifest) == 2  # one completed case per shard

        resume_plan = plan_matrix(cases, shards=2, completed=manifest)
        assert len(resume_plan.resumed) == 2
        assert resume_plan.planned_cases == plan.planned_cases - 2

        events2 = EventWriter(tmp_path / "events2.jsonl")
        code, merged = orchestrate(
            resume_plan,
            state_dir=state,
            launcher=LocalLauncher(),
            events=events2,
            output=tmp_path / "merged.json",
        )
        assert code == 0
        finished = [
            e for e in read_events(tmp_path / "events2.jsonl")
            if e.get("event") == "case_finished"
        ]
        # Zero recompiles: every case run 1 completed stayed untouched in
        # run 2 (digests disjoint), and run 2 ran exactly the remainder.
        assert not ({e["digest"] for e in finished} & set(manifest))
        assert len(finished) == resume_plan.planned_cases
        # The merged report covers the *full* matrix despite the partial runs.
        assert len(merged) == plan.planned_cases

    def test_merged_report_excludes_other_sweeps_in_same_state_dir(self, tmp_path):
        """Regression: the merge used to include *every* manifest entry, so
        a narrower re-run against a shared state dir leaked results of the
        earlier, wider sweep into its report."""
        state = tmp_path / "state"
        wide = plan_matrix(self._quick_cases(), shards=2)
        orchestrate(wide, state_dir=state, launcher=LocalLauncher())
        narrow_cases = EvaluationHarness(repeats=1).cases_for(
            "pw_advection", ["8M"]
        )
        narrow = plan_matrix(
            narrow_cases, shards=2, completed=load_manifest(state)
        )
        code, merged = orchestrate(
            narrow, state_dir=state, launcher=LocalLauncher()
        )
        assert code == 0
        assert {entry["kernel"] for entry in merged} == {"pw_advection"}
        assert len(merged) == len(pin_cases(narrow_cases))

    def test_cli_dry_run(self, tmp_path, capsys):
        code = orchestrator_main(
            ["--dry-run", "--quick", "--shards", "2",
             "--kernels", "pw_advection", "--variants", "staged", "depth-8",
             "--state-dir", str(tmp_path / "state")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "orchestration plan" in out and "@staged" in out

    def test_subprocess_launcher_worker_round_trip(self, tmp_path):
        """The --run-shard worker entry point, driven through the real
        SubprocessLauncher (spec file → spawned process → events/manifest
        /results artefacts), on two cheap baseline cases."""
        cases = [
            BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"], "Vitis HLS"),
            BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"], "DaCe"),
        ]
        plan = plan_matrix(cases, shards=1)
        code, merged = orchestrate(
            plan,
            state_dir=tmp_path / "state",
            launcher=SubprocessLauncher(),
            output=tmp_path / "merged.json",
        )
        assert code == 0
        assert {entry["framework"] for entry in merged} == {"Vitis HLS", "DaCe"}
        events = read_events(tmp_path / "state" / "events-shard1.jsonl")
        assert [e["event"] for e in events] == [
            "shard_started", "case_finished", "case_finished", "shard_finished",
        ]
        assert len(load_manifest(tmp_path / "state")) == 2

    def test_crashed_worker_is_not_reported_as_resumable(self, tmp_path, capsys):
        """A worker that dies (vs. one stopped by --max-cases-per-shard)
        must surface as a hard failure (exit 1), not EXIT_INTERRUPTED —
        even after the retry budget replayed it."""

        class CrashingLauncher(LocalLauncher):
            def start(self, spec):
                # Died before recording anything, every attempt.
                return ShardHandle(spec=spec, code=1)

        plan = plan_matrix(
            [BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"], "DaCe")],
            shards=1,
        )
        code, merged = orchestrate(
            plan, state_dir=tmp_path / "state", launcher=CrashingLauncher(),
            max_retries=1, retry_backoff=0.0,
        )
        assert code == 1
        assert merged == []
        assert "failed with exit code 1" in capsys.readouterr().err


class TestManifest:
    def test_load_manifest_ignores_garbage_lines(self, tmp_path):
        path = tmp_path / "manifest-shard1.jsonl"
        good = {"digest": "d1", "result": {"kernel": "pw"}}
        path.write_text(json.dumps(good) + "\nnot json\n" + json.dumps({"no": 1}) + "\n")
        manifest = load_manifest(tmp_path)
        assert set(manifest) == {"d1"}
