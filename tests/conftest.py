"""Shared fixtures.

Functional simulations interpret IR point-by-point in Python, so every
correctness fixture uses a deliberately tiny grid; the paper-scale problem
sizes are exercised through the analytic models only (see benchmarks/).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CompilerOptions
from repro.core.pipeline import StencilHMLSCompiler
from repro.kernels.grids import initial_fields
from repro.kernels.pw_advection import (
    PW_INPUT_FIELDS,
    PW_OUTPUT_FIELDS,
    PW_SCALARS,
    build_pw_advection,
    pw_advection_small_data,
)
from repro.kernels.tracer_advection import (
    TRACER_INPUT_FIELDS,
    TRACER_SCALARS,
    TRACER_WORKSPACE_FIELDS,
    build_tracer_advection,
)

#: Tiny grid used by all functional correctness tests.
SMALL_SHAPE = (6, 5, 4)


@pytest.fixture(scope="session")
def small_shape():
    return SMALL_SHAPE


@pytest.fixture(scope="session")
def pw_module():
    return build_pw_advection(SMALL_SHAPE)


@pytest.fixture(scope="session")
def tracer_module():
    return build_tracer_advection(SMALL_SHAPE)


@pytest.fixture(scope="session")
def pw_xclbin(pw_module):
    return StencilHMLSCompiler(CompilerOptions()).compile(pw_module)


@pytest.fixture(scope="session")
def tracer_xclbin(tracer_module):
    return StencilHMLSCompiler(CompilerOptions()).compile(tracer_module)


@pytest.fixture()
def pw_data():
    arrays = initial_fields(SMALL_SHAPE, PW_INPUT_FIELDS + PW_OUTPUT_FIELDS)
    small = pw_advection_small_data(SMALL_SHAPE)
    return arrays, small, dict(PW_SCALARS)


@pytest.fixture()
def tracer_data():
    arrays = initial_fields(SMALL_SHAPE, TRACER_INPUT_FIELDS + TRACER_WORKSPACE_FIELDS)
    return arrays, {}, dict(TRACER_SCALARS)


def copy_arrays(arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    return {name: array.copy() for name, array in arrays.items()}
