"""Tests for the stencil dialect."""

import pytest

from repro.dialects import arith, memref as memref_d, stencil
from repro.ir.core import VerifyException
from repro.ir.types import DYNAMIC, MemRefType, f64


def make_field(shape=(8, 8, 8)):
    memref = memref_d.AllocOp(MemRefType(list(shape), f64))
    field_type = stencil.FieldType([(0, s) for s in shape], f64)
    ext = stencil.ExternalLoadOp(memref.result, field_type)
    return memref, ext


class TestStencilTypes:
    def test_field_type(self):
        t = stencil.FieldType([(0, 128)], f64)
        assert t.rank == 1
        assert t.shape == (128,)
        assert t.num_elements == 128
        assert str(t) == "!stencil.field<[0,128]xf64>"

    def test_field_bounds_validation(self):
        with pytest.raises(VerifyException):
            stencil.FieldType([(5, 3)], f64)

    def test_temp_type(self):
        t = stencil.TempType([DYNAMIC, DYNAMIC], f64)
        assert not t.has_static_shape
        assert "?" in str(t)
        assert stencil.TempType([4], f64).has_static_shape

    def test_dynamic_temp_like(self):
        field = stencil.FieldType([(0, 4), (0, 4)], f64)
        temp = stencil.dynamic_temp_like(field)
        assert temp.rank == 2 and not temp.has_static_shape

    def test_result_type_str(self):
        assert str(stencil.ResultType(f64)) == "!stencil.result<f64>"


class TestStencilOps:
    def test_external_load_and_load(self):
        memref, ext = make_field()
        load = stencil.LoadOp(ext.result)
        assert isinstance(load.result.type, stencil.TempType)
        assert load.field is ext.result

    def test_load_requires_field(self):
        memref = memref_d.AllocOp(MemRefType([4], f64))
        with pytest.raises(VerifyException):
            stencil.LoadOp(memref.result)

    def test_store_bounds_validation(self):
        memref, ext = make_field()
        load = stencil.LoadOp(ext.result)
        apply_op = stencil.ApplyOp([load.result], [stencil.TempType([-1] * 3, f64)])
        store = stencil.StoreOp(apply_op.results[0], ext.result, (1, 1, 1), (7, 7, 7))
        store.verify_()
        with pytest.raises(VerifyException):
            stencil.StoreOp(apply_op.results[0], ext.result, (1, 1), (7, 7, 7)).verify_()
        with pytest.raises(VerifyException):
            stencil.StoreOp(apply_op.results[0], ext.result, (5, 5, 5), (1, 1, 1)).verify_()

    def test_apply_block_args_match_operands(self):
        memref, ext = make_field()
        load = stencil.LoadOp(ext.result)
        apply_op = stencil.ApplyOp([load.result], [stencil.TempType([-1] * 3, f64)])
        assert len(apply_op.block_args) == 1
        assert apply_op.arg_for_operand(load.result) is apply_op.body.args[0]
        assert apply_op.operand_for_arg(apply_op.body.args[0]) is load.result

    def test_apply_verifies_return(self):
        memref, ext = make_field()
        load = stencil.LoadOp(ext.result)
        apply_op = stencil.ApplyOp([load.result], [stencil.TempType([-1] * 3, f64)])
        with pytest.raises(VerifyException):
            apply_op.verify_()  # no stencil.return yet
        access = stencil.AccessOp(apply_op.body.args[0], (0, 0, 0))
        apply_op.body.add_ops([access, stencil.ReturnOp([access.result])])
        apply_op.verify_()

    def test_apply_return_arity(self):
        memref, ext = make_field()
        load = stencil.LoadOp(ext.result)
        apply_op = stencil.ApplyOp([load.result], [stencil.TempType([-1] * 3, f64)] * 2)
        access = stencil.AccessOp(apply_op.body.args[0], (0, 0, 0))
        apply_op.body.add_ops([access, stencil.ReturnOp([access.result])])
        with pytest.raises(VerifyException):
            apply_op.verify_()

    def test_access_offset_rank_check(self):
        memref, ext = make_field()
        load = stencil.LoadOp(ext.result)
        apply_op = stencil.ApplyOp([load.result], [stencil.TempType([-1] * 3, f64)])
        bad = stencil.AccessOp(apply_op.body.args[0], (1, 0))
        with pytest.raises(VerifyException):
            bad.verify_()

    def test_access_requires_temp(self):
        const = arith.ConstantOp.from_float(1.0)
        with pytest.raises(VerifyException):
            stencil.AccessOp(const.result, (0,))

    def test_index_op(self):
        op = stencil.IndexOp(2)
        assert op.dim == 2

    def test_cast_op(self):
        memref, ext = make_field()
        new_type = stencil.FieldType([(-1, 9)] * 3, f64)
        cast = stencil.CastOp(ext.result, new_type)
        assert cast.result.type.bounds[0] == (-1, 9)


class TestStencilHelpers:
    def _apply_with_offsets(self, offsets):
        memref, ext = make_field()
        load = stencil.LoadOp(ext.result)
        apply_op = stencil.ApplyOp([load.result], [stencil.TempType([-1] * 3, f64)])
        values = []
        for off in offsets:
            access = stencil.AccessOp(apply_op.body.args[0], off)
            apply_op.body.add_op(access)
            values.append(access.result)
        total = values[0]
        for value in values[1:]:
            add = arith.AddfOp(total, value)
            apply_op.body.add_op(add)
            total = add.result
        apply_op.body.add_op(stencil.ReturnOp([total]))
        return apply_op

    def test_access_extent(self):
        apply_op = self._apply_with_offsets([(-1, 0, 0), (1, 0, 0), (0, 0, 2)])
        extent = stencil.access_extent(apply_op)
        assert extent == ((-1, 1), (0, 0), (0, 2))

    def test_stencil_radius(self):
        apply_op = self._apply_with_offsets([(-1, 0, 0), (0, 0, 2)])
        assert stencil.stencil_radius(apply_op) == 2

    def test_empty_apply_extent(self):
        memref, ext = make_field()
        load = stencil.LoadOp(ext.result)
        apply_op = stencil.ApplyOp([load.result], [stencil.TempType([-1] * 3, f64)])
        assert stencil.access_extent(apply_op) == ()
        assert stencil.stencil_radius(apply_op) == 0
