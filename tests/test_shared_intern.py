"""Shared cross-process intern table: structural digests, publish/resolve
round-trips, reference pickling, fallback rules, and real multi-process /
concurrent-publisher behaviour."""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.compile_cache import CacheKey, CompileCache
from repro.ir.attributes import (
    ArrayAttr,
    BoolAttr,
    DenseIntArrayAttr,
    DictionaryAttr,
    IntAttr,
    StringAttr,
)
from repro.ir.interning import (
    SharedInternTable,
    activated_table,
    active_table,
    attribute_digest,
    open_shared_table,
    publish_intern_table,
    resolve_shared,
    scratch_interner,
    table_reduce,
)
from repro.ir.types import IntegerType, f32, i32


def _compound() -> ArrayAttr:
    return ArrayAttr(
        (
            IntAttr(7, i32),
            DictionaryAttr({"depth": IntAttr(64), "pipelined": BoolAttr(True)}),
            DenseIntArrayAttr((1, 2, 3, 4, 5, 6, 7, 8)),
            StringAttr("a-reasonably-long-payload-string"),
        )
    )


class TestStructuralDigests:
    def test_digest_is_stable_and_memoised(self):
        attr = _compound()
        digest = attribute_digest(attr)
        assert digest == attribute_digest(attr)
        assert len(digest) == 64
        # Structurally equal instances share one digest (same canonical
        # object, so trivially), and the digest survives a scratch interner.
        with scratch_interner():
            rebuilt = _compound()
            assert attribute_digest(rebuilt) == digest

    def test_bool_and_int_digests_do_not_collide(self):
        # bool == int in Python; the digest encoding is type-tagged.
        assert attribute_digest(BoolAttr(True)) != attribute_digest(IntAttr(1))
        assert attribute_digest(IntAttr(0)) != attribute_digest(BoolAttr(False))

    def test_distinct_structures_get_distinct_digests(self):
        assert attribute_digest(IntAttr(7)) != attribute_digest(IntAttr(8))
        assert attribute_digest(IntAttr(7, i32)) != attribute_digest(IntAttr(7))
        assert attribute_digest(IntegerType(32)) != attribute_digest(IntegerType(64))


class TestPublishAndResolve:
    def test_round_trip_preserves_identity(self, tmp_path):
        attr = _compound()
        digest = attribute_digest(attr)
        assert publish_intern_table(tmp_path, [attr]) > 0

        table = SharedInternTable.open(tmp_path)
        assert digest in table
        # Resolving in the publishing process returns the canonical object.
        assert table.resolve(digest) is attr
        # A cold process (simulated by a scratch interner) re-interns to a
        # single canonical instance, identical to locally built attributes.
        with scratch_interner():
            cold = SharedInternTable.open(tmp_path)
            resolved = cold.resolve(digest)
            assert resolved is _compound()
            assert attribute_digest(resolved) == digest
            cold.close()
        table.close()

    def test_publish_is_idempotent_and_append_only(self, tmp_path):
        attr = _compound()
        first = publish_intern_table(tmp_path, [attr])
        assert first > 0
        assert publish_intern_table(tmp_path, [attr]) == 0  # nothing new
        extra = publish_intern_table(tmp_path, [IntAttr(123456, i32)])
        assert extra >= 1
        table = SharedInternTable.open(tmp_path)
        assert attribute_digest(attr) in table
        assert attribute_digest(IntAttr(123456, i32)) in table
        table.close()

    def test_reader_refreshes_to_see_later_segments(self, tmp_path):
        publish_intern_table(tmp_path, [IntAttr(1, i32)])
        table = SharedInternTable.open(tmp_path)
        late = ArrayAttr((IntAttr(41), IntAttr(42), IntAttr(43)))
        publish_intern_table(tmp_path, [late])
        # resolve() refreshes once on an index miss.
        assert table.resolve(attribute_digest(late)) is late
        table.close()

    def test_foreign_and_truncated_segments_are_skipped(self, tmp_path):
        publish_intern_table(tmp_path, [_compound()])
        (tmp_path / "seg-notatable.bin").write_bytes(b"garbage")
        (tmp_path / "seg-empty.bin").write_bytes(b"")
        table = SharedInternTable.open(tmp_path)
        assert len(table) > 0  # real segment still indexed
        assert table.resolve(attribute_digest(_compound())) is _compound()
        table.close()


class TestReferencePickling:
    def test_references_shrink_compound_attribute_pickles(self, tmp_path):
        attr = _compound()
        full = pickle.dumps(attr)
        publish_intern_table(tmp_path, [attr])
        with activated_table(SharedInternTable.open(tmp_path)):
            ref = pickle.dumps(attr)
            assert len(ref) < len(full)
            # Loading in the same process round-trips to the canonical.
            assert pickle.loads(ref) is attr

    def test_reference_load_preserves_identity_in_cold_process(self, tmp_path):
        attr = _compound()
        publish_intern_table(tmp_path, [attr])
        with activated_table(SharedInternTable.open(tmp_path)):
            ref = pickle.dumps(attr)
        with scratch_interner():
            with activated_table(SharedInternTable.open(tmp_path)):
                loaded = pickle.loads(ref)
                assert loaded is _compound()

    def test_trivial_scalars_stay_inline(self, tmp_path):
        # A short StringAttr pickles smaller than a reference, so no table
        # reduction is emitted for it even with a table active.
        publish_intern_table(tmp_path, [StringAttr("x"), _compound()])
        with activated_table(SharedInternTable.open(tmp_path)):
            assert table_reduce(StringAttr("x")) is None
            assert table_reduce(_compound()) is not None

    def test_reference_blob_fails_cleanly_without_table(self, tmp_path):
        attr = _compound()
        publish_intern_table(tmp_path, [attr])
        with activated_table(SharedInternTable.open(tmp_path)):
            ref = pickle.dumps(attr)
        assert active_table() is None
        with pytest.raises(pickle.UnpicklingError):
            pickle.loads(ref)
        with pytest.raises(pickle.UnpicklingError):
            resolve_shared(attribute_digest(attr))

    def test_cache_degrades_to_miss_on_unresolvable_reference(self, tmp_path):
        """A cache blob full of table references read by a process without
        the table is an error + miss (recompile), never corruption."""
        attr = _compound()
        key = CacheKey(module_hash="shared-intern")
        publish_intern_table(tmp_path / "table", [attr])
        cache = CompileCache(tmp_path / "cache")
        with activated_table(SharedInternTable.open(tmp_path / "table")):
            cache.put(key, "middle-end", attr)
        reader = CompileCache(tmp_path / "cache")
        assert active_table() is None
        assert reader.get(key, "middle-end") is None
        assert reader.stats.errors == 1
        assert reader.stats.misses.get("middle-end", 0) == 1


class TestFallbacks:
    def test_open_missing_table_returns_none(self, tmp_path):
        assert open_shared_table(tmp_path / "does-not-exist") is None
        assert active_table() is None

    def test_open_on_file_returns_none(self, tmp_path):
        stale = tmp_path / "stale"
        stale.write_text("not a directory")
        assert open_shared_table(stale) is None

    def test_resolve_unknown_digest_raises_keyerror(self, tmp_path):
        publish_intern_table(tmp_path, [IntAttr(9)])
        table = SharedInternTable.open(tmp_path)
        with pytest.raises(KeyError):
            table.resolve("ff" * 32)
        with pytest.raises(KeyError):
            table.resolve(b"\xff" * 8)  # unknown short reference
        table.close()


def _worker_resolve(path: str, digest: str) -> tuple[bool, str]:
    """Resolve a digest in a genuinely separate process; report whether the
    resolved attribute is identical to a locally-built equivalent."""
    table = open_shared_table(path)
    assert table is not None
    resolved = table.resolve(digest)
    return (resolved is _compound(), attribute_digest(resolved))


def _worker_publish(path: str, seed: int) -> int:
    return publish_intern_table(
        path, [ArrayAttr((IntAttr(seed), IntAttr(seed + 1), StringAttr("w" * 24)))]
    )


class TestCrossProcess:
    def test_pool_worker_resolves_against_published_table(self, tmp_path):
        attr = _compound()
        digest = attribute_digest(attr)
        publish_intern_table(tmp_path, [attr])
        with ProcessPoolExecutor(max_workers=2) as pool:
            outcomes = list(
                pool.map(_worker_resolve, [str(tmp_path)] * 4, [digest] * 4)
            )
        for identical, worker_digest in outcomes:
            assert identical
            assert worker_digest == digest

    def test_concurrent_publishers_do_not_tear(self, tmp_path):
        """Publishers only ever add whole content-addressed segment files,
        so a table written from many processes is the readable union."""
        with ProcessPoolExecutor(max_workers=4) as pool:
            written = list(
                pool.map(_worker_publish, [str(tmp_path)] * 8, range(0, 800, 100))
            )
        assert all(count >= 1 for count in written)
        table = SharedInternTable.open(tmp_path)
        for seed in range(0, 800, 100):
            expected = ArrayAttr(
                (IntAttr(seed), IntAttr(seed + 1), StringAttr("w" * 24))
            )
            assert table.resolve(attribute_digest(expected)) is expected
        table.close()
