"""Tests for the evaluation harness, metrics, figures and tables."""

import json

import pytest

from repro.baselines import DaCeFramework, StencilFlowFramework, StencilHMLSFramework, VitisHLSFramework
from repro.evaluation.figures import (
    figure4_performance,
    figure5_pw_power_energy,
    figure6_tracer_power_energy,
)
from repro.evaluation.harness import DEFAULT_CASES, BenchmarkCase, EvaluationHarness
from repro.evaluation.metrics import FrameworkResult, energy_joules, energy_ratio, megapoints_per_second, speedup
from repro.evaluation.report import format_figure, format_table, generate_all, results_to_json
from repro.evaluation.tables import table1_pw_resources, table2_tracer_resources
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES


@pytest.fixture(scope="module")
def quick_results():
    harness = EvaluationHarness(repeats=1)
    cases = [
        BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"]),
        BenchmarkCase("tracer_advection", TRACER_ADVECTION_SIZES["8M"]),
    ]
    return harness.run_all(cases=cases)


class TestMetrics:
    def test_mpts(self):
        assert megapoints_per_second(8_000_000, 1.0) == 8.0
        assert megapoints_per_second(8_000_000, 0.0) == 0.0

    def test_energy(self):
        assert energy_joules(40.0, 2.0) == 80.0

    def test_speedup_and_energy_ratio(self):
        fast = FrameworkResult("a", "k", "8M", 1, mpts=100.0, energy_j=1.0)
        slow = FrameworkResult("b", "k", "8M", 1, mpts=10.0, energy_j=50.0)
        assert speedup(fast, slow) == 10.0
        assert energy_ratio(slow, fast) == 50.0
        assert speedup(fast, FrameworkResult("c", "k", "8M", 1)) == float("inf")

    def test_result_serialisation(self):
        result = FrameworkResult("a", "k", "8M", 1, mpts=5.0, utilisation={"LUTs": 1.0})
        payload = result.as_dict()
        assert payload["framework"] == "a"
        assert payload["utilisation"]["LUTs"] == 1.0
        assert result.succeeded and result.compiled


class TestHarness:
    def test_default_cases_cover_paper(self):
        labels = {(c.kernel, c.size.label) for c in DEFAULT_CASES}
        assert ("pw_advection", "134M") in labels
        assert ("tracer_advection", "33M") in labels
        assert len(DEFAULT_CASES) == 5

    def test_module_cache_reused(self):
        harness = EvaluationHarness(repeats=1)
        a = harness.build_module("pw_advection", (6, 5, 4))
        b = harness.build_module("pw_advection", (6, 5, 4))
        assert a is b
        with pytest.raises(KeyError):
            harness.build_module("unknown_kernel", (4, 4, 4))

    def test_run_case_success(self):
        harness = EvaluationHarness(repeats=2)
        case = BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"])
        result = harness.run_case(StencilHMLSFramework, case)
        assert result.succeeded
        assert result.compute_units == 4
        assert result.achieved_ii == 1
        assert result.mpts > 0 and result.energy_j > 0
        assert set(result.utilisation) == {"LUTs", "FFs", "BRAM", "DSPs"}

    def test_run_case_failures_recorded(self):
        harness = EvaluationHarness(repeats=1)
        dace_result = harness.run_case(
            DaCeFramework, BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["134M"])
        )
        assert dace_result.status == "compile_failed"
        assert not dace_result.succeeded
        sf_pw = harness.run_case(
            StencilFlowFramework, BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"])
        )
        assert sf_pw.status == "deadlock"
        assert sf_pw.compiled                      # resources still reported (Table 1)
        sf_tracer = harness.run_case(
            StencilFlowFramework, BenchmarkCase("tracer_advection", TRACER_ADVECTION_SIZES["8M"])
        )
        assert sf_tracer.status == "unsupported"

    def test_cases_for_selection(self):
        harness = EvaluationHarness()
        cases = harness.cases_for("pw_advection", ["8M", "32M"])
        assert [c.size.label for c in cases] == ["8M", "32M"]

    def test_run_all_covers_framework_x_case(self, quick_results):
        assert len(quick_results) == 2 * 5
        frameworks = {r.framework for r in quick_results}
        assert len(frameworks) == 5


class TestFiguresAndTables:
    def test_figure4_structure(self, quick_results):
        fig = figure4_performance(quick_results)
        assert set(fig) == {"pw_advection", "tracer_advection"}
        assert fig["pw_advection"]["Stencil-HMLS"]["8M"] > 0
        # StencilFlow never appears in the performance figure.
        assert "StencilFlow" not in fig["pw_advection"]

    def test_figure5_and_6_structure(self, quick_results):
        fig5 = figure5_pw_power_energy(quick_results)
        fig6 = figure6_tracer_power_energy(quick_results)
        assert set(fig5) == {"power_w", "energy_j"}
        assert fig5["energy_j"]["DaCe"]["8M"] > fig5["energy_j"]["Stencil-HMLS"]["8M"]
        assert fig6["power_w"]["Stencil-HMLS"]["8M"] > 0

    def test_table1_includes_stencilflow_but_table2_does_not(self, quick_results):
        table1 = table1_pw_resources(quick_results)
        table2 = table2_tracer_resources(quick_results)
        assert any(row["framework"] == "StencilFlow" for row in table1)
        assert not any(row["framework"] == "StencilFlow" for row in table2)
        assert all(set(row) >= {"framework", "size", "LUTs", "FFs", "BRAM", "DSPs"} for row in table1)

    def test_report_rendering(self, quick_results):
        text = generate_all(quick_results)
        assert "Figure 4a" in text and "Table 2" in text
        assert "Stencil-HMLS" in text
        fig = figure4_performance(quick_results)
        rendered = format_figure(fig["pw_advection"], "test", "MPt/s")
        assert "MPt/s" in rendered
        table_text = format_table(table1_pw_resources(quick_results), "Table 1")
        assert "%BRAM" in table_text

    def test_results_json_roundtrip(self, quick_results, tmp_path):
        path = tmp_path / "results.json"
        results_to_json(quick_results, path)
        payload = json.loads(path.read_text())
        assert len(payload) == len(quick_results)
        assert {"framework", "mpts", "energy_j"} <= set(payload[0])
