"""Tests of the FileCheck-lite matcher itself (tests/filecheck.py)."""

import pytest

from filecheck import (
    FileCheckError,
    compile_pattern,
    parse_check_lines,
    run_filecheck,
)

INPUT = """\
module {
  func @kernel(%arg0: f64) {
    %0 = addf %arg0, %arg0
    %1 = mulf %0, %0
    return %1
  }
}
"""


class TestPatternCompilation:
    def test_literal_text_is_escaped(self):
        assert compile_pattern("a.b(c)").search("xa.b(c)y")
        assert not compile_pattern("a.b(c)").search("aXb(c)")

    def test_regex_islands(self):
        pattern = compile_pattern("%{{[0-9]+}} = addf")
        assert pattern.search("  %12 = addf %a, %b")
        assert not pattern.search("  %x = addf %a, %b")

    def test_unterminated_island_rejected(self):
        with pytest.raises(FileCheckError, match="unterminated"):
            compile_pattern("%{{[0-9]+ = addf")

    def test_braces_outside_islands_are_literal(self):
        assert compile_pattern("{offset = [-1, 0, 0]}").search(
            '"stencil.access"(%1) {offset = [-1, 0, 0]} : ...'
        )


class TestParsing:
    def test_all_directive_kinds(self):
        text = (
            "// CHECK: a\n"
            "// CHECK-NEXT: b\n"
            "// CHECK-DAG: c\n"
            "// CHECK-NOT: d\n"
            "not a directive\n"
        )
        kinds = [d.kind for d in parse_check_lines(text)]
        assert kinds == ["check", "next", "dag", "not"]

    def test_custom_prefix(self):
        directives = parse_check_lines("// GOLD: a\n// CHECK: b\n", prefix="GOLD")
        assert [d.pattern for d in directives] == ["a"]


class TestMatching:
    def test_in_order_checks_pass(self):
        run_filecheck(INPUT, "// CHECK: module\n// CHECK: addf\n// CHECK: return")

    def test_out_of_order_checks_fail(self):
        with pytest.raises(FileCheckError, match="not found"):
            run_filecheck(INPUT, "// CHECK: return\n// CHECK: addf")

    def test_check_next_requires_adjacency(self):
        run_filecheck(INPUT, "// CHECK: addf\n// CHECK-NEXT: mulf")
        with pytest.raises(FileCheckError, match="CHECK-NEXT"):
            run_filecheck(INPUT, "// CHECK: module\n// CHECK-NEXT: mulf")

    def test_check_dag_matches_any_order(self):
        run_filecheck(INPUT, "// CHECK-DAG: mulf\n// CHECK-DAG: addf\n// CHECK: return")
        with pytest.raises(FileCheckError, match="CHECK-DAG"):
            run_filecheck(INPUT, "// CHECK-DAG: subf\n// CHECK-DAG: addf")

    def test_dag_lines_are_consumed_once(self):
        text = "x\nx\n"
        run_filecheck(text, "// CHECK-DAG: x\n// CHECK-DAG: x")
        with pytest.raises(FileCheckError):
            run_filecheck("x\n", "// CHECK-DAG: x\n// CHECK-DAG: x")

    def test_position_advances_past_dag_group(self):
        with pytest.raises(FileCheckError):
            run_filecheck(INPUT, "// CHECK-DAG: mulf\n// CHECK-DAG: addf\n// CHECK: func")

    def test_check_not_between_matches(self):
        run_filecheck(INPUT, "// CHECK: func\n// CHECK-NOT: subf\n// CHECK: return")
        with pytest.raises(FileCheckError, match="CHECK-NOT"):
            run_filecheck(INPUT, "// CHECK: func\n// CHECK-NOT: mulf\n// CHECK: return")

    def test_trailing_check_not_scans_to_end(self):
        run_filecheck(INPUT, "// CHECK: mulf\n// CHECK-NOT: addf")
        with pytest.raises(FileCheckError, match="CHECK-NOT"):
            run_filecheck(INPUT, "// CHECK: addf\n// CHECK-NOT: mulf")

    def test_no_directives_is_an_error(self):
        with pytest.raises(FileCheckError, match="no CHECK directives"):
            run_filecheck(INPUT, "nothing here")

    def test_error_message_names_directive_and_position(self):
        with pytest.raises(FileCheckError) as err:
            run_filecheck(INPUT, "// CHECK: addf\n// CHECK: nonexistent")
        assert "nonexistent" in str(err.value)
        assert "check line 2" in str(err.value)
