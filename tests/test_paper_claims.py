"""Integration tests for the headline claims of the paper's evaluation (§4).

These mirror the narrative statements of the paper; the benchmark harness in
``benchmarks/`` regenerates the full figures and tables, while these tests
assert the qualitative shape on which the paper's conclusions rest.
"""

import pytest

from repro.baselines import (
    DaCeFramework,
    SODAOptFramework,
    StencilHMLSFramework,
    VitisHLSFramework,
)
from repro.evaluation.harness import BenchmarkCase, EvaluationHarness
from repro.evaluation.metrics import energy_ratio, speedup
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES

FRAMEWORKS = [StencilHMLSFramework, DaCeFramework, SODAOptFramework, VitisHLSFramework]


@pytest.fixture(scope="module")
def results():
    harness = EvaluationHarness(repeats=1)
    cases = [
        BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"]),
        BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["32M"]),
        BenchmarkCase("tracer_advection", TRACER_ADVECTION_SIZES["8M"]),
        BenchmarkCase("tracer_advection", TRACER_ADVECTION_SIZES["33M"]),
    ]
    rows = harness.run_all(frameworks=FRAMEWORKS, cases=cases)
    return {(r.framework, r.kernel, r.size_label): r for r in rows}


class TestPerformanceClaims:
    def test_stencil_hmls_fastest_everywhere(self, results):
        for (framework, kernel, size), row in results.items():
            if framework == "Stencil-HMLS" or not row.succeeded:
                continue
            ours = results[("Stencil-HMLS", kernel, size)]
            assert ours.mpts > row.mpts

    def test_pw_advection_speedup_band(self, results):
        """~90-100x faster than DaCe (the next best) on PW advection."""
        for size in ("8M", "32M"):
            ours = results[("Stencil-HMLS", "pw_advection", size)]
            dace = results[("DaCe", "pw_advection", size)]
            assert 60 <= speedup(ours, dace) <= 150

    def test_tracer_advection_speedup_band(self, results):
        """~14-21x faster than DaCe on tracer advection."""
        for size in ("8M", "33M"):
            ours = results[("Stencil-HMLS", "tracer_advection", size)]
            dace = results[("DaCe", "tracer_advection", size)]
            assert 10 <= speedup(ours, dace) <= 30

    def test_dace_is_next_best(self, results):
        for kernel, size in (("pw_advection", "8M"), ("tracer_advection", "8M")):
            dace = results[("DaCe", kernel, size)]
            soda = results[("SODA-opt", kernel, size)]
            vitis = results[("Vitis HLS", kernel, size)]
            assert dace.mpts > soda.mpts
            assert dace.mpts > vitis.mpts

    def test_soda_lowest_on_pw_advection(self, results):
        rows = [results[(fw().name, "pw_advection", "8M")] for fw in FRAMEWORKS]
        slowest = min(rows, key=lambda r: r.mpts)
        assert slowest.framework == "SODA-opt"

    def test_initiation_intervals(self, results):
        assert results[("Stencil-HMLS", "pw_advection", "8M")].achieved_ii == 1
        assert results[("DaCe", "pw_advection", "8M")].achieved_ii == 9
        assert 140 <= results[("Vitis HLS", "tracer_advection", "8M")].achieved_ii <= 200
        soda_ii = results[("SODA-opt", "tracer_advection", "8M")].achieved_ii
        vitis_ii = results[("Vitis HLS", "tracer_advection", "8M")].achieved_ii
        assert abs(soda_ii - vitis_ii) <= 10

    def test_compute_unit_replication(self, results):
        assert results[("Stencil-HMLS", "pw_advection", "8M")].compute_units == 4
        assert results[("Stencil-HMLS", "tracer_advection", "8M")].compute_units == 1
        assert results[("DaCe", "pw_advection", "8M")].compute_units == 1

    def test_pw_advantage_decomposition(self, results):
        """The paper explains the PW advantage as 4 (CUs) x 9 (II) x 3 (split) = 108."""
        ours = results[("Stencil-HMLS", "pw_advection", "8M")]
        dace = results[("DaCe", "pw_advection", "8M")]
        expected = 4 * 9 * 3
        assert speedup(ours, dace) == pytest.approx(expected, rel=0.2)


class TestEnergyClaims:
    def test_stencil_hmls_most_energy_efficient(self, results):
        for (framework, kernel, size), row in results.items():
            if framework == "Stencil-HMLS" or not row.succeeded:
                continue
            ours = results[("Stencil-HMLS", kernel, size)]
            assert ours.energy_j < row.energy_j

    def test_pw_energy_ratio_band(self, results):
        """85-92x less energy than DaCe on PW advection."""
        for size in ("8M", "32M"):
            ours = results[("Stencil-HMLS", "pw_advection", size)]
            dace = results[("DaCe", "pw_advection", size)]
            assert 50 <= energy_ratio(dace, ours) <= 130

    def test_tracer_energy_ratio_band(self, results):
        """14-22x less energy than DaCe on tracer advection."""
        for size in ("8M", "33M"):
            ours = results[("Stencil-HMLS", "tracer_advection", size)]
            dace = results[("DaCe", "tracer_advection", size)]
            assert 8 <= energy_ratio(dace, ours) <= 35

    def test_power_draw_marginally_greater(self, results):
        """Our power draw is slightly higher; SODA/Vitis draw the least."""
        for kernel, size in (("pw_advection", "8M"), ("tracer_advection", "8M")):
            ours = results[("Stencil-HMLS", kernel, size)]
            dace = results[("DaCe", kernel, size)]
            soda = results[("SODA-opt", kernel, size)]
            vitis = results[("Vitis HLS", kernel, size)]
            assert ours.average_power_w > dace.average_power_w
            assert ours.average_power_w < 2.0 * dace.average_power_w
            assert min(soda.average_power_w, vitis.average_power_w) <= dace.average_power_w


class TestResourceClaims:
    def test_stencil_hmls_uses_most_bram(self, results):
        for kernel, size in (("pw_advection", "8M"), ("tracer_advection", "8M")):
            ours = results[("Stencil-HMLS", kernel, size)]
            for fw in ("DaCe", "SODA-opt", "Vitis HLS"):
                other = results[(fw, kernel, size)]
                assert ours.utilisation["BRAM"] > other.utilisation["BRAM"]

    def test_vitis_resources_flat_across_sizes(self, results):
        small = results[("Vitis HLS", "pw_advection", "8M")].utilisation
        large = results[("Vitis HLS", "pw_advection", "32M")].utilisation
        assert small == large

    def test_everything_fits_on_the_u280(self, results):
        for row in results.values():
            if row.succeeded:
                assert all(value < 95.0 for value in row.utilisation.values())
