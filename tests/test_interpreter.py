"""Tests for the reference interpreter."""

import numpy as np
import pytest

from repro.dialects import arith, math as math_d, memref as memref_d, scf, stencil
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import CallOp, FuncOp, ReturnOp
from repro.interp import Interpreter, InterpreterError, interpret_stencil_module
from repro.ir.types import MemRefType, f64, index


def module_with(func):
    module = ModuleOp()
    module.add_op(func)
    return module


class TestScalarPrograms:
    def build_axpy(self):
        func = FuncOp.with_body("axpy", [f64, f64, f64], [f64])
        a, x, y = func.args
        mul = arith.MulfOp(a, x)
        add = arith.AddfOp(mul.result, y)
        func.entry_block.add_ops([mul, add, ReturnOp([add.result])])
        return module_with(func)

    def test_axpy(self):
        module = self.build_axpy()
        assert Interpreter(module).run("axpy", 2.0, 3.0, 1.0) == [7.0]

    def test_missing_function(self):
        module = self.build_axpy()
        with pytest.raises(InterpreterError):
            Interpreter(module).run("nope")

    def test_wrong_arity(self):
        module = self.build_axpy()
        with pytest.raises(InterpreterError):
            Interpreter(module).run("axpy", 1.0)

    def test_math_and_compare_select(self):
        func = FuncOp.with_body("f", [f64], [f64])
        (x,) = func.args
        root = math_d.SqrtOp(x)
        zero = arith.ConstantOp.from_float(1.0)
        cond = arith.CmpfOp("ogt", root.result, zero.result)
        sel = arith.SelectOp(cond.result, root.result, zero.result)
        func.entry_block.add_ops([root, zero, cond, sel, ReturnOp([sel.result])])
        module = module_with(func)
        assert Interpreter(module).run("f", 16.0) == [4.0]
        assert Interpreter(module).run("f", 0.25) == [1.0]

    def test_call_between_functions(self):
        inner = FuncOp.with_body("double", [f64], [f64])
        add = arith.AddfOp(inner.args[0], inner.args[0])
        inner.entry_block.add_ops([add, ReturnOp([add.result])])
        outer = FuncOp.with_body("main", [f64], [f64])
        call = CallOp("double", [outer.args[0]], [f64])
        outer.entry_block.add_ops([call, ReturnOp([call.results[0]])])
        module = ModuleOp([inner, outer])
        assert Interpreter(module).run("main", 3.5) == [7.0]

    def test_external_function(self):
        decl = FuncOp.declaration("magic", [f64], [f64])
        outer = FuncOp.with_body("main", [f64], [f64])
        call = CallOp("magic", [outer.args[0]], [f64])
        outer.entry_block.add_ops([call, ReturnOp([call.results[0]])])
        module = ModuleOp([decl, outer])
        interp = Interpreter(module, externals={"magic": lambda v: v * 10})
        assert interp.run("main", 2.0) == [20.0]
        with pytest.raises(InterpreterError):
            Interpreter(module).run("main", 2.0)

    def test_unknown_op_reported(self):
        class WeirdOp(arith.ConstantOp.__bases__[0]):
            name = "weird.op"

        func = FuncOp.with_body("f", [], [])
        func.entry_block.add_ops([WeirdOp(), ReturnOp([])])
        with pytest.raises(InterpreterError):
            Interpreter(module_with(func)).run("f")


class TestControlFlow:
    def test_for_loop_accumulation(self):
        func = FuncOp.with_body("sum_n", [index], [f64])
        (n,) = func.args
        zero = arith.ConstantOp.from_index(0)
        one = arith.ConstantOp.from_index(1)
        init = arith.ConstantOp.from_float(0.0)
        loop = scf.ForOp(zero.result, n, one.result, [init.result])
        one_f = arith.ConstantOp.from_float(1.0)
        add = arith.AddfOp(loop.body_iter_args[0], one_f.result)
        loop.body.add_ops([one_f, add, scf.YieldOp([add.result])])
        func.entry_block.add_ops([zero, one, init, loop, ReturnOp([loop.results[0]])])
        module = module_with(func)
        assert Interpreter(module).run("sum_n", 5) == [5.0]
        assert Interpreter(module).run("sum_n", 0) == [0.0]

    def test_if_branches(self):
        func = FuncOp.with_body("clamp", [f64], [f64])
        (x,) = func.args
        zero = arith.ConstantOp.from_float(0.0)
        cond = arith.CmpfOp("olt", x, zero.result)
        branch = scf.IfOp(cond.result, [f64])
        branch.then_block.add_op(scf.YieldOp([zero.result]))
        branch.else_block.add_op(scf.YieldOp([x]))
        func.entry_block.add_ops([zero, cond, branch, ReturnOp([branch.results[0]])])
        module = module_with(func)
        assert Interpreter(module).run("clamp", -3.0) == [0.0]
        assert Interpreter(module).run("clamp", 3.0) == [3.0]

    def test_parallel_writes_buffer(self):
        func = FuncOp.with_body("fill", [MemRefType([3, 2], f64)], [])
        (buf,) = func.args
        zero = arith.ConstantOp.from_index(0)
        one = arith.ConstantOp.from_index(1)
        three = arith.ConstantOp.from_index(3)
        two = arith.ConstantOp.from_index(2)
        par = scf.ParallelOp([zero.result, zero.result], [three.result, two.result],
                             [one.result, one.result])
        value = arith.ConstantOp.from_float(7.0)
        store = memref_d.StoreOp(value.result, buf, list(par.induction_variables))
        par.body.add_ops([value, store, scf.YieldOp()])
        func.entry_block.add_ops([zero, one, three, two, par, ReturnOp([])])
        module = module_with(func)
        data = np.zeros((3, 2))
        Interpreter(module).run("fill", data)
        assert np.all(data == 7.0)


class TestMemrefOps:
    def test_alloc_and_dim(self):
        func = FuncOp.with_body("f", [], [index])
        alloc = memref_d.AllocOp(MemRefType([4, 6], f64))
        one = arith.ConstantOp.from_index(1)
        dim = memref_d.DimOp(alloc.result, one.result)
        func.entry_block.add_ops([alloc, one, dim, ReturnOp([dim.result])])
        assert Interpreter(module_with(func)).run("f") == [6]

    def test_copy(self):
        func = FuncOp.with_body("f", [MemRefType([4], f64), MemRefType([4], f64)], [])
        src, dst = func.args
        func.entry_block.add_ops([memref_d.CopyOp(src, dst), ReturnOp([])])
        a, b = np.arange(4.0), np.zeros(4)
        Interpreter(module_with(func)).run("f", a, b)
        assert np.array_equal(a, b)


class TestStencilInterpretation:
    def build_1d_sum(self, n=10):
        """The paper's Listing 1: sum of the two neighbours in 1-D."""
        func = FuncOp.with_body("listing1", [MemRefType([n], f64), MemRefType([n], f64)], [])
        src, dst = func.args
        field_type = stencil.FieldType([(0, n)], f64)
        ext_in = stencil.ExternalLoadOp(src, field_type)
        ext_out = stencil.ExternalLoadOp(dst, field_type)
        load = stencil.LoadOp(ext_in.result)
        apply_op = stencil.ApplyOp([load.result], [stencil.TempType([-1], f64)])
        left = stencil.AccessOp(apply_op.body.args[0], (-1,))
        right = stencil.AccessOp(apply_op.body.args[0], (1,))
        add = arith.AddfOp(left.result, right.result)
        apply_op.body.add_ops([left, right, add, stencil.ReturnOp([add.result])])
        store = stencil.StoreOp(apply_op.results[0], ext_out.result, (1,), (n - 1,))
        func.entry_block.add_ops([ext_in, ext_out, load, apply_op, store, ReturnOp([])])
        return module_with(func)

    def test_1d_neighbour_sum(self):
        n = 10
        module = self.build_1d_sum(n)
        src = np.arange(float(n))
        dst = np.zeros(n)
        Interpreter(module).run("listing1", src, dst)
        expected = np.zeros(n)
        expected[1:-1] = src[:-2] + src[2:]
        assert np.allclose(dst, expected)
        assert dst[0] == 0.0 and dst[-1] == 0.0  # boundary untouched

    def test_shape_mismatch_rejected(self):
        module = self.build_1d_sum(10)
        with pytest.raises(InterpreterError):
            Interpreter(module).run("listing1", np.zeros(5), np.zeros(5))

    def test_interpret_stencil_module_by_name(self, pw_module, pw_data):
        arrays, small, scalars = pw_data
        all_args = {k: v.copy() for k, v in arrays.items()}
        all_args.update({k: v.copy() for k, v in small.items()})
        all_args.update(scalars)
        interpret_stencil_module(pw_module, "pw_advection", all_args)
        assert np.isfinite(all_args["su"]).all()

    def test_interpret_missing_named_argument(self, pw_module):
        with pytest.raises(InterpreterError):
            interpret_stencil_module(pw_module, "pw_advection", {"u": np.zeros((6, 5, 4))})
