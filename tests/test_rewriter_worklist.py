"""Tests for the worklist rewrite driver: golden equivalence with the sweep
driver, detached-ancestor handling, and rewriter edge cases."""

import pytest

from repro.dialects import arith, scf
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir.core import VerifyException
from repro.ir.printer import print_module
from repro.ir.rewriter import (
    GreedyRewriteDriver,
    PatternRewriter,
    RewritePattern,
    SweepRewriteDriver,
    WorklistRewriteDriver,
    apply_patterns,
    is_detached,
)
from repro.ir.types import f64
from repro.ir.verifier import verify_module
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.tracer_advection import build_tracer_advection
from repro.transforms.canonicalize import FoldBinaryConstants, SimplifyIdentities
from repro.transforms.cse import CSEPass
from repro.transforms.dce import DCEPass


def canonicalize_patterns():
    return [FoldBinaryConstants(), SimplifyIdentities()]


class TestGoldenEquivalence:
    """The worklist driver must produce IR identical to the sweep driver."""

    @pytest.mark.parametrize("builder", [build_pw_advection, build_tracer_advection])
    def test_identical_ir_on_kernels(self, builder, small_shape):
        module = builder(small_shape)
        sweep_module = module.clone()
        worklist_module = module.clone()

        sweep_changed = SweepRewriteDriver(canonicalize_patterns()).rewrite_module(sweep_module)
        worklist_changed = WorklistRewriteDriver(canonicalize_patterns()).rewrite_module(worklist_module)

        assert sweep_changed == worklist_changed
        assert print_module(worklist_module) == print_module(sweep_module)

        # … and stays identical through the follow-up cleanup passes.
        for module_ in (sweep_module, worklist_module):
            CSEPass().apply(module_)
            DCEPass().apply(module_)
        assert print_module(worklist_module) == print_module(sweep_module)
        verify_module(worklist_module)

    def test_greedy_driver_is_the_worklist_driver(self):
        assert GreedyRewriteDriver is WorklistRewriteDriver


def _const_chain_module(n):
    """f(x) = x + 0 + 0 + … (n identity adds)."""
    module = ModuleOp()
    func = FuncOp.with_body("f", [f64], [f64])
    module.add_op(func)
    zero = arith.ConstantOp.from_float(0.0)
    func.entry_block.add_op(zero)
    value = func.entry_block.args[0]
    for _ in range(n):
        add = arith.AddfOp(value, zero.result)
        func.entry_block.add_op(add)
        value = add.result
    func.entry_block.add_op(ReturnOp([value]))
    return module, func


class TestWorklistConvergence:
    def test_deep_chain_fully_converges(self):
        # A chain deeper than the sweep driver's 32-iteration bound still
        # reaches the fixpoint: work is scheduled per changed op, not per sweep.
        module, func = _const_chain_module(200)
        driver = WorklistRewriteDriver([SimplifyIdentities()])
        assert driver.rewrite_module(module)
        ret = func.entry_block.terminator
        assert ret.operands[0] is func.entry_block.args[0]
        assert driver.rewrites_applied == 200

    def test_invocations_proportional_to_changes(self):
        module, _ = _const_chain_module(500)
        initial_ops = sum(1 for _ in module.walk())
        driver = WorklistRewriteDriver(canonicalize_patterns())
        driver.rewrite_module(module)
        assert driver.rewrites_applied == 500
        budget = len(driver.patterns) * (initial_ops + 6 * driver.rewrites_applied)
        assert driver.pattern_invocations <= budget


class _ErasePureLoops(RewritePattern):
    """Erases every result-less scf.for loop (plus its body, implicitly)."""

    op_type = scf.ForOp

    def match_and_rewrite(self, op, rewriter):
        if not op.results:
            rewriter.erase_matched_op(safe=False)


class _RecordingPattern(RewritePattern):
    """Records every constant it is invoked on; must never see detached ops."""

    op_type = arith.ConstantOp

    def __init__(self):
        self.visited = []

    def match_and_rewrite(self, op, rewriter):
        assert op.parent is not None
        self.visited.append(op)


def _loop_module():
    module = ModuleOp()
    func = FuncOp.with_body("f", [], [])
    module.add_op(func)
    zero = arith.ConstantOp.from_index(0)
    ten = arith.ConstantOp.from_index(10)
    one = arith.ConstantOp.from_index(1)
    loop = scf.ForOp(zero.result, ten.result, one.result)
    inner = arith.ConstantOp.from_float(42.0)
    loop.body.add_ops([inner, scf.YieldOp()])
    func.entry_block.add_ops([zero, ten, one, loop, ReturnOp([])])
    return module, loop, inner


class TestDetachedAncestors:
    """Regression: ops nested inside an erased ancestor must not be visited."""

    def test_is_detached_sees_through_erased_ancestors(self):
        module, loop, inner = _loop_module()
        assert not is_detached(inner, module)
        loop.detach()
        # The child's own parent chain is untouched …
        assert inner.parent is not None
        # … but the ancestor walk detects the detachment.
        assert is_detached(inner, module)
        assert is_detached(loop, module)

    def test_worklist_driver_skips_children_of_erased_loop(self):
        module, loop, inner = _loop_module()
        recorder = _RecordingPattern()
        # Pattern order puts the loop erasure first; the stale worklist still
        # holds `inner`, which must be skipped once its ancestor is gone.
        WorklistRewriteDriver([_ErasePureLoops(), recorder]).rewrite_module(module)
        assert inner not in recorder.visited
        # Top-level constants are still visited (possibly re-visited once the
        # erased loop releases its uses of them), the nested one never.
        assert len(set(recorder.visited)) == 3

    def test_sweep_driver_also_skips_children_of_erased_loop(self):
        module, loop, inner = _loop_module()
        recorder = _RecordingPattern()
        SweepRewriteDriver([_ErasePureLoops(), recorder]).rewrite_module(module)
        assert inner not in recorder.visited

    def test_was_erased_covers_nested_ops(self):
        module, loop, inner = _loop_module()
        rewriter = PatternRewriter(loop)
        rewriter.erase_op(loop, safe=False)
        assert rewriter.was_erased(loop)
        assert rewriter.was_erased(inner)


class _EraseDeadConstants(RewritePattern):
    op_type = arith.ConstantOp

    def match_and_rewrite(self, op, rewriter):
        if all(res.num_uses == 0 for res in op.results):
            rewriter.erase_matched_op()


class TestErasedSubtreeFixpoint:
    """Erasing a region-holding op must re-enqueue the defining ops of values
    used only *inside* its regions, or DCE-style patterns miss the fixpoint
    the sweep driver reaches."""

    def _module_with_const_used_only_in_loop(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [], [])
        module.add_op(func)
        zero = arith.ConstantOp.from_index(0)
        ten = arith.ConstantOp.from_index(10)
        one = arith.ConstantOp.from_index(1)
        payload = arith.ConstantOp.from_float(42.0)
        loop = scf.ForOp(zero.result, ten.result, one.result)
        use = arith.NegfOp(payload.result)
        loop.body.add_ops([use, scf.YieldOp()])
        func.entry_block.add_ops([zero, ten, one, payload, loop, ReturnOp([])])
        return module, payload

    def test_worklist_matches_sweep_after_region_erasure(self):
        patterns = lambda: [_ErasePureLoops(), _EraseDeadConstants()]
        sweep_module, _ = self._module_with_const_used_only_in_loop()
        SweepRewriteDriver(patterns()).rewrite_module(sweep_module)
        worklist_module, payload = self._module_with_const_used_only_in_loop()
        WorklistRewriteDriver(patterns()).rewrite_module(worklist_module)
        # The loop goes, and with it the only user of `payload` — both
        # drivers must then erase the now-dead constant.
        assert is_detached(payload, worklist_module)
        assert print_module(worklist_module) == print_module(sweep_module)


class _RetypeToZeroInPlace(RewritePattern):
    """Mutates constants in place (attribute edit + notify_change)."""

    op_type = arith.ConstantOp

    def match_and_rewrite(self, op, rewriter):
        from repro.ir.attributes import FloatAttr

        attr = op.attributes["value"]
        if isinstance(attr, FloatAttr) and attr.value == 7.0:
            op.attributes["value"] = FloatAttr(0.0, attr.type)
            rewriter.notify_change()


class TestInPlaceMutationReenqueue:
    def test_users_revisited_after_notify_change(self):
        # Pattern A rewrites the 7.0 constant to 0.0 purely in place; the
        # identity pattern on its user (x + 0 → x) only matches afterwards
        # and must still fire without a full re-sweep.
        module = ModuleOp()
        func = FuncOp.with_body("f", [f64], [f64])
        module.add_op(func)
        seven = arith.ConstantOp.from_float(7.0)
        add = arith.AddfOp(func.entry_block.args[0], seven.result)
        func.entry_block.add_ops([seven, add, ReturnOp([add.result])])
        WorklistRewriteDriver([_RetypeToZeroInPlace(), SimplifyIdentities()]).rewrite_module(module)
        ret = func.entry_block.terminator
        assert ret.operands[0] is func.entry_block.args[0]


class _PingPattern(RewritePattern):
    op_type = arith.AddfOp

    def match_and_rewrite(self, op, rewriter):
        rewriter.replace_matched_op(arith.SubfOp(op.operands[0], op.operands[1]))


class _PongPattern(RewritePattern):
    op_type = arith.SubfOp

    def match_and_rewrite(self, op, rewriter):
        rewriter.replace_matched_op(arith.AddfOp(op.operands[0], op.operands[1]))


class TestRewriterEdgeCases:
    def _mul_module(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [f64], [f64])
        module.add_op(func)
        arg = func.entry_block.args[0]
        c = arith.ConstantOp.from_float(2.0)
        mul = arith.MulfOp(arg, c.result)
        func.entry_block.add_ops([c, mul, ReturnOp([mul.result])])
        return module, func, c, mul

    def test_replace_op_too_few_results_leaves_ir_untouched(self):
        module, func, c, mul = self._mul_module()
        rewriter = PatternRewriter(mul)
        replacement = arith.NegfOp(func.entry_block.args[0])
        with pytest.raises(VerifyException, match="expected 1 replacement"):
            rewriter.replace_op(mul, [replacement], [])
        # The mismatch is detected before mutation: nothing was inserted.
        assert replacement.parent is None
        assert mul.parent is func.entry_block
        verify_module(module)

    def test_replace_op_too_many_results_rejected(self):
        module, func, c, mul = self._mul_module()
        rewriter = PatternRewriter(mul)
        with pytest.raises(VerifyException):
            rewriter.replace_op(mul, [], [c.result, c.result])

    def test_insertion_helpers(self):
        module, func, c, mul = self._mul_module()
        rewriter = PatternRewriter(mul)
        before = arith.ConstantOp.from_float(1.0)
        after = arith.ConstantOp.from_float(3.0)
        at_start = arith.ConstantOp.from_float(4.0)
        at_end = arith.ConstantOp.from_float(5.0)
        rewriter.insert_op_before(before, mul)
        rewriter.insert_op_after(after, mul)
        rewriter.insert_op_at_start(at_start, func.entry_block)
        block2_holder = FuncOp.with_body("g", [], [])
        rewriter.insert_op_at_end(at_end, block2_holder.entry_block)
        ops = func.entry_block.ops
        assert ops[0] is at_start
        assert ops.index(before) == ops.index(mul) - 1
        assert ops.index(after) == ops.index(mul) + 1
        assert block2_holder.entry_block.ops[-1] is at_end
        assert rewriter.has_changed

    def test_ping_pong_terminates_at_bound(self):
        module, func, c, mul = self._mul_module()
        add = arith.AddfOp(mul.result, c.result)
        ret = func.entry_block.terminator
        func.entry_block.insert_op_before(add, ret)
        ret.replace_operand(0, add.result)
        driver = WorklistRewriteDriver([_PingPattern(), _PongPattern()], max_iterations=4)
        initial_ops = sum(1 for _ in module.walk())
        assert driver.rewrite_module(module) is True
        assert driver.rewrites_applied <= driver.max_iterations * initial_ops
        verify_module(module)

    def test_apply_patterns_reaches_fixpoint(self):
        module, _ = _const_chain_module(8)
        assert apply_patterns(module, canonicalize_patterns())
        assert not apply_patterns(module, canonicalize_patterns())
