"""Tests for the functional dataflow simulator, timing model, host and xclbin."""

import json

import numpy as np
import pytest

from repro.fpga.dataflow_sim import FunctionalDataflowSimulator, TimingModel
from repro.fpga.device import ALVEO_U280, VCK5000
from repro.fpga.host import FPGAHost, HostError
from repro.fpga.synthesis import KernelDesign, StageTiming
from repro.interp.interpreter import InterpreterError
from repro.kernels.grids import initial_fields
from repro.kernels.pw_advection import (
    PW_INPUT_FIELDS,
    PW_OUTPUT_FIELDS,
    PW_SCALARS,
    pw_advection_small_data,
)
from repro.kernels.reference import pw_advection_reference, tracer_advection_reference
from repro.kernels.tracer_advection import (
    TRACER_INPUT_FIELDS,
    TRACER_SCALARS,
    TRACER_WORKSPACE_FIELDS,
)


class TestFunctionalSimulation:
    def test_pw_matches_reference(self, pw_xclbin, pw_data, small_shape):
        arrays, small, scalars = pw_data
        reference = {k: v.copy() for k, v in arrays.items()}
        pw_advection_reference(reference, small, scalars, small_shape)
        sim_arrays = {k: v.copy() for k, v in arrays.items()}
        sim_arrays.update({k: v.copy() for k, v in small.items()})
        simulator = FunctionalDataflowSimulator(pw_xclbin.hls_module, pw_xclbin.plan)
        outputs = simulator.run(sim_arrays, scalars)
        assert set(outputs) == set(PW_OUTPUT_FIELDS)
        for name in PW_OUTPUT_FIELDS:
            assert np.allclose(sim_arrays[name], reference[name])

    def test_tracer_matches_reference(self, tracer_xclbin, tracer_data, small_shape):
        arrays, _, scalars = tracer_data
        reference = {k: v.copy() for k, v in arrays.items()}
        tracer_advection_reference(reference, {}, scalars, small_shape)
        sim_arrays = {k: v.copy() for k, v in arrays.items()}
        simulator = FunctionalDataflowSimulator(tracer_xclbin.hls_module, tracer_xclbin.plan)
        simulator.run(sim_arrays, scalars)
        for name in TRACER_WORKSPACE_FIELDS:
            assert np.allclose(sim_arrays[name], reference[name])

    def test_boundary_untouched(self, pw_xclbin, pw_data):
        arrays, small, scalars = pw_data
        sim_arrays = {k: v.copy() for k, v in arrays.items()}
        sim_arrays.update(small)
        FunctionalDataflowSimulator(pw_xclbin.hls_module, pw_xclbin.plan).run(sim_arrays, scalars)
        for name in PW_OUTPUT_FIELDS:
            assert np.array_equal(sim_arrays[name][0, :, :], arrays[name][0, :, :])
            assert np.array_equal(sim_arrays[name][:, :, -1], arrays[name][:, :, -1])

    def test_missing_argument_rejected(self, pw_xclbin):
        simulator = FunctionalDataflowSimulator(pw_xclbin.hls_module, pw_xclbin.plan)
        with pytest.raises(InterpreterError):
            simulator.run({}, {})

    def test_wrong_shape_rejected(self, pw_xclbin, pw_data):
        arrays, small, scalars = pw_data
        bad = {k: np.zeros((3, 3, 3)) for k in arrays}
        bad.update(small)
        simulator = FunctionalDataflowSimulator(pw_xclbin.hls_module, pw_xclbin.plan)
        with pytest.raises(InterpreterError):
            simulator.run(bad, scalars)

    def test_missing_scalar_rejected(self, pw_xclbin, pw_data):
        arrays, small, scalars = pw_data
        sim_arrays = {k: v.copy() for k, v in arrays.items()}
        sim_arrays.update(small)
        simulator = FunctionalDataflowSimulator(pw_xclbin.hls_module, pw_xclbin.plan)
        with pytest.raises(InterpreterError):
            simulator.run(sim_arrays, {})


class TestTimingModel:
    def make_design(self, groups, cu=1, clock=300.0):
        design = KernelDesign(
            kernel_name="k", framework="test", device=ALVEO_U280,
            clock_mhz=clock, compute_units=cu, ports_per_cu=1,
        )
        for group in groups:
            design.add_group(group)
        return design

    def test_groups_sum_stages_overlap(self):
        fast = StageTiming("fast", "compute", ii=1, depth=10, trip_count=100)
        slow = StageTiming("slow", "compute", ii=1, depth=10, trip_count=1000)
        design = self.make_design([[fast, slow]])
        report = TimingModel().estimate(design, problem_points=1000)
        assert report.cycles == slow.cycles            # concurrent stages overlap
        two_groups = self.make_design([[fast], [slow]])
        report2 = TimingModel().estimate(two_groups, problem_points=1000)
        assert report2.cycles == fast.cycles + slow.cycles

    def test_ii_scales_cycles(self):
        base = self.make_design([[StageTiming("s", "compute", ii=1, depth=0, trip_count=1000)]])
        slow = self.make_design([[StageTiming("s", "compute", ii=9, depth=0, trip_count=1000)]])
        fast_report = TimingModel().estimate(base, 1000)
        slow_report = TimingModel().estimate(slow, 1000)
        assert slow_report.cycles == 9 * fast_report.cycles
        assert slow_report.mpts < fast_report.mpts
        assert slow_report.activity == pytest.approx(1 / 9)

    def test_mpts_definition(self):
        design = self.make_design([[StageTiming("s", "compute", ii=1, depth=0, trip_count=3_000_000)]])
        report = TimingModel().estimate(design, problem_points=3_000_000)
        assert report.runtime_s == pytest.approx(0.01)          # 3M cycles at 300 MHz
        assert report.mpts == pytest.approx(300.0)

    def test_paper_scale_pw_performance(self):
        """At paper scale the model lands in the right ballpark: ~1.2 GPt/s."""
        from repro.evaluation.harness import EvaluationHarness, BenchmarkCase
        from repro.baselines import StencilHMLSFramework
        from repro.kernels.grids import PW_ADVECTION_SIZES

        harness = EvaluationHarness(repeats=1)
        result = harness.run_case(StencilHMLSFramework, BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"]))
        assert result.succeeded
        assert 800 <= result.mpts <= 1300


class TestHostAndXclbin:
    def test_program_and_run_functional(self, pw_xclbin, pw_data, small_shape):
        arrays, small, scalars = pw_data
        reference = {k: v.copy() for k, v in arrays.items()}
        pw_advection_reference(reference, small, scalars, small_shape)
        host = FPGAHost()
        host.program(pw_xclbin)
        assert host.programmed_kernel == "pw_advection_hls"
        sim_arrays = {k: v.copy() for k, v in arrays.items()}
        sim_arrays.update(small)
        result = host.run(sim_arrays, scalars, functional=True)
        assert result.functional
        for name in PW_OUTPUT_FIELDS:
            assert np.allclose(result.outputs[name], reference[name])
        assert result.mpts > 0 and result.energy_j > 0
        assert result.average_power_w > ALVEO_U280.static_power_w

    def test_run_without_program_rejected(self):
        with pytest.raises(HostError):
            FPGAHost().run()

    def test_functional_requires_arrays(self, pw_xclbin):
        host = FPGAHost()
        host.program(pw_xclbin)
        with pytest.raises(HostError):
            host.run(functional=True)

    def test_device_mismatch_rejected(self, pw_xclbin):
        host = FPGAHost(VCK5000)
        with pytest.raises(HostError):
            host.program(pw_xclbin)

    def test_estimate_only_run(self, pw_xclbin):
        host = FPGAHost()
        host.program(pw_xclbin)
        result = host.run(problem_points=8_000_000)
        assert not result.functional
        assert result.outputs == {}
        assert result.timing.points == 8_000_000
        assert "mpts" in result.as_dict()

    def test_buffer_creation(self):
        host = FPGAHost()
        buffer = host.create_buffer("u", np.ones((4, 4)))
        assert buffer.nbytes == 4 * 4 * 8

    def test_xclbin_summary_and_connectivity(self, pw_xclbin):
        summary = pw_xclbin.summary()
        assert summary["compute_units"] == 4
        assert summary["achieved_ii"] == 1
        connectivity = pw_xclbin.connectivity()
        assert len(connectivity) == 4 * 7          # 4 CUs x 7 m_axi interfaces
        assert all(value.startswith("HBM[") for value in connectivity.values())

    def test_xclbin_metadata_roundtrip(self, pw_xclbin, tmp_path):
        path = pw_xclbin.save_metadata(tmp_path / "meta.json")
        payload = json.loads(path.read_text())
        assert payload["kernel"] == "pw_advection_hls"
        assert "connectivity" in payload
        assert "utilisation_pct" in payload
