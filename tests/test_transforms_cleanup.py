"""Tests for canonicalisation, CSE, DCE and the CPU (scf) lowering."""

import numpy as np
import pytest

from repro.dialects import arith, memref as memref_d, scf, stencil
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.interp import Interpreter
from repro.ir.passes import PassManager
from repro.ir.verifier import verify_module
from repro.kernels.grids import initial_fields
from repro.kernels.pw_advection import (
    PW_INPUT_FIELDS,
    PW_OUTPUT_FIELDS,
    PW_SCALARS,
    build_pw_advection,
    pw_advection_small_data,
)
from repro.kernels.reference import pw_advection_reference
from repro.transforms.canonicalize import CanonicalizePass
from repro.transforms.cse import CSEPass
from repro.transforms.dce import DCEPass
from repro.transforms.stencil_to_scf import StencilToSCFPass
from repro.ir.types import f64


def build_scalar_func(body_builder):
    module = ModuleOp()
    func = FuncOp.with_body("f", [f64], [f64])
    module.add_op(func)
    result = body_builder(func)
    func.entry_block.add_op(ReturnOp([result]))
    return module, func


class TestDCE:
    def test_removes_unused_pure_chain(self):
        def body(func):
            x = func.args[0]
            dead1 = arith.ConstantOp.from_float(1.0)
            dead2 = arith.NegfOp(dead1.result)
            keep = arith.AddfOp(x, x)
            func.entry_block.add_ops([dead1, dead2, keep])
            return keep.result

        module, func = build_scalar_func(body)
        assert DCEPass().apply(module)
        names = [op.name for op in func.entry_block.ops]
        assert names == ["arith.addf", "func.return"]

    def test_keeps_side_effecting_ops(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [], [])
        module.add_op(func)
        alloc = memref_d.AllocOp(memref_d.MemRefType([2], f64))
        func.entry_block.add_ops([alloc, ReturnOp([])])
        DCEPass().apply(module)
        assert any(op.name == "memref.alloc" for op in func.entry_block.ops)

    def test_no_change_reported(self):
        module, _ = build_scalar_func(
            lambda f: f.entry_block.add_op(arith.NegfOp(f.args[0])) and None
            or f.entry_block.ops[0].result
        )
        DCEPass().apply(module)
        assert DCEPass().apply(module) is False


class TestCSE:
    def test_deduplicates_identical_ops(self):
        def body(func):
            x = func.args[0]
            a = arith.AddfOp(x, x)
            b = arith.AddfOp(x, x)
            total = arith.MulfOp(a.result, b.result)
            func.entry_block.add_ops([a, b, total])
            return total.result

        module, func = build_scalar_func(body)
        assert CSEPass().apply(module)
        adds = [op for op in func.entry_block.ops if isinstance(op, arith.AddfOp)]
        assert len(adds) == 1
        mul = next(op for op in func.entry_block.ops if isinstance(op, arith.MulfOp))
        assert mul.operands[0] is mul.operands[1]

    def test_different_attributes_not_merged(self):
        def body(func):
            a = arith.ConstantOp.from_float(1.0)
            b = arith.ConstantOp.from_float(2.0)
            total = arith.AddfOp(a.result, b.result)
            func.entry_block.add_ops([a, b, total])
            return total.result

        module, func = build_scalar_func(body)
        CSEPass().apply(module)
        consts = [op for op in func.entry_block.ops if isinstance(op, arith.ConstantOp)]
        assert len(consts) == 2

    def test_preserves_semantics_on_kernel(self, small_shape):
        module = build_pw_advection(small_shape)
        reference_module = build_pw_advection(small_shape)
        PassManager([CSEPass(), DCEPass()]).run(module)
        verify_module(module)
        arrays = initial_fields(small_shape, PW_INPUT_FIELDS + PW_OUTPUT_FIELDS)
        small = pw_advection_small_data(small_shape)

        def run(mod):
            data = {k: v.copy() for k, v in arrays.items()}
            data.update({k: v.copy() for k, v in small.items()})
            ordered = []
            func = mod.get_symbol("pw_advection")
            for arg in func.entry_block.args:
                ordered.append(data[arg.name_hint] if arg.name_hint in data else PW_SCALARS[arg.name_hint])
            Interpreter(mod).run("pw_advection", *ordered)
            return {f: data[f] for f in PW_OUTPUT_FIELDS}

        out_a = run(module)
        out_b = run(reference_module)
        for name in PW_OUTPUT_FIELDS:
            assert np.allclose(out_a[name], out_b[name])


class TestCanonicalize:
    def test_constant_folding(self):
        def body(func):
            a = arith.ConstantOp.from_float(2.0)
            b = arith.ConstantOp.from_float(3.0)
            add = arith.AddfOp(a.result, b.result)
            use = arith.MulfOp(add.result, func.args[0])
            func.entry_block.add_ops([a, b, add, use])
            return use.result

        module, func = build_scalar_func(body)
        CanonicalizePass().apply(module)
        adds = [op for op in func.walk() if isinstance(op, arith.AddfOp)]
        assert not adds
        consts = [op.value for op in func.walk() if isinstance(op, arith.ConstantOp)]
        assert 5.0 in consts

    def test_identity_simplification(self):
        def body(func):
            x = func.args[0]
            zero = arith.ConstantOp.from_float(0.0)
            one = arith.ConstantOp.from_float(1.0)
            a = arith.AddfOp(x, zero.result)
            b = arith.MulfOp(a.result, one.result)
            func.entry_block.add_ops([zero, one, a, b])
            return b.result

        module, func = build_scalar_func(body)
        CanonicalizePass().apply(module)
        ret = func.entry_block.terminator
        assert ret.operands[0] is func.args[0]

    def test_integer_folding(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [], [])
        module.add_op(func)
        a = arith.ConstantOp.from_index(6)
        b = arith.ConstantOp.from_index(7)
        mul = arith.MuliOp(a.result, b.result)
        alloc = memref_d.AllocOp(memref_d.MemRefType([-1], f64), [mul.result])
        func.entry_block.add_ops([a, b, mul, alloc, ReturnOp([])])
        CanonicalizePass().apply(module)
        consts = [op.value for op in func.walk() if isinstance(op, arith.ConstantOp)]
        assert 42 in consts


class TestStencilToSCF:
    def _lowered(self, shape, parallel=True):
        module = build_pw_advection(shape)
        PassManager([StencilToSCFPass(use_parallel=parallel)]).run(module)
        verify_module(module)
        return module

    def test_no_stencil_ops_remain(self, small_shape):
        module = self._lowered(small_shape)
        assert not list(module.walk_type(stencil.ApplyOp))
        assert not list(module.walk_type(stencil.StoreOp))
        assert not list(module.walk_type(stencil.ExternalLoadOp))

    def test_generates_loops_and_memory_ops(self, small_shape):
        module = self._lowered(small_shape)
        assert len(list(module.walk_type(scf.ParallelOp))) == 3      # one nest per stencil
        assert list(module.walk_type(memref_d.LoadOp))
        assert list(module.walk_type(memref_d.StoreOp))

    def test_sequential_variant(self, small_shape):
        module = self._lowered(small_shape, parallel=False)
        fors = list(module.walk_type(scf.ForOp))
        assert len(fors) == 9                                        # 3 stencils x 3 dims
        assert not list(module.walk_type(scf.ParallelOp))

    @pytest.mark.parametrize("parallel", [True, False])
    def test_matches_reference(self, small_shape, parallel):
        module = self._lowered(small_shape, parallel)
        arrays = initial_fields(small_shape, PW_INPUT_FIELDS + PW_OUTPUT_FIELDS)
        small = pw_advection_small_data(small_shape)
        ref = {k: v.copy() for k, v in arrays.items()}
        pw_advection_reference(ref, small, PW_SCALARS, small_shape)

        data = {k: v.copy() for k, v in arrays.items()}
        data.update({k: v.copy() for k, v in small.items()})
        func = module.get_symbol("pw_advection")
        ordered = [
            data[arg.name_hint] if arg.name_hint in data else PW_SCALARS[arg.name_hint]
            for arg in func.entry_block.args
        ]
        Interpreter(module).run("pw_advection", *ordered)
        for name in PW_OUTPUT_FIELDS:
            assert np.allclose(data[name], ref[name])
