"""Tests for the builder, printer, verifier, rewriter, pass manager, traversal."""

import pytest

from repro.dialects import arith, scf
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir.builder import Builder, InsertPoint, build_region, clone_into
from repro.ir.core import Block, Operation, Region, VerifyException
from repro.ir.passes import FunctionPassAdapter, ModulePass, PassManager
from repro.ir.printer import print_module
from repro.ir.rewriter import GreedyRewriteDriver, PatternRewriter, RewritePattern, apply_patterns
from repro.ir.traversal import (
    backward_slice,
    count_ops,
    defining_op,
    enclosing_op_of_type,
    first_op_of_type,
    loop_nest_depth,
    ops_of_type,
    users_transitive,
)
from repro.ir.types import f64, index
from repro.ir.verifier import verify_module


def simple_module():
    module = ModuleOp()
    func = FuncOp.with_body("f", [f64], [f64])
    module.add_op(func)
    arg = func.entry_block.args[0]
    c = arith.ConstantOp.from_float(2.0)
    mul = arith.MulfOp(arg, c.result)
    func.entry_block.add_ops([c, mul, ReturnOp([mul.result])])
    return module, func, c, mul


class TestBuilder:
    def test_insert_at_end_and_start(self):
        block = Block()
        builder = Builder.at_end(block)
        a = builder.insert(arith.ConstantOp.from_float(1.0))
        builder2 = Builder.at_start(block)
        b = builder2.insert(arith.ConstantOp.from_float(0.0))
        assert block.ops[0] is b and block.ops[1] is a

    def test_insert_before_after_anchor(self):
        block = Block()
        anchor = arith.ConstantOp.from_float(5.0)
        block.add_op(anchor)
        Builder.before(anchor).insert(arith.ConstantOp.from_float(1.0))
        Builder.after(anchor).insert(arith.ConstantOp.from_float(9.0))
        values = [op.attributes["value"].value for op in block.ops]
        assert values == [1.0, 5.0, 9.0]

    def test_at_context_manager_restores(self):
        block1, block2 = Block(), Block()
        builder = Builder.at_end(block1)
        with builder.at(block2):
            builder.insert(arith.ConstantOp.from_float(1.0))
        builder.insert(arith.ConstantOp.from_float(2.0))
        assert len(block1.ops) == 1 and len(block2.ops) == 1

    def test_build_region_helper(self):
        region = build_region([f64], lambda b, args: b.insert(arith.NegfOp(args[0])))
        assert len(region.block.ops) == 1

    def test_clone_into(self):
        a = arith.ConstantOp.from_float(1.0)
        neg = arith.NegfOp(a.result)
        target = Block()
        cloned = clone_into(target, [a, neg])
        assert len(target.ops) == 2
        assert cloned[1].operands[0] is cloned[0].results[0]


class TestPrinter:
    def test_print_contains_ops_and_types(self, pw_module):
        text = print_module(pw_module)
        assert '"stencil.apply"' in text
        assert '"func.func"' in text
        assert "f64" in text

    def test_print_is_deterministic(self, pw_module):
        assert print_module(pw_module) == print_module(pw_module)

    def test_name_hints_used(self):
        module, func, c, mul = simple_module()
        func.entry_block.args[0].name_hint = "x"
        text = print_module(module)
        assert "%x" in text

    def test_attributes_printed(self):
        module, *_ = simple_module()
        text = print_module(module)
        assert "sym_name" in text
        assert "2.0 : f64" in text


class TestVerifier:
    def test_valid_module(self):
        module, *_ = simple_module()
        verify_module(module)

    def test_terminator_must_be_last(self):
        module, func, c, mul = simple_module()
        func.entry_block.add_op(arith.ConstantOp.from_float(1.0))  # after func.return
        with pytest.raises(VerifyException):
            verify_module(module)

    def test_use_before_def_detected(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [], [])
        module.add_op(func)
        a = arith.ConstantOp.from_float(1.0)
        neg = arith.NegfOp(a.result)
        # Insert the use before the definition.
        func.entry_block.add_ops([neg, a, ReturnOp([])])
        with pytest.raises(VerifyException):
            verify_module(module)

    def test_op_verify_hook_called(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [f64], [])
        module.add_op(func)
        a = arith.ConstantOp.from_float(1.0)
        b = arith.ConstantOp.from_int(1)
        bad = arith.AddfOp(a.result, a.result)
        bad.replace_operand(1, b.result)  # type mismatch
        func.entry_block.add_ops([a, b, bad, ReturnOp([])])
        with pytest.raises(VerifyException):
            verify_module(module)


class _FoldNegNeg(RewritePattern):
    op_type = arith.NegfOp

    def match_and_rewrite(self, op, rewriter):
        inner = defining_op(op.operands[0])
        if isinstance(inner, arith.NegfOp):
            rewriter.replace_matched_op([], [inner.operands[0]])


class TestRewriter:
    def test_pattern_applies_to_fixpoint(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [f64], [f64])
        module.add_op(func)
        x = func.entry_block.args[0]
        n1 = arith.NegfOp(x)
        n2 = arith.NegfOp(n1.result)
        func.entry_block.add_ops([n1, n2, ReturnOp([n2.result])])
        changed = apply_patterns(module, [_FoldNegNeg()])
        assert changed
        ret = func.entry_block.terminator
        assert ret.operands[0] is x

    def test_driver_reports_no_change(self):
        module, *_ = simple_module()
        assert GreedyRewriteDriver([_FoldNegNeg()]).rewrite_module(module) is False

    def test_insert_before_and_erase(self):
        module, func, c, mul = simple_module()
        rewriter = PatternRewriter(mul)
        new_const = arith.ConstantOp.from_float(3.0)
        rewriter.insert_op_before(new_const, mul)
        assert rewriter.has_changed
        assert new_const.parent is func.entry_block

    def test_replace_op_count_mismatch(self):
        module, func, c, mul = simple_module()
        rewriter = PatternRewriter(mul)
        with pytest.raises(VerifyException):
            rewriter.replace_op(mul, [], [])


class _RenamePass(ModulePass):
    name = "rename"

    def apply(self, module):
        for func in module.walk_type(FuncOp):
            func.attributes["touched"] = arith.IntAttr(1)
        return True


class TestPassManager:
    def test_runs_passes_and_records_stats(self):
        module, *_ = simple_module()
        pm = PassManager([_RenamePass()])
        pm.run(module)
        assert pm.statistics[0].name == "rename"
        assert pm.statistics[0].changed

    def test_verifies_between_passes(self):
        class _BreakIR(ModulePass):
            name = "break"

            def apply(self, module):
                func = next(iter(module.walk_type(FuncOp)))
                func.entry_block.add_op(arith.ConstantOp.from_float(0.0))
                return True

        module, *_ = simple_module()
        with pytest.raises(VerifyException) as err:
            PassManager([_BreakIR()]).run(module)
        assert "break" in str(err.value)

    def test_function_pass_adapter(self):
        module, *_ = simple_module()
        seen = []
        adapter = FunctionPassAdapter("collect", lambda f: seen.append(f.sym_name) or False)
        PassManager([adapter]).run(module)
        assert seen == ["f"]

    def test_pipeline_description(self):
        pm = PassManager([_RenamePass(), _RenamePass()])
        assert pm.pipeline_description() == "rename,rename"


class TestTraversal:
    def test_ops_of_type_and_first(self, pw_module):
        from repro.dialects import stencil

        applies = ops_of_type(pw_module, stencil.ApplyOp)
        assert len(applies) == 3
        assert first_op_of_type(pw_module, stencil.ApplyOp) is applies[0]

    def test_backward_slice(self):
        module, func, c, mul = simple_module()
        ops = backward_slice(mul.result)
        assert c in ops and mul in ops
        assert ops.index(c) < ops.index(mul)

    def test_users_transitive(self):
        module, func, c, mul = simple_module()
        users = users_transitive(c.result)
        assert mul in users
        assert func.entry_block.terminator in users

    def test_count_ops(self, pw_module):
        assert count_ops(pw_module) == sum(1 for _ in pw_module.walk())
        assert count_ops(pw_module, lambda op: op.name == "func.func") == 1

    def test_loop_nest_depth_and_enclosing(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [], [])
        module.add_op(func)
        zero = arith.ConstantOp.from_index(0)
        ten = arith.ConstantOp.from_index(10)
        one = arith.ConstantOp.from_index(1)
        loop = scf.ForOp(zero.result, ten.result, one.result)
        inner = arith.ConstantOp.from_float(1.0)
        loop.body.add_ops([inner, scf.YieldOp()])
        func.entry_block.add_ops([zero, ten, one, loop, ReturnOp([])])
        assert loop_nest_depth(inner, (scf.ForOp,)) == 1
        assert enclosing_op_of_type(inner, FuncOp) is func
