"""Tests for the comparator framework models (DaCe, SODA-opt, Vitis HLS, StencilFlow)."""

import pytest

from repro.baselines import (
    ALL_FRAMEWORKS,
    CompilationFailure,
    DaCeFramework,
    DeadlockError,
    SODAOptFramework,
    StencilFlowFramework,
    StencilHMLSFramework,
    UnsupportedKernelError,
    VitisHLSFramework,
)
from repro.baselines.dace import DACE_II
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.tracer_advection import build_tracer_advection


@pytest.fixture(scope="module")
def pw_small():
    return build_pw_advection((6, 5, 4))


@pytest.fixture(scope="module")
def tracer_small():
    return build_tracer_advection((6, 5, 4))


class TestStencilHMLSWrapper:
    def test_compile_produces_artifact(self, pw_small):
        artifact = StencilHMLSFramework().compile(pw_small)
        assert artifact.framework == "Stencil-HMLS"
        assert artifact.achieved_ii == 1
        assert artifact.xclbin is not None
        assert artifact.design.compute_units == 4

    def test_execute_returns_timing(self, pw_small):
        framework = StencilHMLSFramework()
        artifact = framework.compile(pw_small)
        timing = framework.execute(artifact)
        assert timing.mpts > 0
        power = artifact.estimate_power(timing)
        assert power.energy_j == pytest.approx(power.average_power_w * timing.runtime_s)


class TestDaCe:
    def test_ii_and_single_cu(self, pw_small):
        artifact = DaCeFramework().compile(pw_small)
        assert artifact.achieved_ii == DACE_II == 9
        assert artifact.design.compute_units == 1
        # One sequential SDFG map per stencil computation.
        assert len(artifact.design.stage_groups) == 3

    def test_rejects_largest_pw_problem(self):
        module = build_pw_advection(PW_ADVECTION_SIZES["134M"].shape)
        with pytest.raises(CompilationFailure):
            DaCeFramework().compile(module)

    def test_accepts_32m_problem(self):
        module = build_pw_advection(PW_ADVECTION_SIZES["32M"].shape)
        artifact = DaCeFramework().compile(module)
        assert artifact.design.framework == "DaCe"

    def test_handles_tracer(self, tracer_small):
        artifact = DaCeFramework().compile(tracer_small)
        assert len(artifact.design.stage_groups) == 24

    def test_slower_than_stencil_hmls(self, pw_small):
        ours = StencilHMLSFramework().compile(pw_small).estimate_performance()
        dace = DaCeFramework().compile(pw_small).estimate_performance()
        assert ours.mpts > dace.mpts


class TestVitisAndSODA:
    def test_vitis_ii_reflects_external_memory_latency(self, tracer_small):
        artifact = VitisHLSFramework().compile(tracer_small)
        assert 140 <= artifact.achieved_ii <= 200       # paper: 163 on the critical path
        assert artifact.design.compute_units == 1

    def test_soda_comparable_to_vitis_on_tracer(self, tracer_small):
        vitis = VitisHLSFramework().compile(tracer_small)
        soda = SODAOptFramework().compile(tracer_small)
        assert soda.achieved_ii >= vitis.achieved_ii
        assert soda.achieved_ii - vitis.achieved_ii < 20

    def test_soda_notes_mention_disabled_unrolling(self, pw_small):
        artifact = SODAOptFramework().compile(pw_small)
        notes = " ".join(artifact.notes)
        assert "unrolling disabled" in notes
        assert "malloc" in notes

    def test_resources_flat_across_problem_sizes(self):
        small = VitisHLSFramework().compile(build_pw_advection(PW_ADVECTION_SIZES["8M"].shape))
        large = VitisHLSFramework().compile(build_pw_advection(PW_ADVECTION_SIZES["134M"].shape))
        assert small.utilisation() == large.utilisation()

    def test_soda_uses_fewer_resources_than_vitis(self, pw_small):
        soda = SODAOptFramework().compile(pw_small)
        vitis = VitisHLSFramework().compile(pw_small)
        assert soda.design.resources.luts <= vitis.design.resources.luts
        assert soda.design.resources.bram_36k <= vitis.design.resources.bram_36k

    def test_both_slower_than_dace(self, tracer_small):
        dace = DaCeFramework().compile(tracer_small).estimate_performance()
        vitis = VitisHLSFramework().compile(tracer_small).estimate_performance()
        soda = SODAOptFramework().compile(tracer_small).estimate_performance()
        assert dace.mpts > vitis.mpts > 0
        assert dace.mpts > soda.mpts > 0


class TestStencilFlow:
    def test_compiles_pw_but_deadlocks(self, pw_small):
        framework = StencilFlowFramework()
        artifact = framework.compile(pw_small)
        assert artifact.achieved_ii == 1              # the paper notes it reaches II=1
        with pytest.raises(DeadlockError):
            framework.execute(artifact)

    def test_cannot_express_tracer(self, tracer_small):
        with pytest.raises(UnsupportedKernelError):
            StencilFlowFramework().compile(tracer_small)

    def test_inherits_single_bank_limit(self):
        module = build_pw_advection(PW_ADVECTION_SIZES["134M"].shape)
        with pytest.raises(CompilationFailure):
            StencilFlowFramework().compile(module)

    def test_resource_footprint_similar_to_ours(self, pw_small):
        ours = StencilHMLSFramework().compile(pw_small)
        stencilflow = StencilFlowFramework().compile(pw_small)
        # Both build shift-buffer pipelines: same order of magnitude of BRAM,
        # far more than the Von-Neumann flows.
        vitis = VitisHLSFramework().compile(pw_small)
        assert stencilflow.design.resources.bram_36k > vitis.design.resources.bram_36k


class TestFrameworkRegistry:
    def test_all_frameworks_listed(self):
        names = {fw().name for fw in ALL_FRAMEWORKS}
        assert names == {"Stencil-HMLS", "DaCe", "SODA-opt", "Vitis HLS", "StencilFlow"}

    def test_capability_flags_match_paper(self):
        assert StencilHMLSFramework.supports_cu_replication
        assert not DaCeFramework.supports_cu_replication
        assert not DaCeFramework.supports_multi_bank
        assert not StencilFlowFramework.supports_multi_bank
        assert VitisHLSFramework.supports_multi_bank
