"""Tests for the content-addressed compile cache and cache-aware harness."""

import dataclasses
import threading

import pytest

from repro.core.compile_cache import (
    CacheKey,
    CompileCache,
    MappedBlob,
    _ensure_pickle_recursion_floor,
    encode_mapped,
)
from repro.core.config import CompilerOptions
from repro.core.pipeline import StencilHMLSCompiler
from repro.evaluation.harness import BenchmarkCase, EvaluationHarness
from repro.ir.hashing import module_hash
from repro.ir.pass_registry import canonical_pipeline_spec
from repro.ir.printer import print_module
from repro.kernels.grids import PW_ADVECTION_SIZES
from repro.kernels.pw_advection import build_pw_advection


@pytest.fixture()
def module():
    return build_pw_advection(PW_ADVECTION_SIZES["8M"].shape)


class TestCacheKey:
    def test_digest_depends_on_every_component(self):
        base = CacheKey("m", "p", "o", "e")
        assert base.digest("s") == CacheKey("m", "p", "o", "e").digest("s")
        for variation in (
            CacheKey("m2", "p", "o", "e"),
            CacheKey("m", "p2", "o", "e"),
            CacheKey("m", "p", "o2", "e"),
            CacheKey("m", "p", "o", "e2"),
        ):
            assert variation.digest("s") != base.digest("s")
        assert base.digest("other-stage") != base.digest("s")

    def test_pipeline_options_never_collide(self, module):
        """Regression: `stencil-to-hls{pack=0}` vs `{pack=1}` must produce
        distinct cache keys — the full canonicalised pipeline spec including
        pass options participates in the key."""
        packed = StencilHMLSCompiler(
            pass_pipeline="canonicalize,convert-stencil-to-hls{pack=1},convert-hls-to-llvm"
        )
        unpacked = StencilHMLSCompiler(
            pass_pipeline="canonicalize,convert-stencil-to-hls{pack=0},convert-hls-to-llvm"
        )
        key_packed = packed.cache_key(module)
        key_unpacked = unpacked.cache_key(module)
        assert key_packed.pipeline != key_unpacked.pipeline
        assert key_packed.digest("middle-end") != key_unpacked.digest("middle-end")

    def test_pack_variants_cached_separately(self, module, tmp_path):
        """End to end: compiling both pack variants through one cache must
        yield two distinct artefacts, not one spurious hit."""
        cache = CompileCache(tmp_path)
        results = {}
        for pack in (1, 0):
            compiler = StencilHMLSCompiler(
                pass_pipeline=f"canonicalize,convert-stencil-to-hls{{pack={pack}}},convert-hls-to-llvm",
                cache=cache,
            )
            results[pack] = compiler.compile(module)
        # The variants must never share middle-end or synthesis artefacts …
        assert cache.stats.hits["middle-end"] == 0
        assert cache.stats.hits["synthesis"] == 0
        assert cache.stats.misses["middle-end"] == 2
        # … but the prefix cache may (correctly) reuse the shared
        # `canonicalize` stage, whose output does not depend on `pack`.
        assert cache.stats.hits.get("pass-prefix", 0) == 1
        assert results[1].design.interfaces != results[0].design.interfaces

    def test_alias_spelling_shares_one_entry(self, module, tmp_path):
        cache = CompileCache(tmp_path)
        spellings = (
            "canonicalize,convert-stencil-to-hls,convert-hls-to-llvm",
            "canonicalize,stencil-to-hls,hls-to-llvm",
        )
        assert canonical_pipeline_spec(spellings[0]) == canonical_pipeline_spec(spellings[1])
        for spec in spellings:
            StencilHMLSCompiler(pass_pipeline=spec, cache=cache).compile(module)
        assert cache.stats.hits["middle-end"] == 1

    def test_compiler_options_participate(self, module):
        default = StencilHMLSCompiler()
        wide = StencilHMLSCompiler(CompilerOptions(stream_depth=32))
        assert default.cache_key(module) != wide.cache_key(module)


class TestCompilerCache:
    def test_second_compile_hits_both_stages(self, module):
        cache = CompileCache()
        compiler = StencilHMLSCompiler(cache=cache)
        first = compiler.compile(module)
        second = compiler.compile(module)
        assert cache.stats.hits["middle-end"] == 1
        assert cache.stats.hits["synthesis"] == 1
        assert first.summary() == second.summary()
        assert print_module(first.llvm_module) == print_module(second.llvm_module)
        assert print_module(first.hls_module) == print_module(second.hls_module)

    def test_cached_statistics_are_marked(self, module):
        compiler = StencilHMLSCompiler(cache=CompileCache())
        compiler.compile(module)
        cold_stats = list(compiler.pass_statistics)
        compiler.compile(module)
        assert all(stat.note == "cached" for stat in compiler.pass_statistics)
        assert [s.name for s in compiler.pass_statistics] == [s.name for s in cold_stats]

    def test_hit_returns_independent_modules(self, module):
        """Mutating a cache-hit artefact must not corrupt later hits."""
        compiler = StencilHMLSCompiler(cache=CompileCache())
        compiler.compile(module)
        second = compiler.compile(module)
        for op in list(second.llvm_module.walk()):
            if op is not second.llvm_module:
                op.drop_all_references()
        third = compiler.compile(module)
        assert print_module(third.llvm_module) != print_module(second.llvm_module)

    def test_disk_tier_survives_new_cache_instance(self, module, tmp_path):
        warm = StencilHMLSCompiler(cache=CompileCache(tmp_path))
        baseline = warm.compile(module)
        fresh_cache = CompileCache(tmp_path)  # models a fresh process
        compiler = StencilHMLSCompiler(cache=fresh_cache)
        hit = compiler.compile(module)
        assert fresh_cache.stats.total_misses == 0
        assert fresh_cache.stats.hits["middle-end"] == 1
        assert hit.summary() == baseline.summary()
        assert print_module(hit.llvm_module) == print_module(baseline.llvm_module)

    def test_middle_end_shared_across_devices(self, module):
        from repro.fpga.device import VCK5000

        cache = CompileCache()
        StencilHMLSCompiler(cache=cache).compile(module)
        other_device = StencilHMLSCompiler(device=VCK5000, cache=cache)
        other_device.compile(module)
        assert cache.stats.hits["middle-end"] == 1     # pipeline output reused
        assert cache.stats.misses["synthesis"] == 2    # designs are per-device

    def test_corrupt_disk_entry_is_a_miss(self, module, tmp_path):
        cache = CompileCache(tmp_path)
        StencilHMLSCompiler(cache=cache).compile(module)
        for entry in tmp_path.rglob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        fresh = CompileCache(tmp_path)
        StencilHMLSCompiler(cache=fresh).compile(module)
        assert fresh.stats.total_hits == 0
        assert fresh.stats.errors > 0

    def test_no_cache_means_no_stats(self, module):
        compiler = StencilHMLSCompiler()
        compiler.compile(module)
        assert compiler.cache is None


class TestHarnessResultCache:
    def test_warm_matrix_run_hits_every_case(self, tmp_path):
        cases = [BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"])]
        cold = EvaluationHarness(repeats=1, cache=CompileCache(tmp_path))
        cold_results = cold.run_matrix(cases=cases)
        warm = EvaluationHarness(repeats=1, cache=CompileCache(tmp_path))
        warm_results = warm.run_matrix(cases=cases)
        assert warm.cache.stats.hits["result"] == len(cold_results)
        assert warm.cache.stats.misses["result"] == 0
        assert [r.as_dict() for r in warm_results] == [r.as_dict() for r in cold_results]

    def test_repeats_participate_in_result_key(self, tmp_path):
        cases = [BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"])]
        EvaluationHarness(repeats=1, cache=CompileCache(tmp_path)).run_matrix(cases=cases)
        other = EvaluationHarness(repeats=2, cache=CompileCache(tmp_path))
        other.run_matrix(cases=cases)
        assert other.cache.stats.hits["result"] == 0

    def test_variants_cached_separately(self, tmp_path):
        cache = CompileCache(tmp_path)
        harness = EvaluationHarness(repeats=1, cache=cache)
        cases = harness.cases_for(
            "pw_advection", ["8M"], frameworks=["Stencil-HMLS"],
            variants=["default", "no-pack"],
        )
        results = harness.run_matrix(cases=cases)
        assert len(results) == 2
        assert cache.stats.hits["result"] == 0
        again = EvaluationHarness(repeats=1, cache=CompileCache(tmp_path))
        again.run_matrix(cases=cases)
        assert again.cache.stats.hits["result"] == 2


class TestRemoteTier:
    def _key(self, name: str = "m") -> CacheKey:
        return CacheKey(module_hash=name)

    def test_write_back_publishes_to_both_tiers(self, tmp_path):
        local, remote = tmp_path / "local", tmp_path / "remote"
        cache = CompileCache(local, remote_dir=remote)
        cache.put(self._key(), "result", {"mpts": 2.0})
        assert cache.stats.remote_stores == 1
        digest = self._key().digest("result")
        assert (local / digest[:2] / f"{digest}.pkl").exists()
        assert (remote / digest[:2] / f"{digest}.pkl").exists()

    def test_remote_hit_reads_through_to_local(self, tmp_path):
        remote = tmp_path / "remote"
        publisher = CompileCache(tmp_path / "machine-a", remote_dir=remote)
        publisher.put(self._key(), "result", {"mpts": 2.0})
        consumer = CompileCache(tmp_path / "machine-b", remote_dir=remote)
        assert consumer.get(self._key(), "result") == {"mpts": 2.0}
        assert consumer.stats.remote_hits == 1
        assert consumer.stats.hits["result"] == 1
        # Read-through: the artefact now lives in machine B's local tier,
        # so a later process on B never touches the network again.
        later = CompileCache(tmp_path / "machine-b")
        assert later.get(self._key(), "result") == {"mpts": 2.0}
        assert later.stats.remote_hits == 0

    def test_remote_only_cache_round_trips(self, tmp_path):
        CompileCache(remote_dir=tmp_path).put(self._key(), "result", "artefact")
        fresh = CompileCache(remote_dir=tmp_path)
        assert fresh.get(self._key(), "result") == "artefact"
        assert fresh.stats.remote_hits == 1

    def test_local_tier_wins_without_remote_traffic(self, tmp_path):
        local, remote = tmp_path / "local", tmp_path / "remote"
        CompileCache(local, remote_dir=remote).put(self._key(), "result", 1)
        warm = CompileCache(local, remote_dir=remote)
        assert warm.get(self._key(), "result") == 1
        assert warm.stats.remote_hits == 0

    def test_unwritable_remote_degrades_gracefully(self, tmp_path):
        remote = tmp_path / "remote"
        remote.write_text("a file, not a directory")
        cache = CompileCache(tmp_path / "local", remote_dir=remote)
        cache.put(self._key(), "result", "artefact")
        assert cache.stats.remote_stores == 0
        assert cache.stats.errors > 0
        # The local store still landed; lookups that consult the broken
        # remote tier degrade to misses instead of crashing.
        fresh = CompileCache(tmp_path / "local", remote_dir=remote)
        assert fresh.get(self._key(), "result") == "artefact"
        assert fresh.get(self._key("other"), "result") is None

    def test_summary_lines_report_remote_traffic(self, tmp_path):
        publisher = CompileCache(remote_dir=tmp_path)
        publisher.put(self._key(), "result", 1)
        consumer = CompileCache(remote_dir=tmp_path)
        consumer.get(self._key(), "result")
        assert any("remote tier" in line for line in publisher.stats.summary_lines())
        assert any("remote tier" in line for line in consumer.stats.summary_lines())


class TestMappedFormat:
    def _key(self, name: str = "m") -> CacheKey:
        return CacheKey(module_hash=name)

    def test_mapped_round_trip_returns_private_objects(self, tmp_path):
        cache = CompileCache(tmp_path, fmt="mapped")
        cache.put(self._key(), "result", {"mpts": [1.5, 2.5]})
        first = cache.get(self._key(), "result")
        second = cache.get(self._key(), "result")
        assert first == {"mpts": [1.5, 2.5]}
        assert second == first
        assert second is not first  # each decode yields fresh objects
        first["mpts"].append(99)  # mutating a hit can't poison later hits
        assert cache.get(self._key(), "result") == {"mpts": [1.5, 2.5]}

    def test_mapped_disk_tier_survives_new_cache_instance(self, tmp_path):
        CompileCache(tmp_path, fmt="mapped").put(self._key(), "result", "artefact")
        digest = self._key().digest("result")
        assert (tmp_path / digest[:2] / f"{digest}.shmc").exists()
        fresh = CompileCache(tmp_path, fmt="mapped")
        assert fresh.get(self._key(), "result") == "artefact"
        assert fresh.stats.hits["result"] == 1

    def test_mapped_remote_tier_round_trips(self, tmp_path):
        remote = tmp_path / "remote"
        publisher = CompileCache(tmp_path / "a", remote_dir=remote, fmt="mapped")
        publisher.put(self._key(), "result", {"mpts": 2.0})
        assert publisher.stats.remote_stores == 1
        consumer = CompileCache(tmp_path / "b", remote_dir=remote, fmt="mapped")
        assert consumer.get(self._key(), "result") == {"mpts": 2.0}
        assert consumer.stats.remote_hits == 1
        # Read-through: machine B's local tier now holds the container.
        later = CompileCache(tmp_path / "b", fmt="mapped")
        assert later.get(self._key(), "result") == {"mpts": 2.0}
        assert later.stats.remote_hits == 0

    def test_formats_do_not_cross_read(self, tmp_path):
        """A pickle-format cache never serves a mapped container and vice
        versa — each instance reads only its own extension."""
        CompileCache(tmp_path, fmt="pickle").put(self._key(), "result", 1)
        mapped = CompileCache(tmp_path, fmt="mapped")
        assert mapped.get(self._key(), "result") is None
        mapped.put(self._key(), "result", 2)
        pickled = CompileCache(tmp_path, fmt="pickle")
        assert pickled.get(self._key(), "result") == 1

    def test_corrupt_mapped_entry_is_a_miss(self, tmp_path):
        cache = CompileCache(tmp_path, fmt="mapped")
        cache.put(self._key(), "result", "artefact")
        for entry in tmp_path.rglob("*.shmc"):
            entry.write_bytes(b"not a mapped container")
        fresh = CompileCache(tmp_path, fmt="mapped")
        assert fresh.get(self._key(), "result") is None
        assert fresh.stats.errors > 0

    def test_mapped_blob_sections_decode_lazily(self):
        blob = MappedBlob(encode_mapped({"answer": 42}))
        assert blob.decode() == {"answer": 42}
        blob.close()

    def test_mapped_compile_matches_pickle_compile(self, tmp_path):
        module = build_pw_advection(PW_ADVECTION_SIZES["8M"].shape)
        outputs = {}
        for fmt in ("pickle", "mapped"):
            cache = CompileCache(tmp_path / fmt, fmt=fmt)
            compiler = StencilHMLSCompiler(cache=cache)
            compiler.compile(module)  # cold store
            warm = compiler.compile(module)  # warm hit via fmt's restore path
            assert cache.stats.hits["middle-end"] == 1
            assert all(s.note == "cached" for s in compiler.pass_statistics)
            outputs[fmt] = (
                warm.summary(),
                print_module(warm.llvm_module),
                print_module(warm.hls_module),
            )
        assert outputs["mapped"] == outputs["pickle"]

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CompileCache(tmp_path, fmt="msgpack")


class TestDiskBytesCounter:
    def _key(self, name: str = "m") -> CacheKey:
        return CacheKey(module_hash=name)

    def test_first_read_scans_then_counter_tracks_writes(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(self._key("a"), "result", "x" * 100)
        scanned = cache.disk_bytes()
        assert scanned > 0
        cache.put(self._key("b"), "result", "y" * 100)
        incremental = cache.disk_bytes()
        assert incremental > scanned
        # The incremental counter must agree with a from-scratch rescan.
        assert incremental == CompileCache(tmp_path).disk_bytes()

    def test_overwrite_does_not_double_count(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(self._key(), "result", "first-value")
        before = cache.disk_bytes()
        cache.put(self._key(), "result", "first-value")  # same entry rewritten
        assert cache.disk_bytes() == before
        assert cache.disk_bytes() == CompileCache(tmp_path).disk_bytes()

    def test_gc_resyncs_counter(self, tmp_path):
        cache = CompileCache(tmp_path)
        for i in range(6):
            cache.put(self._key(f"k{i}"), "result", "z" * 400)
        cache.disk_bytes()
        cache.gc(max_bytes=600)
        assert cache.stats.evicted_entries > 0
        assert cache.disk_bytes() == CompileCache(tmp_path).disk_bytes()
        assert cache.disk_bytes() <= 600


class TestPickleRecursionFloor:
    def test_floor_is_raised_once_and_never_lowered(self):
        import sys

        _ensure_pickle_recursion_floor()
        first = sys.getrecursionlimit()
        assert first >= 100_000
        _ensure_pickle_recursion_floor()  # idempotent
        assert sys.getrecursionlimit() == first

    def test_concurrent_dumps_do_not_corrupt_recursion_limit(self, tmp_path):
        """Regression: the old implementation saved/restored the limit
        around every (de)serialisation, so two overlapping calls could
        restore a stale value mid-flight."""
        import sys

        cache = CompileCache(tmp_path)
        errors = []

        def hammer(name: str) -> None:
            try:
                key = CacheKey(module_hash=name)
                for i in range(30):
                    cache.put(key, f"s{i}", list(range(200)))
                    assert cache.get(key, f"s{i}") == list(range(200))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(f"t{n}",)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert sys.getrecursionlimit() >= 100_000


class TestModuleHashKeying:
    def test_same_kernel_same_hash(self, module):
        assert module_hash(module) == module_hash(
            build_pw_advection(PW_ADVECTION_SIZES["8M"].shape)
        )

    def test_different_size_different_hash(self, module):
        assert module_hash(module) != module_hash(
            build_pw_advection(PW_ADVECTION_SIZES["32M"].shape)
        )
