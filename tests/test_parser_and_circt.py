"""Tests for the textual IR parser (round-trips) and the CIRCT-style lowering."""

import numpy as np
import pytest

from repro.core.pipeline import StencilHMLSCompiler
from repro.dialects import hls, stencil
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp
from repro.interp import interpret_stencil_module
from repro.ir.attributes import DenseIntArrayAttr, FloatAttr, IntAttr, StringAttr
from repro.ir.parser import ParseError, Parser, parse_module
from repro.ir.printer import print_module
from repro.ir.types import FloatType, IntegerType, LLVMArrayType, LLVMPointerType, LLVMStructType, MemRefType
from repro.ir.verifier import verify_module
from repro.kernels.grids import initial_fields
from repro.kernels.pw_advection import (
    PW_INPUT_FIELDS,
    PW_OUTPUT_FIELDS,
    PW_SCALARS,
    build_pw_advection,
    pw_advection_small_data,
)
from repro.kernels.reference import pw_advection_reference
from repro.kernels.tracer_advection import build_tracer_advection
from repro.transforms.hls_to_circt import CirctLoweringError, lower_hls_to_circt


def roundtrip(module):
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    return text, reparsed


class TestTypeAndAttributeParsing:
    def parse_type(self, text):
        return Parser(text).parse_type()

    def test_scalar_types(self):
        assert self.parse_type("f64") == FloatType(64)
        assert self.parse_type("i32") == IntegerType(32)
        assert str(self.parse_type("index")) == "index"

    def test_shaped_types(self):
        t = self.parse_type("memref<4x5x6xf64>")
        assert isinstance(t, MemRefType) and t.shape == (4, 5, 6)
        dynamic = self.parse_type("memref<?x4xf64>")
        assert dynamic.shape == (-1, 4)

    def test_llvm_types(self):
        ptr = self.parse_type("!llvm.ptr<!llvm.struct<(!llvm.array<8 x f64>)>>")
        assert isinstance(ptr, LLVMPointerType)
        assert isinstance(ptr.pointee, LLVMStructType)
        assert isinstance(ptr.pointee.element_types[0], LLVMArrayType)
        assert ptr.pointee.element_types[0].count == 8

    def test_stencil_types(self):
        field = self.parse_type("!stencil.field<[0,6]x[0,5]x[0,4]xf64>")
        assert isinstance(field, stencil.FieldType)
        assert field.bounds == ((0, 6), (0, 5), (0, 4))
        temp = self.parse_type("!stencil.temp<?x?x?xf64>")
        assert isinstance(temp, stencil.TempType) and temp.rank == 3

    def test_hls_stream_type(self):
        t = self.parse_type("!hls.stream<!llvm.array<27 x f64>>")
        assert isinstance(t, hls.StreamType)

    def test_attributes(self):
        def parse_attr(text):
            return Parser(text).parse_attribute()

        assert parse_attr('"hello"') == StringAttr("hello")
        assert parse_attr("3 : i64") == IntAttr(3)
        assert parse_attr("2.5 : f64") == FloatAttr(2.5)
        assert parse_attr("[-1, 0, 1]") == DenseIntArrayAttr([-1, 0, 1])
        assert parse_attr("unit").name == "builtin.unit_attr"

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            self.parse_type("q99")
        with pytest.raises(ParseError):
            self.parse_type("!unknown.type<3>")
        with pytest.raises(ParseError):
            parse_module('"func.func"(%undefined) : (f64) -> ()')
        with pytest.raises(ParseError):
            parse_module("not ir at all $$$")


class TestModuleRoundTrips:
    def test_pw_stencil_module_roundtrip(self, pw_module):
        text, reparsed = roundtrip(pw_module)
        assert print_module(reparsed) == text
        assert sum(1 for _ in reparsed.walk()) == sum(1 for _ in pw_module.walk())

    def test_tracer_stencil_module_roundtrip(self, tracer_module):
        text, reparsed = roundtrip(tracer_module)
        assert print_module(reparsed) == text

    def test_hls_and_llvm_module_roundtrips(self, pw_xclbin):
        for module in (pw_xclbin.hls_module, pw_xclbin.llvm_module):
            text, reparsed = roundtrip(module)
            assert print_module(reparsed) == text

    def test_reparsed_ops_are_registered_classes(self, pw_module):
        _, reparsed = roundtrip(pw_module)
        assert isinstance(reparsed, ModuleOp)
        assert list(reparsed.walk_type(stencil.ApplyOp))
        func = next(iter(reparsed.walk_type(FuncOp)))
        assert func.sym_name == "pw_advection"

    def test_reparsed_module_still_executes(self, small_shape):
        """Textual IR exchange must not change the kernel's semantics."""
        module = build_pw_advection(small_shape)
        _, reparsed = roundtrip(module)
        arrays = initial_fields(small_shape, PW_INPUT_FIELDS + PW_OUTPUT_FIELDS)
        small = pw_advection_small_data(small_shape)
        reference = {k: v.copy() for k, v in arrays.items()}
        pw_advection_reference(reference, small, PW_SCALARS, small_shape)
        data = {k: v.copy() for k, v in arrays.items()}
        data.update({k: v.copy() for k, v in small.items()})
        data.update(PW_SCALARS)
        interpret_stencil_module(reparsed, "pw_advection", data)
        for name in PW_OUTPUT_FIELDS:
            assert np.allclose(data[name], reference[name])

    def test_reparsed_module_can_be_recompiled(self, small_shape):
        module = build_pw_advection(small_shape)
        _, reparsed = roundtrip(module)
        xclbin = StencilHMLSCompiler().compile(reparsed)
        assert xclbin.design.compute_units == 4
        assert xclbin.design.achieved_ii == 1

    def test_unregistered_ops_survive(self):
        text = '"builtin.module"() : () -> () ({\n  "mydialect.op"() : () -> ()\n})\n'
        module = parse_module(text)
        inner = list(module.walk())[1]
        assert inner.attributes["__unregistered_name__"].data == "mydialect.op"


class TestCirctLowering:
    def test_pw_kernel_lowered_to_hw_module(self, pw_xclbin):
        hw_modules = lower_hls_to_circt(pw_xclbin.hls_module)
        assert len(hw_modules) == 1
        hw = hw_modules[0]
        assert hw.name == "pw_advection_hls"
        assert len(hw.ports) == 12
        # Channels mirror the HLS streams; processes mirror the dataflow stages.
        assert hw.num_channels == len(pw_xclbin.plan.streams)
        dataflow_regions = sum(
            1 for _ in pw_xclbin.hls_module.walk_type(hls.DataflowOp)
        )
        assert hw.num_processes == dataflow_regions
        hw.validate()

    def test_every_channel_has_producer_and_consumer(self, tracer_xclbin):
        hw = lower_hls_to_circt(tracer_xclbin.hls_module)[0]
        for channel in hw.channels:
            assert channel.producer and channel.consumer
            assert channel.producer != channel.consumer

    def test_compute_processes_are_pipelined(self, pw_xclbin):
        hw = lower_hls_to_circt(pw_xclbin.hls_module)[0]
        loops = [p for p in hw.processes if p.kind == "pipelined_loop"]
        assert loops
        assert all(p.initiation_interval == 1 for p in loops)
        calls = [p for p in hw.processes if p.kind == "external_call"]
        assert calls                      # load/shift/duplicate/write stages

    def test_module_without_kernel_rejected(self):
        with pytest.raises(CirctLoweringError):
            lower_hls_to_circt(ModuleOp())
