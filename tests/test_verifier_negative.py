"""Negative verifier tests: every structural invariant must actually fire.

Each test corrupts one well-formed module in a specific way and asserts
the verifier reports that exact defect — with the op-path location and,
where a pass ran, the pass provenance — rather than passing silently or
crashing on the inconsistent structure.
"""

import pytest

from repro.dialects import arith
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir.core import Block, Operation, Region, VerifyException
from repro.ir.diagnostics import DiagnosticError
from repro.ir.passes import ModulePass, PassManager
from repro.ir.types import f64
from repro.ir.verifier import (
    ModuleVerifier,
    verify_module,
    verify_module_diagnostics,
)


def make_module():
    """module { func @f(%x: f64) { %c = 2.0; %m = mulf %x, %c; return } }"""
    module = ModuleOp()
    func = FuncOp.with_body("f", [f64], [])
    module.add_op(func)
    c = arith.ConstantOp.from_float(2.0)
    mul = arith.MulfOp(func.entry_block.args[0], c.result)
    func.entry_block.add_ops([c, mul, ReturnOp([])])
    return module, func, c, mul


def sole_error(module):
    with pytest.raises(DiagnosticError) as err:
        verify_module(module)
    assert len(err.value.diagnostics) == 1
    return err.value.diagnostics[0]


class TestBrokenParentLinks:
    def test_op_parent_block_link(self):
        module, func, c, mul = make_module()
        c.parent = None  # still listed in the block's ops
        diag = sole_error(module)
        assert "parent block link is broken" in diag.message
        assert "arith.constant" in diag.path

    def test_op_parent_points_at_wrong_block(self):
        module, func, c, mul = make_module()
        c.parent = Block()
        diag = sole_error(module)
        assert "parent block link is broken" in diag.message

    def test_region_parent_link(self):
        module, func, *_ = make_module()
        func.regions[0].parent = None
        diag = sole_error(module)
        assert "region parent link is broken" in diag.message
        assert "func @f" in diag.path

    def test_block_parent_link(self):
        module, func, *_ = make_module()
        func.entry_block.parent = None
        diag = sole_error(module)
        assert "block parent link is broken" in diag.message


class TestDominance:
    def test_use_before_def_same_block(self):
        module = ModuleOp()
        func = FuncOp.with_body("f", [], [])
        module.add_op(func)
        a = arith.ConstantOp.from_float(1.0)
        neg = arith.NegfOp(a.result)
        func.entry_block.add_ops([neg, a, ReturnOp([])])
        diag = sole_error(module)
        assert "not visible/dominated" in diag.message
        assert "arith.negf" in diag.path

    def test_use_before_def_across_region_boundary(self):
        """A use nested in a region must obey the *outer* block's order:
        the container op sits before the definition, so the nested use is
        a dominance violation even though it is in a different block."""
        module = ModuleOp()
        func = FuncOp.with_body("f", [], [])
        module.add_op(func)
        c = arith.ConstantOp.from_float(1.0)
        inner = Block()
        container = Operation(regions=[Region([inner])])
        inner.add_op(arith.NegfOp(c.result))
        func.entry_block.add_ops([container, c, ReturnOp([])])
        diag = sole_error(module)
        assert "not visible/dominated" in diag.message
        assert "arith.negf" in diag.path

    def test_region_local_value_escapes(self):
        """A value defined inside a region is not visible to ops after the
        container in the enclosing block."""
        module = ModuleOp()
        func = FuncOp.with_body("f", [], [])
        module.add_op(func)
        c = arith.ConstantOp.from_float(1.0)
        container = Operation(regions=[Region([Block([c])])])
        escaped = arith.NegfOp(c.result)
        func.entry_block.add_ops([container, escaped, ReturnOp([])])
        diag = sole_error(module)
        assert "not visible/dominated" in diag.message

    def test_cross_function_use_rejected(self):
        module = ModuleOp()
        f = FuncOp.with_body("f", [], [])
        g = FuncOp.with_body("g", [], [])
        module.add_op(f)
        module.add_op(g)
        c = arith.ConstantOp.from_float(1.0)
        f.entry_block.add_ops([c, ReturnOp([])])
        g.entry_block.add_ops([arith.NegfOp(c.result), ReturnOp([])])
        diag = sole_error(module)
        assert "not visible/dominated" in diag.message
        assert "func @g" in diag.path


class TestBackReferences:
    def test_misindexed_block_argument(self):
        module, func, *_ = make_module()
        func.entry_block.args[0].index = 1
        diag = sole_error(module)
        assert "block argument back-reference is broken" in diag.message
        assert "func @f" in diag.path

    def test_block_argument_owned_by_other_block(self):
        module, func, *_ = make_module()
        func.entry_block.args[0].block = Block()
        diag = sole_error(module)
        assert "block argument back-reference is broken" in diag.message

    def test_misindexed_result(self):
        module, func, c, mul = make_module()
        c.results[0].index = 3
        diag = sole_error(module)
        assert "result 0 back-reference is broken" in diag.message
        assert "arith.constant" in diag.path


class TestTerminators:
    def test_terminator_not_last(self):
        module, func, *_ = make_module()
        func.entry_block.add_op(arith.ConstantOp.from_float(0.0))
        diag = sole_error(module)
        assert "terminator is not the last operation of its block" in diag.message
        assert "func.return" in diag.path


class TestCollectMode:
    def test_all_findings_gathered(self):
        """Collect mode keeps going past the first error and reports every
        independent defect in one run."""
        module, func, c, mul = make_module()
        func.entry_block.add_op(arith.ConstantOp.from_float(0.0))  # after return
        c.results[0].index = 3
        diagnostics = verify_module_diagnostics(module)
        messages = "\n".join(d.message for d in diagnostics)
        assert "result 0 back-reference is broken" in messages
        assert "terminator is not the last operation" in messages
        assert len(diagnostics) >= 2
        # Fail-fast mode stops at the first of those.
        with pytest.raises(DiagnosticError) as err:
            verify_module(module)
        assert len(err.value.diagnostics) == 1

    def test_legacy_index_mode_agrees(self):
        module, func, c, mul = make_module()
        func.entry_block.add_op(arith.ConstantOp.from_float(0.0))
        cached = ModuleVerifier(collect=True, cache_indices=True).verify(module)
        legacy = ModuleVerifier(collect=True, cache_indices=False).verify(module)
        assert [d.message for d in cached] == [d.message for d in legacy]


class _BreakIR(ModulePass):
    """Appends a constant after the terminator: breaks every module."""

    name = "break-ir"

    def apply(self, module):
        func = next(iter(module.walk_type(FuncOp)))
        func.entry_block.add_op(arith.ConstantOp.from_float(0.0))
        return True


class _Identity(ModulePass):
    name = "identity"

    def apply(self, module):
        return False


class TestPassProvenance:
    def test_error_names_pass_and_pipeline_position(self):
        module, *_ = make_module()
        manager = PassManager([_Identity(), _BreakIR()])
        with pytest.raises(VerifyException) as err:
            manager.run(module)
        message = str(err.value)
        assert "verification failed after pass 'break-ir'" in message
        assert "(position 1 in pipeline 'identity,break-ir')" in message

    def test_provenance_survives_verify_each_off(self):
        """With verify_each=False the broken module escapes the pass
        manager silently; a later manual verify must still attribute the
        damage to the pass that did it."""
        module, *_ = make_module()
        manager = PassManager([_Identity(), _BreakIR()], verify_each=False)
        manager.run(module)  # does not raise
        with pytest.raises(DiagnosticError) as err:
            verify_module(module)
        notes = [note for d in err.value.diagnostics for note in d.notes]
        assert (
            "module last transformed by pass 'break-ir' "
            "(position 1 in pipeline 'identity,break-ir')" in notes
        )

    def test_collected_diagnostics_carry_provenance_too(self):
        module, *_ = make_module()
        PassManager([_BreakIR()], verify_each=False).run(module)
        diagnostics = verify_module_diagnostics(module)
        assert diagnostics
        for diag in diagnostics:
            assert any("last transformed by pass 'break-ir'" in n for n in diag.notes)

    def test_clean_pipeline_leaves_no_error(self):
        module, *_ = make_module()
        PassManager([_Identity()]).run(module)
        verify_module(module)  # still well-formed, provenance note unused
