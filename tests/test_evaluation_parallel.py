"""Parallel evaluation must be indistinguishable from serial evaluation.

The scenario-matrix runner dispatches cases over a process pool; per-pass
wall-clock timings naturally differ between runs, so report equality is
checked on the deterministic JSON form (which strips the `seconds` field —
everything else, including result order, must match byte for byte).
"""

from __future__ import annotations

import json

import pytest

from repro.baselines.stencil_hmls import StencilHMLSFramework
from repro.core.compile_cache import CompileCache
from repro.evaluation.harness import (
    DEFAULT_CASES,
    BenchmarkCase,
    EvaluationHarness,
    FRAMEWORKS_BY_NAME,
    PIPELINE_VARIANTS,
)
from repro.evaluation.report import merge_results, results_to_json
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES, ProblemSize


def test_parallel_and_serial_reports_are_byte_identical():
    """--jobs 4 output is golden-equal to serial output on the full kernel
    matrix (every framework × every paper case)."""
    serial = EvaluationHarness(repeats=1).run_matrix(cases=DEFAULT_CASES)
    parallel = EvaluationHarness(repeats=1).run_matrix(cases=DEFAULT_CASES, jobs=4)
    assert results_to_json(serial, deterministic=True) == results_to_json(
        parallel, deterministic=True
    )


def test_cached_rerun_report_is_byte_identical(tmp_path):
    cases = [
        BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"]),
        BenchmarkCase("tracer_advection", TRACER_ADVECTION_SIZES["8M"]),
    ]
    cold = EvaluationHarness(repeats=1, cache=CompileCache(tmp_path)).run_matrix(cases=cases)
    warm_harness = EvaluationHarness(repeats=1, cache=CompileCache(tmp_path))
    warm = warm_harness.run_matrix(cases=cases, jobs=2)
    assert warm_harness.cache.stats.hits["result"] == len(cold)
    assert results_to_json(cold, deterministic=True) == results_to_json(
        warm, deterministic=True
    )


def test_matrix_expansion_is_deterministic_and_case_major():
    harness = EvaluationHarness(repeats=1)
    cases = [
        BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"]),
        BenchmarkCase("tracer_advection", TRACER_ADVECTION_SIZES["8M"]),
    ]
    results = harness.run_matrix(cases=cases)
    labels = [(r.kernel, r.framework) for r in results]
    frameworks = list(FRAMEWORKS_BY_NAME)
    assert labels == [("pw_advection", f) for f in frameworks] + [
        ("tracer_advection", f) for f in frameworks
    ]


def test_cases_for_cartesian_expansion():
    harness = EvaluationHarness()
    cases = harness.cases_for(
        "pw_advection",
        ["8M", "32M"],
        frameworks=["Stencil-HMLS", "DaCe"],
        variants=["default", "no-pack"],
    )
    # no-pack only pairs with Stencil-HMLS: 2 sizes x (2 + 1) combinations.
    assert len(cases) == 6
    assert all(
        c.framework == "Stencil-HMLS" for c in cases if c.variant == "no-pack"
    )
    # Legacy call shape still returns plain unpinned kernel/size cases.
    legacy = harness.cases_for("pw_advection", ["8M", "32M"])
    assert [(c.kernel, c.size.label, c.framework, c.variant) for c in legacy] == [
        ("pw_advection", "8M", None, "default"),
        ("pw_advection", "32M", None, "default"),
    ]
    assert set(PIPELINE_VARIANTS) >= {"default", "no-pack"}


def test_variant_results_differ_where_the_ablation_bites():
    harness = EvaluationHarness(repeats=1)
    cases = harness.cases_for(
        "pw_advection", ["8M"], frameworks=["Stencil-HMLS"],
        variants=["default", "single-bundle"],
    )
    default, single_bundle = harness.run_matrix(cases=cases)
    assert default.variant == "default" and single_bundle.variant == "single-bundle"
    assert default.status == single_bundle.status == "ok"
    # Sharing one AXI bundle is ablation A3: throughput visibly drops.
    assert single_bundle.mpts < default.mpts


def test_custom_problem_size_is_identical_in_serial_and_parallel():
    """Workers rebuild sizes from label+shape, not from the size tables, so
    a case at a size the tables don't know still runs (and runs at the
    right shape) under --jobs."""
    custom = [BenchmarkCase("pw_advection", ProblemSize("3M", (768, 64, 64)))]
    serial = EvaluationHarness(repeats=1).run_matrix(cases=custom)
    parallel = EvaluationHarness(repeats=1).run_matrix(cases=custom, jobs=2)
    assert serial[0].points == 768 * 64 * 64
    assert results_to_json(serial, deterministic=True) == results_to_json(
        parallel, deterministic=True
    )


def test_variant_case_refuses_mismatched_framework_instance():
    harness = EvaluationHarness(repeats=1)
    case = BenchmarkCase(
        "pw_advection", PW_ADVECTION_SIZES["8M"], variant="no-pack"
    )
    with pytest.raises(ValueError, match="not variant 'no-pack'"):
        harness.run_case(StencilHMLSFramework(harness.device), case)


def test_variant_case_without_hmls_in_selection_is_an_error():
    harness = EvaluationHarness(repeats=1)
    case = BenchmarkCase(
        "pw_advection", PW_ADVECTION_SIZES["8M"], variant="no-pack"
    )
    with pytest.raises(ValueError, match="needs Stencil-HMLS"):
        harness.run_matrix(cases=[case], frameworks=["DaCe"])


def test_deterministic_report_hides_cache_provenance(tmp_path):
    """A middle-end cache hit stamps note='cached' into pass statistics;
    the deterministic report must not leak it, or cached and uncached runs
    would no longer compare byte-for-byte."""
    cases = [BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"])]
    plain = EvaluationHarness(repeats=1).run_matrix(cases=cases)
    cache = CompileCache(tmp_path)
    cached_harness = EvaluationHarness(repeats=2, cache=cache)
    cached_harness.run_matrix(cases=cases)          # populates middle-end stage
    rerun = EvaluationHarness(repeats=1, cache=cache).run_matrix(cases=cases)
    assert any(
        stat.get("note") == "cached"
        for result in rerun
        for stat in result.pass_statistics
    )
    assert results_to_json(plain, deterministic=True) == results_to_json(
        rerun, deterministic=True
    )


def test_merge_results_dedupes_and_orders_deterministically():
    harness = EvaluationHarness(repeats=1)
    cases = [BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"])]
    first = [r.as_dict() for r in harness.run_matrix(cases=cases)]
    # A re-run supersedes stale entries for the same scenario...
    stale = [dict(entry, mpts=-1.0) for entry in first]
    merged = merge_results(stale, first)
    assert merged == merge_results(first)
    # ...and shard order does not matter.
    merged_reversed = merge_results(first[::-1])
    assert json.dumps(merged) == json.dumps(merged_reversed)
