"""Deterministic matrix sharding and cache eviction/GC."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.compile_cache import CacheKey, CompileCache
from repro.evaluation.harness import (
    DEFAULT_CASES,
    BenchmarkCase,
    EvaluationHarness,
    parse_shard,
    select_shard,
)
from repro.evaluation.report import main as report_main
from repro.evaluation.report import merge_results, results_to_json
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES


class TestParseShard:
    def test_valid(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/4") == (2, 4)

    @pytest.mark.parametrize("text", ["0/4", "5/4", "2", "a/b", "2/0", "-1/3", ""])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)


class TestSelectShard:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 7, len(DEFAULT_CASES)])
    def test_shards_partition_the_matrix_exactly(self, count):
        shards = [select_shard(DEFAULT_CASES, i, count) for i in range(1, count + 1)]
        flattened = [case for shard in shards for case in shard]
        # Exact partition: every case exactly once, nothing added or lost.
        assert sorted(flattened, key=DEFAULT_CASES.index) == list(DEFAULT_CASES)
        assert len(flattened) == len(DEFAULT_CASES)
        # Strided selection keeps shard sizes balanced within one case.
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            select_shard(DEFAULT_CASES, 3, 2)

    def test_sharded_runs_merge_to_the_full_matrix(self):
        cases = [
            BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"], "Stencil-HMLS"),
            BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["32M"], "Stencil-HMLS"),
            BenchmarkCase("tracer_advection", TRACER_ADVECTION_SIZES["8M"], "Stencil-HMLS"),
        ]
        harness = EvaluationHarness(repeats=1)
        full = json.loads(results_to_json(harness.run_matrix(cases=cases), deterministic=True))
        shard_sets = []
        for index in (1, 2):
            shard_cases = select_shard(cases, index, 2)
            shard_harness = EvaluationHarness(repeats=1)
            shard_sets.append(
                json.loads(
                    results_to_json(
                        shard_harness.run_matrix(cases=shard_cases), deterministic=True
                    )
                )
            )
        merged = merge_results(*shard_sets)
        assert merged == merge_results(full)

    def test_report_cli_accepts_shard(self, tmp_path, capsys):
        out = tmp_path / "shard.json"
        code = report_main(
            ["--quick", "--repeats", "1", "--shard", "1/2", "--output", str(out),
             "--deterministic"]
        )
        capsys.readouterr()
        assert code == 0
        entries = json.loads(out.read_text())
        assert entries  # half the quick matrix, not nothing
        full_quick_cases = 2  # pw + tracer at the smallest size
        assert len({e["kernel"] for e in entries}) <= full_quick_cases

    def test_report_cli_rejects_bad_shard(self, capsys):
        with pytest.raises(SystemExit):
            report_main(["--quick", "--shard", "9/2"])
        capsys.readouterr()


class TestCacheGC:
    def _fill(self, cache: CompileCache, count: int, payload_bytes: int = 2000):
        keys = []
        for index in range(count):
            key = CacheKey(module_hash=f"m{index}")
            cache.put(key, "result", "x" * payload_bytes)
            keys.append(key)
            # Distinct mtimes make LRU order deterministic on coarse clocks.
            path = cache._path(key.digest("result"))
            stamp = time.time() - (count - index) * 10
            os.utime(path, (stamp, stamp))
        return keys

    def test_disk_bytes_accounts_entries(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert cache.disk_bytes() == 0
        self._fill(cache, 3)
        total = cache.disk_bytes()
        assert total > 0
        assert cache.stats.disk_bytes == total

    def test_gc_evicts_oldest_first_down_to_budget(self, tmp_path):
        cache = CompileCache(tmp_path)
        keys = self._fill(cache, 5)
        total = cache.disk_bytes()
        per_entry = total // 5
        evicted = cache.gc(max_bytes=3 * per_entry)
        assert evicted == 2
        assert cache.stats.evicted_entries == 2
        assert cache.stats.evicted_bytes > 0
        assert cache.stats.disk_bytes <= 3 * per_entry
        # The two oldest entries are gone from disk, the newest three remain.
        fresh = CompileCache(tmp_path)  # no memory tier
        assert fresh.get(keys[0], "result") is None
        assert fresh.get(keys[1], "result") is None
        for key in keys[2:]:
            assert fresh.get(key, "result") is not None

    def test_gc_to_zero_clears_disk(self, tmp_path):
        cache = CompileCache(tmp_path)
        self._fill(cache, 3)
        assert cache.gc(max_bytes=0) == 3
        assert cache.disk_bytes() == 0
        # The memory tier is deliberately untouched.
        assert len(cache) == 3

    def test_gc_noop_within_budget(self, tmp_path):
        cache = CompileCache(tmp_path)
        self._fill(cache, 2)
        assert cache.gc(max_bytes=10_000_000) == 0
        assert cache.stats.evicted_entries == 0

    def test_gc_rejects_negative_budget(self, tmp_path):
        cache = CompileCache(tmp_path)
        with pytest.raises(ValueError):
            cache.gc(max_bytes=-1)

    def test_disk_hit_refreshes_lru_recency(self, tmp_path):
        """Regression: gc's LRU keyed on *store*-time mtime only, so a hot
        entry read on every run was evicted before a cold never-read one
        stored later.  A disk-tier hit now refreshes the entry's mtime."""
        cache = CompileCache(tmp_path)
        keys = self._fill(cache, 2)  # keys[0] oldest on disk, keys[1] newer
        reader = CompileCache(tmp_path)  # fresh process: a disk-tier hit
        assert reader.get(keys[0], "result") is not None
        total = reader.disk_bytes()
        assert reader.gc(max_bytes=total // 2) == 1
        fresh = CompileCache(tmp_path)
        assert fresh.get(keys[0], "result") is not None  # hot entry survived
        assert fresh.get(keys[1], "result") is None      # unread one evicted

    def test_gc_memory_only_cache_is_noop(self):
        cache = CompileCache()
        cache.put(CacheKey(module_hash="m"), "result", "payload")
        assert cache.gc(max_bytes=0) == 0
