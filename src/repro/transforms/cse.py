"""Common subexpression elimination for pure operations."""

from __future__ import annotations

from repro.ir.core import Block, Operation
from repro.ir.passes import ModulePass


def _op_key(op: Operation) -> tuple:
    """Structural identity of a pure operation within a block."""
    return (
        op.name,
        tuple(id(operand) for operand in op.operands),
        tuple(sorted((k, hash(v)) for k, v in op.attributes.items())),
        tuple(hash(r.type) for r in op.results),
    )


class CSEPass(ModulePass):
    """Deduplicate identical pure operations within each block.

    Only intra-block, no-region operations are considered, which is enough
    for the arithmetic-heavy stencil apply bodies this flow produces.
    """

    name = "cse"

    def apply(self, module: Operation) -> bool:
        changed = False
        for block in _all_blocks(module):
            changed |= self._process_block(block)
        return changed

    def _process_block(self, block: Block) -> bool:
        seen: dict[tuple, Operation] = {}
        changed = False
        for op in list(block.ops):
            if not op.is_pure or op.regions or not op.results:
                continue
            key = _op_key(op)
            existing = seen.get(key)
            if existing is None:
                seen[key] = op
                continue
            for old_res, new_res in zip(op.results, existing.results):
                old_res.replace_all_uses_with(new_res)
            op.erase()
            changed = True
        return changed


def _all_blocks(root: Operation):
    for region in root.regions:
        for block in region.blocks:
            yield block
            for op in block.ops:
                yield from _all_blocks(op)
