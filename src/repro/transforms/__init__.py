"""IR transformations.

* ``stencil_analysis`` — classification of kernel arguments and stencil
  structure shared by all lowerings (step 1 of §3.3 and more).
* ``stencil_to_scf`` — the standard CPU lowering of the stencil dialect
  (used directly by the Vitis HLS baseline and by correctness tests).
* ``stencil_hls`` — the paper's nine automatic FPGA optimisation steps as
  discrete, individually-runnable sub-passes.
* ``stencil_to_hls`` — the thin composite running the full staged lowering.
* ``hls_to_llvm`` — lowering of the HLS dialect to annotated LLVM dialect IR.
* ``hls_to_circt`` — structural hardware lowering stub (paper future work).
* ``canonicalize`` / ``cse`` / ``dce`` — generic clean-up passes.

Every pass is registered in :mod:`repro.ir.pass_registry` and can be
scheduled from an MLIR-style textual pipeline spec such as
``"canonicalize,convert-stencil-to-hls{pack=0},convert-hls-to-llvm"``.
"""

from repro.transforms.canonicalize import CanonicalizePass
from repro.transforms.cse import CSEPass
from repro.transforms.dce import DCEPass
from repro.transforms.stencil_to_scf import StencilToSCFPass
from repro.transforms.stencil_hls import (
    HLSBundleAssignmentPass,
    LoweringContext,
    StencilComputeSplitPass,
    StencilInterfaceLoweringPass,
    StencilShapeInferencePass,
    StencilSmallDataBufferingPass,
    StencilWavePipeliningPass,
    build_stencil_to_hls_pipeline,
)
from repro.transforms.stencil_to_hls import StencilToHLSPass, StencilToHLSOptions
from repro.transforms.hls_to_llvm import HLSToLLVMPass

__all__ = [
    "CanonicalizePass",
    "CSEPass",
    "DCEPass",
    "HLSBundleAssignmentPass",
    "HLSToLLVMPass",
    "LoweringContext",
    "StencilComputeSplitPass",
    "StencilInterfaceLoweringPass",
    "StencilShapeInferencePass",
    "StencilSmallDataBufferingPass",
    "StencilToHLSOptions",
    "StencilToHLSPass",
    "StencilToSCFPass",
    "StencilWavePipeliningPass",
    "build_stencil_to_hls_pipeline",
]
