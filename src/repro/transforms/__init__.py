"""IR transformations.

* ``stencil_analysis`` — classification of kernel arguments and stencil
  structure shared by all lowerings (step 1 of §3.3 and more).
* ``stencil_to_scf`` — the standard CPU lowering of the stencil dialect
  (used directly by the Vitis HLS baseline and by correctness tests).
* ``stencil_to_hls`` — the paper's nine-step automatic FPGA optimisation.
* ``hls_to_llvm`` — lowering of the HLS dialect to annotated LLVM dialect IR.
* ``hls_to_circt`` — structural hardware lowering stub (paper future work).
* ``canonicalize`` / ``cse`` / ``dce`` — generic clean-up passes.
"""

from repro.transforms.canonicalize import CanonicalizePass
from repro.transforms.cse import CSEPass
from repro.transforms.dce import DCEPass
from repro.transforms.stencil_to_scf import StencilToSCFPass
from repro.transforms.stencil_to_hls import StencilToHLSPass, StencilToHLSOptions
from repro.transforms.hls_to_llvm import HLSToLLVMPass

__all__ = [
    "CanonicalizePass",
    "CSEPass",
    "DCEPass",
    "HLSToLLVMPass",
    "StencilToHLSOptions",
    "StencilToHLSPass",
    "StencilToSCFPass",
]
