"""Alternative lowering of the HLS dialect to a CIRCT-style structural form.

The paper's conclusions list "lowering of the HLS dialect to CIRCT" as the
main avenue for further optimisation: instead of going through the AMD
Xilinx proprietary backend via annotated LLVM-IR, the same HLS-dialect
kernel can be lowered to an open hardware-compiler infrastructure (CIRCT's
``handshake``/``hw`` style dialects) and synthesised from there.

This module implements that alternative path as an extension: it converts
the HLS-dialect kernel into an explicit elastic dataflow netlist — modules,
channels and handshake-style process nodes — which is a faithful structural
skeleton of what a CIRCT lowering would produce, and enough to compare the
two paths (see ``benchmarks``/``tests``).  It does not generate Verilog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dialects import hls, scf
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import CallOp, FuncOp


class CirctLoweringError(Exception):
    """Raised when the HLS kernel cannot be expressed structurally."""


@dataclass
class HWChannel:
    """An elastic (ready/valid) channel between two processes."""

    name: str
    element_bits: int
    depth: int
    producer: str = ""
    consumer: str = ""


@dataclass
class HWProcess:
    """A handshake process node (one dataflow stage)."""

    name: str
    kind: str                      # 'external_call' | 'pipelined_loop' | 'plain'
    initiation_interval: int = 1
    operation_count: int = 0
    reads: list[str] = field(default_factory=list)
    writes: list[str] = field(default_factory=list)


@dataclass
class HWModule:
    """A CIRCT-style hardware module for one HLS kernel."""

    name: str
    ports: list[str]
    channels: list[HWChannel] = field(default_factory=list)
    processes: list[HWProcess] = field(default_factory=list)

    @property
    def num_channels(self) -> int:
        return len(self.channels)

    @property
    def num_processes(self) -> int:
        return len(self.processes)

    def channel(self, name: str) -> HWChannel:
        for channel in self.channels:
            if channel.name == name:
                return channel
        raise KeyError(f"no channel named '{name}'")

    def validate(self) -> None:
        """Every channel must have exactly one producer and one consumer."""
        for channel in self.channels:
            if not channel.producer:
                raise CirctLoweringError(f"channel '{channel.name}' has no producer")
            if not channel.consumer:
                raise CirctLoweringError(f"channel '{channel.name}' has no consumer")


class HLSToCirctLowering:
    """Lower an HLS-dialect kernel function into an :class:`HWModule`."""

    def lower_module(self, module: ModuleOp) -> list[HWModule]:
        hw_modules = []
        for func in module.walk_type(FuncOp):
            if func.is_declaration or "hls.kernel" not in func.attributes:
                continue
            hw_modules.append(self.lower_kernel(func))
        if not hw_modules:
            raise CirctLoweringError("module contains no HLS kernel function")
        return hw_modules

    def lower_kernel(self, func: FuncOp) -> HWModule:
        ports = [arg.name_hint or f"arg{i}" for i, arg in enumerate(func.entry_block.args)]
        hw = HWModule(name=func.sym_name, ports=ports)

        # Streams become elastic channels.
        stream_names: dict = {}
        for index, create in enumerate(func.walk_type(hls.CreateStreamOp)):
            name = create.result.name_hint or f"chan{index}"
            element = create.element_type
            bits = getattr(element, "bitwidth", None) or 64
            hw.channels.append(HWChannel(name=name, element_bits=int(bits), depth=create.depth))
            stream_names[create.result] = name

        # Dataflow regions become handshake processes.
        for index, region in enumerate(func.walk_type(hls.DataflowOp)):
            process = self._lower_region(region, index, stream_names)
            hw.processes.append(process)
            for read in process.reads:
                hw.channel(read).consumer = process.name
            for write in process.writes:
                hw.channel(write).producer = process.name

        # Channels read/written by runtime calls (load_data / shift_buffer /
        # write_data) have their direction inferred from the call position.
        self._infer_external_directions(hw)
        hw.validate()
        return hw

    # -- helpers ------------------------------------------------------------------

    def _lower_region(self, region: hls.DataflowOp, index: int, stream_names) -> HWProcess:
        name = region.label or f"process_{index}"
        reads: list[str] = []
        writes: list[str] = []
        kind = "plain"
        initiation_interval = 1
        operation_count = 0
        for op in region.walk():
            operation_count += 1
            if isinstance(op, CallOp):
                kind = "external_call"
                for operand in op.operands:
                    if operand in stream_names:
                        # Direction is resolved afterwards from the overall graph.
                        channel = stream_names[operand]
                        if channel not in reads and channel not in writes:
                            writes.append(channel)
            elif isinstance(op, scf.ForOp):
                kind = "pipelined_loop"
            elif isinstance(op, hls.PipelineOp):
                initiation_interval = op.ii
            elif isinstance(op, hls.ReadOp):
                channel = stream_names.get(op.stream)
                if channel and channel not in reads:
                    reads.append(channel)
            elif isinstance(op, hls.WriteOp):
                channel = stream_names.get(op.stream)
                if channel and channel not in writes:
                    writes.append(channel)
        return HWProcess(
            name=name,
            kind=kind,
            initiation_interval=initiation_interval,
            operation_count=operation_count,
            reads=reads,
            writes=writes,
        )

    def _infer_external_directions(self, hw: HWModule) -> None:
        """Fix up channels touched by external calls (producer vs consumer)."""
        for channel in hw.channels:
            touching = [p for p in hw.processes if channel.name in p.reads + p.writes]
            if len(touching) != 2:
                continue
            first, second = touching
            # If both claimed to write (external calls), the earlier process in
            # program order produces and the later consumes.
            if channel.name in first.writes and channel.name in second.writes:
                second.writes.remove(channel.name)
                second.reads.append(channel.name)
            channel.producer = channel.producer or first.name
            channel.consumer = channel.consumer or second.name
        # Re-derive producer/consumer links after the adjustment.
        for channel in hw.channels:
            for process in hw.processes:
                if channel.name in process.writes:
                    channel.producer = process.name
                if channel.name in process.reads:
                    channel.consumer = process.name


def lower_hls_to_circt(module: ModuleOp) -> list[HWModule]:
    """Convenience wrapper used by tests and benchmarks."""
    return HLSToCirctLowering().lower_module(module)
