"""Analysis of stencil-dialect kernels.

This performs step 1 of the Stencil-HMLS transformation — classification of
kernel arguments into stencil field inputs, stencil field outputs and
constants (scalars and small data arrays) — plus the structural analysis
(per-apply access offsets, inter-stencil dependencies, dataflow waves) that
the FPGA lowering, the baselines' behavioural models and the performance
model all rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.ir.core import BlockArgument, OpResult, SSAValue
from repro.dialects import stencil
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp
from repro.ir.types import FloatType, MemRefType
from repro.dialects.stencil import FieldType


class AnalysisError(Exception):
    """Raised when a kernel does not have the structure the flow expects."""


@dataclass
class ArgumentInfo:
    """Classification of one kernel argument (step 1 of §3.3)."""

    index: int
    name: str
    kind: str               # 'field_input' | 'field_output' | 'small_data' | 'scalar'
    element_bits: int = 64
    num_elements: int = 0    # static element count for fields / small data
    shape: tuple[int, ...] = ()
    lower: tuple[int, ...] = ()

    @property
    def is_field(self) -> bool:
        return self.kind in ("field_input", "field_output")


@dataclass
class StencilStageInfo:
    """One ``stencil.apply`` + the stores consuming its results."""

    index: int
    apply_op: stencil.ApplyOp
    output_args: list[str] = field(default_factory=list)     # kernel args written
    output_fields: list[str] = field(default_factory=list)   # field names written (incl. temps)
    input_fields: list[str] = field(default_factory=list)    # field names read
    input_args: list[str] = field(default_factory=list)      # kernel args read
    small_data: list[str] = field(default_factory=list)
    scalars: list[str] = field(default_factory=list)
    offsets: dict[str, list[tuple[int, ...]]] = field(default_factory=dict)
    lower_bound: tuple[int, ...] = ()
    upper_bound: tuple[int, ...] = ()
    depends_on: list[int] = field(default_factory=list)      # indices of earlier stages
    flops: int = 0

    @property
    def domain_points(self) -> int:
        total = 1
        for lo, hi in zip(self.lower_bound, self.upper_bound):
            total *= max(hi - lo, 0)
        return total

    def window_size(self, radius: int | None = None) -> int:
        """Number of stencil values the shift buffer must provide per point."""
        rank = len(self.lower_bound) or 3
        if radius is None:
            radius = self.radius
        return (2 * radius + 1) ** rank

    @property
    def radius(self) -> int:
        r = 0
        for offs in self.offsets.values():
            for off in offs:
                for component in off:
                    r = max(r, abs(component))
        return r


@dataclass
class StencilKernelAnalysis:
    """Full analysis of a stencil kernel function."""

    func_name: str
    arguments: list[ArgumentInfo]
    stages: list[StencilStageInfo]
    rank: int
    grid_shape: tuple[int, ...]
    domain_lower: tuple[int, ...]
    domain_upper: tuple[int, ...]

    # -- argument queries ------------------------------------------------------

    def args_of_kind(self, kind: str) -> list[ArgumentInfo]:
        return [a for a in self.arguments if a.kind == kind]

    @property
    def field_inputs(self) -> list[ArgumentInfo]:
        return self.args_of_kind("field_input")

    @property
    def field_outputs(self) -> list[ArgumentInfo]:
        return self.args_of_kind("field_output")

    @property
    def small_data(self) -> list[ArgumentInfo]:
        return self.args_of_kind("small_data")

    @property
    def scalars(self) -> list[ArgumentInfo]:
        return self.args_of_kind("scalar")

    @property
    def num_field_ports(self) -> int:
        """AXI ports needed for field arguments (one per field)."""
        return len(self.field_inputs) + len(self.field_outputs)

    def ports_per_cu(self, bundle_small_data: bool = True) -> int:
        """m_axi ports per compute unit (scalars go over s_axilite, not ports).

        The paper's PW advection mapping: one port per field plus one port
        shared by all the small data (7 for PW advection).  With
        ``bundle_small_data=False`` every memory argument gets its own port
        (the tracer advection mapping: 17 ports).
        """
        ports = self.num_field_ports
        if self.small_data:
            ports += 1 if bundle_small_data else len(self.small_data)
        return ports

    # -- stage / dependency queries -------------------------------------------

    @property
    def num_stencil_stages(self) -> int:
        return len(self.stages)

    @property
    def domain_points(self) -> int:
        total = 1
        for lo, hi in zip(self.domain_lower, self.domain_upper):
            total *= max(hi - lo, 0)
        return total

    @property
    def total_grid_points(self) -> int:
        total = 1
        for extent in self.grid_shape:
            total *= extent
        return total

    def dependency_waves(self) -> list[list[int]]:
        """Group stages into topological waves.

        Stages in the same wave have no dependencies between them and can run
        as concurrent dataflow stages; consecutive waves must run
        back-to-back.  For PW advection all stages land in a single wave; the
        tracer advection chains produce many waves, which is why the paper's
        advantage shrinks there.
        """
        remaining = set(range(len(self.stages)))
        assigned: dict[int, int] = {}
        waves: list[list[int]] = []
        while remaining:
            wave = [
                i
                for i in sorted(remaining)
                if all(dep in assigned for dep in self.stages[i].depends_on)
            ]
            if not wave:
                raise AnalysisError("cyclic dependency between stencil stages")
            for i in wave:
                assigned[i] = len(waves)
            waves.append(wave)
            remaining -= set(wave)
        return waves

    @property
    def num_waves(self) -> int:
        return len(self.dependency_waves())

    @property
    def max_radius(self) -> int:
        return max((s.radius for s in self.stages), default=0)

    @property
    def total_flops_per_point(self) -> int:
        return sum(s.flops for s in self.stages)


# ---------------------------------------------------------------------------
# Analysis implementation
# ---------------------------------------------------------------------------

_FLOP_OPS = {
    "arith.addf", "arith.subf", "arith.mulf", "arith.divf", "arith.negf",
    "arith.maximumf", "arith.minimumf", "math.sqrt", "math.exp", "math.log",
    "math.absf", "math.powf", "math.fma", "math.sin", "math.cos", "math.tanh",
}


def _arg_name(arg: SSAValue, index: int) -> str:
    return arg.name_hint or f"arg{index}"


def _trace_to_argument(value: SSAValue) -> BlockArgument | None:
    """Follow external_load/load/cast chains back to the kernel argument."""
    current = value
    for _ in range(32):
        if isinstance(current, BlockArgument):
            return current
        if isinstance(current, OpResult):
            op = current.op
            if isinstance(op, (stencil.ExternalLoadOp, stencil.LoadOp, stencil.CastOp)):
                current = op.operands[0]
                continue
        return None
    return None


def analyse_stencil_function(func: FuncOp) -> StencilKernelAnalysis:
    """Analyse a stencil-dialect kernel function (see module docstring)."""
    entry = func.entry_block
    arg_names = {arg: _arg_name(arg, i) for i, arg in enumerate(entry.args)}

    # -- collect stores per apply result and field usage -----------------------
    stores = list(func.walk_type(stencil.StoreOp))
    external_stores = list(func.walk_type(stencil.ExternalStoreOp))
    applies = list(func.walk_type(stencil.ApplyOp))
    if not applies:
        raise AnalysisError(f"function '{func.sym_name}' contains no stencil.apply")

    written_args: set[BlockArgument] = set()
    for store in stores:
        arg = _trace_to_argument(store.field)
        if arg is not None:
            written_args.add(arg)
    for estore in external_stores:
        arg = _trace_to_argument(estore.target)
        if arg is not None:
            written_args.add(arg)

    read_args: set[BlockArgument] = set()
    for apply_op in applies:
        for operand in apply_op.operands:
            arg = _trace_to_argument(operand)
            if arg is not None:
                read_args.add(arg)

    # -- argument classification (step 1) ---------------------------------------
    arguments: list[ArgumentInfo] = []
    rank = 0
    grid_shape: tuple[int, ...] = ()
    for i, arg in enumerate(entry.args):
        name = arg_names[arg]
        arg_type = arg.type
        field_like = None
        for user in arg.users:
            if isinstance(user, stencil.ExternalLoadOp):
                field_like = user.result.type
                break
        if isinstance(arg_type, FieldType):
            field_like = arg_type
        if field_like is not None and field_like.rank >= 2:
            kind = "field_output" if arg in written_args else "field_input"
            if field_like.rank > rank:
                rank = field_like.rank
                grid_shape = field_like.shape
            arguments.append(
                ArgumentInfo(i, name, kind, element_bits=_element_bits(field_like.element_type),
                             num_elements=field_like.num_elements,
                             shape=field_like.shape,
                             lower=tuple(lb for lb, _ in field_like.bounds))
            )
        elif isinstance(arg_type, MemRefType) and arg_type.rank >= 2 and arg in (read_args | written_args) and field_like is None:
            # A multi-dimensional memref used directly (rare): treat as a field.
            kind = "field_output" if arg in written_args else "field_input"
            arguments.append(
                ArgumentInfo(i, name, kind, element_bits=_element_bits(arg_type.element_type),
                             num_elements=arg_type.num_elements if arg_type.has_static_shape else 0,
                             shape=arg_type.shape,
                             lower=(0,) * arg_type.rank)
            )
        elif isinstance(arg_type, MemRefType) or (field_like is not None and field_like.rank < 2):
            count = 0
            shape: tuple[int, ...] = ()
            if isinstance(arg_type, MemRefType) and arg_type.has_static_shape:
                count = arg_type.num_elements
                shape = arg_type.shape
            elif field_like is not None:
                count = field_like.num_elements
                shape = field_like.shape
            arguments.append(
                ArgumentInfo(i, name, "small_data",
                             element_bits=_element_bits(getattr(arg_type, "element_type", None) or field_like.element_type),
                             num_elements=count,
                             shape=shape,
                             lower=(0,) * len(shape))
            )
        else:
            arguments.append(ArgumentInfo(i, name, "scalar", element_bits=_element_bits(arg_type), num_elements=1))

    arg_info_by_name = {a.name: a for a in arguments}

    # -- per-stage analysis ------------------------------------------------------
    stage_by_result: dict[SSAValue, int] = {}
    stages: list[StencilStageInfo] = []
    domain_lower: tuple[int, ...] = ()
    domain_upper: tuple[int, ...] = ()

    # Map apply results to the field (argument or intermediate) they are stored to.
    result_field_names: dict[SSAValue, str] = {}
    for store in stores:
        arg = _trace_to_argument(store.field)
        field_name = arg_names.get(arg) if arg is not None else _value_name(store.field)
        result_field_names[store.temp] = field_name

    for stage_index, apply_op in enumerate(applies):
        info = StencilStageInfo(index=stage_index, apply_op=apply_op)
        # Outputs: where results get stored.
        for result in apply_op.results:
            for store in stores:
                if store.temp is result:
                    arg = _trace_to_argument(store.field)
                    name = arg_names.get(arg) if arg is not None else _value_name(store.field)
                    info.output_fields.append(name)
                    if arg is not None and arg_names[arg] in arg_info_by_name:
                        info.output_args.append(arg_names[arg])
                    if not info.lower_bound:
                        info.lower_bound = store.lower_bound
                        info.upper_bound = store.upper_bound
        # Inputs: operands of the apply.
        for operand_index, operand in enumerate(apply_op.operands):
            arg = _trace_to_argument(operand)
            name = arg_names.get(arg) if arg is not None else _value_name(operand)
            operand_type = operand.type
            block_arg = apply_op.body.args[operand_index]
            offsets = sorted(
                {a.offset for a in apply_op.walk_type(stencil.AccessOp) if a.temp is block_arg}
            )
            if isinstance(operand_type, (stencil.TempType, FieldType)):
                info.input_fields.append(name)
                if arg is not None:
                    info.input_args.append(name)
                info.offsets[name] = [tuple(o) for o in offsets]
                # Dependency on an earlier apply producing this temp?
                if isinstance(operand, OpResult) and isinstance(operand.op, stencil.ApplyOp):
                    producer_index = applies.index(operand.op)
                    if producer_index not in info.depends_on:
                        info.depends_on.append(producer_index)
            elif isinstance(operand_type, MemRefType):
                info.small_data.append(name)
            else:
                info.scalars.append(name)
        # Dependencies through intermediate fields written by earlier stages.
        for earlier in stages:
            if set(earlier.output_fields) & set(info.input_fields):
                if earlier.index not in info.depends_on:
                    info.depends_on.append(earlier.index)
        # Arithmetic intensity.
        info.flops = sum(1 for op in apply_op.walk() if op.name in _FLOP_OPS)
        for result in apply_op.results:
            stage_by_result[result] = stage_index
        stages.append(info)
        if info.lower_bound and (not domain_lower or info.domain_points > _box_points_count(domain_lower, domain_upper)):
            domain_lower, domain_upper = info.lower_bound, info.upper_bound

    if rank == 0 and stages:
        rank = len(stages[0].lower_bound)

    return StencilKernelAnalysis(
        func_name=func.sym_name,
        arguments=arguments,
        stages=stages,
        rank=rank,
        grid_shape=grid_shape,
        domain_lower=domain_lower,
        domain_upper=domain_upper,
    )


def analyse_module(module: ModuleOp, func_name: str | None = None) -> StencilKernelAnalysis:
    """Analyse the (single or named) stencil kernel function of a module."""
    funcs = [op for op in module.body.ops if isinstance(op, FuncOp) and not op.is_declaration]
    if func_name is not None:
        funcs = [f for f in funcs if f.sym_name == func_name]
    stencil_funcs = [f for f in funcs if any(True for _ in f.walk_type(stencil.ApplyOp))]
    if not stencil_funcs:
        raise AnalysisError("module contains no stencil kernel function")
    if len(stencil_funcs) > 1 and func_name is None:
        raise AnalysisError(
            "module contains multiple stencil kernels; pass func_name explicitly"
        )
    return analyse_stencil_function(stencil_funcs[0])


def _element_bits(type_) -> int:
    if isinstance(type_, FloatType):
        return type_.width
    width = getattr(type_, "width", None)
    return int(width) if width else 64


def _value_name(value: SSAValue) -> str:
    if value.name_hint:
        return value.name_hint
    if isinstance(value, OpResult):
        return f"{value.op.name.split('.')[-1]}_{value.op._uid}_{value.index}"
    return "value"


def _box_points_count(lb: Sequence[int], ub: Sequence[int]) -> int:
    total = 1
    for lo, hi in zip(lb, ub):
        total *= max(hi - lo, 0)
    return total
