"""Shared lowering state threaded through the stencil→HLS sub-passes.

The staged lowering decomposes the paper's nine automatic optimisation
steps (§3.3) into six discrete passes:

1. ``stencil-shape-inference``       — step 1 + structural analysis
2. ``stencil-interface-lowering``    — step 2 (packed interface types)
3. ``stencil-small-data-buffering``  — step 8 (BRAM copies of small data)
4. ``stencil-wave-pipelining``       — steps 3 and 7 (streams, load, shift,
                                       duplicate stages, per dependency wave)
5. ``stencil-compute-split``         — steps 4–6 (per-field compute stages,
                                       offset→window-lane mapping, write)
6. ``hls-bundle-assignment``         — step 9 (AXI bundle assignment)

The passes communicate exclusively through a :class:`LoweringContext`
stored in the driving :class:`~repro.ir.passes.PassContext`; each kernel's
progress is tracked by an explicit phase counter so passes are idempotent
and report a clear error when run out of order.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.config import (
    CompilerOptions,
    resolve_option_field,
    resolve_option_overrides,
)
from repro.core.plan import DataflowPlan, DuplicateSpec, LoadSpec, ShiftSpec
from repro.dialects.func import FuncOp
from repro.ir.core import Block, Operation, SSAValue
from repro.ir.passes import ModulePass, PassContext
from repro.transforms.stencil_analysis import StencilKernelAnalysis

# Ordered lowering phases; each sub-pass advances kernels one step.
PHASE_ANALYSED = 1
PHASE_INTERFACED = 2
PHASE_BUFFERED = 3
PHASE_PIPELINED = 4
PHASE_COMPUTED = 5
PHASE_BUNDLED = 6

_PHASE_HINTS = {
    PHASE_ANALYSED: "stencil-shape-inference",
    PHASE_INTERFACED: "stencil-interface-lowering",
    PHASE_BUFFERED: "stencil-small-data-buffering",
    PHASE_PIPELINED: "stencil-wave-pipelining",
    PHASE_COMPUTED: "stencil-compute-split",
    PHASE_BUNDLED: "hls-bundle-assignment",
}

#: Earliest phase at which each CompilerOptions field takes effect.  A
#: per-sub-pass override (``stencil-wave-pipelining{split=0}``) is only legal
#: on a pass that runs no later than the option's earliest consumer —
#: otherwise an earlier stage already baked the old value into the IR/plan
#: and the ablation would be silently inconsistent.  Fields not listed are
#: consumed at synthesis time and may be set by any stage.
_OPTION_CONSUMER_PHASE = {
    "pack_interfaces": PHASE_INTERFACED,
    "interface_width_bits": PHASE_INTERFACED,
    "target_ii": PHASE_INTERFACED,
    "copy_small_data_to_bram": PHASE_BUFFERED,
    "split_compute_per_field": PHASE_PIPELINED,
    "stream_depth": PHASE_PIPELINED,
    "separate_bundles": PHASE_BUNDLED,
    "bundle_small_data": PHASE_BUNDLED,
}


@dataclass
class WaveState:
    """Per-wave state produced by wave pipelining, consumed by compute split."""

    index: int
    stage_indices: list[int]
    input_fields: list[str]
    #: field name → stages of this wave consuming it
    consumers: dict[str, list] = field(default_factory=dict)
    field_radius: dict[str, int] = field(default_factory=dict)
    #: (stage index, field name) → window stream feeding that stage
    stage_window_stream: dict[tuple[int, str], SSAValue] = field(default_factory=dict)
    load: LoadSpec | None = None
    shifts: list[ShiftSpec] = field(default_factory=list)
    duplicates: list[DuplicateSpec] = field(default_factory=list)
    #: Last movement-stage op emitted for this wave: compute/write stages are
    #: inserted *here* (not appended) so the per-wave program order of the
    #: monolithic lowering — which the functional dataflow simulator relies
    #: on for chained waves — is preserved exactly.
    anchor: Operation | None = None


@dataclass
class KernelLoweringState:
    """Everything the sub-passes accumulate while lowering one kernel."""

    kernel_name: str
    source_func: FuncOp
    analysis: StencilKernelAnalysis
    options: CompilerOptions
    plan: DataflowPlan
    phase: int = PHASE_ANALYSED
    #: Names of the sub-passes that actually processed this kernel; lets the
    #: ordering checks tell an idempotent re-run apart from a stage that was
    #: scheduled after its window already passed.
    completed: set[str] = field(default_factory=set)
    waves: list[list[int]] = field(default_factory=list)
    kernel_func: FuncOp | None = None
    args_by_name: dict[str, SSAValue] = field(default_factory=dict)
    lanes: int = 1
    declared: set[str] = field(default_factory=set)
    local_copies: dict[tuple[str, int], SSAValue] = field(default_factory=dict)
    wave_states: list[WaveState] = field(default_factory=list)

    def declare(self, module, callee: str) -> None:
        """Add one runtime-function declaration per callee to the module."""
        if callee in self.declared:
            return
        module.add_op(FuncOp.declaration(callee, [], []))
        self.declared.add(callee)

    @property
    def entry_block(self) -> Block:
        assert self.kernel_func is not None, "interface lowering has not run"
        return self.kernel_func.entry_block


@dataclass
class LoweringContext:
    """The typed blackboard shared by all stencil→HLS sub-passes."""

    options: CompilerOptions = field(default_factory=CompilerOptions)
    #: generated kernel name (``<func>_hls``) → per-kernel lowering state
    kernels: dict[str, KernelLoweringState] = field(default_factory=dict)

    @property
    def plans(self) -> dict[str, DataflowPlan]:
        """Dataflow plans of every fully-lowered kernel."""
        return {
            name: state.plan
            for name, state in self.kernels.items()
            if state.phase >= PHASE_COMPUTED
        }

    def next_missing_stage(self) -> str | None:
        """The sub-pass a stalled pipeline forgot, if any.

        Kernels below ``PHASE_COMPUTED`` have no plan yet; the hint names
        the pass producing the earliest phase a stalled kernel is missing.
        """
        stalled = [
            state.phase
            for state in self.kernels.values()
            if state.phase < PHASE_COMPUTED
        ]
        if not stalled:
            return None
        return _PHASE_HINTS[min(stalled) + 1]

    @property
    def unbundled_kernels(self) -> list[str]:
        """Lowered kernels still waiting for ``hls-bundle-assignment``.

        A plan without interface specs synthesises into a nonsense design
        (zero AXI ports); the compiler refuses or completes such pipelines.
        """
        return [
            name
            for name, state in self.kernels.items()
            if state.phase == PHASE_COMPUTED
        ]


class StencilLoweringPass(ModulePass):
    """Base class of the staged stencil→HLS sub-passes.

    Handles context resolution and per-pass option overrides: a sub-pass may
    be created with an explicit :class:`CompilerOptions` or with keyword
    overrides parsed from a pipeline spec (``stencil-wave-pipelining{split=0}``);
    overrides are applied to the per-kernel effective options (and the plan)
    at the point the pass runs.
    """

    #: Phase a kernel must be in for this pass to process it …
    requires_phase: int = PHASE_ANALYSED
    #: … and the phase it is advanced to afterwards.
    produces_phase: int = PHASE_ANALYSED
    #: Additional phases this pass accepts kernels from, for optional
    #: stages that may be omitted from the pipeline (e.g. skipping
    #: ``stencil-small-data-buffering`` is the no-BRAM-copy ablation).
    also_accepts: tuple[int, ...] = ()

    def __init__(self, options: CompilerOptions | None = None, **overrides) -> None:
        if options is not None:
            options.validate()
        self.options = options
        self.overrides = dict(overrides)

    def pipeline_options(self) -> dict:
        return dict(self.overrides)

    def lowering_context(self) -> LoweringContext:
        """The shared :class:`LoweringContext`, created on first use."""
        ctx = self.ctx if self.ctx is not None else PassContext()
        self.ctx = ctx
        lowering = ctx.get(LoweringContext)
        if lowering is None:
            lowering = LoweringContext(options=self.options or CompilerOptions())
            ctx.set(lowering)
        return lowering

    def apply_global_overrides(self, lowering: LoweringContext) -> None:
        """Fold this pass's options/overrides into the context-wide options.

        Used by the stages that run before any lowering work happens (the
        composite pass and shape inference), where every option is still
        free to change.  Kernels whose state was already seeded by an
        earlier shape inference are updated too — as long as no lowering
        stage has consumed their options yet; afterwards a mismatch is an
        error, never a silent drop.
        """
        if self.options is not None:
            lowering.options = self.options
        if self.overrides:
            lowering.options = resolve_option_overrides(lowering.options, self.overrides)
        lowering.options.validate()
        for state in lowering.kernels.values():
            if state.options == lowering.options:
                continue
            if state.phase == PHASE_ANALYSED:
                # Shape inference is option-independent: re-seed freely.
                state.options = lowering.options
                state.plan.options = lowering.options
            else:
                raise ValueError(
                    f"pass '{self.name}': kernel '{state.kernel_name}' was "
                    "already lowered past shape inference with different "
                    "options; schedule option overrides before the lowering "
                    "stages"
                )

    def accepted_phases(self) -> tuple[int, ...]:
        return (self.requires_phase, *self.also_accepts)

    def check_override_timing(self) -> None:
        """Reject overrides of options an earlier stage already consumed."""
        for key in self.overrides:
            self._check_field_timing(resolve_option_field(key), key)

    def _check_field_timing(self, field_name: str, key: str) -> None:
        consumer = _OPTION_CONSUMER_PHASE.get(field_name)
        if consumer is not None and consumer < self.produces_phase:
            raise ValueError(
                f"option '{key}' on pass '{self.name}' comes too late: "
                f"'{_PHASE_HINTS[consumer]}' already consumed "
                f"{field_name!r}; set it on that pass (or on "
                "stencil-shape-inference / convert-stencil-to-hls)"
            )

    def ready_kernels(self, lowering: LoweringContext):
        """Yield kernels waiting for this pass; advance their phase after."""
        self.check_override_timing()
        for state in lowering.kernels.values():
            if state.phase not in self.accepted_phases():
                continue
            if self.options is not None or self.overrides:
                base = self.options or state.options
                resolved = resolve_option_overrides(base, self.overrides)
                # An explicit CompilerOptions object can smuggle in changes
                # the alias-keyed check above never sees: verify every field
                # that actually differs from the kernel's effective options.
                for options_field in dataclasses.fields(CompilerOptions):
                    if getattr(resolved, options_field.name) != getattr(
                        state.options, options_field.name
                    ):
                        self._check_field_timing(options_field.name, options_field.name)
                state.options = resolved
                state.plan.options = resolved
            yield state
            state.phase = self.produces_phase
            state.completed.add(self.name)


def require_any_ready(pass_: StencilLoweringPass, lowering: LoweringContext) -> bool:
    """Sanity check for out-of-order pipelines.

    Returns True when the pass has (or already had) work: some kernel is at
    a phase it accepts, or it processed the kernel in an earlier run
    (idempotent re-runs are fine).  Raises a readable error when the spec
    scheduled this pass too early (an earlier stage is missing) or too late
    (its window already passed without it ever running) instead of silently
    doing nothing.
    """
    if not lowering.kernels:
        return False
    accepted = pass_.accepted_phases()
    latest = max(accepted)
    any_ready = False
    for state in lowering.kernels.values():
        if state.phase in accepted or pass_.name in state.completed:
            any_ready = True
        elif state.phase > latest:
            raise ValueError(
                f"pass '{pass_.name}' is scheduled too late: kernel "
                f"'{state.kernel_name}' is already past that stage; move the "
                "pass earlier in the pipeline spec"
            )
    if any_ready:
        return True
    missing = _PHASE_HINTS.get(min(accepted), "an earlier stage")
    raise ValueError(
        f"pass '{pass_.name}' needs kernels lowered through '{missing}'; "
        "fix the pass ordering in the pipeline spec"
    )


def insert_before_terminator(block: Block, ops) -> None:
    """Insert ``ops`` (in order) right before the block terminator."""
    if isinstance(ops, Operation):
        ops = [ops]
    terminator = block.terminator
    for op in ops:
        if terminator is not None:
            block.insert_op_before(op, terminator)
        else:
            block.add_op(op)


class InsertionCursor:
    """Inserts a growing sequence of ops after a moving anchor."""

    def __init__(self, block: Block, anchor: Operation) -> None:
        self.block = block
        self.anchor = anchor

    def insert(self, op: Operation) -> Operation:
        self.block.insert_op_after(op, self.anchor)
        self.anchor = op
        return op

    def insert_all(self, ops) -> None:
        for op in ops:
            self.insert(op)
