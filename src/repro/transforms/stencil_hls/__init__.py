"""The staged stencil→HLS lowering (§3.3) as discrete, composable passes.

See :mod:`repro.transforms.stencil_hls.context` for the stage breakdown and
``docs/architecture.md`` for how the stages map onto the paper's nine
automatic optimisation steps.  :func:`build_stencil_to_hls_pipeline`
returns the canonical ordering; the thin
:class:`repro.transforms.stencil_to_hls.StencilToHLSPass` composite runs
exactly this list.
"""

from __future__ import annotations

from repro.transforms.stencil_hls.bundle_assignment import HLSBundleAssignmentPass
from repro.transforms.stencil_hls.compute_split import StencilComputeSplitPass
from repro.transforms.stencil_hls.context import (
    KernelLoweringState,
    LoweringContext,
    StencilLoweringPass,
    WaveState,
)
from repro.transforms.stencil_hls.interface_lowering import StencilInterfaceLoweringPass
from repro.transforms.stencil_hls.shape_inference import StencilShapeInferencePass
from repro.transforms.stencil_hls.small_data import StencilSmallDataBufferingPass
from repro.transforms.stencil_hls.wave_pipelining import StencilWavePipeliningPass

__all__ = [
    "HLSBundleAssignmentPass",
    "KernelLoweringState",
    "LoweringContext",
    "StencilComputeSplitPass",
    "StencilInterfaceLoweringPass",
    "StencilLoweringPass",
    "StencilShapeInferencePass",
    "StencilSmallDataBufferingPass",
    "StencilWavePipeliningPass",
    "WaveState",
    "build_stencil_to_hls_pipeline",
]


def build_stencil_to_hls_pipeline() -> list[StencilLoweringPass]:
    """The canonical sub-pass ordering of the stencil→HLS lowering."""
    return [
        StencilShapeInferencePass(),
        StencilInterfaceLoweringPass(),
        StencilSmallDataBufferingPass(),
        StencilWavePipeliningPass(),
        StencilComputeSplitPass(),
        HLSBundleAssignmentPass(),
    ]
