"""Stage 6: assign every kernel argument to its AXI interface bundle.

Step 9 of §3.3: each input/output field argument gets its own ``m_axi``
bundle (and therefore its own HBM bank) to maximise external bandwidth;
small constant data shares a single bundle to avoid wasting ports; scalars
go over the ``s_axilite`` control interface.  With
``separate_bundles=False`` (ablation A3) all fields share one bundle.

The pass rewrites the ``bundle`` attribute of the ``hls.interface`` ops
emitted by ``stencil-interface-lowering`` and records the final
:class:`~repro.core.plan.InterfaceSpec` list on the dataflow plan, which is
what the synthesis and HBM allocation models consume.
"""

from __future__ import annotations

from repro.core.plan import InterfaceSpec
from repro.dialects import hls
from repro.ir.attributes import StringAttr
from repro.transforms.stencil_hls.context import (
    PHASE_BUNDLED,
    PHASE_COMPUTED,
    StencilLoweringPass,
    require_any_ready,
)


class HLSBundleAssignmentPass(StencilLoweringPass):
    """Finalise AXI bundle assignment and the plan's interface specs."""

    name = "hls-bundle-assignment"
    requires_phase = PHASE_COMPUTED
    produces_phase = PHASE_BUNDLED

    def apply(self, module) -> bool:
        lowering = self.lowering_context()
        require_any_ready(self, lowering)
        changed = False
        for state in self.ready_kernels(lowering):
            self._assign(state)
            changed = True
        return changed

    def _assign(self, state) -> None:
        options = state.options
        interface_by_arg = {
            op.argument: op for op in state.kernel_func.walk_type(hls.InterfaceOp)
        }
        if state.analysis.arguments and not interface_by_arg:
            # Interface lowering always emits one hls.interface per argument;
            # they only vanish when convert-hls-to-llvm already rewrote them.
            # Assigning bundles now would leave the IR with placeholder
            # bundles while the plan reports the real ones.
            raise ValueError(
                f"hls-bundle-assignment: kernel '{state.kernel_name}' has no "
                "hls.interface ops left to rewrite; schedule this pass before "
                "convert-hls-to-llvm"
            )
        for info in state.analysis.arguments:
            arg = state.args_by_name[info.name]
            if info.is_field:
                bundle = f"gmem_{info.name}" if options.separate_bundles else "gmem0"
                protocol = "m_axi"
                direction = "out" if info.kind == "field_output" else "in"
                packed = state.lanes
            elif info.kind == "small_data":
                bundle = "gmem_small" if options.bundle_small_data else f"gmem_{info.name}"
                protocol = "m_axi"
                direction = "in"
                packed = 1
            else:
                bundle = "control"
                protocol = "s_axilite"
                direction = "in"
                packed = 1
            interface_op = interface_by_arg.get(arg)
            if interface_op is not None:
                interface_op.attributes["bundle"] = StringAttr(bundle)
            state.plan.interfaces.append(
                InterfaceSpec(
                    arg_name=info.name,
                    bundle=bundle,
                    protocol=protocol,
                    direction=direction,
                    is_small_data=(info.kind == "small_data"),
                    packed_lanes=packed,
                    element_bits=info.element_bits,
                )
            )
