"""Stage 2: build the HLS kernel function with packed interface types.

Step 2 of §3.3: field arguments become pointers to 512-bit packed vectors
(eight f64 lanes on the evaluated devices) so one external-memory beat moves
a full bus width; small data and scalars keep their addressable types.  The
pass creates the ``<kernel>_hls`` function next to the original stencil
function, emits one ``hls.interface`` op per argument (the actual AXI
bundle names are assigned by ``hls-bundle-assignment`` at the end of the
pipeline) and terminates the body, leaving the original function in place —
its stencil apply bodies are consumed later by ``stencil-compute-split``.
"""

from __future__ import annotations

from repro.dialects import hls
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir.attributes import IntAttr, UnitAttr
from repro.ir.types import LLVMPointerType, f64, packed_interface_type
from repro.transforms.stencil_hls.context import (
    PHASE_ANALYSED,
    PHASE_INTERFACED,
    StencilLoweringPass,
    require_any_ready,
)


class StencilInterfaceLoweringPass(StencilLoweringPass):
    """Create the HLS kernel skeleton with packed external interfaces."""

    name = "stencil-interface-lowering"
    requires_phase = PHASE_ANALYSED
    produces_phase = PHASE_INTERFACED

    def apply(self, module) -> bool:
        lowering = self.lowering_context()
        require_any_ready(self, lowering)
        changed = False
        for state in self.ready_kernels(lowering):
            self._build_kernel(state)
            changed = True
        return changed

    def _build_kernel(self, state) -> None:
        options = state.options
        analysis = state.analysis
        func = state.source_func

        lanes = 1
        if options.pack_interfaces:
            lanes = options.interface_width_bits // 64
        new_arg_types = []
        for arg_info, old_arg in zip(analysis.arguments, func.entry_block.args):
            if arg_info.is_field:
                if options.pack_interfaces:
                    new_arg_types.append(
                        LLVMPointerType(packed_interface_type(f64, options.interface_width_bits))
                    )
                else:
                    new_arg_types.append(LLVMPointerType(f64))
            else:
                new_arg_types.append(old_arg.type)

        new_func = FuncOp.with_body(
            state.kernel_name,
            new_arg_types,
            [],
            attributes={
                "hls.kernel": UnitAttr(),
                "hls.target_ii": IntAttr(options.target_ii),
            },
        )
        for new_arg, arg_info in zip(new_func.entry_block.args, analysis.arguments):
            new_arg.name_hint = arg_info.name

        state.kernel_func = new_func
        state.lanes = lanes
        state.args_by_name = {
            info.name: arg
            for info, arg in zip(analysis.arguments, new_func.entry_block.args)
        }

        body = new_func.entry_block
        for info in analysis.arguments:
            arg = state.args_by_name[info.name]
            if info.is_field or info.kind == "small_data":
                protocol, bundle = "m_axi", "gmem0"
            else:
                protocol, bundle = "s_axilite", "control"
            body.add_op(hls.InterfaceOp(arg, protocol, bundle))
        body.add_op(ReturnOp())

        parent = func.parent
        assert parent is not None
        parent.insert_op_after(new_func, func)
