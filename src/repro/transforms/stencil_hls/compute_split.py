"""Stage 5: per-output-field compute stages, window mapping and write-back.

Steps 4–6 of §3.3: the computation of each stencil output field is split
into its own concurrently-running dataflow stage (step 4), every
``stencil.access`` offset is mapped onto the corresponding lane of the
shift-buffer window (step 5), and all ``stencil.store`` operations collapse
into a single ``write_data`` dataflow stage per wave (step 6).  With
``split_compute_per_field=False`` (ablation A1) all stages of a wave share
one compute region and one set of window streams.

The compute and write stages of each wave are *inserted at the wave's
anchor* recorded by ``stencil-wave-pipelining`` — not appended at the end —
so the resulting program order is identical to the monolithic lowering
(wave N's write precedes wave N+1's load, which the functional dataflow
simulator's in-order interpretation of chained waves requires).  Once every
wave is emitted the original stencil function is detached from the module.
"""

from __future__ import annotations

from repro.core.plan import ComputeStageSpec, StreamSpec, WavePlan, WriteFieldSpec, WriteSpec
from repro.dialects import arith, hls, llvm as llvm_d, scf, stencil
from repro.dialects.func import CallOp
from repro.ir.core import Block, BlockArgument, SSAValue
from repro.ir.types import f64
from repro.runtime.window import window_index, window_size
from repro.transforms.stencil_analysis import AnalysisError
from repro.transforms.stencil_hls.context import (
    PHASE_COMPUTED,
    PHASE_PIPELINED,
    InsertionCursor,
    StencilLoweringPass,
    WaveState,
    require_any_ready,
)


class StencilComputeSplitPass(StencilLoweringPass):
    """Emit the split compute stages and the per-wave write stage."""

    name = "stencil-compute-split"
    requires_phase = PHASE_PIPELINED
    produces_phase = PHASE_COMPUTED

    def apply(self, module) -> bool:
        lowering = self.lowering_context()
        require_any_ready(self, lowering)
        changed = False
        for state in self.ready_kernels(lowering):
            for wave in state.wave_states:
                state.plan.waves.append(self._emit_wave_compute(module, state, wave))
            # The HLS kernel fully replaces the original stencil function.
            state.source_func.detach()
            state.source_func.drop_all_references()
            changed = True
        return changed

    # ------------------------------------------------------------- steps 4-6

    def _emit_wave_compute(self, module, state, wave: WaveState) -> WavePlan:
        options = state.options
        analysis = state.analysis
        wave_index = wave.index
        rank = analysis.rank
        arg_info_by_name = {a.name: a for a in analysis.arguments}
        stages = [analysis.stages[i] for i in wave.stage_indices]
        if wave.anchor is None or wave.anchor.parent is not state.entry_block:
            # The movement stages this wave anchors on were rewritten away —
            # another lowering ran in between.
            raise ValueError(
                f"stencil-compute-split: wave {wave.index} of kernel "
                f"'{state.kernel_name}' lost its dataflow anchor; a pass such "
                "as convert-hls-to-llvm ran between stencil-wave-pipelining "
                "and stencil-compute-split — reorder the pipeline spec"
            )
        cursor = InsertionCursor(state.entry_block, wave.anchor)

        compute_specs: list[ComputeStageSpec] = []
        result_streams: list[tuple[str, SSAValue]] = []  # (output field, stream)
        write_fields: list[WriteFieldSpec] = []
        if options.split_compute_per_field:
            stage_groups = [[stage] for stage in stages]
        else:
            stage_groups = [list(stages)] if stages else []

        for group_index, group in enumerate(stage_groups):
            group_streams: dict[tuple[int, int], SSAValue] = {}
            for stage in group:
                for result_index, out_field in enumerate(stage.output_fields):
                    name = f"{out_field}_result_w{wave_index}"
                    create = hls.CreateStreamOp(f64, depth=options.stream_depth, name_hint=name)
                    cursor.insert(create)
                    group_streams[(stage.index, result_index)] = create.result
                    result_streams.append((out_field, create.result))
                    state.plan.streams.append(
                        StreamSpec(
                            name=name,
                            kind="result",
                            element_bits=64,
                            depth=options.stream_depth,
                            producer=f"compute_{stage.index}",
                            consumer=f"write_data_w{wave_index}",
                        )
                    )
                    info = arg_info_by_name.get(out_field)
                    write_fields.append(
                        WriteFieldSpec(
                            field_name=out_field,
                            lower=stage.lower_bound,
                            upper=stage.upper_bound,
                            field_lower=info.lower if info is not None else (0,) * rank,
                            grid_shape=info.shape if info is not None else analysis.grid_shape,
                        )
                    )

            label = f"compute_w{wave_index}_{group_index}"
            compute_region = hls.DataflowOp(label=label)
            cursor.insert(compute_region)
            self._emit_compute_loop(
                compute_region.body,
                group,
                wave,
                group_streams,
                state,
            )
            for stage in group:
                compute_specs.append(
                    ComputeStageSpec(
                        label=f"compute_{stage.index}",
                        stage_index=stage.index,
                        wave=wave_index,
                        output_fields=list(stage.output_fields),
                        input_windows={
                            f: f"{f}_shift_w{wave_index}" for f in stage.input_fields
                        },
                        small_data=list(stage.small_data),
                        flops_per_point=stage.flops,
                        window_size=window_size(
                            rank,
                            max(wave.field_radius.get(f, 1) for f in stage.input_fields)
                            if stage.input_fields
                            else 1,
                        ),
                        domain_points=analysis.domain_points,
                        ii=options.target_ii,
                    )
                )

        # ------------------------------------------------------------- step 6
        write_callee = f"write_data_w{wave_index}"
        state.declare(module, write_callee)
        write_region = hls.DataflowOp(label=write_callee)
        cursor.insert(write_region)
        write_args = [stream for _, stream in result_streams] + [
            state.args_by_name[field_name] for field_name, _ in result_streams
        ]
        write_region.body.add_op(CallOp(write_callee, write_args))
        write_spec = WriteSpec(callee=write_callee, fields=write_fields, lanes=state.lanes)

        return WavePlan(
            index=wave_index,
            load=wave.load,
            shifts=wave.shifts,
            duplicates=wave.duplicates,
            computes=compute_specs,
            write=write_spec,
        )

    # ------------------------------------------------------- compute stage body

    def _emit_compute_loop(
        self,
        region_body: Block,
        stages,
        wave: WaveState,
        result_streams: dict[tuple[int, int], SSAValue],
        state,
    ) -> None:
        analysis = state.analysis
        domain_lower = analysis.domain_lower
        domain_upper = analysis.domain_upper
        domain_points = analysis.domain_points

        zero = arith.ConstantOp.from_index(0)
        upper = arith.ConstantOp.from_index(domain_points)
        one = arith.ConstantOp.from_index(1)
        region_body.add_ops([zero, upper, one])
        loop = scf.ForOp(zero.result, upper.result, one.result)
        region_body.add_op(loop)
        loop_body = loop.body
        loop_body.add_op(hls.PipelineOp(state.options.target_ii))
        iv = loop.induction_variable

        extents = [u - l for l, u in zip(domain_lower, domain_upper)]
        strides = []
        acc = 1
        for extent in reversed(extents):
            strides.insert(0, acc)
            acc *= extent

        dim_index_cache: dict[int, SSAValue] = {}

        def dim_index(dim: int) -> SSAValue:
            """Reconstruct the global index of dimension ``dim`` from the linear iv."""
            if dim in dim_index_cache:
                return dim_index_cache[dim]
            stride = arith.ConstantOp.from_index(strides[dim])
            extent = arith.ConstantOp.from_index(extents[dim])
            lower = arith.ConstantOp.from_index(domain_lower[dim])
            div = arith.DivsiOp(iv, stride.result)
            rem = arith.RemsiOp(div.result, extent.result)
            add = arith.AddiOp(rem.result, lower.result)
            loop_body.add_ops([stride, extent, lower, div, rem, add])
            dim_index_cache[dim] = add.result
            return add.result

        # Read every distinct window stream exactly once per iteration.  With
        # per-field splitting each group holds a single stage reading its own
        # stream copies; without splitting (ablation A1) the stages share one
        # set of window streams, so the read must be shared too.
        window_values_by_stream: dict[SSAValue, SSAValue] = {}
        stage_windows: dict[tuple[int, str], SSAValue] = {}
        for stage in stages:
            for field_name in stage.input_fields:
                stream = wave.stage_window_stream[(stage.index, field_name)]
                if stream not in window_values_by_stream:
                    read = hls.ReadOp(stream)
                    loop_body.add_op(read)
                    window_values_by_stream[stream] = read.result
                stage_windows[(stage.index, field_name)] = window_values_by_stream[stream]

        for stage in stages:
            apply_op = stage.apply_op
            window_values = {
                field_name: stage_windows[(stage.index, field_name)]
                for field_name in stage.input_fields
            }

            value_map: dict[SSAValue, SSAValue] = {}
            # Map non-field operands of the apply to kernel arguments / local copies.
            for operand, block_arg in zip(apply_op.operands, apply_op.body.args):
                if isinstance(operand.type, (stencil.TempType, stencil.FieldType)):
                    continue
                name = operand.name_hint
                if isinstance(operand, BlockArgument) and name in state.args_by_name:
                    target = state.args_by_name[name]
                    local = state.local_copies.get((name, stage.index))
                    value_map[block_arg] = local if local is not None else target
                else:
                    raise AnalysisError(
                        "stencil-to-hls: non-field apply operands must be kernel "
                        "arguments (scalars or small data memrefs)"
                    )

            # Which field does each apply block argument correspond to?
            arg_field_names: dict[SSAValue, str] = {}
            for operand_index, operand in enumerate(apply_op.operands):
                if isinstance(operand.type, (stencil.TempType, stencil.FieldType)):
                    field_name = stage.input_fields[
                        sum(
                            1
                            for o in apply_op.operands[:operand_index]
                            if isinstance(o.type, (stencil.TempType, stencil.FieldType))
                        )
                    ]
                    arg_field_names[apply_op.body.args[operand_index]] = field_name

            for op in apply_op.body.ops:
                if isinstance(op, stencil.AccessOp):
                    field_name = arg_field_names[op.temp]
                    radius = wave.field_radius.get(field_name, 1)
                    lane = window_index(op.offset, radius)
                    extract = llvm_d.ExtractValueOp(window_values[field_name], [lane], f64)
                    loop_body.add_op(extract)
                    value_map[op.result] = extract.result
                elif isinstance(op, stencil.IndexOp):
                    value_map[op.result] = dim_index(op.dim)
                elif isinstance(op, stencil.ReturnOp):
                    for result_index, returned in enumerate(op.operands):
                        stream = result_streams.get((stage.index, result_index))
                        if stream is None:
                            continue
                        loop_body.add_op(hls.WriteOp(stream, value_map[returned]))
                else:
                    cloned = op.clone(value_map)
                    loop_body.add_op(cloned)
                    for old_res, new_res in zip(op.results, cloned.results):
                        value_map[old_res] = new_res

        loop_body.add_op(scf.YieldOp())
