"""Stage 3: copy small constant data into on-chip BRAM/URAM.

Step 8 of §3.3: small constant arrays (vertical profiles etc.) are copied
from external memory into local BRAM once at kernel start, with one private
copy per consuming compute stage so the concurrent dataflow stages never
contend for a port.  The copy loops are pipelined at II=1 and the local
arrays are cyclically partitioned.  Omitting this pass from the pipeline is
the `copy_small_data_to_bram=False` ablation.
"""

from __future__ import annotations

from repro.core.plan import SmallDataCopySpec
from repro.dialects import arith, hls, memref as memref_d, scf
from repro.ir.core import Block, SSAValue
from repro.ir.types import MemRefType
from repro.transforms.stencil_hls.context import (
    PHASE_BUFFERED,
    PHASE_INTERFACED,
    StencilLoweringPass,
    insert_before_terminator,
    require_any_ready,
)


class StencilSmallDataBufferingPass(StencilLoweringPass):
    """Emit per-stage BRAM copies of small constant data."""

    name = "stencil-small-data-buffering"
    requires_phase = PHASE_INTERFACED
    produces_phase = PHASE_BUFFERED

    def apply(self, module) -> bool:
        lowering = self.lowering_context()
        require_any_ready(self, lowering)
        changed = False
        for state in self.ready_kernels(lowering):
            if not state.options.copy_small_data_to_bram:
                continue
            changed |= self._emit_copies(state)
        return changed

    def _emit_copies(self, state) -> bool:
        analysis = state.analysis
        body = state.entry_block
        changed = False
        small_by_name = {info.name: info for info in analysis.small_data}
        for stage in analysis.stages:
            for arg_name in stage.small_data:
                info = small_by_name.get(arg_name)
                if info is None:
                    continue
                arg = state.args_by_name[arg_name]
                if not isinstance(arg.type, MemRefType):
                    continue
                local = memref_d.AllocaOp(arg.type)
                local.result.name_hint = f"{arg_name}_local_{stage.index}"
                insert_before_terminator(body, local)
                insert_before_terminator(
                    body, hls.ArrayPartitionOp(local.result, kind="cyclic", factor=2)
                )
                self._emit_copy_loop(body, arg, local.result, info.num_elements, arg.type)
                state.local_copies[(arg_name, stage.index)] = local.result
                state.plan.small_copies.append(
                    SmallDataCopySpec(
                        arg_name=arg_name,
                        stage_label=f"compute_{stage.index}",
                        elements=info.num_elements,
                        element_bits=info.element_bits,
                    )
                )
                changed = True
        return changed

    def _emit_copy_loop(
        self,
        body: Block,
        source: SSAValue,
        target: SSAValue,
        count: int,
        memref_type: MemRefType,
    ) -> None:
        if memref_type.rank != 1:
            # Multi-dimensional small data: copy element count along dim 0 only
            # (our kernels only use 1-D profile arrays).
            count = memref_type.shape[0]
        zero = arith.ConstantOp.from_index(0)
        upper = arith.ConstantOp.from_index(count)
        one = arith.ConstantOp.from_index(1)
        insert_before_terminator(body, [zero, upper, one])
        loop = scf.ForOp(zero.result, upper.result, one.result)
        insert_before_terminator(body, loop)
        loop_body = loop.body
        loop_body.add_op(hls.PipelineOp(1))
        load = memref_d.LoadOp(source, [loop.induction_variable])
        loop_body.add_op(load)
        loop_body.add_op(memref_d.StoreOp(load.result, target, [loop.induction_variable]))
        loop_body.add_op(scf.YieldOp())
