"""Stage 4: per-wave data-movement pipeline (streams, load, shift, duplicate).

Steps 3 and 7 of §3.3: direct external-memory accesses are replaced by
streams — one specialised ``load_data`` stage per dependency wave feeds a
``shift_buffer`` stage per input field, whose window stream is duplicated
once per consuming compute stage.  Kernels whose stencil stages depend on
each other (the tracer advection case) are emitted as a sequence of
dependency *waves*; stages within a wave run concurrently, waves run
back-to-back.

This pass emits only the data-movement stages and records a
:class:`~repro.transforms.stencil_hls.context.WaveState` per wave
(including the insertion anchor at which ``stencil-compute-split`` later
interleaves the compute and write stages, preserving the program order the
functional dataflow simulator relies on).
"""

from __future__ import annotations

from repro.core.plan import DuplicateSpec, LoadSpec, ShiftSpec, StreamSpec
from repro.dialects import hls
from repro.dialects.func import CallOp
from repro.ir.core import SSAValue
from repro.ir.types import LLVMArrayType, f64
from repro.runtime.window import window_offsets, window_size
from repro.transforms.stencil_hls.context import (
    PHASE_BUFFERED,
    PHASE_INTERFACED,
    PHASE_PIPELINED,
    StencilLoweringPass,
    WaveState,
    insert_before_terminator,
    require_any_ready,
)


class StencilWavePipeliningPass(StencilLoweringPass):
    """Emit the load/shift/duplicate dataflow stages of every wave."""

    name = "stencil-wave-pipelining"
    requires_phase = PHASE_BUFFERED
    produces_phase = PHASE_PIPELINED
    # Small-data buffering is an optional stage: omitting it from the
    # pipeline is the no-BRAM-copy ablation.
    also_accepts = (PHASE_INTERFACED,)

    def apply(self, module) -> bool:
        lowering = self.lowering_context()
        require_any_ready(self, lowering)
        changed = False
        for state in self.ready_kernels(lowering):
            for wave_index, stage_indices in enumerate(state.waves):
                wave = self._emit_wave_movement(module, state, wave_index, stage_indices)
                state.wave_states.append(wave)
            changed = True
        return changed

    def _emit_wave_movement(self, module, state, wave_index: int, stage_indices) -> WaveState:
        options = state.options
        analysis = state.analysis
        body = state.entry_block
        lanes = state.lanes
        rank = analysis.rank
        arg_info_by_name = {a.name: a for a in analysis.arguments}
        stages = [analysis.stages[i] for i in stage_indices]

        last_emitted = None

        def emit(op):
            nonlocal last_emitted
            insert_before_terminator(body, op)
            last_emitted = op
            return op

        # Which fields does this wave read, and which stages consume each?
        input_fields: list[str] = []
        consumers: dict[str, list] = {}
        for stage in stages:
            for field_name in stage.input_fields:
                if field_name not in input_fields:
                    input_fields.append(field_name)
                consumers.setdefault(field_name, []).append(stage)

        wave = WaveState(
            index=wave_index,
            stage_indices=list(stage_indices),
            input_fields=input_fields,
            consumers=consumers,
        )

        # ------------------------------------------------------------- step 3
        # Raw input streams + the (specialised) load_data stage (step 7).
        in_streams: dict[str, SSAValue] = {}
        packed_type = LLVMArrayType(lanes, f64) if lanes > 1 else f64
        for field_name in input_fields:
            create = hls.CreateStreamOp(
                packed_type, depth=options.stream_depth,
                name_hint=f"{field_name}_in_w{wave_index}",
            )
            emit(create)
            in_streams[field_name] = create.result
            state.plan.streams.append(
                StreamSpec(
                    name=f"{field_name}_in_w{wave_index}",
                    kind="raw_in",
                    element_bits=64 * lanes,
                    depth=options.stream_depth,
                    producer=f"load_data_w{wave_index}",
                    consumer=f"shift_buffer_{field_name}_w{wave_index}",
                )
            )

        load_callee = f"load_data_w{wave_index}"
        state.declare(module, load_callee)
        load_region = hls.DataflowOp(label=f"load_w{wave_index}")
        emit(load_region)
        load_args = [state.args_by_name[f] for f in input_fields] + [
            in_streams[f] for f in input_fields
        ]
        load_region.body.add_op(CallOp(load_callee, load_args))
        wave.load = LoadSpec(
            callee=load_callee,
            fields=list(input_fields),
            lanes=lanes,
            grid_shape=analysis.grid_shape,
            field_lower={
                f: arg_info_by_name[f].lower if f in arg_info_by_name else (0,) * rank
                for f in input_fields
            },
        )

        # Shift buffers: one per input field.
        shift_streams: dict[str, SSAValue] = {}
        for field_name in input_fields:
            radius = 0
            for stage in consumers[field_name]:
                for offset in stage.offsets.get(field_name, []):
                    for component in offset:
                        radius = max(radius, abs(component))
            radius = max(radius, 1)
            wave.field_radius[field_name] = radius
            wsize = window_size(rank, radius)
            window_type = LLVMArrayType(wsize, f64)
            create = hls.CreateStreamOp(
                window_type, depth=options.stream_depth,
                name_hint=f"{field_name}_shift_w{wave_index}",
            )
            emit(create)
            shift_streams[field_name] = create.result
            shift_callee = f"shift_buffer_{field_name}_w{wave_index}"
            state.declare(module, shift_callee)
            shift_region = hls.DataflowOp(label=f"shift_{field_name}_w{wave_index}")
            emit(shift_region)
            shift_region.body.add_op(CallOp(shift_callee, [in_streams[field_name], create.result]))
            info = arg_info_by_name.get(field_name)
            wave.shifts.append(
                ShiftSpec(
                    callee=shift_callee,
                    field_name=field_name,
                    grid_shape=info.shape if info is not None else analysis.grid_shape,
                    field_lower=info.lower if info is not None else (0,) * rank,
                    domain_lower=analysis.domain_lower,
                    domain_upper=analysis.domain_upper,
                    radius=radius,
                    window_offsets=window_offsets(rank, radius),
                )
            )
            state.plan.streams.append(
                StreamSpec(
                    name=f"{field_name}_shift_w{wave_index}",
                    kind="window",
                    element_bits=64 * wsize,
                    depth=options.stream_depth,
                    producer=shift_callee,
                    consumer=f"compute_w{wave_index}",
                )
            )

        # Duplication stage: one copy of the window stream per consuming stage.
        for field_name in input_fields:
            field_consumers = consumers[field_name]
            if len(field_consumers) == 1 or not options.split_compute_per_field:
                for stage in field_consumers:
                    wave.stage_window_stream[(stage.index, field_name)] = shift_streams[field_name]
                continue
            wsize = window_size(rank, wave.field_radius[field_name])
            window_type = LLVMArrayType(wsize, f64)
            copies: list[SSAValue] = []
            copy_names: list[str] = []
            for copy_index, stage in enumerate(field_consumers):
                name = f"{field_name}_shift_copy_{copy_index}_w{wave_index}"
                create = hls.CreateStreamOp(window_type, depth=options.stream_depth, name_hint=name)
                emit(create)
                copies.append(create.result)
                copy_names.append(name)
                wave.stage_window_stream[(stage.index, field_name)] = create.result
                state.plan.streams.append(
                    StreamSpec(
                        name=name,
                        kind="window_copy",
                        element_bits=64 * wsize,
                        depth=options.stream_depth,
                        producer=f"duplicate_{field_name}_w{wave_index}",
                        consumer=f"compute_{stage.index}",
                    )
                )
            dup_callee = f"duplicate_{field_name}_w{wave_index}"
            state.declare(module, dup_callee)
            dup_region = hls.DataflowOp(label=dup_callee)
            emit(dup_region)
            dup_region.body.add_op(CallOp(dup_callee, [shift_streams[field_name], *copies]))
            wave.duplicates.append(
                DuplicateSpec(
                    callee=dup_callee,
                    field_name=field_name,
                    source_stream=f"{field_name}_shift_w{wave_index}",
                    copies=copy_names,
                )
            )

        assert last_emitted is not None, "a wave always has at least a load stage"
        wave.anchor = last_emitted
        return wave
