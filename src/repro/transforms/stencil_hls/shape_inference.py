"""Stage 1: argument classification and structural shape inference.

Runs :func:`repro.transforms.stencil_analysis.analyse_stencil_function` on
every stencil kernel of the module (step 1 of §3.3: classify arguments into
field inputs / field outputs / constants, infer rank, grid shape and domain
bounds, per-access offsets and inter-stencil dependencies) and groups the
stencil stages into topological dependency waves.  The result seeds a
:class:`~repro.transforms.stencil_hls.context.KernelLoweringState` in the
shared :class:`~repro.transforms.stencil_hls.context.LoweringContext`; the
IR itself is left untouched.
"""

from __future__ import annotations

from repro.core.plan import DataflowPlan
from repro.dialects import stencil
from repro.dialects.func import FuncOp
from repro.transforms.stencil_analysis import analyse_stencil_function
from repro.transforms.stencil_hls.context import (
    KernelLoweringState,
    StencilLoweringPass,
)


class StencilShapeInferencePass(StencilLoweringPass):
    """Analyse every stencil kernel and record its lowering state."""

    name = "stencil-shape-inference"

    def apply(self, module) -> bool:
        lowering = self.lowering_context()
        self.apply_global_overrides(lowering)
        for func in list(module.walk_type(FuncOp)):
            if func.is_declaration:
                continue
            if not any(True for _ in func.walk_type(stencil.ApplyOp)):
                continue
            kernel_name = f"{func.sym_name}_hls"
            if kernel_name in lowering.kernels:
                continue
            analysis = analyse_stencil_function(func)
            state = KernelLoweringState(
                kernel_name=kernel_name,
                source_func=func,
                analysis=analysis,
                options=lowering.options,
                plan=DataflowPlan(
                    kernel_name=kernel_name,
                    analysis=analysis,
                    options=lowering.options,
                ),
            )
            state.waves = analysis.dependency_waves()
            lowering.kernels[kernel_name] = state
        # Pure analysis: the module is never modified.
        return False
