"""Dead code elimination for pure operations."""

from __future__ import annotations

from repro.ir.core import Operation
from repro.ir.passes import ModulePass


class DCEPass(ModulePass):
    """Remove pure operations whose results are never used.

    Runs to fixpoint so chains of dead computations disappear in one
    invocation of the pass.
    """

    name = "dce"

    def apply(self, module: Operation) -> bool:
        changed_any = False
        while True:
            dead = [
                op
                for op in module.walk()
                if op is not module
                and op.is_pure
                and op.results
                and all(res.num_uses == 0 for res in op.results)
            ]
            if not dead:
                break
            for op in dead:
                if op.parent is not None:
                    op.erase()
            changed_any = True
        return changed_any
