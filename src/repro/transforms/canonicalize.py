"""Canonicalisation: constant folding and algebraic simplification."""

from __future__ import annotations

from repro.ir.core import Operation
from repro.ir.passes import ModulePass
from repro.ir.rewriter import PatternRewriter, RewritePattern, apply_patterns
from repro.dialects import arith
from repro.ir.attributes import IntAttr
from repro.ir.types import FloatType
from repro.transforms.cse import CSEPass
from repro.transforms.dce import DCEPass


def _constant_value(value) -> float | int | None:
    from repro.ir.core import OpResult

    if isinstance(value, OpResult) and isinstance(value.op, arith.ConstantOp):
        return value.op.value
    return None


class FoldBinaryConstants(RewritePattern):
    """Fold binary arithmetic between two constants into a single constant."""

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        if not isinstance(op, arith.BINARY_OPS):
            return
        lhs = _constant_value(op.operands[0])
        rhs = _constant_value(op.operands[1])
        if lhs is None or rhs is None:
            return
        value = type(op).py_func(lhs, rhs)
        result_type = op.result.type
        if isinstance(result_type, FloatType):
            new_op = arith.ConstantOp.from_float(float(value), result_type)
        else:
            new_op = arith.ConstantOp(IntAttr(int(value), result_type))
        rewriter.replace_matched_op(new_op)


class SimplifyIdentities(RewritePattern):
    """x + 0, x * 1, x - 0, x / 1 → x; x * 0 → 0."""

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        if not isinstance(op, (arith.AddfOp, arith.SubfOp, arith.MulfOp, arith.DivfOp,
                               arith.AddiOp, arith.SubiOp, arith.MuliOp)):
            return
        lhs, rhs = op.operands
        rhs_const = _constant_value(rhs)
        lhs_const = _constant_value(lhs)
        is_add = isinstance(op, (arith.AddfOp, arith.AddiOp))
        is_sub = isinstance(op, (arith.SubfOp, arith.SubiOp))
        is_mul = isinstance(op, (arith.MulfOp, arith.MuliOp))
        is_div = isinstance(op, arith.DivfOp)
        if rhs_const == 0 and (is_add or is_sub):
            rewriter.replace_matched_op([], [lhs])
        elif lhs_const == 0 and is_add:
            rewriter.replace_matched_op([], [rhs])
        elif rhs_const == 1 and (is_mul or is_div):
            rewriter.replace_matched_op([], [lhs])
        elif lhs_const == 1 and is_mul:
            rewriter.replace_matched_op([], [rhs])


class CanonicalizePass(ModulePass):
    """Constant folding + identity simplification + CSE + DCE."""

    name = "canonicalize"

    def apply(self, module: Operation) -> bool:
        changed = apply_patterns(module, [FoldBinaryConstants(), SimplifyIdentities()])
        changed |= CSEPass().apply(module)
        changed |= DCEPass().apply(module)
        return changed
