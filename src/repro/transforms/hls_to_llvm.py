"""Lowering of the HLS dialect to annotated LLVM-dialect IR (§3.2).

Following the approach of Fortran-HLS that the paper adopts, HLS directives
are encoded as calls to void functions (they act as annotations and do not
perturb the structure of the IR); the ``f++`` preprocessing step
(:mod:`repro.fpp`) later pattern-matches those calls and turns them into the
intrinsics / metadata the AMD Xilinx backend expects.

Streams are lowered to the only form the Vitis backend accepts as legal:

* the stream value becomes a pointer to a single-element struct whose
  element type is the stream's element type, and
* the ``llvm.fpga.set.stream.depth`` intrinsic is called on a pointer to the
  first struct element, obtained through ``getelementptr`` with offset
  ``[0, 0]``.

Dataflow regions are outlined into stage functions called from the kernel
(this is the structure Vitis HLS expects for ``#pragma HLS dataflow``).
"""

from __future__ import annotations

from repro.ir.core import Block, Operation, SSAValue
from repro.ir.passes import ModulePass
from repro.ir.attributes import StringAttr, UnitAttr
from repro.ir.types import LLVMStructType, i32
from repro.dialects import hls, llvm as llvm_d
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import CallOp, FuncOp, ReturnOp

#: Prefix used for all directive-encoding annotation functions.
ANNOTATION_PREFIX = "_hls_"

PIPELINE_PREFIX = f"{ANNOTATION_PREFIX}pipeline_ii_"
UNROLL_PREFIX = f"{ANNOTATION_PREFIX}unroll_factor_"
DATAFLOW_ANNOTATION = f"{ANNOTATION_PREFIX}dataflow"
INTERFACE_ANNOTATION = f"{ANNOTATION_PREFIX}interface"
ARRAY_PARTITION_PREFIX = f"{ANNOTATION_PREFIX}array_partition_"
FIFO_READ = "llvm.fpga.fifo.pop"
FIFO_WRITE = "llvm.fpga.fifo.push"
FIFO_EMPTY = "llvm.fpga.fifo.empty"
FIFO_FULL = "llvm.fpga.fifo.full"


class HLSToLLVMPass(ModulePass):
    """Lower every HLS-dialect construct of the module to LLVM-dialect form."""

    name = "convert-hls-to-llvm"

    def __init__(self) -> None:
        self._declared: set[str] = set()
        self._outline_counter = 0

    def apply(self, module: ModuleOp) -> bool:
        self._declared = {
            op.sym_name for op in module.body.ops if isinstance(op, FuncOp) and op.is_declaration
        }
        changed = False
        for func in list(module.walk_type(FuncOp)):
            if func.is_declaration:
                continue
            if "hls.kernel" in func.attributes or any(
                isinstance(op, hls.DIALECT_OPERATIONS) for op in func.walk()
            ):
                self._lower_function(module, func)
                changed = True
        return changed

    # -- helpers -----------------------------------------------------------------

    def _declare(self, module: ModuleOp, name: str) -> None:
        if name in self._declared:
            return
        module.add_op(FuncOp.declaration(name, [], []))
        self._declared.add(name)

    # -- per-function lowering ------------------------------------------------------

    def _lower_function(self, module: ModuleOp, func: FuncOp) -> None:
        # 1. Outline dataflow regions into stage functions first (they may
        #    contain further HLS operations which are lowered afterwards).
        has_dataflow = any(isinstance(op, hls.DataflowOp) for op in func.walk())
        if has_dataflow:
            self._outline_dataflow_regions(module, func)
            self._declare(module, DATAFLOW_ANNOTATION)
            func.entry_block.insert_op(CallOp(DATAFLOW_ANNOTATION, []), 0)

        # 2. Lower the remaining HLS operations everywhere in the module (the
        #    outlined stage functions included).
        for target in list(module.walk_type(FuncOp)):
            if target.is_declaration:
                continue
            self._lower_ops(module, target)

    # -- dataflow outlining ------------------------------------------------------------

    def _outline_dataflow_regions(self, module: ModuleOp, func: FuncOp) -> None:
        for op in list(func.walk_type(hls.DataflowOp)):
            self._outline_one(module, func, op)

    def _outline_one(self, module: ModuleOp, func: FuncOp, dataflow: hls.DataflowOp) -> None:
        body = dataflow.body
        # Values defined outside the region but used inside become parameters.
        inner_ops = list(body.walk())
        inner_results = {res for op in inner_ops for res in op.results}
        inner_blocks = {body}
        for op in inner_ops:
            for region in op.regions:
                inner_blocks.update(region.blocks)
        captured: list[SSAValue] = []
        for op in inner_ops:
            for operand in op.operands:
                if operand in inner_results:
                    continue
                owner = operand.owner()
                if isinstance(owner, Block) and owner in inner_blocks:
                    continue
                if operand not in captured:
                    captured.append(operand)

        label = dataflow.label or f"stage_{self._outline_counter}"
        self._outline_counter += 1
        stage_name = f"{func.sym_name}_{label}"
        stage_func = FuncOp.with_body(stage_name, [v.type for v in captured], [],
                                      attributes={"hls.dataflow_stage": UnitAttr()})
        for arg, value in zip(stage_func.entry_block.args, captured):
            arg.name_hint = value.name_hint
        value_map = dict(zip(captured, stage_func.entry_block.args))
        for op in list(body.ops):
            op.detach()
            cloned = op.clone(value_map)
            stage_func.entry_block.add_op(cloned)
            op.drop_all_references()
        stage_func.entry_block.add_op(ReturnOp())
        module.add_op(stage_func)

        call = CallOp(stage_name, captured)
        dataflow.parent.insert_op_before(call, dataflow)
        dataflow.erase()

    # -- op-by-op lowering -----------------------------------------------------------------

    def _lower_ops(self, module: ModuleOp, func: FuncOp) -> None:
        for op in list(func.walk()):
            if op.parent is None:
                continue
            if isinstance(op, hls.CreateStreamOp):
                self._lower_create_stream(module, op)
            elif isinstance(op, hls.ReadOp):
                self._lower_simple_call(module, op, FIFO_READ, [op.stream], [op.result.type])
            elif isinstance(op, hls.WriteOp):
                self._lower_simple_call(module, op, FIFO_WRITE, [op.value, op.stream], [])
            elif isinstance(op, hls.EmptyOp):
                self._lower_simple_call(module, op, FIFO_EMPTY, [op.stream], [op.result.type])
            elif isinstance(op, hls.FullOp):
                self._lower_simple_call(module, op, FIFO_FULL, [op.stream], [op.result.type])
            elif isinstance(op, hls.PipelineOp):
                self._lower_annotation(module, op, f"{PIPELINE_PREFIX}{op.ii}")
            elif isinstance(op, hls.UnrollOp):
                self._lower_annotation(module, op, f"{UNROLL_PREFIX}{op.factor}")
            elif isinstance(op, hls.ArrayPartitionOp):
                self._lower_annotation(module, op, f"{ARRAY_PARTITION_PREFIX}{op.kind}")
            elif isinstance(op, hls.InterfaceOp):
                self._lower_interface(module, op)

    def _lower_create_stream(self, module: ModuleOp, op: hls.CreateStreamOp) -> None:
        block = op.parent
        element_type = op.element_type
        struct_type = LLVMStructType([element_type])
        one = llvm_d.ConstantOp(1, i32)
        alloca = llvm_d.AllocaOp(one.result, struct_type)
        alloca.result.name_hint = op.result.name_hint
        gep = llvm_d.GEPOp(alloca.result, [0, 0], element_type)
        depth = llvm_d.ConstantOp(op.depth, i32)
        set_depth = llvm_d.CallOp(llvm_d.SET_STREAM_DEPTH_INTRINSIC, [gep.result, depth.result])
        for new_op in (one, alloca, gep, depth, set_depth):
            block.insert_op_before(new_op, op)
        op.result.replace_all_uses_with(alloca.result)
        op.erase()

    def _lower_simple_call(self, module: ModuleOp, op: Operation, callee: str,
                           operands: list[SSAValue], result_types: list) -> None:
        self._declare(module, callee)
        call = llvm_d.CallOp(callee, operands, result_types)
        block = op.parent
        block.insert_op_before(call, op)
        for old_res, new_res in zip(op.results, call.results):
            old_res.replace_all_uses_with(new_res)
        op.erase()

    def _lower_annotation(self, module: ModuleOp, op: Operation, callee: str) -> None:
        """Directives become calls to empty void functions with no arguments."""
        self._declare(module, callee)
        call = CallOp(callee, [])
        op.parent.insert_op_before(call, op)
        op.erase(safe=False)

    def _lower_interface(self, module: ModuleOp, op: hls.InterfaceOp) -> None:
        self._declare(module, INTERFACE_ANNOTATION)
        call = CallOp(INTERFACE_ANNOTATION, [op.argument])
        call.attributes["protocol"] = StringAttr(op.protocol)
        call.attributes["bundle"] = StringAttr(op.bundle)
        op.parent.insert_op_before(call, op)
        op.erase()
