"""Lowering of the stencil dialect to explicit ``scf`` loop nests.

This is the standard CPU-style lowering that existed before this work
(§3.3: "There is an existing transformation that lowers the stencil dialect
into the standard MLIR dialects targeting CPU execution").  The Vitis HLS
baseline consumes exactly this Von-Neumann-structured form, which is why its
FPGA performance is poor; Stencil-HMLS replaces it with the dataflow
structure produced by :mod:`repro.transforms.stencil_to_hls`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.core import Block, Operation, OpResult, SSAValue, VerifyException
from repro.ir.passes import ModulePass
from repro.dialects import arith, memref as memref_d, scf, stencil
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp
from repro.ir.types import index


@dataclass
class _FieldSource:
    """Where a stencil temp/field value lives: a memref plus its lower bounds."""

    memref: SSAValue
    lower: tuple[int, ...]


class StencilToSCFPass(ModulePass):
    """Lower every stencil kernel function of the module to scf loop nests."""

    name = "convert-stencil-to-scf"

    def __init__(self, use_parallel: bool = True) -> None:
        #: Emit ``scf.parallel`` (CPU semantics) or sequential ``scf.for`` nests
        #: (what the Vitis HLS baseline would synthesise).
        self.use_parallel = use_parallel

    def apply(self, module: ModuleOp) -> bool:
        changed = False
        for func in list(module.walk_type(FuncOp)):
            if any(True for _ in func.walk_type(stencil.ApplyOp)):
                self._lower_function(func)
                changed = True
        return changed

    # -- per-function lowering ---------------------------------------------------

    def _lower_function(self, func: FuncOp) -> None:
        entry = func.entry_block
        sources: dict[SSAValue, _FieldSource] = {}

        # Field / temp values all resolve to (memref, lower-bound) pairs.
        for op in list(func.walk()):
            if isinstance(op, stencil.ExternalLoadOp):
                field_type: stencil.FieldType = op.result.type
                sources[op.result] = _FieldSource(op.source, tuple(lb for lb, _ in field_type.bounds))
            elif isinstance(op, stencil.CastOp):
                if op.field in sources:
                    field_type = op.result.type
                    sources[op.result] = _FieldSource(sources[op.field].memref,
                                                      tuple(lb for lb, _ in field_type.bounds))
            elif isinstance(op, stencil.LoadOp):
                if op.field in sources:
                    sources[op.result] = sources[op.field]

        # Group stores by the apply producing the stored temp.
        stores = list(func.walk_type(stencil.StoreOp))
        stores_by_apply: dict[stencil.ApplyOp, list[stencil.StoreOp]] = {}
        for store in stores:
            temp = store.temp
            if not (isinstance(temp, OpResult) and isinstance(temp.op, stencil.ApplyOp)):
                raise VerifyException(
                    "stencil-to-scf: stencil.store must consume a stencil.apply result"
                )
            stores_by_apply.setdefault(temp.op, []).append(store)

        # Lower each apply (at the position of its first store) into a loop nest.
        for apply_op in func.walk_type(stencil.ApplyOp):
            apply_stores = stores_by_apply.get(apply_op, [])
            if not apply_stores:
                continue
            anchor = apply_stores[0]
            loop_ops = self._lower_apply(apply_op, apply_stores, sources)
            block = anchor.parent
            for new_op in loop_ops:
                block.insert_op_before(new_op, anchor)

        # Remove the now-redundant stencil operations (reverse order so uses
        # disappear before definitions).
        for op in reversed(list(func.walk())):
            if isinstance(op, (stencil.StoreOp, stencil.ExternalStoreOp)):
                op.erase()
        for op in reversed(list(func.walk())):
            if isinstance(op, (stencil.ApplyOp, stencil.LoadOp, stencil.CastOp, stencil.ExternalLoadOp)):
                if all(res.num_uses == 0 for res in op.results):
                    op.erase()

    # -- apply lowering ------------------------------------------------------------

    def _lower_apply(
        self,
        apply_op: stencil.ApplyOp,
        stores: list[stencil.StoreOp],
        sources: dict[SSAValue, _FieldSource],
    ) -> list[Operation]:
        lb = stores[0].lower_bound
        ub = stores[0].upper_bound
        rank = len(lb)
        prologue: list[Operation] = []
        lower_consts = [arith.ConstantOp.from_index(v) for v in lb]
        upper_consts = [arith.ConstantOp.from_index(v) for v in ub]
        one = arith.ConstantOp.from_index(1)
        prologue.extend(lower_consts)
        prologue.extend(upper_consts)
        prologue.append(one)

        if self.use_parallel:
            loop = scf.ParallelOp(
                [c.result for c in lower_consts],
                [c.result for c in upper_consts],
                [one.result] * rank,
            )
            body = loop.body
            ivs = list(loop.induction_variables)
            outer_ops: list[Operation] = prologue + [loop]
        else:
            # Sequential nest: for i { for j { for k { ... } } }
            loops: list[scf.ForOp] = []
            for d in range(rank):
                loop_d = scf.ForOp(lower_consts[d].result, upper_consts[d].result, one.result)
                if loops:
                    loops[-1].body.add_op(loop_d)
                loops.append(loop_d)
            body = loops[-1].body
            ivs = [l.induction_variable for l in loops]
            outer_ops = prologue + [loops[0]]

        self._emit_apply_body(apply_op, stores, sources, body, ivs)
        # Terminate the innermost block, then any enclosing sequential loops.
        body.add_op(scf.YieldOp())
        if not self.use_parallel:
            current = outer_ops[-1]
            while isinstance(current, scf.ForOp):
                if current.body.terminator is None:
                    current.body.add_op(scf.YieldOp())
                current = next(
                    (o for o in current.body.ops if isinstance(o, scf.ForOp)), None
                )
        return outer_ops

    def _emit_apply_body(
        self,
        apply_op: stencil.ApplyOp,
        stores: list[stencil.StoreOp],
        sources: dict[SSAValue, _FieldSource],
        body: Block,
        ivs: list[SSAValue],
    ) -> None:
        value_map: dict[SSAValue, SSAValue] = {}
        # Non-field operands map straight through to the outer values.
        for operand, block_arg in zip(apply_op.operands, apply_op.body.args):
            if not isinstance(operand.type, (stencil.TempType, stencil.FieldType)):
                value_map[block_arg] = operand

        index_cache: dict[int, SSAValue] = {}

        def shifted_index(dim: int, offset: int, lower: int) -> SSAValue:
            delta = offset - lower
            key = (dim, delta)
            if key in index_cache:
                return index_cache[key]
            if delta == 0:
                index_cache[key] = ivs[dim]
                return ivs[dim]
            const = arith.ConstantOp.from_index(delta)
            body.add_op(const)
            add = arith.AddiOp(ivs[dim], const.result)
            body.add_op(add)
            index_cache[key] = add.result
            return add.result

        for op in apply_op.body.ops:
            if isinstance(op, stencil.AccessOp):
                block_arg = op.temp
                operand_index = list(apply_op.body.args).index(block_arg)
                operand = apply_op.operands[operand_index]
                source = sources.get(operand)
                if source is None:
                    raise VerifyException(
                        "stencil-to-scf: chained stencil.apply operands must go "
                        "through stencil.store/stencil.load"
                    )
                indices = [
                    shifted_index(d, op.offset[d], source.lower[d])
                    for d in range(len(op.offset))
                ]
                load = memref_d.LoadOp(source.memref, indices)
                body.add_op(load)
                value_map[op.result] = load.result
            elif isinstance(op, stencil.IndexOp):
                value_map[op.result] = ivs[op.dim]
            elif isinstance(op, stencil.ReturnOp):
                for result_index, returned in enumerate(op.operands):
                    result_value = apply_op.results[result_index]
                    for store in stores:
                        if store.temp is not result_value:
                            continue
                        target = sources.get(store.field)
                        if target is None:
                            target_type = store.field.type
                            lower = tuple(lb for lb, _ in target_type.bounds)
                            target = _FieldSource(store.field, lower)
                        indices = [
                            shifted_index(d, 0, target.lower[d])
                            for d in range(len(store.lower_bound))
                        ]
                        body.add_op(
                            memref_d.StoreOp(value_map[returned], target.memref, indices)
                        )
            else:
                cloned = op.clone(value_map)
                body.add_op(cloned)
                for old_res, new_res in zip(op.results, cloned.results):
                    value_map[old_res] = new_res
