"""The Stencil-HMLS transformation: stencil dialect → HLS dialect (§3.3).

This pass restructures a Von-Neumann style stencil kernel into the
shift-buffer based dataflow form of Figure 3.  Since the staged-pipeline
refactor it is a *thin composition* of the discrete sub-passes in
:mod:`repro.transforms.stencil_hls`, which implement the nine automatic
optimisation steps of the paper:

====  =================================  ===============================
step  paper (§3.3)                       sub-pass
====  =================================  ===============================
1     classify kernel arguments          ``stencil-shape-inference``
2     512-bit packed interface types     ``stencil-interface-lowering``
3, 7  streams, shift buffers, load_data  ``stencil-wave-pipelining``
4, 5  per-field compute split + window   ``stencil-compute-split``
6     single write_data stage            ``stencil-compute-split``
8     small data copies into BRAM        ``stencil-small-data-buffering``
9     per-argument AXI bundles           ``hls-bundle-assignment``
====  =================================  ===============================

The sub-passes communicate through a
:class:`~repro.transforms.stencil_hls.context.LoweringContext` carried on
the pass manager's :class:`~repro.ir.passes.PassContext`; they can equally
be scheduled individually from a textual pipeline spec (see
:mod:`repro.ir.pass_registry`) to ablate single optimisation steps.

Kernels whose stencil stages depend on each other (the tracer advection
case) are emitted as a sequence of dependency *waves*; stages within a wave
run concurrently, waves run back-to-back.  Besides the HLS-dialect IR the
lowering records a :class:`~repro.core.plan.DataflowPlan` per kernel, which
the synthesis model, functional simulator and resource/power models consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CompilerOptions
from repro.core.plan import DataflowPlan
from repro.dialects.builtin import ModuleOp
from repro.ir.passes import PassManager
from repro.transforms.stencil_hls import (
    StencilLoweringPass,
    build_stencil_to_hls_pipeline,
)


@dataclass
class StencilToHLSOptions:
    """Backwards-compatible alias bundle (see :class:`CompilerOptions`)."""

    options: CompilerOptions


class StencilToHLSPass(StencilLoweringPass):
    """Apply the full staged Stencil-HMLS lowering to every stencil kernel."""

    name = "convert-stencil-to-hls"

    def __init__(self, options: CompilerOptions | None = None, **overrides) -> None:
        super().__init__(options, **overrides)
        #: Dataflow plans recorded per generated kernel (kernel name → plan).
        self.plans: dict[str, DataflowPlan] = {}

    def apply(self, module: ModuleOp) -> bool:
        lowering = self.lowering_context()
        # The composite runs before any stage, so every option may still be
        # overridden here (unlike per-sub-pass overrides, which are checked
        # against the stages that already consumed them).
        self.apply_global_overrides(lowering)
        # The outer pass manager verifies around this composite; the
        # intermediate states are valid IR but re-verifying five times per
        # kernel would only add cost.
        inner = PassManager(
            build_stencil_to_hls_pipeline(), verify_each=False, context=self.ctx
        )
        inner.run(module)
        self.plans = dict(lowering.plans)
        return any(stat.changed for stat in inner.statistics)
