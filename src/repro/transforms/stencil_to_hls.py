"""The Stencil-HMLS transformation: stencil dialect → HLS dialect (§3.3).

This pass restructures a Von-Neumann style stencil kernel into the
shift-buffer based dataflow form of Figure 3, following the nine steps of
the paper:

1.  classify kernel arguments (field inputs / field outputs / constants);
2.  replace the field interface types with 512-bit packed versions;
3.  replace direct external-memory accesses by streams (placeholder
    ``dummy_load_data`` + ``shift_buffer`` dataflow stages connected by
    streams, plus per-consumer stream duplication);
4.  split the computation of each stencil output field into its own
    concurrently-running dataflow stage;
5.  map every ``stencil.access`` offset onto the corresponding lane of the
    shift-buffer window;
6.  replace ``stencil.store`` by a single ``write_data`` dataflow stage;
7.  replace the placeholder loaders by one specialised ``load_data`` call;
8.  copy small constant data into local BRAM/URAM, duplicated per consuming
    compute stage;
9.  assign each input/output argument to its own AXI bundle (small data
    shares one bundle).

Kernels whose stencil stages depend on each other (the tracer advection
case) are emitted as a sequence of dependency *waves*; stages within a wave
run concurrently, waves run back-to-back.  This matches the paper's
observation that such dependencies "do not allow a clean split across
components" and is what reduces the measured advantage on that benchmark.

Besides the HLS-dialect IR the pass records a :class:`DataflowPlan`
describing the generated structure, which the synthesis model, functional
simulator and resource/power models consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.core import Block, BlockArgument, Operation, OpResult, Region, SSAValue, VerifyException
from repro.ir.passes import ModulePass
from repro.ir.attributes import IntAttr, StringAttr, UnitAttr
from repro.ir.types import (
    FloatType,
    LLVMArrayType,
    LLVMPointerType,
    MemRefType,
    f64,
    packed_interface_type,
)
from repro.dialects import arith, hls, llvm as llvm_d, memref as memref_d, scf, stencil
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import CallOp, FuncOp, ReturnOp
from repro.ir.types import FunctionType
from repro.core.config import CompilerOptions
from repro.core.plan import (
    ComputeStageSpec,
    DataflowPlan,
    DuplicateSpec,
    InterfaceSpec,
    LoadSpec,
    ShiftSpec,
    SmallDataCopySpec,
    StreamSpec,
    WavePlan,
    WriteFieldSpec,
    WriteSpec,
)
from repro.runtime.window import window_index, window_offsets, window_size
from repro.transforms.stencil_analysis import (
    AnalysisError,
    StencilKernelAnalysis,
    analyse_stencil_function,
)


@dataclass
class StencilToHLSOptions:
    """Backwards-compatible alias bundle (see :class:`CompilerOptions`)."""

    options: CompilerOptions


class StencilToHLSPass(ModulePass):
    """Apply the nine-step Stencil-HMLS transformation to every stencil kernel."""

    name = "convert-stencil-to-hls"

    def __init__(self, options: CompilerOptions | None = None) -> None:
        self.options = options or CompilerOptions()
        self.options.validate()
        #: Dataflow plans recorded per generated kernel (kernel name → plan).
        self.plans: dict[str, DataflowPlan] = {}

    # ------------------------------------------------------------------ driver

    def apply(self, module: ModuleOp) -> bool:
        changed = False
        for func in list(module.walk_type(FuncOp)):
            if func.is_declaration:
                continue
            if not any(True for _ in func.walk_type(stencil.ApplyOp)):
                continue
            plan = self._lower_kernel(module, func)
            self.plans[plan.kernel_name] = plan
            changed = True
        return changed

    # ----------------------------------------------------------------- lowering

    def _lower_kernel(self, module: ModuleOp, func: FuncOp) -> DataflowPlan:
        analysis = analyse_stencil_function(func)
        options = self.options
        kernel_name = f"{func.sym_name}_hls"
        plan = DataflowPlan(kernel_name=kernel_name, analysis=analysis, options=options)

        # -- step 2: interface types ------------------------------------------------
        lanes = 1
        if options.pack_interfaces:
            lanes = options.interface_width_bits // 64
        new_arg_types = []
        for arg_info, old_arg in zip(analysis.arguments, func.entry_block.args):
            if arg_info.is_field:
                if options.pack_interfaces:
                    new_arg_types.append(LLVMPointerType(packed_interface_type(f64, options.interface_width_bits)))
                else:
                    new_arg_types.append(LLVMPointerType(f64))
            else:
                new_arg_types.append(old_arg.type)

        new_func = FuncOp.with_body(
            kernel_name,
            new_arg_types,
            [],
            attributes={
                "hls.kernel": UnitAttr(),
                "hls.target_ii": IntAttr(options.target_ii),
            },
        )
        for new_arg, arg_info in zip(new_func.entry_block.args, analysis.arguments):
            new_arg.name_hint = arg_info.name
        body = new_func.entry_block
        args_by_name = {info.name: arg for info, arg in zip(analysis.arguments, new_func.entry_block.args)}

        declared: set[str] = set()

        def declare(callee: str, num_args: int) -> None:
            if callee in declared:
                return
            module.add_op(FuncOp.declaration(callee, [], []))
            declared.add(callee)

        # -- step 9: interface bundles ----------------------------------------------
        self._emit_interfaces(body, analysis, args_by_name, plan, lanes)

        # -- step 8: small data copies ----------------------------------------------
        local_copies = self._emit_small_data_copies(body, analysis, args_by_name, plan)

        # -- steps 3-7: per-wave dataflow pipeline -----------------------------------
        waves = analysis.dependency_waves()
        for wave_index, stage_indices in enumerate(waves):
            stages = [analysis.stages[i] for i in stage_indices]
            wave_plan = self._emit_wave(
                module,
                body,
                analysis,
                args_by_name,
                local_copies,
                stages,
                wave_index,
                lanes,
                plan,
                declare,
            )
            plan.waves.append(wave_plan)

        body.add_op(ReturnOp())

        # Replace the original function with the generated HLS kernel.
        parent = func.parent
        parent.insert_op_after(new_func, func)
        func.detach()
        func.drop_all_references()
        return plan

    # ---------------------------------------------------------------- step 9

    def _emit_interfaces(
        self,
        body: Block,
        analysis: StencilKernelAnalysis,
        args_by_name: dict[str, SSAValue],
        plan: DataflowPlan,
        lanes: int,
    ) -> None:
        options = self.options
        for info in analysis.arguments:
            arg = args_by_name[info.name]
            if info.is_field:
                bundle = f"gmem_{info.name}" if options.separate_bundles else "gmem0"
                protocol = "m_axi"
                direction = "out" if info.kind == "field_output" else "in"
                packed = lanes
            elif info.kind == "small_data":
                bundle = "gmem_small" if options.bundle_small_data else f"gmem_{info.name}"
                protocol = "m_axi"
                direction = "in"
                packed = 1
            else:
                bundle = "control"
                protocol = "s_axilite"
                direction = "in"
                packed = 1
            body.add_op(hls.InterfaceOp(arg, protocol, bundle))
            plan.interfaces.append(
                InterfaceSpec(
                    arg_name=info.name,
                    bundle=bundle,
                    protocol=protocol,
                    direction=direction,
                    is_small_data=(info.kind == "small_data"),
                    packed_lanes=packed,
                    element_bits=info.element_bits,
                )
            )

    # ---------------------------------------------------------------- step 8

    def _emit_small_data_copies(
        self,
        body: Block,
        analysis: StencilKernelAnalysis,
        args_by_name: dict[str, SSAValue],
        plan: DataflowPlan,
    ) -> dict[tuple[str, int], SSAValue]:
        """Copy small constant data to BRAM, one copy per consuming stage."""
        local_copies: dict[tuple[str, int], SSAValue] = {}
        if not self.options.copy_small_data_to_bram:
            return local_copies
        small_by_name = {info.name: info for info in analysis.small_data}
        for stage in analysis.stages:
            for arg_name in stage.small_data:
                info = small_by_name.get(arg_name)
                if info is None:
                    continue
                arg = args_by_name[arg_name]
                if not isinstance(arg.type, MemRefType):
                    continue
                local = memref_d.AllocaOp(arg.type)
                local.result.name_hint = f"{arg_name}_local_{stage.index}"
                body.add_op(local)
                body.add_op(hls.ArrayPartitionOp(local.result, kind="cyclic", factor=2))
                self._emit_copy_loop(body, arg, local.result, info.num_elements, arg.type)
                local_copies[(arg_name, stage.index)] = local.result
                plan.small_copies.append(
                    SmallDataCopySpec(
                        arg_name=arg_name,
                        stage_label=f"compute_{stage.index}",
                        elements=info.num_elements,
                        element_bits=info.element_bits,
                    )
                )
        return local_copies

    def _emit_copy_loop(
        self,
        body: Block,
        source: SSAValue,
        target: SSAValue,
        count: int,
        memref_type: MemRefType,
    ) -> None:
        if memref_type.rank != 1:
            # Multi-dimensional small data: copy element count along dim 0 only
            # (our kernels only use 1-D profile arrays).
            count = memref_type.shape[0]
        zero = arith.ConstantOp.from_index(0)
        upper = arith.ConstantOp.from_index(count)
        one = arith.ConstantOp.from_index(1)
        body.add_ops([zero, upper, one])
        loop = scf.ForOp(zero.result, upper.result, one.result)
        body.add_op(loop)
        loop_body = loop.body
        loop_body.add_op(hls.PipelineOp(1))
        load = memref_d.LoadOp(source, [loop.induction_variable])
        loop_body.add_op(load)
        loop_body.add_op(memref_d.StoreOp(load.result, target, [loop.induction_variable]))
        loop_body.add_op(scf.YieldOp())

    # ----------------------------------------------------------- steps 3-7 (wave)

    def _emit_wave(
        self,
        module: ModuleOp,
        body: Block,
        analysis: StencilKernelAnalysis,
        args_by_name: dict[str, SSAValue],
        local_copies: dict[tuple[str, int], SSAValue],
        stages,
        wave_index: int,
        lanes: int,
        plan: DataflowPlan,
        declare,
    ) -> WavePlan:
        options = self.options
        rank = analysis.rank
        domain_lower = analysis.domain_lower
        domain_upper = analysis.domain_upper
        domain_points = analysis.domain_points
        arg_info_by_name = {a.name: a for a in analysis.arguments}

        # Which fields does this wave read, and which stages consume each?
        input_fields: list[str] = []
        consumers: dict[str, list] = {}
        for stage in stages:
            for field_name in stage.input_fields:
                if field_name not in input_fields:
                    input_fields.append(field_name)
                consumers.setdefault(field_name, []).append(stage)

        # ------------------------------------------------------------------ step 3
        # Raw input streams + the (specialised) load_data stage (step 7).
        in_streams: dict[str, SSAValue] = {}
        packed_type = LLVMArrayType(lanes, f64) if lanes > 1 else f64
        for field_name in input_fields:
            create = hls.CreateStreamOp(packed_type, depth=options.stream_depth,
                                        name_hint=f"{field_name}_in_w{wave_index}")
            body.add_op(create)
            in_streams[field_name] = create.result
            plan.streams.append(
                StreamSpec(
                    name=f"{field_name}_in_w{wave_index}",
                    kind="raw_in",
                    element_bits=64 * lanes,
                    depth=options.stream_depth,
                    producer=f"load_data_w{wave_index}",
                    consumer=f"shift_buffer_{field_name}_w{wave_index}",
                )
            )

        load_callee = f"load_data_w{wave_index}"
        declare(load_callee, 2 * len(input_fields))
        load_region = hls.DataflowOp(label=f"load_w{wave_index}")
        body.add_op(load_region)
        load_args = [args_by_name[f] for f in input_fields] + [in_streams[f] for f in input_fields]
        load_region.body.add_op(CallOp(load_callee, load_args))
        load_spec = LoadSpec(
            callee=load_callee,
            fields=list(input_fields),
            lanes=lanes,
            grid_shape=analysis.grid_shape,
            field_lower={
                f: arg_info_by_name[f].lower if f in arg_info_by_name else (0,) * rank
                for f in input_fields
            },
        )

        # Shift buffers: one per input field.
        shift_streams: dict[str, SSAValue] = {}
        shift_specs: list[ShiftSpec] = []
        field_radius: dict[str, int] = {}
        for field_name in input_fields:
            radius = 0
            for stage in consumers[field_name]:
                for offset in stage.offsets.get(field_name, []):
                    for component in offset:
                        radius = max(radius, abs(component))
            radius = max(radius, 1)
            field_radius[field_name] = radius
            wsize = window_size(rank, radius)
            window_type = LLVMArrayType(wsize, f64)
            create = hls.CreateStreamOp(window_type, depth=options.stream_depth,
                                        name_hint=f"{field_name}_shift_w{wave_index}")
            body.add_op(create)
            shift_streams[field_name] = create.result
            shift_callee = f"shift_buffer_{field_name}_w{wave_index}"
            declare(shift_callee, 2)
            shift_region = hls.DataflowOp(label=f"shift_{field_name}_w{wave_index}")
            body.add_op(shift_region)
            shift_region.body.add_op(CallOp(shift_callee, [in_streams[field_name], create.result]))
            info = arg_info_by_name.get(field_name)
            shift_specs.append(
                ShiftSpec(
                    callee=shift_callee,
                    field_name=field_name,
                    grid_shape=info.shape if info is not None else analysis.grid_shape,
                    field_lower=info.lower if info is not None else (0,) * rank,
                    domain_lower=domain_lower,
                    domain_upper=domain_upper,
                    radius=radius,
                    window_offsets=window_offsets(rank, radius),
                )
            )
            plan.streams.append(
                StreamSpec(
                    name=f"{field_name}_shift_w{wave_index}",
                    kind="window",
                    element_bits=64 * wsize,
                    depth=options.stream_depth,
                    producer=shift_callee,
                    consumer=f"compute_w{wave_index}",
                )
            )

        # Duplication stage: one copy of the window stream per consuming compute stage.
        duplicate_specs: list[DuplicateSpec] = []
        stage_window_stream: dict[tuple[int, str], SSAValue] = {}
        for field_name in input_fields:
            field_consumers = consumers[field_name]
            if len(field_consumers) == 1 or not options.split_compute_per_field:
                for stage in field_consumers:
                    stage_window_stream[(stage.index, field_name)] = shift_streams[field_name]
                continue
            wsize = window_size(rank, field_radius[field_name])
            window_type = LLVMArrayType(wsize, f64)
            copies: list[SSAValue] = []
            copy_names: list[str] = []
            for copy_index, stage in enumerate(field_consumers):
                name = f"{field_name}_shift_copy_{copy_index}_w{wave_index}"
                create = hls.CreateStreamOp(window_type, depth=options.stream_depth, name_hint=name)
                body.add_op(create)
                copies.append(create.result)
                copy_names.append(name)
                stage_window_stream[(stage.index, field_name)] = create.result
                plan.streams.append(
                    StreamSpec(
                        name=name,
                        kind="window_copy",
                        element_bits=64 * wsize,
                        depth=options.stream_depth,
                        producer=f"duplicate_{field_name}_w{wave_index}",
                        consumer=f"compute_{stage.index}",
                    )
                )
            dup_callee = f"duplicate_{field_name}_w{wave_index}"
            declare(dup_callee, 1 + len(copies))
            dup_region = hls.DataflowOp(label=dup_callee)
            body.add_op(dup_region)
            dup_region.body.add_op(CallOp(dup_callee, [shift_streams[field_name], *copies]))
            duplicate_specs.append(
                DuplicateSpec(
                    callee=dup_callee,
                    field_name=field_name,
                    source_stream=f"{field_name}_shift_w{wave_index}",
                    copies=copy_names,
                )
            )

        # ------------------------------------------------------------------ step 4-5
        compute_specs: list[ComputeStageSpec] = []
        result_streams: list[tuple[str, SSAValue]] = []  # (output field, stream)
        write_fields: list[WriteFieldSpec] = []
        if options.split_compute_per_field:
            stage_groups = [[stage] for stage in stages]
        else:
            stage_groups = [list(stages)] if stages else []

        for group_index, group in enumerate(stage_groups):
            group_streams: dict[tuple[int, int], SSAValue] = {}
            for stage in group:
                for result_index, out_field in enumerate(stage.output_fields):
                    name = f"{out_field}_result_w{wave_index}"
                    create = hls.CreateStreamOp(f64, depth=options.stream_depth, name_hint=name)
                    body.add_op(create)
                    group_streams[(stage.index, result_index)] = create.result
                    result_streams.append((out_field, create.result))
                    plan.streams.append(
                        StreamSpec(
                            name=name,
                            kind="result",
                            element_bits=64,
                            depth=options.stream_depth,
                            producer=f"compute_{stage.index}",
                            consumer=f"write_data_w{wave_index}",
                        )
                    )
                    info = arg_info_by_name.get(out_field)
                    write_fields.append(
                        WriteFieldSpec(
                            field_name=out_field,
                            lower=stage.lower_bound,
                            upper=stage.upper_bound,
                            field_lower=info.lower if info is not None else (0,) * rank,
                            grid_shape=info.shape if info is not None else analysis.grid_shape,
                        )
                    )

            label = f"compute_w{wave_index}_{group_index}"
            compute_region = hls.DataflowOp(label=label)
            body.add_op(compute_region)
            self._emit_compute_loop(
                compute_region.body,
                group,
                stage_window_stream,
                group_streams,
                local_copies,
                args_by_name,
                analysis,
                field_radius,
                domain_lower,
                domain_upper,
                domain_points,
            )
            for stage in group:
                compute_specs.append(
                    ComputeStageSpec(
                        label=f"compute_{stage.index}",
                        stage_index=stage.index,
                        wave=wave_index,
                        output_fields=list(stage.output_fields),
                        input_windows={
                            f: f"{f}_shift_w{wave_index}" for f in stage.input_fields
                        },
                        small_data=list(stage.small_data),
                        flops_per_point=stage.flops,
                        window_size=window_size(rank, max(field_radius.get(f, 1) for f in stage.input_fields) if stage.input_fields else 1),
                        domain_points=domain_points,
                        ii=self.options.target_ii,
                    )
                )

        # ------------------------------------------------------------------ step 6
        write_callee = f"write_data_w{wave_index}"
        declare(write_callee, 2 * len(result_streams))
        write_region = hls.DataflowOp(label=write_callee)
        body.add_op(write_region)
        write_args = [stream for _, stream in result_streams] + [
            args_by_name[field_name] for field_name, _ in result_streams
        ]
        write_region.body.add_op(CallOp(write_callee, write_args))
        write_spec = WriteSpec(callee=write_callee, fields=write_fields, lanes=lanes)

        return WavePlan(
            index=wave_index,
            load=load_spec,
            shifts=shift_specs,
            duplicates=duplicate_specs,
            computes=compute_specs,
            write=write_spec,
        )

    # ------------------------------------------------------------- compute stage body

    def _emit_compute_loop(
        self,
        region_body: Block,
        stages,
        stage_window_stream: dict[tuple[int, str], SSAValue],
        result_streams: dict[tuple[int, int], SSAValue],
        local_copies: dict[tuple[str, int], SSAValue],
        args_by_name: dict[str, SSAValue],
        analysis: StencilKernelAnalysis,
        field_radius: dict[str, int],
        domain_lower,
        domain_upper,
        domain_points: int,
    ) -> None:
        zero = arith.ConstantOp.from_index(0)
        upper = arith.ConstantOp.from_index(domain_points)
        one = arith.ConstantOp.from_index(1)
        region_body.add_ops([zero, upper, one])
        loop = scf.ForOp(zero.result, upper.result, one.result)
        region_body.add_op(loop)
        loop_body = loop.body
        loop_body.add_op(hls.PipelineOp(self.options.target_ii))
        iv = loop.induction_variable

        extents = [u - l for l, u in zip(domain_lower, domain_upper)]
        strides = []
        acc = 1
        for extent in reversed(extents):
            strides.insert(0, acc)
            acc *= extent

        dim_index_cache: dict[int, SSAValue] = {}

        def dim_index(dim: int) -> SSAValue:
            """Reconstruct the global index of dimension ``dim`` from the linear iv."""
            if dim in dim_index_cache:
                return dim_index_cache[dim]
            stride = arith.ConstantOp.from_index(strides[dim])
            extent = arith.ConstantOp.from_index(extents[dim])
            lower = arith.ConstantOp.from_index(domain_lower[dim])
            div = arith.DivsiOp(iv, stride.result)
            rem = arith.RemsiOp(div.result, extent.result)
            add = arith.AddiOp(rem.result, lower.result)
            loop_body.add_ops([stride, extent, lower, div, rem, add])
            dim_index_cache[dim] = add.result
            return add.result

        # Read every distinct window stream exactly once per iteration.  With
        # per-field splitting each group holds a single stage reading its own
        # stream copies; without splitting (ablation A1) the stages share one
        # set of window streams, so the read must be shared too.
        window_values_by_stream: dict[SSAValue, SSAValue] = {}
        stage_windows: dict[tuple[int, str], SSAValue] = {}
        for stage in stages:
            for field_name in stage.input_fields:
                stream = stage_window_stream[(stage.index, field_name)]
                if stream not in window_values_by_stream:
                    read = hls.ReadOp(stream)
                    loop_body.add_op(read)
                    window_values_by_stream[stream] = read.result
                stage_windows[(stage.index, field_name)] = window_values_by_stream[stream]

        for stage in stages:
            apply_op = stage.apply_op
            window_values = {
                field_name: stage_windows[(stage.index, field_name)]
                for field_name in stage.input_fields
            }

            value_map: dict[SSAValue, SSAValue] = {}
            # Map non-field operands of the apply to kernel arguments / local copies.
            for operand, block_arg in zip(apply_op.operands, apply_op.body.args):
                if isinstance(operand.type, (stencil.TempType, stencil.FieldType)):
                    continue
                name = operand.name_hint
                if isinstance(operand, BlockArgument) and name in args_by_name:
                    target = args_by_name[name]
                    local = local_copies.get((name, stage.index))
                    value_map[block_arg] = local if local is not None else target
                else:
                    raise AnalysisError(
                        "stencil-to-hls: non-field apply operands must be kernel "
                        "arguments (scalars or small data memrefs)"
                    )

            # Which field does each apply block argument correspond to?
            arg_field_names: dict[SSAValue, str] = {}
            for operand_index, operand in enumerate(apply_op.operands):
                if isinstance(operand.type, (stencil.TempType, stencil.FieldType)):
                    field_name = stage.input_fields[
                        sum(
                            1
                            for o in apply_op.operands[:operand_index]
                            if isinstance(o.type, (stencil.TempType, stencil.FieldType))
                        )
                    ]
                    arg_field_names[apply_op.body.args[operand_index]] = field_name

            for op in apply_op.body.ops:
                if isinstance(op, stencil.AccessOp):
                    field_name = arg_field_names[op.temp]
                    radius = field_radius.get(field_name, 1)
                    lane = window_index(op.offset, radius)
                    extract = llvm_d.ExtractValueOp(window_values[field_name], [lane], f64)
                    loop_body.add_op(extract)
                    value_map[op.result] = extract.result
                elif isinstance(op, stencil.IndexOp):
                    value_map[op.result] = dim_index(op.dim)
                elif isinstance(op, stencil.ReturnOp):
                    for result_index, returned in enumerate(op.operands):
                        stream = result_streams.get((stage.index, result_index))
                        if stream is None:
                            continue
                        loop_body.add_op(hls.WriteOp(stream, value_map[returned]))
                else:
                    cloned = op.clone(value_map)
                    loop_body.add_op(cloned)
                    for old_res, new_res in zip(op.results, cloned.results):
                        value_map[old_res] = new_res

        loop_body.add_op(scf.YieldOp())
