"""A reference interpreter for the stencil / scf / arith level IR.

The interpreter is deliberately simple — straight per-point Python execution
over numpy buffers — because its only job is to provide a trusted semantics
against which the compiler's lowerings are validated on small grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.ir.core import Block, Operation, SSAValue
from repro.dialects import arith, math as math_d, memref as memref_d, scf, stencil
from repro.dialects.builtin import ModuleOp, UnrealizedConversionCastOp
from repro.dialects.func import CallOp, FuncOp, ReturnOp
from repro.ir.types import FloatType, IndexType, IntegerType, MemRefType


class InterpreterError(Exception):
    """Raised when the interpreter meets IR it cannot execute."""


@dataclass
class FieldValue:
    """Runtime value of a ``!stencil.field``: an array plus its lower bounds."""

    array: np.ndarray
    lower: tuple[int, ...]

    def at(self, index: Sequence[int]) -> float:
        local = tuple(i - l for i, l in zip(index, self.lower))
        return self.array[local]

    def set(self, index: Sequence[int], value: float) -> None:
        local = tuple(i - l for i, l in zip(index, self.lower))
        self.array[local] = value


@dataclass
class TempValue:
    """Runtime value of a ``!stencil.temp``: an array over [origin, origin+shape)."""

    array: np.ndarray
    origin: tuple[int, ...]

    def at(self, index: Sequence[int]) -> float:
        local = tuple(i - o for i, o in zip(index, self.origin))
        return self.array[local]


class Interpreter:
    """Executes functions in a module on concrete numpy / scalar arguments."""

    def __init__(self, module: ModuleOp, externals: dict[str, Callable] | None = None) -> None:
        self.module = module
        self.externals = dict(externals or {})
        # Per-instance handler table so specialised interpreters (e.g. the HLS
        # functional simulator) can register handlers for additional dialects.
        self.handlers: dict[type, Callable] = dict(_HANDLERS)

    # -- public API -----------------------------------------------------------

    def run(self, func_name: str, *args: Any) -> list[Any]:
        func = self.module.get_symbol(func_name)
        if not isinstance(func, FuncOp):
            raise InterpreterError(f"no function named '{func_name}' in module")
        return self._run_func(func, list(args))

    # -- function / block execution -------------------------------------------

    def _run_func(self, func: FuncOp, args: list[Any]) -> list[Any]:
        if func.is_declaration:
            if func.sym_name in self.externals:
                result = self.externals[func.sym_name](*args)
                if result is None:
                    return []
                return list(result) if isinstance(result, (tuple, list)) else [result]
            raise InterpreterError(
                f"call to external function '{func.sym_name}' with no registered implementation"
            )
        entry = func.entry_block
        if len(entry.args) != len(args):
            raise InterpreterError(
                f"function '{func.sym_name}' expects {len(entry.args)} arguments, got {len(args)}"
            )
        env: dict[SSAValue, Any] = dict(zip(entry.args, args))
        return self._run_block(entry, env)

    def _run_block(self, block: Block, env: dict[SSAValue, Any]) -> list[Any]:
        for op in block.ops:
            if isinstance(op, (ReturnOp, scf.YieldOp, stencil.ReturnOp)):
                return [env[o] for o in op.operands]
            self._execute(op, env)
        return []

    # -- op dispatch ------------------------------------------------------------

    def _execute(self, op: Operation, env: dict[SSAValue, Any]) -> None:
        handler = self.handlers.get(type(op))
        if handler is None:
            for klass, fn in self.handlers.items():
                if isinstance(op, klass):
                    handler = fn
                    break
        if handler is None:
            raise InterpreterError(f"no interpreter handler for '{op.name}'")
        results = handler(self, op, env)
        if results is None:
            results = []
        for res, value in zip(op.results, results):
            env[res] = value

    # -- handlers ---------------------------------------------------------------

    def _constant(self, op: arith.ConstantOp, env) -> list[Any]:
        return [op.value]

    def _binary(self, op: Operation, env) -> list[Any]:
        lhs, rhs = env[op.operands[0]], env[op.operands[1]]
        value = type(op).py_func(lhs, rhs)
        if isinstance(op.result.type, (IntegerType, IndexType)):
            value = int(value)
        return [value]

    def _negf(self, op: arith.NegfOp, env) -> list[Any]:
        return [-env[op.operand]]

    def _cmp(self, op: Operation, env) -> list[Any]:
        lhs, rhs = env[op.operands[0]], env[op.operands[1]]
        return [bool(op.py_func(lhs, rhs))]

    def _select(self, op: arith.SelectOp, env) -> list[Any]:
        return [env[op.true_value] if env[op.condition] else env[op.false_value]]

    def _cast_numeric(self, op: Operation, env) -> list[Any]:
        value = env[op.operands[0]]
        if isinstance(op.result.type, FloatType):
            return [float(value)]
        return [int(value)]

    def _unary_math(self, op: Operation, env) -> list[Any]:
        return [type(op).py_func(env[op.operands[0]])]

    def _powf(self, op: math_d.PowFOp, env) -> list[Any]:
        return [env[op.lhs] ** env[op.rhs]]

    def _fma(self, op: math_d.FmaOp, env) -> list[Any]:
        a, b, c = (env[o] for o in op.operands)
        return [a * b + c]

    # memref ---------------------------------------------------------------------

    def _alloc(self, op: Operation, env) -> list[Any]:
        memref_type: MemRefType = op.result.type
        dtype = np.float64 if isinstance(memref_type.element_type, FloatType) else np.int64
        shape = list(memref_type.shape)
        dynamic = [i for i, s in enumerate(shape) if s < 0]
        for dim, operand in zip(dynamic, op.operands):
            shape[dim] = int(env[operand])
        return [np.zeros(shape, dtype=dtype)]

    def _memref_load(self, op: memref_d.LoadOp, env) -> list[Any]:
        array = env[op.memref]
        indices = tuple(int(env[i]) for i in op.indices)
        return [array[indices]]

    def _memref_store(self, op: memref_d.StoreOp, env) -> list[Any]:
        array = env[op.memref]
        indices = tuple(int(env[i]) for i in op.indices)
        array[indices] = env[op.value]
        return []

    def _memref_dim(self, op: memref_d.DimOp, env) -> list[Any]:
        array = env[op.memref]
        return [int(array.shape[int(env[op.dimension])])]

    def _memref_copy(self, op: memref_d.CopyOp, env) -> list[Any]:
        env[op.target][...] = env[op.source]
        return []

    def _memref_cast(self, op: memref_d.CastOp, env) -> list[Any]:
        return [env[op.source]]

    def _noop(self, op: Operation, env) -> list[Any]:
        return []

    def _identity(self, op: Operation, env) -> list[Any]:
        return [env[op.operands[0]]]

    # scf --------------------------------------------------------------------------

    def _for(self, op: scf.ForOp, env) -> list[Any]:
        lb = int(env[op.lower_bound])
        ub = int(env[op.upper_bound])
        step = int(env[op.step])
        carried = [env[a] for a in op.iter_args]
        for iv in range(lb, ub, step):
            local = dict(env)
            local[op.induction_variable] = iv
            for arg, value in zip(op.body_iter_args, carried):
                local[arg] = value
            carried = self._run_block(op.body, local)
        return carried

    def _if(self, op: scf.IfOp, env) -> list[Any]:
        block = op.then_block if env[op.condition] else op.else_block
        local = dict(env)
        return self._run_block(block, local)

    def _parallel(self, op: scf.ParallelOp, env) -> list[Any]:
        rank = op.rank
        lbs = [int(env[v]) for v in op.lower_bounds]
        ubs = [int(env[v]) for v in op.upper_bounds]
        steps = [int(env[v]) for v in op.steps]
        ranges = [range(lb, ub, st) for lb, ub, st in zip(lbs, ubs, steps)]

        def recurse(dim: int, point: list[int]) -> None:
            if dim == rank:
                local = dict(env)
                for arg, value in zip(op.induction_variables, point):
                    local[arg] = value
                self._run_block(op.body, local)
                return
            for i in ranges[dim]:
                recurse(dim + 1, point + [i])

        recurse(0, [])
        return []

    # func ----------------------------------------------------------------------

    def _call(self, op: CallOp, env) -> list[Any]:
        callee = self.module.get_symbol(op.callee)
        args = [env[o] for o in op.operands]
        if isinstance(callee, FuncOp):
            return self._run_func(callee, args)
        if op.callee in self.externals:
            result = self.externals[op.callee](*args)
            if result is None:
                return []
            return list(result) if isinstance(result, (tuple, list)) else [result]
        raise InterpreterError(f"call to unknown function '{op.callee}'")

    # stencil ---------------------------------------------------------------------

    def _external_load(self, op: stencil.ExternalLoadOp, env) -> list[Any]:
        array = env[op.source]
        field_type: stencil.FieldType = op.result.type
        expected = field_type.shape
        if tuple(array.shape) != tuple(expected):
            raise InterpreterError(
                f"stencil.external_load: array shape {array.shape} does not match "
                f"field shape {expected}"
            )
        lower = tuple(lb for lb, _ in field_type.bounds)
        return [FieldValue(array, lower)]

    def _external_store(self, op: stencil.ExternalStoreOp, env) -> list[Any]:
        # The field aliases the external buffer, so nothing to do.
        return []

    def _stencil_cast(self, op: stencil.CastOp, env) -> list[Any]:
        field: FieldValue = env[op.field]
        field_type: stencil.FieldType = op.result.type
        lower = tuple(lb for lb, _ in field_type.bounds)
        return [FieldValue(field.array, lower)]

    def _stencil_load(self, op: stencil.LoadOp, env) -> list[Any]:
        field: FieldValue = env[op.field]
        return [TempValue(field.array, field.lower)]

    def _stencil_apply(self, op: stencil.ApplyOp, env) -> list[Any]:
        # Lazily evaluated: materialised by the consuming stencil.store (or by
        # a downstream apply that accesses the result).
        lazy = _LazyApply(self, op, [env[o] for o in op.operands])
        return [_LazyApplyResult(lazy, i) for i in range(len(op.results))]

    def _stencil_store(self, op: stencil.StoreOp, env) -> list[Any]:
        temp = env[op.temp]
        field: FieldValue = env[op.field]
        lb, ub = op.lower_bound, op.upper_bound
        if isinstance(temp, _LazyApplyResult):
            temp = temp.materialise(lb, ub)
        for index in _box_points(lb, ub):
            field.set(index, temp.at(index))
        return []

    def _unrealized_cast(self, op: UnrealizedConversionCastOp, env) -> list[Any]:
        return [env[op.input]]


@dataclass
class _LazyApplyResult:
    """One result of a deferred ``stencil.apply`` evaluation."""

    lazy: "_LazyApply"
    index: int

    def materialise(self, lb: Sequence[int], ub: Sequence[int]) -> TempValue:
        arrays = self.lazy.evaluate(lb, ub)
        return TempValue(arrays[self.index], tuple(lb))


class _LazyApply:
    """Deferred evaluation of a ``stencil.apply`` over a box of indices.

    Chained applies (one apply consuming another's result, as in the tracer
    advection kernel) are handled by recursively materialising the producer
    over the consumer's box expanded by the consumer's access extent.
    """

    def __init__(self, interp: Interpreter, op: stencil.ApplyOp, operand_values: list[Any]) -> None:
        self.interp = interp
        self.op = op
        self.operand_values = operand_values
        self._cache: dict[tuple[tuple[int, ...], tuple[int, ...]], list[np.ndarray]] = {}

    def _operand_extent(self, operand_index: int, rank: int) -> tuple[tuple[int, int], ...]:
        """(min, max) access offsets applied to a given operand's block arg."""
        arg = self.op.body.args[operand_index]
        mins = [0] * rank
        maxs = [0] * rank
        for access in self.op.walk_type(stencil.AccessOp):
            if access.temp is not arg:
                continue
            for d, value in enumerate(access.offset):
                mins[d] = min(mins[d], value)
                maxs[d] = max(maxs[d], value)
        return tuple(zip(mins, maxs))

    def evaluate(self, lb: Sequence[int], ub: Sequence[int]) -> list[np.ndarray]:
        key = (tuple(lb), tuple(ub))
        if key in self._cache:
            return self._cache[key]
        rank = len(lb)
        # Materialise lazy operands over the expanded box they will be read on.
        concrete_operands: list[Any] = []
        for i, value in enumerate(self.operand_values):
            if isinstance(value, _LazyApplyResult):
                extent = self._operand_extent(i, rank)
                sub_lb = tuple(l + mn for l, (mn, _) in zip(lb, extent))
                sub_ub = tuple(u + mx for u, (_, mx) in zip(ub, extent))
                concrete_operands.append(value.materialise(sub_lb, sub_ub))
            else:
                concrete_operands.append(value)
        shape = tuple(u - l for l, u in zip(lb, ub))
        outputs = [np.zeros(shape, dtype=np.float64) for _ in self.op.results]
        block = self.op.body
        for index in _box_points(lb, ub):
            env: dict[SSAValue, Any] = {}
            for arg, value in zip(block.args, concrete_operands):
                env[arg] = value
            values = self._run_apply_block(block, env, index)
            local = tuple(i - l for i, l in zip(index, lb))
            for out, value in zip(outputs, values):
                out[local] = value
        self._cache[key] = outputs
        return outputs

    def _run_apply_block(self, block: Block, env: dict[SSAValue, Any], index: tuple[int, ...]) -> list[Any]:
        for op in block.ops:
            if isinstance(op, stencil.ReturnOp):
                return [env[o] for o in op.operands]
            if isinstance(op, stencil.AccessOp):
                env[op.result] = self._access(env[op.temp], index, op.offset)
            elif isinstance(op, stencil.IndexOp):
                env[op.result] = index[op.dim]
            elif isinstance(op, stencil.DynAccessOp):
                offsets = tuple(int(env[o]) for o in op.operands[1:])
                env[op.result] = self._access(env[op.temp], offsets, (0,) * len(offsets))
            else:
                self.interp._execute(op, env)
        return []

    def _access(self, source: Any, index: Sequence[int], offset: Sequence[int]) -> float:
        target = tuple(i + o for i, o in zip(index, offset))
        if isinstance(source, (TempValue, FieldValue)):
            return source.at(target)
        if isinstance(source, _LazyApplyResult):
            point_ub = tuple(t + 1 for t in target)
            return source.materialise(target, point_ub).at(target)
        raise InterpreterError(f"cannot access into value of type {type(source).__name__}")


def _box_points(lb: Sequence[int], ub: Sequence[int]):
    """Iterate all integer points of the half-open box [lb, ub)."""
    if len(lb) == 0:
        yield ()
        return
    head_lb, head_ub = lb[0], ub[0]
    for i in range(head_lb, head_ub):
        for rest in _box_points(lb[1:], ub[1:]):
            yield (i, *rest)


_HANDLERS: dict[type, Callable] = {
    arith.ConstantOp: Interpreter._constant,
    arith.NegfOp: Interpreter._negf,
    arith.CmpfOp: Interpreter._cmp,
    arith.CmpiOp: Interpreter._cmp,
    arith.SelectOp: Interpreter._select,
    arith.IndexCastOp: Interpreter._cast_numeric,
    arith.SIToFPOp: Interpreter._cast_numeric,
    arith.FPToSIOp: Interpreter._cast_numeric,
    arith.ExtFOp: Interpreter._cast_numeric,
    arith.TruncFOp: Interpreter._cast_numeric,
    math_d.PowFOp: Interpreter._powf,
    math_d.FmaOp: Interpreter._fma,
    memref_d.AllocOp: Interpreter._alloc,
    memref_d.AllocaOp: Interpreter._alloc,
    memref_d.DeallocOp: Interpreter._noop,
    memref_d.LoadOp: Interpreter._memref_load,
    memref_d.StoreOp: Interpreter._memref_store,
    memref_d.DimOp: Interpreter._memref_dim,
    memref_d.CopyOp: Interpreter._memref_copy,
    memref_d.CastOp: Interpreter._memref_cast,
    scf.ForOp: Interpreter._for,
    scf.IfOp: Interpreter._if,
    scf.ParallelOp: Interpreter._parallel,
    CallOp: Interpreter._call,
    stencil.ExternalLoadOp: Interpreter._external_load,
    stencil.ExternalStoreOp: Interpreter._external_store,
    stencil.CastOp: Interpreter._stencil_cast,
    stencil.LoadOp: Interpreter._stencil_load,
    stencil.ApplyOp: Interpreter._stencil_apply,
    stencil.StoreOp: Interpreter._stencil_store,
    UnrealizedConversionCastOp: Interpreter._unrealized_cast,
}

for _binary_cls in arith.BINARY_OPS:
    _HANDLERS[_binary_cls] = Interpreter._binary
for _unary_cls in math_d.UNARY_OPS:
    _HANDLERS[_unary_cls] = Interpreter._unary_math


def interpret_stencil_module(
    module: ModuleOp,
    func_name: str,
    arrays: dict[str, np.ndarray] | Sequence[np.ndarray],
    externals: dict[str, Callable] | None = None,
) -> list[Any]:
    """Run a stencil-level function on the given numpy arrays.

    ``arrays`` may be a sequence (positional arguments) or a mapping from
    argument names (the block-argument ``name_hint``) to arrays.
    """
    interp = Interpreter(module, externals)
    func = module.get_symbol(func_name)
    if not isinstance(func, FuncOp):
        raise InterpreterError(f"no function named '{func_name}' in module")
    if isinstance(arrays, dict):
        ordered = []
        for arg in func.entry_block.args:
            hint = arg.name_hint
            if hint is None or hint not in arrays:
                raise InterpreterError(
                    f"missing array for argument '{hint}' of '{func_name}'"
                )
            ordered.append(arrays[hint])
        return interp.run(func_name, *ordered)
    return interp.run(func_name, *arrays)
