"""Reference interpreter for the IR.

Executes ``func``/``scf``/``arith``/``math``/``memref``/``stencil`` level IR
directly on numpy buffers.  Used throughout the test suite to check that
every lowering preserves the semantics of the original stencil program.
"""

from repro.interp.interpreter import (
    FieldValue,
    Interpreter,
    InterpreterError,
    TempValue,
    interpret_stencil_module,
)

__all__ = [
    "FieldValue",
    "Interpreter",
    "InterpreterError",
    "TempValue",
    "interpret_stencil_module",
]
