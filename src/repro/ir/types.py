"""Builtin type attributes: integers, floats, index, tensors, memrefs, ...

These mirror the MLIR builtin types that the stencil and HLS dialects rely
on.  Types are attributes (see :class:`repro.ir.core.TypeAttribute`) so they
can also appear inside attribute dictionaries.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.core import Attribute, TypeAttribute, VerifyException


# ---------------------------------------------------------------------------
# Scalar types
# ---------------------------------------------------------------------------


class IntegerType(TypeAttribute):
    """Arbitrary-width signless integer type (``i1``, ``i32``, ``i64`` ...)."""

    name = "builtin.integer_type"

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise VerifyException(f"integer width must be positive, got {width}")
        self.width = width

    def parameters(self) -> tuple:
        return (self.width,)

    @property
    def bitwidth(self) -> int:
        return self.width

    def __str__(self) -> str:
        return f"i{self.width}"


class IndexType(TypeAttribute):
    """Platform-sized index type used for loop induction variables."""

    name = "builtin.index_type"

    @property
    def bitwidth(self) -> int:
        return 64

    def __str__(self) -> str:
        return "index"


class FloatType(TypeAttribute):
    """IEEE floating point type of a given width (16, 32 or 64 bits)."""

    name = "builtin.float_type"

    _VALID_WIDTHS = (16, 32, 64)

    def __init__(self, width: int) -> None:
        if width not in self._VALID_WIDTHS:
            raise VerifyException(f"unsupported float width {width}")
        self.width = width

    def parameters(self) -> tuple:
        return (self.width,)

    @property
    def bitwidth(self) -> int:
        return self.width

    def __str__(self) -> str:
        return f"f{self.width}"


# Canonical singletons used throughout the code base.
i1 = IntegerType(1)
i8 = IntegerType(8)
i32 = IntegerType(32)
i64 = IntegerType(64)
f16 = FloatType(16)
f32 = FloatType(32)
f64 = FloatType(64)
IndexTypeSingleton = IndexType()
index = IndexTypeSingleton


class NoneType(TypeAttribute):
    name = "builtin.none_type"

    def __str__(self) -> str:
        return "none"


none = NoneType()


# ---------------------------------------------------------------------------
# Shaped / aggregate types
# ---------------------------------------------------------------------------

DYNAMIC = -1


class ShapedType(TypeAttribute):
    """Base for types with a shape and an element type."""

    def __init__(self, shape: Sequence[int], element_type: Attribute) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.element_type = element_type
        for dim in self.shape:
            if dim < 0 and dim != DYNAMIC:
                raise VerifyException(f"invalid dimension {dim}")

    def parameters(self) -> tuple:
        return (self.shape, self.element_type)

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def has_static_shape(self) -> bool:
        return all(dim != DYNAMIC for dim in self.shape)

    @property
    def num_elements(self) -> int:
        if not self.has_static_shape:
            raise VerifyException("dynamic shape has no static element count")
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    def _shape_str(self) -> str:
        return "x".join("?" if d == DYNAMIC else str(d) for d in self.shape)


class TensorType(ShapedType):
    name = "builtin.tensor_type"

    def __str__(self) -> str:
        shape = self._shape_str()
        sep = "x" if shape else ""
        return f"tensor<{shape}{sep}{self.element_type}>"


class MemRefType(ShapedType):
    """A reference to a (possibly dynamically shaped) memory buffer."""

    name = "builtin.memref_type"

    def __init__(
        self,
        shape: Sequence[int],
        element_type: Attribute,
        memory_space: str = "",
    ) -> None:
        super().__init__(shape, element_type)
        self.memory_space = memory_space

    def parameters(self) -> tuple:
        return (self.shape, self.element_type, self.memory_space)

    def __str__(self) -> str:
        shape = self._shape_str()
        sep = "x" if shape else ""
        space = f", {self.memory_space}" if self.memory_space else ""
        return f"memref<{shape}{sep}{self.element_type}{space}>"


class VectorType(ShapedType):
    name = "builtin.vector_type"

    def __str__(self) -> str:
        shape = self._shape_str()
        sep = "x" if shape else ""
        return f"vector<{shape}{sep}{self.element_type}>"


class FunctionType(TypeAttribute):
    name = "builtin.function_type"

    def __init__(self, inputs: Sequence[Attribute], outputs: Sequence[Attribute]) -> None:
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)

    def parameters(self) -> tuple:
        return (self.inputs, self.outputs)

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.outputs)
        return f"({ins}) -> ({outs})"


# ---------------------------------------------------------------------------
# LLVM-dialect style aggregate types (used by the HLS -> LLVM lowering)
# ---------------------------------------------------------------------------


class LLVMStructType(TypeAttribute):
    """``!llvm.struct<(...)>`` — used to build legal Vitis HLS stream types."""

    name = "llvm.struct_type"

    def __init__(self, element_types: Sequence[Attribute]) -> None:
        self.element_types = tuple(element_types)

    def parameters(self) -> tuple:
        return (self.element_types,)

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.element_types)
        return f"!llvm.struct<({inner})>"


class LLVMArrayType(TypeAttribute):
    """``!llvm.array<N x T>`` — used for the 512-bit packed interface types."""

    name = "llvm.array_type"

    def __init__(self, count: int, element_type: Attribute) -> None:
        if count <= 0:
            raise VerifyException(f"array count must be positive, got {count}")
        self.count = count
        self.element_type = element_type

    def parameters(self) -> tuple:
        return (self.count, self.element_type)

    @property
    def bitwidth(self) -> int:
        return self.count * getattr(self.element_type, "bitwidth", 0)

    def __str__(self) -> str:
        return f"!llvm.array<{self.count} x {self.element_type}>"


class LLVMPointerType(TypeAttribute):
    """``!llvm.ptr<T>``."""

    name = "llvm.ptr_type"

    def __init__(self, pointee: Attribute | None = None) -> None:
        self.pointee = pointee

    def parameters(self) -> tuple:
        return (self.pointee,)

    def __str__(self) -> str:
        if self.pointee is None:
            return "!llvm.ptr"
        return f"!llvm.ptr<{self.pointee}>"


class LLVMVoidType(TypeAttribute):
    name = "llvm.void_type"

    def __str__(self) -> str:
        return "!llvm.void"


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def bitwidth_of(type_: Attribute) -> int:
    """Bit width of a scalar or packed type; raises for unsized types."""
    if isinstance(type_, (IntegerType, FloatType)):
        return type_.bitwidth
    if isinstance(type_, IndexType):
        return 64
    if isinstance(type_, LLVMArrayType):
        return type_.bitwidth
    if isinstance(type_, LLVMStructType):
        return sum(bitwidth_of(t) for t in type_.element_types)
    if isinstance(type_, VectorType):
        return type_.num_elements * bitwidth_of(type_.element_type)
    raise VerifyException(f"type {type_} has no defined bit width")


def packed_interface_type(element_type: Attribute, width_bits: int = 512) -> LLVMStructType:
    """Build the 512-bit packed interface type of the paper (step 2, §3.3).

    ``f64`` becomes ``!llvm.struct<(!llvm.array<8 x f64>)>`` and so on.
    """
    elem_width = bitwidth_of(element_type)
    if width_bits % elem_width != 0:
        raise VerifyException(
            f"cannot pack {element_type} ({elem_width} bits) into {width_bits} bits"
        )
    lanes = width_bits // elem_width
    return LLVMStructType([LLVMArrayType(lanes, element_type)])


def is_float(type_: Attribute) -> bool:
    return isinstance(type_, FloatType)


def is_integer_like(type_: Attribute) -> bool:
    return isinstance(type_, (IntegerType, IndexType))
