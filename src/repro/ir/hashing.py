"""Canonical module serialization and stable, *incremental* content hashing.

The compile cache (:mod:`repro.core.compile_cache`) needs a *content
address* for IR modules: two modules that are structurally identical must
hash the same, and any op or attribute mutation must change the hash.  The
canonical form ignores SSA ``name_hint``s entirely (a print→parse
round-trip may turn printed names back into hints) and numbers values
purely positionally.

Since the hash-consing rework, :func:`module_hash` no longer re-prints the
whole module on every call.  Each :class:`~repro.ir.core.Operation` caches
a structural fingerprint ``(digest, free values)`` computed bottom-up:

* the digest covers the op name, sorted attributes, operand/result types,
  region/block structure and — for every nested child — the child's cached
  digest plus the *binding* of the child's free values in this op's
  positional numbering;
* the free-value tuple lists, in first-use order, the SSA values the
  subtree references but does not define, so sharing (``add %a, %a`` vs
  ``add %a, %b``) is distinguished at the level that knows the binding.

Every mutation point in :mod:`repro.ir.core` (operand replacement,
attribute edits, op insertion/removal, block/region surgery — including
the rewriter's worklist edits, which all route through those methods)
invalidates the cached fingerprints of the touched op and its ancestors
only, so re-hashing after a local mutation re-aggregates the spine of the
tree instead of re-printing every op.  :func:`canonical_module_text`
remains available as the executable specification of the canonical form.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.ir.core import Block, Operation, Region, SSAValue
from repro.ir.interning import frame as _frame
from repro.ir.printer import Printer


class CanonicalPrinter(Printer):
    """A printer whose SSA names are positional only (hints are ignored)."""

    def name_of(self, value: SSAValue) -> str:
        name = self._names.get(value)
        if name is None:
            name = f"%{self._counter}"
            self._counter += 1
            self._names[value] = name
        return name


def canonical_module_text(op: Operation) -> str:
    """The canonical (hint-free, deterministic) textual form of ``op``."""
    printer = CanonicalPrinter()
    printer.print_operation(op)
    return printer.result()


# ---------------------------------------------------------------------------
# Incremental structural fingerprints
# ---------------------------------------------------------------------------

class _Scope:
    """One fingerprint naming scope: positional locals + first-use frees."""

    __slots__ = ("names", "free", "counter")

    def __init__(self) -> None:
        self.names: dict[SSAValue, str] = {}
        self.free: list[SSAValue] = []
        self.counter = 0

    def ref(self, value: SSAValue) -> str:
        token = self.names.get(value)
        if token is None:
            token = f"^{len(self.free)}"
            self.names[value] = token
            self.free.append(value)
        return token

    def define(self, value: SSAValue) -> None:
        self.names[value] = f"%{self.counter}"
        self.counter += 1


def _append_block(parts: list[str], block: Block, scope: _Scope) -> None:
    """Append one block's payload: arg types, then for each child op its
    cached digest plus the binding of the child's free values in ``scope``."""
    parts.append("^")
    for arg in block.args:
        scope.define(arg)
        parts.append(str(arg.type))
    for child in block.ops:
        child_digest, child_free = operation_fingerprint(child)
        parts.append(child_digest)
        for value in child_free:
            parts.append(scope.ref(value))
        for child_result in child.results:
            scope.define(child_result)


def operation_fingerprint(op: Operation) -> tuple[str, tuple[SSAValue, ...]]:
    """Cached bottom-up structural fingerprint of one operation subtree.

    Returns ``(digest, free_values)`` where ``free_values`` are the SSA
    values used but not defined inside the subtree, in first-use order.
    The result is cached on the operation and reused until a mutation
    invalidates it; a cached subtree digest stays valid when the subtree is
    detached and re-inserted elsewhere unchanged.
    """
    cached = op._fingerprint
    if cached is not None:
        return cached

    parts: list[str] = [op.name]
    scope = _Scope()
    for operand in op.operands:
        parts.append(scope.ref(operand))
        parts.append(str(operand.type))
    attributes = op.attributes
    if attributes:
        for key in sorted(attributes):
            parts.append(key)
            parts.append(str(attributes[key]))
    for result in op.results:
        parts.append(str(result.type))
    for region in op.regions:
        parts.append("(")
        for block in region.blocks:
            _append_block(parts, block, scope)
        parts.append(")")

    digest = hashlib.sha256(_frame(parts)).hexdigest()
    fingerprint = (digest, tuple(scope.free))
    op._fingerprint = fingerprint
    return fingerprint


def block_fingerprint(block: Block) -> tuple[str, tuple[SSAValue, ...]]:
    """Structural fingerprint of one block, composed from cached op digests.

    Free values (used but not defined in the block) are bound by first-use
    order, exactly like :func:`operation_fingerprint` — blocks differing
    only in operand bindings fingerprint differently.
    """
    parts: list[str] = []
    scope = _Scope()
    _append_block(parts, block, scope)
    return hashlib.sha256(_frame(parts)).hexdigest(), tuple(scope.free)


def region_fingerprint(region: Region) -> tuple[str, tuple[SSAValue, ...]]:
    """Structural fingerprint of one region (its blocks, in order), with
    free values resolved across the whole region."""
    parts: list[str] = []
    scope = _Scope()
    for block in region.blocks:
        parts.append("(")
        _append_block(parts, block, scope)
        parts.append(")")
    return hashlib.sha256(_frame(parts)).hexdigest(), tuple(scope.free)


def module_hash(op: Operation) -> str:
    """Stable content hash (sha256 hex) of an operation/module.

    Invariant under print→parse round-trips and under SSA-value renaming;
    changes whenever any op, type or attribute changes.  Incremental: only
    the mutated spine of the tree is re-hashed on repeated calls.
    """
    digest, free = operation_fingerprint(op)
    if not free:
        return digest
    # A fragment referencing values defined outside itself: fold the free
    # value types into the digest so the hash is still self-contained.
    payload = _frame([digest, *(str(value.type) for value in free)])
    return hashlib.sha256(payload).hexdigest()


def fingerprint_text(text: str) -> str:
    """sha256 hex digest of a piece of text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _jsonable(obj: Any) -> Any:
    if isinstance(obj, Mapping):
        return {str(k): _jsonable(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = [_jsonable(o) for o in obj]
        return sorted(items, key=repr) if isinstance(obj, (set, frozenset)) else items
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def fingerprint_mapping(mapping: Mapping[str, Any]) -> str:
    """Stable digest of a (possibly nested) option mapping."""
    payload = json.dumps(_jsonable(mapping), sort_keys=True, separators=(",", ":"))
    return fingerprint_text(payload)
