"""Canonical module serialization and stable content hashing.

The compile cache (:mod:`repro.core.compile_cache`) needs a *content
address* for IR modules: two modules that are structurally identical must
hash the same, and any op or attribute mutation must change the hash.  The
regular printer is deterministic but honours ``name_hint``, so a
print→parse round-trip (which turns printed names back into hints) could
alter the text.  The canonical form therefore ignores hints entirely and
numbers SSA values purely positionally; everything else — op names, sorted
attributes, operand/result types, region structure — is inherited from the
deterministic printer.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.ir.core import Operation, SSAValue
from repro.ir.printer import Printer


class CanonicalPrinter(Printer):
    """A printer whose SSA names are positional only (hints are ignored)."""

    def name_of(self, value: SSAValue) -> str:
        name = self._names.get(value)
        if name is None:
            name = f"%{self._counter}"
            self._counter += 1
            self._names[value] = name
        return name


def canonical_module_text(op: Operation) -> str:
    """The canonical (hint-free, deterministic) textual form of ``op``."""
    printer = CanonicalPrinter()
    printer.print_operation(op)
    return printer.result()


def module_hash(op: Operation) -> str:
    """Stable content hash (sha256 hex) of an operation/module.

    Invariant under print→parse round-trips and under SSA-value renaming;
    changes whenever any op, type or attribute changes.
    """
    return hashlib.sha256(canonical_module_text(op).encode("utf-8")).hexdigest()


def fingerprint_text(text: str) -> str:
    """sha256 hex digest of a piece of text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _jsonable(obj: Any) -> Any:
    if isinstance(obj, Mapping):
        return {str(k): _jsonable(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = [_jsonable(o) for o in obj]
        return sorted(items, key=repr) if isinstance(obj, (set, frozenset)) else items
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def fingerprint_mapping(mapping: Mapping[str, Any]) -> str:
    """Stable digest of a (possibly nested) option mapping."""
    payload = json.dumps(_jsonable(mapping), sort_keys=True, separators=(",", ":"))
    return fingerprint_text(payload)
