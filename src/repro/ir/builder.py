"""IR construction helpers: insertion points and a stateful builder.

Attribute/type arguments need no special treatment here: every attribute
construction funnels through the flyweight interner
(:mod:`repro.ir.interning`) via the ``Attribute`` metaclass, so built IR
automatically shares canonical attribute instances.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.ir.core import Attribute, Block, BlockArgument, Operation, Region, SSAValue


@dataclass
class InsertPoint:
    """A position within a block where new operations are inserted.

    ``index`` of ``None`` means "append at the end of the block".
    """

    block: Block
    index: int | None = None

    @classmethod
    def at_end(cls, block: Block) -> "InsertPoint":
        return cls(block, None)

    @classmethod
    def at_start(cls, block: Block) -> "InsertPoint":
        return cls(block, 0)

    @classmethod
    def before(cls, op: Operation) -> "InsertPoint":
        assert op.parent is not None, "operation is not attached to a block"
        return cls(op.parent, op.parent.index_of(op))

    @classmethod
    def after(cls, op: Operation) -> "InsertPoint":
        assert op.parent is not None, "operation is not attached to a block"
        return cls(op.parent, op.parent.index_of(op) + 1)


class Builder:
    """Inserts operations at a movable insertion point.

    The builder is the main way transformations create IR.  It also offers
    context managers to temporarily build inside a different block, which
    keeps nested-region construction readable.
    """

    def __init__(self, insert_point: InsertPoint | Block) -> None:
        if isinstance(insert_point, Block):
            insert_point = InsertPoint.at_end(insert_point)
        self.insert_point = insert_point

    @classmethod
    def at_end(cls, block: Block) -> "Builder":
        return cls(InsertPoint.at_end(block))

    @classmethod
    def at_start(cls, block: Block) -> "Builder":
        return cls(InsertPoint.at_start(block))

    @classmethod
    def before(cls, op: Operation) -> "Builder":
        return cls(InsertPoint.before(op))

    @classmethod
    def after(cls, op: Operation) -> "Builder":
        return cls(InsertPoint.after(op))

    # -- insertion ----------------------------------------------------------

    def insert(self, op: Operation) -> Operation:
        block = self.insert_point.block
        if self.insert_point.index is None:
            block.add_op(op)
        else:
            block.insert_op(op, self.insert_point.index)
            self.insert_point.index += 1
        return op

    def insert_all(self, ops: Sequence[Operation]) -> list[Operation]:
        return [self.insert(op) for op in ops]

    # -- block / region construction ----------------------------------------

    def create_block(
        self, region: Region, arg_types: Sequence[Attribute] = ()
    ) -> Block:
        block = Block(arg_types)
        region.add_block(block)
        return block

    @contextmanager
    def at(self, insert_point: InsertPoint | Block) -> Iterator["Builder"]:
        """Temporarily redirect insertions to a different point."""
        if isinstance(insert_point, Block):
            insert_point = InsertPoint.at_end(insert_point)
        saved = self.insert_point
        self.insert_point = insert_point
        try:
            yield self
        finally:
            self.insert_point = saved

    # -- convenience --------------------------------------------------------

    def current_block(self) -> Block:
        return self.insert_point.block


def build_region(
    arg_types: Sequence[Attribute],
    body_builder: "Callable[[Builder, tuple[BlockArgument, ...]], None]",
) -> Region:
    """Build a single-block region by calling ``body_builder(builder, args)``."""
    block = Block(arg_types)
    region = Region([block])
    builder = Builder.at_end(block)
    body_builder(builder, tuple(block.args))
    return region


def clone_into(
    target: Block,
    ops: Sequence[Operation],
    value_map: dict[SSAValue, SSAValue] | None = None,
) -> list[Operation]:
    """Clone ``ops`` (remapping through ``value_map``) and append to ``target``."""
    value_map = value_map if value_map is not None else {}
    cloned: list[Operation] = []
    for op in ops:
        new_op = op.clone(value_map)
        target.add_op(new_op)
        cloned.append(new_op)
    return cloned
