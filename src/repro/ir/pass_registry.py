"""Pass registry and MLIR-style textual pipeline-spec parsing.

A pipeline spec is a comma-separated list of pass names, each optionally
carrying options in braces::

    canonicalize,cse,convert-stencil-to-hls{pack=0},convert-hls-to-llvm

``PassRegistry.parse`` turns such a spec into a ready-to-run
:class:`~repro.ir.passes.PassManager`; the manager's
``pipeline_description()`` renders back to a spec that parses to the same
pipeline (round-trip property, covered by tests).

Passes register under a canonical name plus optional aliases (e.g.
``convert-hls-to-llvm`` / ``hls-to-llvm``).  The built-in passes of the
repro are registered lazily on first use of the default registry, keeping
the IR layer import-independent from the transform layer.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.ir.passes import ModulePass, PassContext, PassManager


class PipelineParseError(ValueError):
    """Raised for malformed pipeline specs or unknown passes/options."""


# ---------------------------------------------------------------------------
# Textual spec parsing
# ---------------------------------------------------------------------------


def _parse_value(text: str) -> Any:
    text = text.strip()
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text, 0)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _split_top_level(spec: str) -> list[str]:
    """Split on commas that are not nested inside ``{...}``."""
    chunks: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in spec:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                raise PipelineParseError(f"unbalanced '}}' in pipeline spec: {spec!r}")
        if ch == "," and depth == 0:
            chunks.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise PipelineParseError(f"unbalanced '{{' in pipeline spec: {spec!r}")
    chunks.append("".join(current))
    return [c.strip() for c in chunks if c.strip()]


def parse_pipeline_spec(spec: str) -> list[tuple[str, dict[str, Any]]]:
    """Parse a textual spec into ``(pass name, options)`` entries.

    >>> parse_pipeline_spec("canonicalize,stencil-to-hls{pack=0,ii=2}")
    [('canonicalize', {}), ('stencil-to-hls', {'pack': 0, 'ii': 2})]
    """
    entries: list[tuple[str, dict[str, Any]]] = []
    for chunk in _split_top_level(spec):
        options: dict[str, Any] = {}
        name = chunk
        if "{" in chunk:
            if not chunk.endswith("}"):
                raise PipelineParseError(f"malformed pass entry '{chunk}'")
            name, _, option_text = chunk.partition("{")
            option_text = option_text[:-1]
            name = name.strip()
            for item in option_text.split(","):
                item = item.strip()
                if not item:
                    continue
                key, sep, value = item.partition("=")
                if not sep:
                    # Bare flag: `{pack}` means `pack=true`.
                    options[key.strip()] = True
                    continue
                options[key.strip()] = _parse_value(value)
        if not name:
            raise PipelineParseError(f"empty pass name in pipeline spec: {spec!r}")
        entries.append((name, options))
    return entries


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class PassRegistry:
    """Maps pass names (and aliases) to factories producing pass instances.

    The default registry carries every built-in pass (registered lazily on
    first use); `docs/passes.md` is generated from it.

    >>> registry = PassRegistry.default()
    >>> "canonicalize" in registry.registered_names
    True
    >>> registry.resolve("stencil-to-hls")       # aliases resolve
    'convert-stencil-to-hls'
    >>> manager = PassRegistry.parse("canonicalize,cse")
    >>> manager.pipeline_description()           # round-trips to the spec
    'canonicalize,cse'
    """

    _default_instance: "PassRegistry | None" = None

    def __init__(self) -> None:
        self._factories: dict[str, Callable[..., ModulePass]] = {}
        self._aliases: dict[str, str] = {}

    # -- registration --------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Callable[..., ModulePass],
        *,
        aliases: Iterable[str] = (),
    ) -> None:
        if name in self._factories:
            raise ValueError(f"pass '{name}' is already registered")
        self._factories[name] = factory
        for alias in aliases:
            if alias in self._aliases or alias in self._factories:
                raise ValueError(f"pass alias '{alias}' is already registered")
            self._aliases[alias] = name

    @property
    def registered_names(self) -> list[str]:
        return sorted(self._factories)

    def resolve(self, name: str) -> str:
        """Canonical name for ``name`` (which may be an alias)."""
        if name in self._factories:
            return name
        if name in self._aliases:
            return self._aliases[name]
        raise PipelineParseError(
            f"unknown pass '{name}' (registered: {', '.join(self.registered_names)})"
        )

    # -- construction --------------------------------------------------------

    def create(self, name: str, options: dict[str, Any] | None = None) -> ModulePass:
        factory = self._factories[self.resolve(name)]
        try:
            return factory(**(options or {}))
        except (TypeError, ValueError) as err:
            raise PipelineParseError(f"cannot build pass '{name}': {err}") from err

    def build_pipeline(
        self,
        spec: str,
        *,
        context: PassContext | None = None,
        verify_each: bool = True,
    ) -> PassManager:
        passes = [self.create(name, options) for name, options in parse_pipeline_spec(spec)]
        manager = PassManager(passes, verify_each=verify_each)
        if context is not None:
            manager.context = context
        return manager

    # -- default registry ----------------------------------------------------

    @classmethod
    def default(cls) -> "PassRegistry":
        if cls._default_instance is None:
            registry = cls()
            _register_builtin_passes(registry)
            cls._default_instance = registry
        return cls._default_instance

    @classmethod
    def parse(
        cls,
        spec: str,
        *,
        registry: "PassRegistry | None" = None,
        context: PassContext | None = None,
        verify_each: bool = True,
    ) -> PassManager:
        """Build a :class:`PassManager` from a textual pipeline spec."""
        registry = registry or cls.default()
        return registry.build_pipeline(spec, context=context, verify_each=verify_each)


def canonical_pipeline_spec(spec: str, *, registry: PassRegistry | None = None) -> str:
    """Canonicalise a textual pipeline spec.

    Aliases resolve to canonical pass names and every pass renders its
    *effective* options (via :meth:`~repro.ir.passes.ModulePass.describe`),
    so two specs spelling the same pipeline differently canonicalise to the
    same string while any option difference — e.g. ``stencil-to-hls{pack=0}``
    vs ``{pack=1}`` — is preserved.  This is what cache keys must embed.

    >>> canonical_pipeline_spec("canonicalize , cse")
    'canonicalize,cse'
    >>> canonical_pipeline_spec("stencil-to-hls{pack=0}")  # alias resolved
    'convert-stencil-to-hls{pack=0}'
    """
    registry = registry or PassRegistry.default()
    passes = [registry.create(name, options) for name, options in parse_pipeline_spec(spec)]
    return ",".join(p.describe() for p in passes)


def _register_builtin_passes(registry: PassRegistry) -> None:
    # Imported lazily: the transform layer imports repro.ir, not vice versa.
    from repro.transforms.canonicalize import CanonicalizePass
    from repro.transforms.cse import CSEPass
    from repro.transforms.dce import DCEPass
    from repro.transforms.hls_to_llvm import HLSToLLVMPass
    from repro.transforms.stencil_hls import (
        HLSBundleAssignmentPass,
        StencilComputeSplitPass,
        StencilInterfaceLoweringPass,
        StencilShapeInferencePass,
        StencilSmallDataBufferingPass,
        StencilWavePipeliningPass,
    )
    from repro.transforms.stencil_to_hls import StencilToHLSPass
    from repro.transforms.stencil_to_scf import StencilToSCFPass

    registry.register("canonicalize", CanonicalizePass)
    registry.register("cse", CSEPass)
    registry.register("dce", DCEPass)
    registry.register(
        "convert-stencil-to-hls", StencilToHLSPass, aliases=("stencil-to-hls",)
    )
    registry.register(
        "convert-hls-to-llvm", HLSToLLVMPass, aliases=("hls-to-llvm",)
    )
    registry.register(
        "convert-stencil-to-scf", StencilToSCFPass, aliases=("stencil-to-scf",)
    )
    registry.register("stencil-shape-inference", StencilShapeInferencePass)
    registry.register("stencil-interface-lowering", StencilInterfaceLoweringPass)
    registry.register("stencil-small-data-buffering", StencilSmallDataBufferingPass)
    registry.register("stencil-wave-pipelining", StencilWavePipeliningPass)
    registry.register("stencil-compute-split", StencilComputeSplitPass)
    registry.register("hls-bundle-assignment", HLSBundleAssignmentPass)
