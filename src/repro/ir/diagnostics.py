"""Located, severity-graded diagnostics for IR verification and linting.

A :class:`Diagnostic` is one finding about a module: a severity
(``error`` / ``warning`` / ``remark``), a human-readable message, an
*op-path* location (module → func → block index → op index, rendered like
``func @pw_advection / block 0 / op 17: stencil.access``), an optional
rule identifier and attached notes.

The :class:`DiagnosticEngine` is the collect API the structural verifier,
the pass manager and the ``shmls-lint`` rules all emit through: callers
either collect everything (lint mode) or raise on the first error
(:class:`DiagnosticError`, a :class:`VerifyException` subclass so existing
``except VerifyException`` handlers keep working).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.ir.core import Operation, VerifyException

#: Recognised severities, most severe first.
SEVERITIES = ("error", "warning", "remark")

ERROR = "error"
WARNING = "warning"
REMARK = "remark"


def _op_label(op: Operation) -> str:
    """Label for one path segment: ``func @name`` for symbols, else op name."""
    sym = op.attributes.get("sym_name")
    if sym is not None:
        return f"{op.name.split('.')[0]} @{getattr(sym, 'data', sym)}"
    return op.name


def op_path(op: Operation) -> str:
    """Render the location of ``op`` as a module→func→block→op path.

    The enclosing module itself is omitted; each nesting level below the
    top-level symbol contributes a ``block <i> / op <j>: <name>`` segment::

        func @pw_advection / block 0 / op 17: stencil.access

    Detached operations (no parent chain up to a root) render as their
    plain label.
    """
    chain: list[Operation] = []
    current: Operation | None = op
    while current is not None and current.parent is not None:
        chain.append(current)
        current = current.parent_op()
    if not chain:
        return _op_label(op)
    chain.reverse()
    segments: list[str] = []
    for depth, node in enumerate(chain):
        block = node.parent
        if depth == 0:
            segments.append(_op_label(node))
            continue
        region = block.parent if block is not None else None
        block_index = 0
        op_index = -1
        if block is not None:
            if region is not None and block in region.blocks:
                block_index = region.blocks.index(block)
            try:
                op_index = block.index_of(node)
            except ValueError:  # pragma: no cover - detached mid-walk
                op_index = -1
        segments.append(f"block {block_index} / op {op_index}: {_op_label(node)}")
    return " / ".join(segments)


@dataclass(frozen=True)
class Diagnostic:
    """One located finding about a module."""

    severity: str
    message: str
    path: str = ""
    rule: str = ""
    pass_name: str = ""
    notes: tuple[str, ...] = ()

    def render(self) -> str:
        """One-line rendering: ``<path>: <severity>: <message> [<rule>]``."""
        location = self.path or "<module>"
        text = f"{location}: {self.severity}: {self.message}"
        if self.rule:
            text = f"{text} [{self.rule}]"
        return text

    def render_lines(self) -> list[str]:
        """The rendered diagnostic plus one indented line per note."""
        lines = [self.render()]
        lines.extend(f"  note: {note}" for note in self.notes)
        return lines

    def as_dict(self) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "severity": self.severity,
            "message": self.message,
            "path": self.path,
        }
        if self.rule:
            entry["rule"] = self.rule
        if self.pass_name:
            entry["pass"] = self.pass_name
        if self.notes:
            entry["notes"] = list(self.notes)
        return entry


class DiagnosticError(VerifyException):
    """A verification/lint failure carrying its structured diagnostics."""

    def __init__(self, diagnostics: list[Diagnostic] | tuple[Diagnostic, ...]):
        self.diagnostics = tuple(diagnostics)
        lines: list[str] = []
        for diag in self.diagnostics:
            lines.extend(diag.render_lines())
        super().__init__("\n".join(lines) or "verification failed")


@dataclass
class DiagnosticEngine:
    """Collects diagnostics; the emit API verification and lint route through.

    ``emit`` attaches the current pass scope and the op-path location
    automatically; severity counters and :attr:`has_errors` drive exit
    codes and pass-manager failure decisions.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    pass_name: str = ""

    def emit(
        self,
        severity: str,
        message: str,
        *,
        op: Operation | None = None,
        path: str = "",
        rule: str = "",
        notes: tuple[str, ...] | list[str] = (),
    ) -> Diagnostic:
        if severity not in SEVERITIES:
            raise ValueError(f"unknown diagnostic severity {severity!r}")
        if not path and op is not None:
            path = op_path(op)
        diag = Diagnostic(
            severity=severity,
            message=message,
            path=path,
            rule=rule,
            pass_name=self.pass_name,
            notes=tuple(notes),
        )
        self.diagnostics.append(diag)
        return diag

    def error(self, message: str, **kwargs: Any) -> Diagnostic:
        return self.emit(ERROR, message, **kwargs)

    def warning(self, message: str, **kwargs: Any) -> Diagnostic:
        return self.emit(WARNING, message, **kwargs)

    def remark(self, message: str, **kwargs: Any) -> Diagnostic:
        return self.emit(REMARK, message, **kwargs)

    # -- queries ---------------------------------------------------------------

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    @property
    def has_warnings(self) -> bool:
        return any(d.severity == WARNING for d in self.diagnostics)

    @contextmanager
    def pass_scope(self, name: str) -> Iterator["DiagnosticEngine"]:
        """Attach ``name`` as the emitting pass for diagnostics in scope."""
        previous = self.pass_name
        self.pass_name = name
        try:
            yield self
        finally:
            self.pass_name = previous

    def check(self) -> None:
        """Raise a :class:`DiagnosticError` if any error was collected."""
        if self.has_errors:
            raise DiagnosticError(self.errors)

    def render_lines(self) -> list[str]:
        lines: list[str] = []
        for diag in self.diagnostics:
            lines.extend(diag.render_lines())
        return lines
