"""Module passes and the pass manager driving the compilation pipeline."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.ir.core import Operation, VerifyException
from repro.ir.verifier import verify_module


@dataclass
class PassStatistics:
    """Timing and change information recorded for each executed pass."""

    name: str
    seconds: float
    changed: bool
    note: str = ""


class ModulePass:
    """A transformation over a whole module (a ``builtin.module`` op)."""

    name: str = "unnamed-pass"

    def apply(self, module: Operation) -> bool:
        """Transform ``module`` in place; return whether anything changed."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ModulePass {self.name}>"


class FunctionPassAdapter(ModulePass):
    """Lift a per-function callable into a module pass."""

    def __init__(self, name: str, fn: Callable[[Operation], bool]) -> None:
        self.name = name
        self.fn = fn

    def apply(self, module: Operation) -> bool:
        from repro.dialects.func import FuncOp

        changed = False
        for func in list(module.walk_type(FuncOp)):
            changed |= bool(self.fn(func))
        return changed


@dataclass
class PassManager:
    """Runs a sequence of module passes, optionally verifying between them."""

    passes: list[ModulePass] = field(default_factory=list)
    verify_each: bool = True
    statistics: list[PassStatistics] = field(default_factory=list)

    def add(self, *passes: ModulePass) -> "PassManager":
        self.passes.extend(passes)
        return self

    def run(self, module: Operation) -> Operation:
        if self.verify_each:
            verify_module(module)
        for pass_ in self.passes:
            start = time.perf_counter()
            changed = pass_.apply(module)
            elapsed = time.perf_counter() - start
            self.statistics.append(PassStatistics(pass_.name, elapsed, bool(changed)))
            if self.verify_each:
                try:
                    verify_module(module)
                except VerifyException as err:
                    raise VerifyException(
                        f"verification failed after pass '{pass_.name}': {err}"
                    ) from err
        return module

    def pipeline_description(self) -> str:
        return ",".join(p.name for p in self.passes)
