"""Module passes, the pass manager and the typed pass context.

The :class:`PassManager` drives a sequence of :class:`ModulePass` objects
over a module, verifying in between and recording per-pass
:class:`PassStatistics`.  Passes communicate through a :class:`PassContext`
— a typed blackboard carried on the pass manager and injected into every
pass as ``pass_.ctx`` before it runs — which is how the staged stencil→HLS
lowering threads its ``LoweringContext`` between sub-passes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

from repro.ir.analysis import AnalysisManager
from repro.ir.core import Operation, VerifyException
from repro.ir.diagnostics import DiagnosticError

T = TypeVar("T")


class PassContext:
    """Typed blackboard shared by the passes of one pipeline.

    Entries are keyed by their type: at most one value per type is stored.
    ``get``/``set``/``get_or_create`` deliberately mirror MLIR's analysis
    manager in miniature.
    """

    def __init__(self) -> None:
        self._entries: dict[type, Any] = {}

    def get(self, cls: type[T]) -> T | None:
        return self._entries.get(cls)

    def set(self, value: T) -> T:
        self._entries[type(value)] = value
        return value


def format_option_value(value: Any) -> str:
    """Render one pipeline option value in MLIR textual-spec form.

    >>> format_option_value(True), format_option_value(32)
    ('true', '32')
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


@dataclass
class PassStatistics:
    """Timing and change information recorded for each executed pass."""

    name: str
    seconds: float
    changed: bool
    note: str = ""

    def as_dict(self) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "name": self.name,
            "seconds": self.seconds,
            "changed": self.changed,
        }
        if self.note:
            entry["note"] = self.note
        return entry


class ModulePass:
    """A transformation over a whole module (a ``builtin.module`` op)."""

    name: str = "unnamed-pass"

    #: The pass context of the driving pass manager; injected by
    #: :meth:`PassManager.run` right before ``apply`` is called.
    ctx: "PassContext | None" = None

    def apply(self, module: Operation) -> bool:
        """Transform ``module`` in place; return whether anything changed."""
        raise NotImplementedError

    def pipeline_options(self) -> dict[str, Any]:
        """Options to render in the textual pipeline description."""
        return {}

    def describe(self) -> str:
        """This pass as one entry of a textual pipeline spec.

        Options render key-sorted: ``{split=0,pack=0}`` and
        ``{pack=0,split=0}`` are the same configuration, so they must
        canonicalise (and therefore cache-key) identically.
        """
        options = self.pipeline_options()
        if not options:
            return self.name
        rendered = ",".join(
            f"{key}={format_option_value(value)}"
            for key, value in sorted(options.items())
        )
        return f"{self.name}{{{rendered}}}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ModulePass {self.name}>"


class FunctionPassAdapter(ModulePass):
    """Lift a per-function callable into a module pass."""

    def __init__(self, name: str, fn: Callable[[Operation], bool]) -> None:
        self.name = name
        self.fn = fn

    def apply(self, module: Operation) -> bool:
        from repro.dialects.func import FuncOp

        changed = False
        for func in list(module.walk_type(FuncOp)):
            changed |= bool(self.fn(func))
        return changed


@dataclass
class PassManager:
    """Runs a sequence of module passes, optionally verifying between them.

    Usually built from a textual spec via
    :meth:`repro.ir.pass_registry.PassRegistry.parse`; the description
    round-trips:

    >>> from repro.ir.pass_registry import PassRegistry
    >>> manager = PassRegistry.parse("canonicalize,dce")
    >>> [p.name for p in manager.passes]
    ['canonicalize', 'dce']
    >>> manager.pipeline_description()
    'canonicalize,dce'
    """

    passes: list[ModulePass] = field(default_factory=list)
    verify_each: bool = True
    statistics: list[PassStatistics] = field(default_factory=list)
    context: PassContext = field(default_factory=PassContext)

    def add(self, *passes: ModulePass) -> "PassManager":
        self.passes.extend(passes)
        return self

    def run(
        self,
        module: Operation,
        on_pass_start: Callable[[ModulePass, Operation], None] | None = None,
        on_pass_end: Callable[[ModulePass, Operation, PassStatistics], None] | None = None,
        start_index: int = 0,
    ) -> Operation:
        """Run the scheduled passes over ``module``.

        ``start_index`` skips the first passes (used when a cached pipeline
        prefix was restored); ``on_pass_end`` fires after each pass has run
        and verified — the hook the per-pass artefact cache stores from.

        Verification runs through the :class:`~repro.ir.analysis.AnalysisManager`
        held in the pass context: each pass's input and output are both
        verified, but because the cache is keyed on module fingerprints the
        input check of pass N+1 is a cache hit on the output check of pass
        N — 2N logical verifications cost N+1 real ones.

        Every pass also stamps its provenance (name, pipeline position,
        canonical spec) on the module — with ``verify_each=False`` too — so
        a later manual :func:`~repro.ir.verifier.verify_module` can still
        attribute a broken module to the pass that produced it.
        """
        analyses = self.analyses()
        spec = self.pipeline_description()
        if self.verify_each:
            self._verify(module, analyses)
        for position in range(start_index, len(self.passes)):
            pass_ = self.passes[position]
            if self.verify_each and position > start_index:
                # Re-check this pass's input; cached from the previous
                # pass's output verification unless the module changed
                # behind the manager's back.
                self._verify(module, analyses)
            if on_pass_start is not None:
                on_pass_start(pass_, module)
            pass_.ctx = self.context
            start = time.perf_counter()
            changed = pass_.apply(module)
            elapsed = time.perf_counter() - start
            module._pass_provenance = (pass_.name, position, spec)
            self.statistics.append(PassStatistics(pass_.describe(), elapsed, bool(changed)))
            if self.verify_each:
                self._verify(module, analyses, pass_=pass_, position=position, spec=spec)
            if on_pass_end is not None:
                on_pass_end(pass_, module, self.statistics[-1])
        return module

    def analyses(self) -> AnalysisManager:
        """The pipeline's analysis manager, created in the context on first use."""
        manager = self.context.get(AnalysisManager)
        if manager is None:
            manager = self.context.set(AnalysisManager())
        return manager

    def _verify(
        self,
        module: Operation,
        analyses: AnalysisManager,
        pass_: ModulePass | None = None,
        position: int | None = None,
        spec: str = "",
    ) -> None:
        diagnostics = analyses.get("verify", module)
        errors = [d for d in diagnostics if d.severity == "error"]
        if not errors:
            return
        err = DiagnosticError(errors)
        if pass_ is None:
            raise err
        raise VerifyException(
            f"verification failed after pass '{pass_.name}' "
            f"(position {position} in pipeline '{spec}'): {err}"
        ) from err

    def pipeline_description(self) -> str:
        return ",".join(p.describe() for p in self.passes)
