"""Flyweight uniquing (hash-consing) of IR attributes and types.

Attributes are immutable value objects, so two structurally identical
instances are interchangeable.  The interner guarantees there is at most
*one* canonical instance per structural identity in each process:
``IntegerType(32) is IntegerType(32)`` holds, equality degenerates to a
pointer comparison on the hot path and every attribute carries a
precomputed hash.  This is the same flyweight scheme MLIR/xDSL use for
their uniqued attribute/type storage.

The interner is installed through :class:`InternedAttributeMeta` — the
metaclass of :class:`repro.ir.core.Attribute` — so *every* construction
site (dialect constructors, the parser, the builder, pickle) funnels
through it without cooperation from callers.

Interning is per-process.  Pickled attributes therefore re-intern on load
(:func:`reconstruct_interned` is the ``__reduce__`` target of
``Attribute``), which keeps identity-equality sound across the
``ProcessPoolExecutor`` workers of the evaluation matrix and across
disk-cache round-trips.

Shared cross-process table
--------------------------

On top of the per-process interner sits an *on-disk, mmap-able* table of
canonical attribute records (:class:`SharedInternTable`).  A parent
process :func:`publishes <publish_intern_table>` its interner contents as
append-only segment files keyed by structural digest; pool / fleet
workers :func:`open <open_shared_table>` the table read-only.  While a
table is active in a process:

* ``Attribute.__reduce__`` shrinks to a ``(resolve_shared, (digest,))``
  table reference for every attribute the table holds, so pickled
  modules / artifacts stop carrying attribute state at all;
* :func:`resolve_shared` decodes the record lazily from the mapped
  segment (memoised per process) and re-interns it, preserving identity
  equality with locally-constructed attributes.

The table is strictly an accelerator: a missing or stale table falls
back to per-process interning and full-state pickling, and a reference
blob loaded in a process *without* the table fails with an ordinary
``UnpicklingError`` (which the compile cache already treats as a miss).
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import mmap
import os
import pickle
import struct
import tempfile
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.core import Attribute


def frame(parts: Iterable[str]) -> bytes:
    """Netstring-frame payload parts (``<len>:<part>...``).

    Length-prefixing makes the encoding injective even though the parts
    are unescaped user data — no separator a part could contain can make
    two different part sequences encode alike.  Shared by the module
    fingerprints (:mod:`repro.ir.hashing`) and the structural digests of
    the shared intern table below.
    """
    return "".join(f"{len(part)}:{part}" for part in parts).encode("utf-8")


class InternStats:
    """Hit/miss counters of one interner (per process)."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "unique": self.misses,
            "hit_rate": self.hit_rate,
        }

    def snapshot(self) -> tuple[int, int]:
        return (self.hits, self.misses)


class AttributeInterner:
    """Uniquing table mapping structural identity to the canonical instance.

    Keys are ``(class, hashable(parameters()))``; the table owns the
    canonical instance and its key tuple.  ``intern`` is the only entry
    point: it either returns the existing canonical instance or registers
    the candidate (stamping its precomputed ``_hash``) and returns it.
    """

    __slots__ = ("_table", "stats", "_lock")

    def __init__(self) -> None:
        self._table: dict[tuple, "Attribute"] = {}
        self.stats = InternStats()
        # Identity equality relies on one canonical instance per structural
        # key; without the lock, two threads compiling concurrently (the
        # service's executor) could both miss and publish rival canonicals.
        self._lock = threading.Lock()

    def intern(self, attr: "Attribute") -> "Attribute":
        from repro.ir.core import Attribute

        key = (type(attr), Attribute._hashable(attr.parameters()))
        with self._lock:
            existing = self._table.get(key)
            if existing is not None:
                self.stats.hits += 1
                return existing
            self.stats.misses += 1
            # Stamp the precomputed hash before publication: every consumer
            # of the canonical instance sees an O(1) __hash__.
            attr.__dict__["_hash"] = hash(key)
            self._table[key] = attr
            return attr

    def canonical(self) -> list["Attribute"]:
        """All canonical instances currently interned (insertion order)."""
        return list(self._table.values())

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop the table (tests only — breaks identity of live attributes)."""
        self._table.clear()
        self.stats = InternStats()


#: The per-process interner every Attribute construction funnels through.
ATTRIBUTE_INTERNER = AttributeInterner()


def intern_stats() -> InternStats:
    """The process-wide interner's hit/miss counters."""
    return ATTRIBUTE_INTERNER.stats


def canonical_attributes() -> list["Attribute"]:
    """All canonical attributes interned in this process so far."""
    return ATTRIBUTE_INTERNER.canonical()


class InternedAttributeMeta(type):
    """Metaclass routing attribute construction through the interner.

    ``Cls(...)`` builds the candidate (running validation in ``__init__``),
    then returns the canonical instance for its structural identity — the
    candidate is dropped on an intern hit.
    """

    def __call__(cls, *args: Any, **kwargs: Any) -> Any:
        instance = super().__call__(*args, **kwargs)
        return ATTRIBUTE_INTERNER.intern(instance)


def reconstruct_interned(cls: type, state: dict[str, Any]) -> "Attribute":
    """Pickle target: rebuild an attribute and re-intern it in this process.

    Bypasses ``__init__`` (the state was validated when first built) but
    never bypasses the interner, so unpickled attributes regain identity
    equality with locally-constructed ones — the invariant the
    process-parallel evaluation matrix relies on.
    """
    instance = object.__new__(cls)
    state.pop("_hash", None)  # recomputed (or inherited) at intern time
    state.pop("_digest", None)  # structural digest is recomputed on demand
    state.pop("_prefer_ref", None)  # sizing memo is recomputed on demand
    instance.__dict__.update(state)
    return ATTRIBUTE_INTERNER.intern(instance)


# ---------------------------------------------------------------------------
# Structural digests
# ---------------------------------------------------------------------------


def _encode_param(obj: Any) -> str:
    """Canonical, type-tagged encoding of one ``parameters()`` element.

    Injective across python types that compare unequal (``True`` and ``1``
    encode differently even though ``True == 1``), and recursive through
    containers; nested attributes collapse to their own digest.
    """
    from repro.ir.core import Attribute

    if isinstance(obj, Attribute):
        return "a:" + attribute_digest(obj)
    if isinstance(obj, bool):  # before int: bool is an int subclass
        return "b:1" if obj else "b:0"
    if isinstance(obj, int):
        return f"i:{obj}"
    if isinstance(obj, float):
        return "f:" + obj.hex()
    if isinstance(obj, str):
        return "s:" + obj
    if isinstance(obj, bytes):
        return "y:" + obj.hex()
    if obj is None:
        return "n:"
    if isinstance(obj, (tuple, list)):
        return "t:" + frame([_encode_param(o) for o in obj]).decode("utf-8")
    if isinstance(obj, dict):
        items = sorted((_encode_param(k), _encode_param(v)) for k, v in obj.items())
        return "d:" + frame([p for kv in items for p in kv]).decode("utf-8")
    if isinstance(obj, (set, frozenset)):
        return "e:" + frame(sorted(_encode_param(o) for o in obj)).decode("utf-8")
    return "r:" + repr(obj)


def attribute_digest(attr: "Attribute") -> str:
    """Stable structural digest (sha256 hex) of one attribute.

    Covers the class identity and the canonical encoding of
    ``parameters()``; memoised on the instance (canonical instances are
    immutable, so the digest never changes).
    """
    cached = attr.__dict__.get("_digest")
    if cached is not None:
        return cached
    cls = type(attr)
    payload = frame(
        ["attr", cls.__module__, cls.__qualname__, _encode_param(attr.parameters())]
    )
    digest = hashlib.sha256(payload).hexdigest()
    attr.__dict__["_digest"] = digest
    return digest


# ---------------------------------------------------------------------------
# Shared on-disk table
# ---------------------------------------------------------------------------

#: Segment file header: magic + u64 record count.
_SEGMENT_MAGIC = b"SHMT0001"
_SEGMENT_COUNT = struct.Struct("<Q")
#: Per-record header: u32 payload length + raw 32-byte structural digest.
_RECORD_HEADER = struct.Struct("<I32s")


class _RecordPickler(pickle.Pickler):
    """Record encoder: nested attributes become digest references.

    ``persistent_id`` intercepts nested :class:`Attribute` instances
    *before* their ``__reduce__`` runs, so record payloads are
    self-contained relative to the table regardless of whether a table is
    active in the publishing process.
    """

    def persistent_id(self, obj: Any) -> bytes | None:
        from repro.ir.core import Attribute

        if isinstance(obj, Attribute):
            # Raw 32-byte digest: half the pickled size of the hex form.
            return bytes.fromhex(attribute_digest(obj))
        return None


class _RecordUnpickler(pickle.Unpickler):
    """Record decoder: digest references resolve through the table."""

    def __init__(self, data: bytes, table: "SharedInternTable") -> None:
        super().__init__(io.BytesIO(data))
        self._shared_table = table

    def persistent_load(self, pid: Any) -> Any:
        return self._shared_table.resolve(pid)


def _encode_record(attr: "Attribute") -> bytes:
    """Pickle ``(cls, state)`` with nested attributes as digest refs."""
    state = {
        k: v
        for k, v in attr.__dict__.items()
        if k not in ("_hash", "_digest", "_prefer_ref")
    }
    buffer = io.BytesIO()
    _RecordPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump((type(attr), state))
    return buffer.getvalue()


class SharedInternTable:
    """Read-only view of an on-disk attribute table (mmap'd segments).

    A table is a directory of append-only segment files.  Each segment is
    content-addressed (its name embeds a hash of its bytes) and written
    atomically, so concurrent publishers can only ever add *new* files —
    readers never observe a torn segment.  Opening a table scans segment
    headers only; record payloads stay untouched (and unread, thanks to
    the mmap) until :meth:`resolve` first needs them.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._segments: dict[str, mmap.mmap] = {}
        self._files: list[Any] = []
        self._index: dict[str, tuple[mmap.mmap, int, int]] = {}
        #: 8-byte digest prefix → full hex digest (``None`` = ambiguous).
        self._short: dict[bytes, str | None] = {}
        self._resolved: dict[str | bytes, "Attribute"] = {}

    @classmethod
    def open(cls, path: str | os.PathLike) -> "SharedInternTable":
        """Open (and index) the table at ``path``; raises ``OSError`` if
        the directory does not exist."""
        root = Path(path)
        if not root.is_dir():
            raise FileNotFoundError(f"no shared intern table at {root}")
        table = cls(root)
        table.refresh()
        return table

    def refresh(self) -> int:
        """Index segment files added since open; returns new record count."""
        added = 0
        for segment in sorted(self.path.glob("seg-*.bin")):
            if segment.name in self._segments:
                continue
            added += self._index_segment(segment)
        return added

    def _index_segment(self, segment: Path) -> int:
        try:
            handle = segment.open("rb")
        except OSError:
            return 0
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty or vanished file
            handle.close()
            return 0
        header = len(_SEGMENT_MAGIC) + _SEGMENT_COUNT.size
        if len(mapped) < header or mapped[: len(_SEGMENT_MAGIC)] != _SEGMENT_MAGIC:
            mapped.close()
            handle.close()
            return 0  # foreign or corrupt file: skip, don't fail the open
        (count,) = _SEGMENT_COUNT.unpack_from(mapped, len(_SEGMENT_MAGIC))
        offset = header
        added = 0
        for _ in range(count):
            if offset + _RECORD_HEADER.size > len(mapped):
                break  # truncated tail: index what we can
            length, raw = _RECORD_HEADER.unpack_from(mapped, offset)
            offset += _RECORD_HEADER.size
            if offset + length > len(mapped):
                break
            digest = raw.hex()
            self._index[digest] = (mapped, offset, length)
            prefix = raw[:8]
            if prefix not in self._short:
                self._short[prefix] = digest
            elif self._short[prefix] != digest:
                self._short[prefix] = None  # collision: short refs disabled
            offset += length
            added += 1
        self._segments[segment.name] = mapped
        self._files.append(handle)
        return added

    def __contains__(self, digest: str) -> bool:
        return digest in self._index

    def __len__(self) -> int:
        return len(self._index)

    def resolve(self, digest: str | bytes) -> "Attribute":
        """Decode (lazily, memoised) and re-intern the record for ``digest``.

        Accepts the hex form, the raw 32-byte form, or the short 8-byte
        prefix form (the compact pickle reference encoding; falls back to
        the full digest when a published prefix is ambiguous).  An index
        miss refreshes once before raising — a publisher may have appended
        a segment after this reader opened the table.
        """
        # Memoised under the caller's key form so the hot path (repeated
        # reference resolution while unpickling payloads) never converts.
        hit = self._resolved.get(digest)
        if hit is not None:
            return hit
        key = digest
        if isinstance(digest, bytes):
            if len(digest) == 8:
                full = self._short.get(digest)
                if full is None:
                    self.refresh()
                    full = self._short.get(digest)
                if full is None:
                    raise KeyError(
                        f"short attribute reference {digest.hex()} is "
                        "unknown (or ambiguous) in the shared intern table"
                    )
                digest = full
            else:
                digest = digest.hex()
            hit = self._resolved.get(digest)
            if hit is not None:
                self._resolved[key] = hit
                return hit
        entry = self._index.get(digest)
        if entry is None:
            self.refresh()
            entry = self._index.get(digest)
            if entry is None:
                raise KeyError(f"digest {digest!r} not in shared intern table")
        mapped, offset, length = entry
        cls, state = _RecordUnpickler(mapped[offset : offset + length], self).load()
        instance = object.__new__(cls)
        instance.__dict__.update(state)
        canonical = ATTRIBUTE_INTERNER.intern(instance)
        canonical.__dict__.setdefault("_digest", digest)
        self._resolved[digest] = canonical
        if key is not digest:
            self._resolved[key] = canonical
        return canonical

    def preload(self) -> int:
        """Eagerly resolve every record (warm-start); returns table size."""
        for digest in list(self._index):
            self.resolve(digest)
        return len(self._index)

    def close(self) -> None:
        self._index.clear()
        self._resolved.clear()
        for mapped in self._segments.values():
            with contextlib.suppress(Exception):
                mapped.close()
        self._segments.clear()
        for handle in self._files:
            with contextlib.suppress(Exception):
                handle.close()
        self._files.clear()


#: The table (if any) active in this process: publish/open install it here,
#: and ``Attribute.__reduce__`` / ``resolve_shared`` consult it.
_ACTIVE_TABLE: SharedInternTable | None = None


def activate_table(table: SharedInternTable | None) -> SharedInternTable | None:
    """Install ``table`` as this process's active table; returns the old one."""
    global _ACTIVE_TABLE
    previous = _ACTIVE_TABLE
    _ACTIVE_TABLE = table
    return previous


def active_table() -> SharedInternTable | None:
    """The shared table currently active in this process, if any."""
    return _ACTIVE_TABLE


@contextlib.contextmanager
def activated_table(table: SharedInternTable | None) -> Iterator[None]:
    """Scoped :func:`activate_table` (tests and benchmarks)."""
    previous = activate_table(table)
    try:
        yield
    finally:
        activate_table(previous)


@contextlib.contextmanager
def scratch_interner() -> Iterator[AttributeInterner]:
    """Swap in a fresh process interner for the scope (tests/benchmarks).

    Everything constructed inside the scope interns into the scratch
    table, simulating a cold worker process without forking one.
    """
    global ATTRIBUTE_INTERNER
    previous = ATTRIBUTE_INTERNER
    ATTRIBUTE_INTERNER = AttributeInterner()
    try:
        yield ATTRIBUTE_INTERNER
    finally:
        ATTRIBUTE_INTERNER = previous


def open_shared_table(
    path: str | os.PathLike, *, preload: bool = False
) -> SharedInternTable | None:
    """Open the table at ``path`` and activate it for this process.

    Returns ``None`` (leaving per-process interning untouched) when the
    table is missing or unreadable — a worker pointed at a stale path must
    degrade, not die.
    """
    try:
        table = SharedInternTable.open(path)
    except OSError:
        return None
    if preload:
        table.preload()
    activate_table(table)
    return table


def _closure(attrs: Iterable["Attribute"]) -> list["Attribute"]:
    """``attrs`` plus every attribute nested in their parameters."""
    from repro.ir.core import Attribute

    seen: dict[int, "Attribute"] = {}
    stack = list(attrs)
    while stack:
        attr = stack.pop()
        if id(attr) in seen:
            continue
        seen[id(attr)] = attr
        pending = [attr.parameters()]
        while pending:
            obj = pending.pop()
            if isinstance(obj, Attribute):
                stack.append(obj)
            elif isinstance(obj, (tuple, list, set, frozenset)):
                pending.extend(obj)
            elif isinstance(obj, dict):
                pending.extend(obj.keys())
                pending.extend(obj.values())
    return list(seen.values())


def publish_intern_table(
    path: str | os.PathLike, attrs: Iterable["Attribute"] | None = None
) -> int:
    """Publish interned attributes to the table at ``path``.

    Writes one new append-only segment holding every attribute (closure
    over nested parameters) whose digest the table does not already hold;
    returns the number of records written.  The segment file is
    content-addressed and renamed into place atomically, so concurrent
    publishers cannot tear the table — they only ever add whole files.
    If this process has the same table active, it is refreshed in place.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    existing: set[str] = set()
    try:
        current = SharedInternTable.open(root)
        existing = set(current._index)
        current.close()
    except OSError:
        pass

    candidates = _closure(
        ATTRIBUTE_INTERNER.canonical() if attrs is None else attrs
    )
    records: list[tuple[str, bytes]] = []
    for attr in candidates:
        digest = attribute_digest(attr)
        if digest in existing:
            continue
        existing.add(digest)
        records.append((digest, _encode_record(attr)))

    if records:
        body = io.BytesIO()
        body.write(_SEGMENT_MAGIC)
        body.write(_SEGMENT_COUNT.pack(len(records)))
        for digest, payload in records:
            body.write(_RECORD_HEADER.pack(len(payload), bytes.fromhex(digest)))
            body.write(payload)
        content = body.getvalue()
        name = f"seg-{hashlib.sha256(content).hexdigest()[:16]}.bin"
        target = root / name
        if not target.exists():
            fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(content)
                os.replace(tmp, target)
            except OSError:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise

    table = _ACTIVE_TABLE
    if table is not None and table.path == root:
        table.refresh()
    return len(records)


def resolve_shared(digest: str | bytes) -> "Attribute":
    """Pickle target of table references (see ``Attribute.__reduce__``).

    Only resolvable in a process with an active table; elsewhere the
    blob is simply undecodable — the compile cache counts that as an
    error + miss and recompiles, so reference blobs can never corrupt a
    consumer that lacks the table.
    """
    table = _ACTIVE_TABLE
    if table is None:
        shown = digest.hex() if isinstance(digest, bytes) else digest
        raise pickle.UnpicklingError(
            f"attribute reference {shown[:12]}… requires a shared intern "
            "table, and none is active in this process"
        )
    try:
        return table.resolve(digest)
    except KeyError as exc:
        raise pickle.UnpicklingError(str(exc)) from exc


def _prefers_reference(attr: "Attribute") -> bool:
    """Would a table reference pickle smaller than the full state?

    A short reference costs ~18 pickled bytes, so trivially small scalar
    attributes (an ``IntAttr``, a short ``StringAttr``) stay inline —
    they are also cheaper to rebuild than to resolve.  Compound
    attributes (nested attributes, dictionaries, long strings or tuples)
    collapse to the reference.  Memoised per canonical instance.
    """
    cached = attr.__dict__.get("_prefer_ref")
    if cached is not None:
        return cached
    from repro.ir.core import Attribute

    budget = 16  # ≈ the pickled size of one short reference
    prefer = False
    pending: list[Any] = [attr.parameters()]
    while pending and not prefer:
        obj = pending.pop()
        if isinstance(obj, Attribute) or isinstance(obj, dict):
            prefer = True  # the reference collapses a whole subtree
        elif isinstance(obj, (tuple, list, set, frozenset)):
            pending.extend(obj)
        elif isinstance(obj, (str, bytes)):
            budget -= len(obj) + 2
            prefer = budget < 0
        elif obj is None or isinstance(obj, (int, float)):
            budget -= 3
            prefer = budget < 0
        else:
            prefer = True  # unknown payload: let the table own it
    attr.__dict__["_prefer_ref"] = prefer
    return prefer


def table_reduce(attr: "Attribute") -> tuple | None:
    """The ``(resolve_shared, (digest,))`` reduction for ``attr``, if the
    active table holds it (and the reference is actually smaller than the
    attribute's full state); ``None`` means pickle the full state."""
    table = _ACTIVE_TABLE
    if table is None:
        return None
    if not _prefers_reference(attr):
        return None
    digest = attribute_digest(attr)
    if digest not in table:
        return None
    raw = bytes.fromhex(digest)
    if table._short.get(raw[:8]) == digest:
        return (resolve_shared, (raw[:8],))  # unambiguous: short reference
    return (resolve_shared, (raw,))
