"""Flyweight uniquing (hash-consing) of IR attributes and types.

Attributes are immutable value objects, so two structurally identical
instances are interchangeable.  The interner guarantees there is at most
*one* canonical instance per structural identity in each process:
``IntegerType(32) is IntegerType(32)`` holds, equality degenerates to a
pointer comparison on the hot path and every attribute carries a
precomputed hash.  This is the same flyweight scheme MLIR/xDSL use for
their uniqued attribute/type storage.

The interner is installed through :class:`InternedAttributeMeta` — the
metaclass of :class:`repro.ir.core.Attribute` — so *every* construction
site (dialect constructors, the parser, the builder, pickle) funnels
through it without cooperation from callers.

Interning is per-process.  Pickled attributes therefore re-intern on load
(:func:`reconstruct_interned` is the ``__reduce__`` target of
``Attribute``), which keeps identity-equality sound across the
``ProcessPoolExecutor`` workers of the evaluation matrix and across
disk-cache round-trips.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.core import Attribute


class InternStats:
    """Hit/miss counters of one interner (per process)."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "unique": self.misses,
            "hit_rate": self.hit_rate,
        }

    def snapshot(self) -> tuple[int, int]:
        return (self.hits, self.misses)


class AttributeInterner:
    """Uniquing table mapping structural identity to the canonical instance.

    Keys are ``(class, hashable(parameters()))``; the table owns the
    canonical instance and its key tuple.  ``intern`` is the only entry
    point: it either returns the existing canonical instance or registers
    the candidate (stamping its precomputed ``_hash``) and returns it.
    """

    __slots__ = ("_table", "stats")

    def __init__(self) -> None:
        self._table: dict[tuple, "Attribute"] = {}
        self.stats = InternStats()

    def intern(self, attr: "Attribute") -> "Attribute":
        from repro.ir.core import Attribute

        key = (type(attr), Attribute._hashable(attr.parameters()))
        existing = self._table.get(key)
        if existing is not None:
            self.stats.hits += 1
            return existing
        self.stats.misses += 1
        # Stamp the precomputed hash before publication: every consumer of
        # the canonical instance sees an O(1) __hash__.
        attr.__dict__["_hash"] = hash(key)
        self._table[key] = attr
        return attr

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop the table (tests only — breaks identity of live attributes)."""
        self._table.clear()
        self.stats = InternStats()


#: The per-process interner every Attribute construction funnels through.
ATTRIBUTE_INTERNER = AttributeInterner()


def intern_stats() -> InternStats:
    """The process-wide interner's hit/miss counters."""
    return ATTRIBUTE_INTERNER.stats


class InternedAttributeMeta(type):
    """Metaclass routing attribute construction through the interner.

    ``Cls(...)`` builds the candidate (running validation in ``__init__``),
    then returns the canonical instance for its structural identity — the
    candidate is dropped on an intern hit.
    """

    def __call__(cls, *args: Any, **kwargs: Any) -> Any:
        instance = super().__call__(*args, **kwargs)
        return ATTRIBUTE_INTERNER.intern(instance)


def reconstruct_interned(cls: type, state: dict[str, Any]) -> "Attribute":
    """Pickle target: rebuild an attribute and re-intern it in this process.

    Bypasses ``__init__`` (the state was validated when first built) but
    never bypasses the interner, so unpickled attributes regain identity
    equality with locally-constructed ones — the invariant the
    process-parallel evaluation matrix relies on.
    """
    instance = object.__new__(cls)
    state.pop("_hash", None)  # recomputed (or inherited) at intern time
    instance.__dict__.update(state)
    return ATTRIBUTE_INTERNER.intern(instance)
