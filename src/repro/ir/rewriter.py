"""Pattern rewriting infrastructure (a small greedy driver, MLIR-style)."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.ir.builder import Builder, InsertPoint
from repro.ir.core import Block, Operation, Region, SSAValue, VerifyException


class PatternRewriter:
    """Mutation interface handed to rewrite patterns.

    Patterns must perform all IR mutation through this object so the driver
    can track whether anything changed and schedule further iterations.
    """

    def __init__(self, current_op: Operation) -> None:
        self.current_op = current_op
        self.has_changed = False
        self._erased: set[Operation] = set()

    # -- insertion ------------------------------------------------------------

    def insert_op_before(self, new_op: Operation, anchor: Operation | None = None) -> Operation:
        anchor = anchor or self.current_op
        assert anchor.parent is not None
        anchor.parent.insert_op_before(new_op, anchor)
        self.has_changed = True
        return new_op

    def insert_op_after(self, new_op: Operation, anchor: Operation | None = None) -> Operation:
        anchor = anchor or self.current_op
        assert anchor.parent is not None
        anchor.parent.insert_op_after(new_op, anchor)
        self.has_changed = True
        return new_op

    def insert_op_at_end(self, new_op: Operation, block: Block) -> Operation:
        block.add_op(new_op)
        self.has_changed = True
        return new_op

    def insert_op_at_start(self, new_op: Operation, block: Block) -> Operation:
        block.insert_op(new_op, 0)
        self.has_changed = True
        return new_op

    # -- replacement ----------------------------------------------------------

    def replace_op(
        self,
        op: Operation,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue] | None = None,
    ) -> None:
        """Replace ``op`` by ``new_ops``; uses of its results are rewritten.

        ``new_results`` defaults to the results of the last new operation.
        """
        if isinstance(new_ops, Operation):
            new_ops = [new_ops]
        assert op.parent is not None, "cannot replace a detached operation"
        block = op.parent
        index = block.index_of(op)
        for offset, new_op in enumerate(new_ops):
            block.insert_op(new_op, index + offset)
        if new_results is None:
            new_results = list(new_ops[-1].results) if new_ops else []
        if len(new_results) != len(op.results):
            raise VerifyException(
                f"replace_op: expected {len(op.results)} replacement values, "
                f"got {len(new_results)}"
            )
        for old, new in zip(op.results, new_results):
            if new is not None:
                old.replace_all_uses_with(new)
        op.erase()
        self._erased.add(op)
        self.has_changed = True

    def replace_matched_op(
        self,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue] | None = None,
    ) -> None:
        self.replace_op(self.current_op, new_ops, new_results)

    def erase_op(self, op: Operation | None = None, *, safe: bool = True) -> None:
        op = op or self.current_op
        op.erase(safe=safe)
        self._erased.add(op)
        self.has_changed = True

    def erase_matched_op(self, *, safe: bool = True) -> None:
        self.erase_op(self.current_op, safe=safe)

    def was_erased(self, op: Operation) -> bool:
        return op in self._erased

    def notify_change(self) -> None:
        self.has_changed = True


class RewritePattern:
    """Base class for rewrite patterns.

    ``match_and_rewrite`` mutates the IR through the rewriter when the
    pattern applies, and simply returns otherwise.
    """

    #: Optional: restrict the pattern to a specific operation class.
    op_type: type | None = None

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        raise NotImplementedError


class GreedyRewriteDriver:
    """Applies a set of patterns until fixpoint (bounded number of sweeps)."""

    def __init__(self, patterns: Iterable[RewritePattern], max_iterations: int = 32) -> None:
        self.patterns = list(patterns)
        self.max_iterations = max_iterations

    def rewrite_module(self, module: Operation) -> bool:
        changed_any = False
        for _ in range(self.max_iterations):
            changed = self._sweep(module)
            changed_any |= changed
            if not changed:
                break
        return changed_any

    def _sweep(self, module: Operation) -> bool:
        changed = False
        # Materialise the worklist first: patterns may mutate the tree.
        worklist = list(module.walk())
        for op in worklist:
            if op.parent is None and op is not module:
                continue  # erased or detached by an earlier pattern
            for pattern in self.patterns:
                if pattern.op_type is not None and not isinstance(op, pattern.op_type):
                    continue
                rewriter = PatternRewriter(op)
                pattern.match_and_rewrite(op, rewriter)
                if rewriter.has_changed:
                    changed = True
                if rewriter.was_erased(op) or op.parent is None and op is not module:
                    break
        return changed


def apply_patterns(module: Operation, patterns: Iterable[RewritePattern]) -> bool:
    """Convenience wrapper around :class:`GreedyRewriteDriver`."""
    return GreedyRewriteDriver(patterns).rewrite_module(module)
