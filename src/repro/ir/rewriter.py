"""Pattern rewriting infrastructure (worklist-driven, MLIR-style).

Two drivers are provided:

* :class:`WorklistRewriteDriver` (the default, also exported under its
  historical name ``GreedyRewriteDriver``) seeds a worklist with every
  operation of the module and, whenever a pattern changes the IR, re-enqueues
  only the operations that could have been affected: newly inserted
  operations, users of replacement values and the defining operations of
  erased operands.  Patterns are indexed by ``op_type`` so each operation
  only consults the patterns that can possibly match it.  The work done is
  proportional to the number of *changed* operations, not to
  ``sweeps × module size``.
* :class:`SweepRewriteDriver` is the original full-module re-walk driver,
  kept as an executable reference semantics: tests compare the IR produced
  by both drivers to guarantee the worklist engine is a pure optimisation.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.ir.core import Block, Operation, OpResult, SSAValue, VerifyException


def is_detached(op: Operation, root: Operation) -> bool:
    """Whether ``op`` is no longer attached to the IR tree rooted at ``root``.

    An operation nested inside an erased ancestor still has an intact local
    ``parent`` chain (its block and region were never touched), so checking
    ``op.parent is None`` is not enough: the chain must be walked all the way
    up to ``root``.
    """
    current: Operation | None = op
    while current is not root:
        block = current.parent
        if block is None or block.parent is None:
            return True
        current = block.parent.parent
        if current is None:
            return True
    return False


class RewriteListener:
    """Callbacks through which a :class:`PatternRewriter` reports mutations.

    The worklist driver uses these notifications to enqueue exactly the
    operations whose match status may have changed.
    """

    def notify_op_inserted(self, op: Operation) -> None:  # pragma: no cover - interface
        pass

    def notify_op_erased(
        self,
        op: Operation,
        subtree: Sequence[Operation],
        old_operands: Sequence[SSAValue],
    ) -> None:  # pragma: no cover - interface
        """``subtree`` is ``op`` plus every nested op; ``old_operands`` are
        all operands used anywhere in it, both captured before erasure."""

    def notify_values_replaced(self, new_values: Sequence[SSAValue]) -> None:  # pragma: no cover
        pass


class PatternRewriter:
    """Mutation interface handed to rewrite patterns.

    Patterns must perform all IR mutation through this object so the driver
    can track whether anything changed and schedule further work.
    """

    def __init__(self, current_op: Operation, listener: RewriteListener | None = None) -> None:
        self.current_op = current_op
        self.has_changed = False
        self.listener = listener
        self._erased: set[Operation] = set()

    # -- insertion ------------------------------------------------------------

    def insert_op_before(self, new_op: Operation, anchor: Operation | None = None) -> Operation:
        anchor = anchor or self.current_op
        assert anchor.parent is not None
        anchor.parent.insert_op_before(new_op, anchor)
        self._notify_inserted(new_op)
        self.has_changed = True
        return new_op

    def insert_op_after(self, new_op: Operation, anchor: Operation | None = None) -> Operation:
        anchor = anchor or self.current_op
        assert anchor.parent is not None
        anchor.parent.insert_op_after(new_op, anchor)
        self._notify_inserted(new_op)
        self.has_changed = True
        return new_op

    def insert_op_at_end(self, new_op: Operation, block: Block) -> Operation:
        block.add_op(new_op)
        self._notify_inserted(new_op)
        self.has_changed = True
        return new_op

    def insert_op_at_start(self, new_op: Operation, block: Block) -> Operation:
        block.insert_op(new_op, 0)
        self._notify_inserted(new_op)
        self.has_changed = True
        return new_op

    # -- replacement ----------------------------------------------------------

    def replace_op(
        self,
        op: Operation,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue] | None = None,
    ) -> None:
        """Replace ``op`` by ``new_ops``; uses of its results are rewritten.

        ``new_results`` defaults to the results of the last new operation.
        The result-count check happens *before* any mutation, so a mismatch
        leaves the IR untouched.
        """
        if isinstance(new_ops, Operation):
            new_ops = [new_ops]
        assert op.parent is not None, "cannot replace a detached operation"
        if new_results is None:
            new_results = list(new_ops[-1].results) if new_ops else []
        if len(new_results) != len(op.results):
            raise VerifyException(
                f"replace_op: expected {len(op.results)} replacement values, "
                f"got {len(new_results)}"
            )
        block = op.parent
        index = block.index_of(op)
        for offset, new_op in enumerate(new_ops):
            block.insert_op(new_op, index + offset)
        for old, new in zip(op.results, new_results):
            if new is not None:
                old.replace_all_uses_with(new)
        subtree, old_operands = self._erase_bookkeeping(op)
        op.erase()
        for new_op in new_ops:
            self._notify_inserted(new_op)
        if self.listener is not None:
            self.listener.notify_op_erased(op, subtree, old_operands)
            self.listener.notify_values_replaced([v for v in new_results if v is not None])
        self.has_changed = True

    def replace_matched_op(
        self,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue] | None = None,
    ) -> None:
        self.replace_op(self.current_op, new_ops, new_results)

    def erase_op(self, op: Operation | None = None, *, safe: bool = True) -> None:
        op = op or self.current_op
        subtree, old_operands = self._erase_bookkeeping(op)
        op.erase(safe=safe)
        if self.listener is not None:
            self.listener.notify_op_erased(op, subtree, old_operands)
        self.has_changed = True

    def erase_matched_op(self, *, safe: bool = True) -> None:
        self.erase_op(self.current_op, safe=safe)

    def was_erased(self, op: Operation) -> bool:
        return op in self._erased

    def notify_change(self) -> None:
        self.has_changed = True

    # -- internals ------------------------------------------------------------

    def _erase_bookkeeping(self, op: Operation) -> tuple[list[Operation], list[SSAValue]]:
        """One pre-erasure walk covering all erase-time bookkeeping.

        Records the whole subtree as erased (ops nested inside an erased
        ancestor are erased too, so ``was_erased`` answers correctly for
        them) and captures every operand used anywhere in the subtree —
        before ``erase`` recursively drops those references — so the driver
        can revisit defining ops that may have lost their last use,
        including values whose only users lived inside the op's regions.
        """
        subtree = list(op.walk())
        self._erased.update(subtree)
        seen: set[SSAValue] = set()
        operands: list[SSAValue] = []
        for nested in subtree:
            for operand in nested.operands:
                if operand not in seen:
                    seen.add(operand)
                    operands.append(operand)
        return subtree, operands

    def _notify_inserted(self, op: Operation) -> None:
        if self.listener is not None:
            self.listener.notify_op_inserted(op)


class RewritePattern:
    """Base class for rewrite patterns.

    ``match_and_rewrite`` mutates the IR through the rewriter when the
    pattern applies, and simply returns otherwise.
    """

    #: Optional: restrict the pattern to a specific operation class (or a
    #: tuple of classes).  Patterns without a restriction are consulted for
    #: every operation.
    op_type: type | tuple[type, ...] | None = None

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        raise NotImplementedError


class PatternApplicator:
    """Indexes patterns by operation type.

    The applicable patterns for each concrete operation class are computed
    once and cached, so an operation never iterates over patterns that
    cannot possibly match it.  Pattern order is preserved.
    """

    def __init__(self, patterns: Iterable[RewritePattern]) -> None:
        self.patterns = list(patterns)
        self._cache: dict[type, tuple[RewritePattern, ...]] = {}

    def applicable(self, op_cls: type) -> tuple[RewritePattern, ...]:
        cached = self._cache.get(op_cls)
        if cached is None:
            cached = tuple(
                p for p in self.patterns
                if p.op_type is None or issubclass(op_cls, p.op_type)
            )
            self._cache[op_cls] = cached
        return cached


class _WorklistListener(RewriteListener):
    """Forwards rewriter notifications into the driver's worklist."""

    def __init__(self, driver: "WorklistRewriteDriver") -> None:
        self.driver = driver

    def notify_op_inserted(self, op: Operation) -> None:
        for nested in op.walk():
            self.driver._enqueue(nested)

    def notify_op_erased(
        self,
        op: Operation,
        subtree: Sequence[Operation],
        old_operands: Sequence[SSAValue],
    ) -> None:
        self.driver._erased.update(subtree)
        # Defining operations of the erased operands may have lost their last
        # use (DCE-style patterns become applicable).
        for operand in old_operands:
            if isinstance(operand, OpResult):
                self.driver._enqueue(operand.op)

    def notify_values_replaced(self, new_values: Sequence[SSAValue]) -> None:
        # Users were rewritten to the replacement values; they may now fold.
        for value in new_values:
            for user in value.users:
                self.driver._enqueue(user)


class WorklistRewriteDriver:
    """Applies a set of patterns to fixpoint, revisiting only changed ops.

    ``max_iterations`` bounds the total number of successful rewrites to
    ``max_iterations × initial module size``, which guarantees termination
    even for ping-pong pattern sets that never reach a fixpoint.

    After ``rewrite_module`` returns, ``pattern_invocations`` and
    ``rewrites_applied`` hold profiling counters used by the rewriter
    micro-benchmarks to assert the O(changed) behaviour.
    """

    def __init__(self, patterns: Iterable[RewritePattern], max_iterations: int = 32) -> None:
        self.patterns = list(patterns)
        self.max_iterations = max_iterations
        self.pattern_invocations = 0
        self.rewrites_applied = 0

    def rewrite_module(self, module: Operation) -> bool:
        applicator = PatternApplicator(self.patterns)
        self._worklist: deque[Operation] = deque(module.walk())
        self._enqueued: set[Operation] = set(self._worklist)
        self._erased: set[Operation] = set()
        self.pattern_invocations = 0
        self.rewrites_applied = 0
        budget = self.max_iterations * max(len(self._worklist), 1)
        listener = _WorklistListener(self)
        changed_any = False

        while self._worklist:
            op = self._worklist.popleft()
            self._enqueued.discard(op)
            if op in self._erased or is_detached(op, module):
                continue
            changed_here = False
            for pattern in applicator.applicable(type(op)):
                self.pattern_invocations += 1
                rewriter = PatternRewriter(op, listener=listener)
                pattern.match_and_rewrite(op, rewriter)
                if not rewriter.has_changed:
                    continue
                changed_any = changed_here = True
                self.rewrites_applied += 1
                if self.rewrites_applied >= budget:
                    return changed_any
                if rewriter.was_erased(op) or is_detached(op, module):
                    changed_here = False  # nothing left to revisit
                    break
            if changed_here:
                # The op survived its own rewrite: give earlier patterns
                # another chance (the sweep driver's next sweep would), and
                # revisit its users — in-place mutations (operand/attribute
                # edits reported via notify_change) produce no structural
                # notification, yet can make user patterns applicable.
                self._enqueue(op)
                for result in op.results:
                    for user in result.users:
                        self._enqueue(user)
        return changed_any

    def _enqueue(self, op: Operation) -> None:
        if op in self._enqueued or op in self._erased:
            return
        self._worklist.append(op)
        self._enqueued.add(op)


#: Historical name: the greedy driver is now worklist-driven.
GreedyRewriteDriver = WorklistRewriteDriver


class SweepRewriteDriver:
    """The original greedy driver: full-module re-walk until fixpoint.

    Kept as the reference semantics for golden comparisons against
    :class:`WorklistRewriteDriver`; do not use it on hot paths.  The
    historical ``op.parent is None`` staleness check (which missed ops
    nested inside an erased ancestor) is replaced by the same
    :func:`is_detached` ancestor walk the worklist driver uses.
    """

    def __init__(self, patterns: Iterable[RewritePattern], max_iterations: int = 32) -> None:
        self.patterns = list(patterns)
        self.max_iterations = max_iterations

    def rewrite_module(self, module: Operation) -> bool:
        changed_any = False
        for _ in range(self.max_iterations):
            changed = self._sweep(module)
            changed_any |= changed
            if not changed:
                break
        return changed_any

    def _sweep(self, module: Operation) -> bool:
        changed = False
        # Materialise the worklist first: patterns may mutate the tree.
        worklist = list(module.walk())
        for op in worklist:
            if op is not module and is_detached(op, module):
                continue  # erased or detached by an earlier pattern
            for pattern in self.patterns:
                if pattern.op_type is not None and not isinstance(op, pattern.op_type):
                    continue
                rewriter = PatternRewriter(op)
                pattern.match_and_rewrite(op, rewriter)
                if rewriter.has_changed:
                    changed = True
                if rewriter.was_erased(op) or is_detached(op, module):
                    break
        return changed


def apply_patterns(module: Operation, patterns: Iterable[RewritePattern]) -> bool:
    """Convenience wrapper around :class:`WorklistRewriteDriver`."""
    return WorklistRewriteDriver(patterns).rewrite_module(module)
