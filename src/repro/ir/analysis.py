"""Cached dataflow analyses keyed on module fingerprints.

The :class:`AnalysisManager` mirrors MLIR's analysis manager in miniature:
analyses are registered by name, computed on demand, and cached under
``(analysis name, module_hash(module))``.  Because the PR-3 fingerprints
are invalidated incrementally on every IR mutation, a cached analysis
survives across passes exactly as long as the module is untouched — the
pass manager's before/after verification collapses to one real run per
distinct module state, and an ablation sweep re-linting an unchanged
kernel pays nothing.

Hit/miss counters are kept per analysis (:class:`AnalysisStats`) and
surfaced by ``shmls-compile --timing``.

Built-in analyses
-----------------

``verify``
    All structural findings (:func:`~repro.ir.verifier.verify_module_diagnostics`).
``def-use``
    Unused op results and unused function entry arguments (liveness at the
    def-use granularity the lint rules need).
``access-bounds``
    Every ``stencil.access`` offset checked against the accessed field's
    ``FieldType`` bounds and the consuming store's iteration domain.
``stencil-deps``
    Inter-stencil dependency reachability (transitive closure over the
    stage dependency graph of ``stencil_analysis``).

The stencil analyses import :mod:`repro.transforms` lazily so the IR
layer stays import-clean.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar

from repro.ir.core import BlockArgument, Operation, OpResult
from repro.ir.hashing import module_hash


@dataclass
class AnalysisStats:
    """Per-analysis cache hit/miss counters."""

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)

    def record_hit(self, name: str) -> None:
        self.hits[name] = self.hits.get(name, 0) + 1

    def record_miss(self, name: str) -> None:
        self.misses[name] = self.misses.get(name, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def as_dict(self) -> dict[str, Any]:
        return {"hits": dict(self.hits), "misses": dict(self.misses)}

    def summary_lines(self) -> list[str]:
        lines: list[str] = []
        for name in sorted(set(self.hits) | set(self.misses)):
            hits = self.hits.get(name, 0)
            misses = self.misses.get(name, 0)
            lines.append(f"analysis {name}: {hits} hits, {misses} misses")
        return lines


class AnalysisManager:
    """On-demand, fingerprint-keyed cache of module analyses.

    Lives in the :class:`~repro.ir.passes.PassContext` of a pipeline run,
    so every pass (and any lint rule driven over the same context) shares
    one cache.
    """

    _registry: ClassVar[dict[str, Callable[[Operation], Any]]] = {}

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = max_entries
        self._cache: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self.stats = AnalysisStats()

    # -- registry ---------------------------------------------------------------

    @classmethod
    def register(cls, name: str) -> Callable[[Callable[[Operation], Any]], Any]:
        """Register an analysis function under ``name`` (decorator form)."""

        def decorator(fn: Callable[[Operation], Any]) -> Callable[[Operation], Any]:
            cls._registry[name] = fn
            return fn

        return decorator

    @classmethod
    def registered(cls) -> list[str]:
        return sorted(cls._registry)

    # -- lookup -----------------------------------------------------------------

    def get(self, name: str, module: Operation) -> Any:
        """The ``name`` analysis of ``module``, computed or cached."""
        fn = self._registry.get(name)
        if fn is None:
            raise KeyError(
                f"unknown analysis '{name}' (registered: {', '.join(self.registered())})"
            )
        key = (name, module_hash(module))
        if key in self._cache:
            self._cache.move_to_end(key)
            self.stats.record_hit(name)
            return self._cache[key]
        self.stats.record_miss(name)
        value = fn(module)
        self._cache[key] = value
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return value

    def __len__(self) -> int:
        return len(self._cache)


# ---------------------------------------------------------------------------
# Built-in analyses
# ---------------------------------------------------------------------------


@AnalysisManager.register("verify")
def _verify_analysis(module: Operation) -> tuple:
    from repro.ir.verifier import verify_module_diagnostics

    return tuple(verify_module_diagnostics(module))


@dataclass
class DefUseAnalysis:
    """Liveness at the def-use granularity: values defined but never used."""

    num_values: int
    num_uses: int
    unused_results: tuple[OpResult, ...]
    unused_args: tuple[BlockArgument, ...]


@AnalysisManager.register("def-use")
def _def_use_analysis(module: Operation) -> DefUseAnalysis:
    from repro.dialects.func import FuncOp

    num_values = 0
    num_uses = 0
    unused_results: list[OpResult] = []
    unused_args: list[BlockArgument] = []
    for op in module.walk():
        for result in op.results:
            num_values += 1
            uses = len(result.users)
            num_uses += uses
            if uses == 0:
                unused_results.append(result)
        if isinstance(op, FuncOp) and not op.is_declaration:
            for arg in op.entry_block.args:
                num_values += 1
                uses = len(arg.users)
                num_uses += uses
                if uses == 0:
                    unused_args.append(arg)
    return DefUseAnalysis(
        num_values=num_values,
        num_uses=num_uses,
        unused_results=tuple(unused_results),
        unused_args=tuple(unused_args),
    )


@dataclass
class AccessRecord:
    """One ``stencil.access`` checked against field bounds.

    ``access_lower``/``access_upper`` are the store iteration domain
    shifted by the access offset; the access is in bounds when that box
    sits inside ``field_lower``/``field_upper`` on every axis.
    """

    access_op: Operation
    apply_op: Operation
    field_name: str
    offset: tuple[int, ...]
    access_lower: tuple[int, ...]
    access_upper: tuple[int, ...]
    field_lower: tuple[int, ...]
    field_upper: tuple[int, ...]

    @property
    def out_of_bounds_axes(self) -> tuple[int, ...]:
        return tuple(
            axis
            for axis in range(len(self.offset))
            if self.access_lower[axis] < self.field_lower[axis]
            or self.access_upper[axis] > self.field_upper[axis]
        )

    @property
    def in_bounds(self) -> bool:
        return not self.out_of_bounds_axes


@dataclass
class AccessBoundsAnalysis:
    """All stencil accesses of a module, bounds-checked."""

    records: tuple[AccessRecord, ...]

    @property
    def violations(self) -> tuple[AccessRecord, ...]:
        return tuple(r for r in self.records if not r.in_bounds)


def _field_type_of(value: Any) -> Any:
    """Follow load/cast chains from an apply operand to its ``FieldType``."""
    from repro.dialects import stencil

    current = value
    for _ in range(32):
        current_type = current.type
        if isinstance(current_type, stencil.FieldType):
            return current_type
        if isinstance(current, OpResult) and isinstance(
            current.op, (stencil.ExternalLoadOp, stencil.LoadOp, stencil.CastOp)
        ):
            current = current.op.operands[0]
            continue
        return None
    return None


@AnalysisManager.register("access-bounds")
def _access_bounds_analysis(module: Operation) -> AccessBoundsAnalysis:
    from repro.dialects import stencil
    from repro.transforms.stencil_analysis import _arg_name, _trace_to_argument

    stores = list(module.walk_type(stencil.StoreOp))
    records: list[AccessRecord] = []
    for apply_op in module.walk_type(stencil.ApplyOp):
        bounds = None
        for store in stores:
            if any(store.temp is result for result in apply_op.results):
                bounds = (tuple(store.lower_bound), tuple(store.upper_bound))
                break
        if bounds is None:
            continue  # result never stored: the dead-field lint covers it
        store_lower, store_upper = bounds
        for access in apply_op.walk_type(stencil.AccessOp):
            temp = access.temp
            if not isinstance(temp, BlockArgument) or temp.block is not apply_op.body:
                continue
            operand = apply_op.operands[temp.index]
            field_type = _field_type_of(operand)
            if field_type is None:
                continue
            arg = _trace_to_argument(operand)
            name = _arg_name(arg, arg.index) if arg is not None else "<temp>"
            offset = tuple(access.offset)
            rank = min(len(offset), len(store_lower), len(field_type.bounds))
            records.append(
                AccessRecord(
                    access_op=access,
                    apply_op=apply_op,
                    field_name=name,
                    offset=offset,
                    access_lower=tuple(
                        store_lower[i] + offset[i] for i in range(rank)
                    ),
                    access_upper=tuple(
                        store_upper[i] + offset[i] for i in range(rank)
                    ),
                    field_lower=tuple(lb for lb, _ in field_type.bounds[:rank]),
                    field_upper=tuple(ub for _, ub in field_type.bounds[:rank]),
                )
            )
    return AccessBoundsAnalysis(records=tuple(records))


@dataclass
class StencilDependencyAnalysis:
    """Transitive inter-stencil dependency reachability."""

    func_name: str
    depends_on: tuple[tuple[int, ...], ...]
    reachable: tuple[frozenset[int], ...]
    waves: tuple[tuple[int, ...], ...]

    def reaches(self, earlier: int, later: int) -> bool:
        """Whether stage ``later`` transitively depends on stage ``earlier``."""
        return earlier in self.reachable[later]


@AnalysisManager.register("stencil-kernel")
def _stencil_kernel_analysis(module: Operation) -> Any:
    """The full :class:`StencilKernelAnalysis`, or None for non-stencil modules."""
    from repro.transforms.stencil_analysis import AnalysisError, analyse_module

    try:
        return analyse_module(module)
    except AnalysisError:
        return None


@AnalysisManager.register("stencil-deps")
def _stencil_deps_analysis(module: Operation) -> StencilDependencyAnalysis | None:
    from repro.transforms.stencil_analysis import AnalysisError, analyse_module

    try:
        analysis = analyse_module(module)
    except AnalysisError:
        return None
    reachable: list[frozenset[int]] = []
    for stage in analysis.stages:
        reached: set[int] = set()
        frontier = list(stage.depends_on)
        while frontier:
            dep = frontier.pop()
            if dep in reached:
                continue
            reached.add(dep)
            frontier.extend(analysis.stages[dep].depends_on)
        reachable.append(frozenset(reached))
    return StencilDependencyAnalysis(
        func_name=analysis.func_name,
        depends_on=tuple(tuple(s.depends_on) for s in analysis.stages),
        reachable=tuple(reachable),
        waves=tuple(tuple(w) for w in analysis.dependency_waves()),
    )
