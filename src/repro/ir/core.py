"""Core SSA IR data structures.

The design follows MLIR/xDSL: a *module* is an operation containing a
region, a region contains blocks, blocks contain operations, operations
use SSA values (block arguments or results of other operations) and may
themselves contain nested regions.  Attributes are immutable compile-time
data attached to operations; types are attributes carried by SSA values.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.ir.interning import (
    InternedAttributeMeta,
    reconstruct_interned,
    table_reduce,
)


class VerifyException(Exception):
    """Raised when IR fails structural or semantic verification."""


# ---------------------------------------------------------------------------
# Attributes
# ---------------------------------------------------------------------------


class Attribute(metaclass=InternedAttributeMeta):
    """Base class for all attributes (and therefore all types).

    Attributes are immutable value objects and are *hash-consed*: every
    construction funnels through the per-process interner (see
    :mod:`repro.ir.interning`), so structurally equal attributes are the
    same object.  Equality is therefore an identity check on the hot path
    (with a structural fallback for robustness) and ``__hash__`` returns
    the hash precomputed at intern time.
    """

    name: str = "attribute"

    def parameters(self) -> tuple:
        """Return the tuple of parameters defining this attribute's identity.

        The default derives it from the instance dictionary; underscore
        fields (e.g. the interner's precomputed ``_hash``) are excluded.
        Subclasses on hot paths override this with an explicit tuple.
        """
        return tuple(
            sorted(
                (kv for kv in self.__dict__.items() if not kv[0].startswith("_")),
                key=lambda kv: kv[0],
            )
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(self) is type(other) and self.parameters() == other.parameters()

    def __hash__(self) -> int:
        # Interned instances carry a precomputed hash; candidates that are
        # hashed before interning (rare) fall back to the structural hash.
        cached = self.__dict__.get("_hash")
        if cached is not None:
            return cached
        return hash((type(self), self._hashable(self.parameters())))

    def __reduce__(self) -> tuple:
        # With a shared intern table active, pickle shrinks to a digest
        # reference the reader resolves against the mapped table.
        shared = table_reduce(self)
        if shared is not None:
            return shared
        # Re-intern on unpickle: the interner is per-process, so identity
        # equality must be re-established in pool workers / cache readers.
        state = {
            k: v
            for k, v in self.__dict__.items()
            if k not in ("_hash", "_digest", "_prefer_ref")
        }
        return (reconstruct_interned, (type(self), state))

    @staticmethod
    def _hashable(obj: Any) -> Any:
        if isinstance(obj, Attribute):
            return obj
        if isinstance(obj, (list, tuple)):
            return tuple(Attribute._hashable(o) for o in obj)
        if isinstance(obj, dict):
            return tuple(sorted((k, Attribute._hashable(v)) for k, v in obj.items()))
        return obj

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        params = ", ".join(
            f"{k}={v!r}" for k, v in self.__dict__.items() if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"


class TypeAttribute(Attribute):
    """Marker base class: attributes usable as the type of an SSA value."""

    name = "type"


# ---------------------------------------------------------------------------
# Traits
# ---------------------------------------------------------------------------


class OpTrait:
    """Marker describing a structural property of an operation class."""


class IsTerminator(OpTrait):
    """The operation terminates its parent block."""


class Pure(OpTrait):
    """The operation has no side effects and may be CSE'd / DCE'd."""


class HasCanonicalizer(OpTrait):
    """The operation provides folding rules used by canonicalisation."""


# ---------------------------------------------------------------------------
# SSA values
# ---------------------------------------------------------------------------


class SSAValue:
    """A value in SSA form: either an operation result or a block argument."""

    __slots__ = ("type", "uses", "name_hint")

    def __init__(self, type: Attribute, name_hint: str | None = None) -> None:
        self.type = type
        self.uses: list[Use] = []
        self.name_hint = name_hint

    # -- use/def chain ------------------------------------------------------

    def add_use(self, use: "Use") -> None:
        self.uses.append(use)

    def remove_use(self, use: "Use") -> None:
        self.uses.remove(use)

    def replace_all_uses_with(self, new_value: "SSAValue") -> None:
        """Rewrite every user of ``self`` to use ``new_value`` instead."""
        if new_value is self:
            return
        for use in list(self.uses):
            use.operation.replace_operand(use.index, new_value)

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    @property
    def users(self) -> list["Operation"]:
        return [u.operation for u in self.uses]

    def owner(self) -> "Operation | Block":
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name_hint or ''}: {self.type!r}>"


@dataclass(frozen=True)
class Use:
    """A single (operation, operand-index) use of an SSA value."""

    operation: "Operation"
    index: int

    def __hash__(self) -> int:
        return hash((id(self.operation), self.index))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Use)
            and other.operation is self.operation
            and other.index == self.index
        )


class OpResult(SSAValue):
    """SSA value produced by an operation."""

    __slots__ = ("op", "index")

    def __init__(self, type: Attribute, op: "Operation", index: int) -> None:
        super().__init__(type)
        self.op = op
        self.index = index

    def owner(self) -> "Operation":
        return self.op


class BlockArgument(SSAValue):
    """SSA value introduced as a block argument."""

    __slots__ = ("block", "index")

    def __init__(self, type: Attribute, block: "Block", index: int) -> None:
        super().__init__(type)
        self.block = block
        self.index = index

    def owner(self) -> "Block":
        return self.block


# ---------------------------------------------------------------------------
# IR nodes
# ---------------------------------------------------------------------------


class IRNode:
    """Common base for operations, blocks and regions."""

    def parent_node(self) -> "IRNode | None":
        raise NotImplementedError


class _AttributeDict(dict):
    """Operation attribute dictionary that notifies its owner on mutation.

    In-place edits (``op.attributes["x"] = ...``, ``del``, ``pop``,
    ``update``, ...) are legitimate IR mutations, so they must invalidate
    the owner's cached structural fingerprint like every other mutation
    point does.
    """

    __slots__ = ("_owner",)

    def _touch(self) -> None:
        owner = getattr(self, "_owner", None)  # unset while unpickling
        if owner is not None:
            owner.invalidate_fingerprint()

    def __setitem__(self, key: Any, value: Any) -> None:
        super().__setitem__(key, value)
        self._touch()

    def __delitem__(self, key: Any) -> None:
        super().__delitem__(key)
        self._touch()

    def update(self, *args: Any, **kwargs: Any) -> None:
        super().update(*args, **kwargs)
        self._touch()

    def __ior__(self, other: Any) -> "_AttributeDict":
        result = super().__ior__(other)
        self._touch()
        return result

    def pop(self, *args: Any) -> Any:
        result = super().pop(*args)
        self._touch()
        return result

    def popitem(self) -> tuple[Any, Any]:
        result = super().popitem()
        self._touch()
        return result

    def setdefault(self, key: Any, default: Any = None) -> Any:
        had = key in self
        result = super().setdefault(key, default)
        if not had:
            self._touch()
        return result

    def clear(self) -> None:
        super().clear()
        self._touch()


_op_counter = itertools.count()


class Operation(IRNode):
    """A generic IR operation.

    Subclasses set ``name`` and ``traits`` and typically provide a
    ``build`` classmethod plus named accessors for operands/results.
    """

    name: str = "unregistered.op"
    traits: frozenset = frozenset()

    def __init__(
        self,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[Attribute] = (),
        attributes: dict[str, Attribute] | None = None,
        regions: Sequence["Region"] | None = None,
    ) -> None:
        #: Cached structural fingerprint: ``(digest, free values)`` computed
        #: bottom-up by :mod:`repro.ir.hashing`, or ``None`` when stale.
        self._fingerprint: "tuple[str, tuple[SSAValue, ...]] | None" = None
        self._operands: list[SSAValue] = []
        self.results: list[OpResult] = [
            OpResult(t, self, i) for i, t in enumerate(result_types)
        ]
        self.attributes = attributes or {}
        self.regions: list[Region] = []
        self.parent: Block | None = None
        self._uid = next(_op_counter)
        for operand in operands:
            self._append_operand(operand)
        for region in regions or []:
            self.add_region(region)

    # -- attributes ---------------------------------------------------------

    @property
    def attributes(self) -> dict[str, Attribute]:
        return self._attributes

    @attributes.setter
    def attributes(self, value: dict[str, Attribute]) -> None:
        wrapped = _AttributeDict(value)
        wrapped._owner = self
        self._attributes = wrapped
        self.invalidate_fingerprint()

    # -- fingerprint cache --------------------------------------------------

    def invalidate_fingerprint(self) -> None:
        """Drop this op's cached structural fingerprint and its ancestors'.

        Invariant: an op with a valid cache implies every attached
        descendant's cache is valid too (the fingerprint computation fills
        them bottom-up), and an op with no cache implies its ancestors have
        none either (invalidation always walks to the root) — so the walk
        can stop early at the first already-invalid ancestor.
        """
        op: Operation | None = self
        while op is not None and op._fingerprint is not None:
            op._fingerprint = None
            op = op.parent_op()

    # -- operands -----------------------------------------------------------

    @property
    def operands(self) -> tuple[SSAValue, ...]:
        return tuple(self._operands)

    def _append_operand(self, value: SSAValue) -> None:
        if not isinstance(value, SSAValue):
            raise TypeError(
                f"operand of {self.name} must be an SSAValue, got {type(value).__name__}"
            )
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(Use(self, index))

    def replace_operand(self, index: int, new_value: SSAValue) -> None:
        old = self._operands[index]
        old.remove_use(Use(self, index))
        self._operands[index] = new_value
        new_value.add_use(Use(self, index))
        self.invalidate_fingerprint()

    def set_operands(self, new_operands: Sequence[SSAValue]) -> None:
        for i, operand in enumerate(self._operands):
            operand.remove_use(Use(self, i))
        self._operands = []
        for operand in new_operands:
            self._append_operand(operand)
        self.invalidate_fingerprint()

    # -- regions ------------------------------------------------------------

    def add_region(self, region: "Region") -> "Region":
        region.parent = self
        self.regions.append(region)
        self.invalidate_fingerprint()
        return region

    @property
    def has_regions(self) -> bool:
        return bool(self.regions)

    # -- traits -------------------------------------------------------------

    @classmethod
    def has_trait(cls, trait: type) -> bool:
        return any(issubclass(t, trait) if isinstance(t, type) else isinstance(t, trait)
                   for t in cls.traits)

    @property
    def is_terminator(self) -> bool:
        return self.has_trait(IsTerminator)

    @property
    def is_pure(self) -> bool:
        return self.has_trait(Pure)

    # -- structure ----------------------------------------------------------

    def parent_node(self) -> "Block | None":
        return self.parent

    def parent_op(self) -> "Operation | None":
        if self.parent is not None and self.parent.parent is not None:
            return self.parent.parent.parent
        return None

    def parent_region(self) -> "Region | None":
        return self.parent.parent if self.parent is not None else None

    def detach(self) -> "Operation":
        """Remove this operation from its parent block without erasing it."""
        if self.parent is not None:
            self.parent._remove_op(self)
            self.parent = None
        return self

    def erase(self, *, safe: bool = True) -> None:
        """Detach and drop this operation.

        With ``safe=True`` (the default), erasing an operation whose results
        still have uses raises :class:`VerifyException`.
        """
        if safe:
            for result in self.results:
                if result.num_uses:
                    raise VerifyException(
                        f"cannot erase {self.name}: result still has "
                        f"{result.num_uses} use(s)"
                    )
        self.detach()
        self.drop_all_references()

    def drop_all_references(self) -> None:
        # The operand list is about to change; if this op is still attached
        # (callers may drop references without erasing), the ancestor spine's
        # cached fingerprints go stale too.
        self.invalidate_fingerprint()
        for i, operand in enumerate(self._operands):
            operand.remove_use(Use(self, i))
        self._operands = []
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    op.drop_all_references()

    def walk(self, *, reverse: bool = False) -> Iterator["Operation"]:
        """Yield this operation and all nested operations, pre-order."""
        yield self
        regions = reversed(self.regions) if reverse else self.regions
        for region in regions:
            blocks = reversed(region.blocks) if reverse else region.blocks
            for block in blocks:
                ops = reversed(list(block.ops)) if reverse else list(block.ops)
                for op in ops:
                    yield from op.walk(reverse=reverse)

    def walk_type(self, op_type: type) -> Iterator["Operation"]:
        for op in self.walk():
            if isinstance(op, op_type):
                yield op

    # -- convenience --------------------------------------------------------

    @property
    def result(self) -> OpResult:
        if len(self.results) != 1:
            raise ValueError(f"{self.name} has {len(self.results)} results, expected 1")
        return self.results[0]

    def get_attr(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def clone(self, value_map: dict[SSAValue, SSAValue] | None = None) -> "Operation":
        """Deep-copy this operation (and nested regions), remapping operands.

        ``value_map`` maps old SSA values to their replacements; cloned
        results and block arguments are added to the map so nested uses are
        remapped consistently.
        """
        value_map = value_map if value_map is not None else {}
        new_operands = [value_map.get(o, o) for o in self._operands]
        cloned = object.__new__(type(self))
        Operation.__init__(
            cloned,
            operands=new_operands,
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
        )
        for old_res, new_res in zip(self.results, cloned.results):
            new_res.name_hint = old_res.name_hint
            value_map[old_res] = new_res
        for region in self.regions:
            cloned.add_region(region.clone(value_map))
        return cloned

    def verify_(self) -> None:
        """Hook for per-operation verification; subclasses may override."""

    def __hash__(self) -> int:
        return self._uid

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name} #{self._uid}>"


class Block(IRNode):
    """A straight-line sequence of operations with typed block arguments."""

    def __init__(self, arg_types: Sequence[Attribute] = ()) -> None:
        self.args: list[BlockArgument] = [
            BlockArgument(t, self, i) for i, t in enumerate(arg_types)
        ]
        self._ops: list[Operation] = []
        self.parent: Region | None = None

    # -- arguments ----------------------------------------------------------

    def add_arg(self, type: Attribute, name_hint: str | None = None) -> BlockArgument:
        arg = BlockArgument(type, self, len(self.args))
        arg.name_hint = name_hint
        self.args.append(arg)
        self._invalidate_owner_fingerprint()
        return arg

    def erase_arg(self, arg: BlockArgument) -> None:
        if arg.num_uses:
            raise VerifyException("cannot erase a block argument that still has uses")
        self.args.remove(arg)
        for i, a in enumerate(self.args):
            a.index = i
        self._invalidate_owner_fingerprint()

    def _invalidate_owner_fingerprint(self) -> None:
        """A structural change in this block invalidates the owning op chain."""
        owner = self.parent_op()
        if owner is not None:
            owner.invalidate_fingerprint()

    # -- operations ---------------------------------------------------------

    @property
    def ops(self) -> tuple[Operation, ...]:
        return tuple(self._ops)

    @property
    def first_op(self) -> Operation | None:
        return self._ops[0] if self._ops else None

    @property
    def last_op(self) -> Operation | None:
        return self._ops[-1] if self._ops else None

    @property
    def terminator(self) -> Operation | None:
        last = self.last_op
        return last if last is not None and last.is_terminator else None

    def add_op(self, op: Operation) -> Operation:
        return self.insert_op(op, len(self._ops))

    def add_ops(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.add_op(op)

    def insert_op(self, op: Operation, index: int) -> Operation:
        if op.parent is not None:
            raise VerifyException("operation already attached to a block")
        self._ops.insert(index, op)
        op.parent = self
        self._invalidate_owner_fingerprint()
        return op

    def insert_op_before(self, op: Operation, anchor: Operation) -> Operation:
        return self.insert_op(op, self._ops.index(anchor))

    def insert_op_after(self, op: Operation, anchor: Operation) -> Operation:
        return self.insert_op(op, self._ops.index(anchor) + 1)

    def index_of(self, op: Operation) -> int:
        return self._ops.index(op)

    def _remove_op(self, op: Operation) -> None:
        self._ops.remove(op)
        self._invalidate_owner_fingerprint()

    def walk(self) -> Iterator[Operation]:
        for op in list(self._ops):
            yield from op.walk()

    def parent_node(self) -> "Region | None":
        return self.parent

    def parent_op(self) -> Operation | None:
        return self.parent.parent if self.parent is not None else None

    def clone(self, value_map: dict[SSAValue, SSAValue] | None = None) -> "Block":
        value_map = value_map if value_map is not None else {}
        new_block = Block([a.type for a in self.args])
        for old_arg, new_arg in zip(self.args, new_block.args):
            new_arg.name_hint = old_arg.name_hint
            value_map[old_arg] = new_arg
        for op in self._ops:
            new_block.add_op(op.clone(value_map))
        return new_block

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Block args={len(self.args)} ops={len(self._ops)}>"


class Region(IRNode):
    """A list of blocks owned by an operation."""

    def __init__(self, blocks: Sequence[Block] | None = None) -> None:
        self.blocks: list[Block] = []
        self.parent: Operation | None = None
        for block in blocks or []:
            self.add_block(block)

    @classmethod
    def from_ops(cls, ops: Sequence[Operation], arg_types: Sequence[Attribute] = ()) -> "Region":
        block = Block(arg_types)
        block.add_ops(ops)
        return cls([block])

    @property
    def block(self) -> Block:
        if len(self.blocks) != 1:
            raise ValueError(f"region has {len(self.blocks)} blocks, expected 1")
        return self.blocks[0]

    @property
    def first_block(self) -> Block | None:
        return self.blocks[0] if self.blocks else None

    def add_block(self, block: Block) -> Block:
        block.parent = self
        self.blocks.append(block)
        if self.parent is not None:
            self.parent.invalidate_fingerprint()
        return block

    def walk(self) -> Iterator[Operation]:
        for block in self.blocks:
            yield from block.walk()

    def parent_node(self) -> Operation | None:
        return self.parent

    def clone(self, value_map: dict[SSAValue, SSAValue] | None = None) -> "Region":
        value_map = value_map if value_map is not None else {}
        return Region([b.clone(value_map) for b in self.blocks])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Region blocks={len(self.blocks)}>"
