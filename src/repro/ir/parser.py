"""Parser for the generic textual IR form produced by :mod:`repro.ir.printer`.

Supports round-tripping modules through text, which is how xDSL/MLIR
exchange IR between tools: every operation is printed in the generic form

    %0 = "dialect.op"(%a, %b) {attr = value} : (t1, t2) -> (t3) ({ ... })

The parser rebuilds operations as their registered Python classes (falling
back to a :class:`GenericOperation` for unknown names) so that re-verified,
re-interpreted or re-lowered modules behave identically to the originals.
Every attribute/type the parser constructs is interned through the
flyweight table of :mod:`repro.ir.interning` (via the ``Attribute``
metaclass), so a parsed module shares canonical attribute instances with
the rest of the process — parse→hash round-trips stay cheap.
"""

from __future__ import annotations

import re
from typing import Any

from repro.ir.core import Attribute, Block, Operation, Region, SSAValue
from repro.ir.attributes import (
    ArrayAttr,
    BoolAttr,
    DenseIntArrayAttr,
    FloatAttr,
    IntAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
)
from repro.ir.types import (
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    LLVMArrayType,
    LLVMPointerType,
    LLVMStructType,
    LLVMVoidType,
    MemRefType,
    NoneType,
    TensorType,
    VectorType,
)


class ParseError(Exception):
    """Raised when the textual IR cannot be parsed."""


class GenericOperation(Operation):
    """Fallback operation used for op names with no registered class."""

    name = "unregistered.generic"


# ---------------------------------------------------------------------------
# Operation registry
# ---------------------------------------------------------------------------


def _build_registry() -> dict[str, type[Operation]]:
    """Map op names to classes by importing every dialect module."""
    from repro.dialects import arith, func, hls, llvm, math, memref, scf, stencil
    from repro.dialects import builtin

    registry: dict[str, type[Operation]] = {}
    for module in (builtin, arith, math, func, scf, memref, llvm, stencil, hls):
        for value in vars(module).values():
            if isinstance(value, type) and issubclass(value, Operation) and value is not Operation:
                if value.name != Operation.name:
                    registry[value.name] = value
    return registry


_REGISTRY: dict[str, type[Operation]] | None = None


def op_registry() -> dict[str, type[Operation]]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def _construct_op(
    name: str,
    operands: list[SSAValue],
    result_types: list[Attribute],
    attributes: dict[str, Attribute],
    regions: list[Region],
) -> Operation:
    """Instantiate the registered class without calling its specific __init__."""
    cls = op_registry().get(name)
    if cls is None:
        op = GenericOperation(operands, result_types, attributes, regions)
        op.attributes["__unregistered_name__"] = StringAttr(name)
        return op
    op = object.__new__(cls)
    Operation.__init__(op, operands=operands, result_types=result_types,
                       attributes=attributes, regions=regions)
    return op


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<string>"(?:[^"\\]|\\.)*")
      | (?P<number>-?\d+\.\d*(?:[eE][+-]?\d+)?|-?\d+(?:[eE][+-]?\d+)?)
      | (?P<percent>%[A-Za-z_0-9.\-]+)
      | (?P<caret>\^[A-Za-z_0-9]+)
      | (?P<at>@[A-Za-z_0-9.\-]+)
      | (?P<exclaim>![A-Za-z_0-9.]+)
      | (?P<hash>\#[A-Za-z_0-9.]+)
      | (?P<ident>[A-Za-z_][A-Za-z_0-9.]*)
      | (?P<punct>->|[()\[\]{}<>=:,*?])
    )""",
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remaining = text[position:].strip()
            if not remaining:
                break
            raise ParseError(f"unexpected character {text[position]!r} at offset {position}")
        position = match.end()
        for kind in ("string", "number", "percent", "caret", "at", "exclaim", "hash", "ident", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class Parser:
    """Recursive descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.position = 0
        self.values: dict[str, SSAValue] = {}

    # -- token helpers ----------------------------------------------------------

    def _peek(self) -> tuple[str, str] | None:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.position += 1
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token[1] == text:
            self.position += 1
            return True
        return False

    def _expect(self, text: str) -> None:
        token = self._next()
        if token[1] != text:
            raise ParseError(f"expected '{text}', found '{token[1]}'")

    # -- types -------------------------------------------------------------------

    def parse_type(self) -> Attribute:
        kind, text = self._next()
        if kind == "ident":
            return self._parse_named_type(text)
        if kind == "exclaim":
            return self._parse_dialect_type(text)
        if text == "(":
            # Function type: (t1, t2) -> (t3)
            inputs = []
            if not self._accept(")"):
                inputs.append(self.parse_type())
                while self._accept(","):
                    inputs.append(self.parse_type())
                self._expect(")")
            self._expect("->")
            outputs = []
            self._expect("(")
            if not self._accept(")"):
                outputs.append(self.parse_type())
                while self._accept(","):
                    outputs.append(self.parse_type())
                self._expect(")")
            return FunctionType(inputs, outputs)
        raise ParseError(f"cannot parse a type starting with '{text}'")

    def _parse_named_type(self, text: str) -> Attribute:
        if text == "index":
            return IndexType()
        if text == "none":
            return NoneType()
        if re.fullmatch(r"i\d+", text):
            return IntegerType(int(text[1:]))
        if re.fullmatch(r"f\d+", text):
            return FloatType(int(text[1:]))
        if text in ("memref", "tensor", "vector"):
            return self._parse_shaped_type(text)
        raise ParseError(f"unknown type '{text}'")

    def _parse_shaped_type(self, kind: str) -> Attribute:
        self._expect("<")
        dims, element = self._parse_dims_and_element()
        # Optional memory space suffix, e.g. memref<4xf64, bram>.
        space = ""
        if self._accept(","):
            space = self._next()[1]
        self._expect(">")
        if kind == "memref":
            return MemRefType(dims, element, space)
        if kind == "tensor":
            return TensorType(dims, element)
        return VectorType(dims, element)

    def _parse_dims_and_element(self) -> tuple[list[int], Attribute]:
        """Parse '4x5x6xf64', '?x?xf64', ... — dims are separated by 'x', but
        the tokenizer may fold separators into identifiers like 'xf64'."""
        dims: list[int] = []
        element: Attribute | None = None
        while element is None:
            token_kind, text = self._next()
            if text == "?":
                dims.append(-1)
                continue
            if token_kind == "number" and "." not in text:
                dims.append(int(text))
                continue
            if token_kind == "ident":
                if text == "x":
                    continue
                parsed_dims, element = self._split_shape_ident(text)
                dims.extend(parsed_dims)
                continue
            raise ParseError(f"unexpected '{text}' in shaped type")
        return dims, element

    def _split_shape_ident(self, text: str) -> tuple[list[int], Attribute]:
        """Split '4x5x6xf64' / 'f64' style identifiers into dims + element type."""
        parts = text.split("x")
        dims: list[int] = []
        element_text = ""
        for index, part in enumerate(parts):
            if re.fullmatch(r"\d+", part):
                dims.append(int(part))
            elif part == "?":
                dims.append(-1)
            elif part == "" and index < len(parts) - 1:
                continue
            else:
                element_text = "x".join(parts[index:])
                break
        if not element_text:
            raise ParseError(f"could not find an element type in '{text}'")
        return dims, self._parse_named_type(element_text)

    def _parse_dialect_type(self, text: str) -> Attribute:
        name = text[1:]
        if name == "llvm.ptr":
            if self._accept("<"):
                pointee = self.parse_type()
                self._expect(">")
                return LLVMPointerType(pointee)
            return LLVMPointerType()
        if name == "llvm.void":
            return LLVMVoidType()
        if name == "llvm.struct":
            self._expect("<")
            self._expect("(")
            elements = []
            if not self._accept(")"):
                elements.append(self.parse_type())
                while self._accept(","):
                    elements.append(self.parse_type())
                self._expect(")")
            self._expect(">")
            return LLVMStructType(elements)
        if name == "llvm.array":
            self._expect("<")
            count = int(self._next()[1])
            # The printed form is "<8 x f64>"; the 'x' may appear fused.
            kind, text = self._next()
            if text == "x":
                element = self.parse_type()
            else:
                element = self._parse_named_type(text.lstrip("x")) if text.startswith("x") else self._parse_named_type(text)
            self._expect(">")
            return LLVMArrayType(count, element)
        if name == "hls.stream":
            from repro.dialects.hls import StreamType

            self._expect("<")
            element = self.parse_type()
            self._expect(">")
            return StreamType(element)
        if name == "stencil.field":
            from repro.dialects.stencil import FieldType

            self._expect("<")
            bounds: list[tuple[int, int]] = []
            element: Attribute | None = None
            while element is None:
                self._expect("[")
                lower = int(self._next()[1])
                self._expect(",")
                upper = int(self._next()[1])
                self._expect("]")
                bounds.append((lower, upper))
                kind, text = self._next()
                if kind != "ident":
                    raise ParseError(f"unexpected '{text}' in stencil.field type")
                if text == "x":
                    continue                      # separator before the next bound
                # 'xf64' style: the trailing element type fused with the separator.
                _, element = self._split_shape_ident(text)
            self._expect(">")
            return FieldType(bounds, element)
        if name == "stencil.temp":
            from repro.dialects.stencil import TempType

            self._expect("<")
            dims, element = self._parse_dims_and_element()
            self._expect(">")
            return TempType(dims, element)
        if name == "stencil.result":
            from repro.dialects.stencil import ResultType

            self._expect("<")
            element = self.parse_type()
            self._expect(">")
            return ResultType(element)
        raise ParseError(f"unknown dialect type '!{name}'")

    # -- attributes -----------------------------------------------------------------

    def parse_attribute(self) -> Attribute:
        kind, text = self._next()
        if kind == "string":
            return StringAttr(text[1:-1])
        if kind == "at":
            return SymbolRefAttr(text[1:])
        if kind == "number":
            value_text = text
            if self._accept(":"):
                value_type = self.parse_type()
                if isinstance(value_type, FloatType):
                    return FloatAttr(float(value_text), value_type)
                return IntAttr(int(float(value_text)), value_type)
            if "." in value_text or "e" in value_text or "E" in value_text:
                return FloatAttr(float(value_text))
            return IntAttr(int(value_text))
        if text == "[":
            # "[1, -2, 0]" (no element types) is a DenseIntArrayAttr;
            # "[4 : i64, ...]" and any other element kind is an ArrayAttr.
            elements: list[Any] = []
            all_plain_ints = True
            if not self._accept("]"):
                while True:
                    token = self._peek()
                    following = self.tokens[self.position + 1] if self.position + 1 < len(self.tokens) else None
                    if (
                        token is not None
                        and token[0] == "number"
                        and "." not in token[1]
                        and (following is None or following[1] != ":")
                    ):
                        self._next()
                        elements.append(int(token[1]))
                    else:
                        all_plain_ints = False
                        elements.append(self.parse_attribute())
                    if self._accept("]"):
                        break
                    self._expect(",")
            if all_plain_ints:
                return DenseIntArrayAttr(elements)
            return ArrayAttr([e if isinstance(e, Attribute) else IntAttr(e) for e in elements])
        if text == "true":
            return BoolAttr(True)
        if text == "false":
            return BoolAttr(False)
        if text == "unit":
            return UnitAttr()
        if kind in ("ident", "exclaim") or text == "(":
            # A bare type used as an attribute (wrapped in TypeAttr); this
            # includes function types such as func.func's function_type.
            self.position -= 1
            return TypeAttr(self.parse_type())
        if kind == "hash":
            return self._parse_dialect_attribute(text)
        raise ParseError(f"cannot parse attribute starting with '{text}'")

    def _parse_dialect_attribute(self, text: str) -> Attribute:
        name = text[1:]
        if name == "hls.axi_protocol":
            from repro.dialects.hls import AxiProtocolAttr

            self._expect("<")
            protocol = self._next()[1]
            self._expect(">")
            return AxiProtocolAttr(protocol)
        raise ParseError(f"unknown dialect attribute '#{name}'")

    def parse_attribute_dict(self) -> dict[str, Attribute]:
        attributes: dict[str, Attribute] = {}
        self._expect("{")
        if self._accept("}"):
            return attributes
        while True:
            name = self._next()[1]
            self._expect("=")
            attributes[name] = self.parse_attribute()
            if self._accept("}"):
                return attributes
            self._expect(",")

    # -- operations -----------------------------------------------------------------

    def parse_module(self) -> Operation:
        op = self.parse_operation()
        if self._peek() is not None:
            raise ParseError(f"trailing input starting at '{self._peek()[1]}'")
        return op

    def parse_operation(self) -> Operation:
        result_names: list[str] = []
        token = self._peek()
        if token is not None and token[0] == "percent":
            result_names.append(self._next()[1])
            while self._accept(","):
                result_names.append(self._next()[1])
            self._expect("=")
        kind, quoted_name = self._next()
        if kind != "string":
            raise ParseError(f"expected a quoted operation name, found '{quoted_name}'")
        op_name = quoted_name[1:-1]

        self._expect("(")
        operand_names: list[str] = []
        if not self._accept(")"):
            operand_names.append(self._next()[1])
            while self._accept(","):
                operand_names.append(self._next()[1])
            self._expect(")")

        attributes: dict[str, Attribute] = {}
        if self._peek() is not None and self._peek()[1] == "{":
            attributes = self.parse_attribute_dict()

        self._expect(":")
        signature = self.parse_type()
        if not isinstance(signature, FunctionType):
            raise ParseError("operation signature must be a function type")

        regions: list[Region] = []
        if self._accept("("):
            regions.append(self.parse_region())
            while self._accept(","):
                regions.append(self.parse_region())
            self._expect(")")

        operands = []
        for name in operand_names:
            if name not in self.values:
                raise ParseError(f"use of undefined value '{name}'")
            operands.append(self.values[name])

        op = _construct_op(op_name, operands, list(signature.outputs), attributes, regions)
        for result, name in zip(op.results, result_names):
            self.values[name] = result
            result.name_hint = name.lstrip("%")
        return op

    def parse_region(self) -> Region:
        self._expect("{")
        region = Region()
        block = Block()
        region.add_block(block)
        # Optional block header with arguments: ^bb(%a: t, ...):
        token = self._peek()
        if token is not None and token[0] == "caret":
            self._next()
            self._expect("(")
            if not self._accept(")"):
                while True:
                    name = self._next()[1]
                    self._expect(":")
                    arg_type = self.parse_type()
                    arg = block.add_arg(arg_type, name.lstrip("%"))
                    self.values[name] = arg
                    if self._accept(")"):
                        break
                    self._expect(",")
            self._expect(":")
        while not self._accept("}"):
            block.add_op(self.parse_operation())
        return region


def parse_module(text: str) -> Operation:
    """Parse the generic textual form of a module (or any single operation)."""
    return Parser(text).parse_module()
