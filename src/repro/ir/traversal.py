"""IR traversal utilities shared by analyses and transformations."""

from __future__ import annotations

from typing import Callable, Iterator, TypeVar

from repro.ir.core import Block, Operation, OpResult, SSAValue

OpT = TypeVar("OpT", bound=Operation)


def ops_of_type(root: Operation, op_type: type[OpT]) -> list[OpT]:
    """All operations of ``op_type`` nested under ``root`` (pre-order)."""
    return [op for op in root.walk() if isinstance(op, op_type)]


def first_op_of_type(root: Operation, op_type: type[OpT]) -> OpT | None:
    for op in root.walk():
        if isinstance(op, op_type):
            return op
    return None


def defining_op(value: SSAValue) -> Operation | None:
    """The operation producing ``value``, or ``None`` for block arguments."""
    return value.op if isinstance(value, OpResult) else None


def enclosing_op_of_type(op: Operation, op_type: type[OpT]) -> OpT | None:
    """The innermost ancestor of ``op`` that is an ``op_type``."""
    parent = op.parent_op()
    while parent is not None:
        if isinstance(parent, op_type):
            return parent
        parent = parent.parent_op()
    return None


def loop_nest_depth(op: Operation, loop_types: tuple[type, ...]) -> int:
    """How many loops of the given types enclose ``op``."""
    depth = 0
    parent = op.parent_op()
    while parent is not None:
        if isinstance(parent, loop_types):
            depth += 1
        parent = parent.parent_op()
    return depth


def backward_slice(value: SSAValue, *, stop: Callable[[Operation], bool] | None = None) -> list[Operation]:
    """Operations transitively contributing to ``value`` (topological order)."""
    visited: list[Operation] = []
    seen: set[Operation] = set()

    def visit(v: SSAValue) -> None:
        op = defining_op(v)
        if op is None or op in seen:
            return
        seen.add(op)
        if stop is not None and stop(op):
            visited.append(op)
            return
        for operand in op.operands:
            visit(operand)
        visited.append(op)

    visit(value)
    return visited


def users_transitive(value: SSAValue) -> set[Operation]:
    """All operations transitively using ``value`` (through their results)."""
    result: set[Operation] = set()
    frontier = [value]
    while frontier:
        current = frontier.pop()
        for user in current.users:
            if user in result:
                continue
            result.add(user)
            frontier.extend(user.results)
    return result


def count_ops(root: Operation, predicate: Callable[[Operation], bool] | None = None) -> int:
    if predicate is None:
        return sum(1 for _ in root.walk())
    return sum(1 for op in root.walk() if predicate(op))


def blocks(root: Operation) -> Iterator[Block]:
    for region in root.regions:
        for block in region.blocks:
            yield block
            for op in block.ops:
                yield from blocks(op)
