"""Self-contained SSA IR framework (an xDSL/MLIR work-alike).

The paper's contribution is a set of IR-to-IR transformations built with
xDSL, the Python sibling of MLIR.  This package provides the IR
infrastructure those transformations need: attributes and types, SSA
values, operations with nested regions, a builder, a textual printer and
parser, structural verification, a greedy pattern rewriter and a pass
manager.
"""

from repro.ir.core import (
    Attribute,
    Block,
    BlockArgument,
    IRNode,
    OpResult,
    Operation,
    OpTrait,
    Region,
    SSAValue,
    IsTerminator,
    Pure,
    VerifyException,
)
from repro.ir.builder import Builder, InsertPoint
from repro.ir.hashing import canonical_module_text, module_hash, operation_fingerprint
from repro.ir.interning import ATTRIBUTE_INTERNER, AttributeInterner, intern_stats
from repro.ir.parser import ParseError, parse_module
from repro.ir.printer import Printer, print_module
from repro.ir.rewriter import (
    PatternRewriter,
    RewritePattern,
    GreedyRewriteDriver,
)
from repro.ir.passes import ModulePass, PassManager, PassStatistics
from repro.ir.verifier import verify_module

__all__ = [
    "ATTRIBUTE_INTERNER",
    "Attribute",
    "AttributeInterner",
    "Block",
    "BlockArgument",
    "Builder",
    "GreedyRewriteDriver",
    "InsertPoint",
    "IRNode",
    "IsTerminator",
    "ModulePass",
    "Operation",
    "OpResult",
    "OpTrait",
    "ParseError",
    "PassManager",
    "PassStatistics",
    "PatternRewriter",
    "Printer",
    "Pure",
    "Region",
    "RewritePattern",
    "SSAValue",
    "VerifyException",
    "canonical_module_text",
    "intern_stats",
    "module_hash",
    "operation_fingerprint",
    "parse_module",
    "print_module",
    "verify_module",
]
