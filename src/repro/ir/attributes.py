"""Builtin data attributes: integers, floats, strings, arrays, dictionaries."""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.ir.core import Attribute, VerifyException
from repro.ir.types import FloatType, IndexType, IntegerType, f64, i64, index


class IntAttr(Attribute):
    """An integer constant with an associated integer/index type."""

    name = "builtin.int_attr"

    def __init__(self, value: int, type: Attribute = i64) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise VerifyException(f"IntAttr value must be an int, got {value!r}")
        if not isinstance(type, (IntegerType, IndexType)):
            raise VerifyException(f"IntAttr type must be integer-like, got {type}")
        self.value = value
        self.type = type

    def parameters(self) -> tuple:
        return (self.value, self.type)

    def __str__(self) -> str:
        return f"{self.value} : {self.type}"


class BoolAttr(Attribute):
    name = "builtin.bool_attr"

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def parameters(self) -> tuple:
        return (self.value,)

    def __str__(self) -> str:
        return "true" if self.value else "false"


class FloatAttr(Attribute):
    """A floating point constant with an associated float type."""

    name = "builtin.float_attr"

    def __init__(self, value: float, type: Attribute = f64) -> None:
        if not isinstance(type, FloatType):
            raise VerifyException(f"FloatAttr type must be a float type, got {type}")
        self.value = float(value)
        self.type = type

    def parameters(self) -> tuple:
        return (self.value, self.type)

    def __str__(self) -> str:
        return f"{self.value} : {self.type}"


class StringAttr(Attribute):
    name = "builtin.string_attr"

    def __init__(self, data: str) -> None:
        if not isinstance(data, str):
            raise VerifyException(f"StringAttr data must be a str, got {data!r}")
        self.data = data

    def parameters(self) -> tuple:
        return (self.data,)

    def __str__(self) -> str:
        return f'"{self.data}"'


class SymbolRefAttr(Attribute):
    """A reference to a symbol (e.g. a function name)."""

    name = "builtin.symbol_ref_attr"

    def __init__(self, symbol: str) -> None:
        self.symbol = symbol

    def parameters(self) -> tuple:
        return (self.symbol,)

    def __str__(self) -> str:
        return f"@{self.symbol}"


class TypeAttr(Attribute):
    """Wraps a type so it can be stored in an attribute dictionary."""

    name = "builtin.type_attr"

    def __init__(self, type: Attribute) -> None:
        self.type = type

    def parameters(self) -> tuple:
        return (self.type,)

    def __str__(self) -> str:
        return str(self.type)


class ArrayAttr(Attribute):
    """An ordered list of attributes."""

    name = "builtin.array_attr"

    def __init__(self, data: Sequence[Attribute]) -> None:
        self.data = tuple(data)

    def parameters(self) -> tuple:
        return (self.data,)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, idx: int) -> Attribute:
        return self.data[idx]

    def __str__(self) -> str:
        return "[" + ", ".join(str(a) for a in self.data) + "]"


class DenseIntArrayAttr(Attribute):
    """A compact list of integers, used for stencil offsets and bounds."""

    name = "builtin.dense_int_array_attr"

    def __init__(self, values: Sequence[int]) -> None:
        self.values = tuple(int(v) for v in values)

    def parameters(self) -> tuple:
        return (self.values,)

    def as_tuple(self) -> tuple[int, ...]:
        return self.values

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, idx: int) -> int:
        return self.values[idx]

    def __str__(self) -> str:
        return "[" + ", ".join(str(v) for v in self.values) + "]"


class DictionaryAttr(Attribute):
    name = "builtin.dictionary_attr"

    def __init__(self, data: Mapping[str, Attribute]) -> None:
        self.data = dict(data)

    def parameters(self) -> tuple:
        return (tuple(sorted(self.data.items())),)

    def __getitem__(self, key: str) -> Attribute:
        return self.data[key]

    def __contains__(self, key: str) -> bool:
        return key in self.data

    def __str__(self) -> str:
        inner = ", ".join(f"{k} = {v}" for k, v in self.data.items())
        return "{" + inner + "}"


class UnitAttr(Attribute):
    """Presence-only attribute (e.g. marking a function as an HLS kernel)."""

    name = "builtin.unit_attr"

    def __str__(self) -> str:
        return "unit"


unit = UnitAttr()


def int_attr(value: int, type: Attribute = i64) -> IntAttr:
    return IntAttr(value, type)


def index_attr(value: int) -> IntAttr:
    return IntAttr(value, index)


def float_attr(value: float, type: Attribute = f64) -> FloatAttr:
    return FloatAttr(value, type)


def py_value(attr: Attribute) -> Any:
    """Unwrap an attribute into a plain Python value (best effort)."""
    if isinstance(attr, (IntAttr, FloatAttr, BoolAttr)):
        return attr.value
    if isinstance(attr, StringAttr):
        return attr.data
    if isinstance(attr, SymbolRefAttr):
        return attr.symbol
    if isinstance(attr, DenseIntArrayAttr):
        return attr.as_tuple()
    if isinstance(attr, ArrayAttr):
        return [py_value(a) for a in attr.data]
    if isinstance(attr, DictionaryAttr):
        return {k: py_value(v) for k, v in attr.data.items()}
    if isinstance(attr, TypeAttr):
        return attr.type
    return attr
