"""MLIR-flavoured textual printer for the IR.

The output format intentionally mirrors the generic MLIR form::

    %0 = "arith.addf"(%a, %b) : (f64, f64) -> f64

so that the listings in the paper (stencil and HLS dialect examples) have a
recognisable shape.  The printer is deterministic: value names are assigned
in program order, honouring ``name_hint`` when available.
"""

from __future__ import annotations

import io
from typing import TextIO

from repro.ir.core import Attribute, Block, Operation, Region, SSAValue
from repro.ir.attributes import (
    ArrayAttr,
    BoolAttr,
    DenseIntArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
)


class Printer:
    """Stateful printer assigning stable SSA names."""

    def __init__(self, stream: TextIO | None = None, indent_width: int = 2) -> None:
        self.stream = stream if stream is not None else io.StringIO()
        self.indent_width = indent_width
        self._names: dict[SSAValue, str] = {}
        self._used_names: set[str] = set()
        self._counter = 0

    # -- naming --------------------------------------------------------------

    def name_of(self, value: SSAValue) -> str:
        if value not in self._names:
            hint = value.name_hint
            if hint and f"%{hint}" not in self._used_names:
                name = f"%{hint}"
            else:
                name = f"%{self._counter}"
                self._counter += 1
            self._names[value] = name
            self._used_names.add(name)
        return self._names[value]

    # -- attribute printing ---------------------------------------------------

    def attr_str(self, attr: Attribute) -> str:
        if isinstance(attr, (IntAttr, FloatAttr, BoolAttr, StringAttr, SymbolRefAttr,
                             DenseIntArrayAttr, ArrayAttr, DictionaryAttr, UnitAttr,
                             TypeAttr)):
            return str(attr)
        # Types and dialect-defined attributes print via __str__ if provided.
        try:
            return str(attr)
        except Exception:  # pragma: no cover - defensive
            return repr(attr)

    # -- op printing -----------------------------------------------------------

    def print_operation(self, op: Operation, indent: int = 0) -> None:
        pad = " " * (indent * self.indent_width)
        results = ", ".join(self.name_of(r) for r in op.results)
        eq = f"{results} = " if results else ""
        operands = ", ".join(self.name_of(o) for o in op.operands)
        attrs = ""
        if op.attributes:
            inner = ", ".join(
                f"{k} = {self.attr_str(v)}" for k, v in sorted(op.attributes.items())
            )
            attrs = " {" + inner + "}"
        in_types = ", ".join(str(o.type) for o in op.operands)
        out_types = ", ".join(str(r.type) for r in op.results)
        type_sig = f" : ({in_types}) -> ({out_types})"
        self.stream.write(f'{pad}{eq}"{op.name}"({operands}){attrs}{type_sig}')
        if op.regions:
            self.stream.write(" (")
            for i, region in enumerate(op.regions):
                if i:
                    self.stream.write(", ")
                self.print_region(region, indent)
            self.stream.write(")")
        self.stream.write("\n")

    def print_region(self, region: Region, indent: int) -> None:
        self.stream.write("{\n")
        for block in region.blocks:
            self.print_block(block, indent + 1)
        self.stream.write(" " * (indent * self.indent_width) + "}")

    def print_block(self, block: Block, indent: int) -> None:
        pad = " " * (indent * self.indent_width)
        if block.args:
            args = ", ".join(
                f"{self.name_of(a)}: {a.type}" for a in block.args
            )
            self.stream.write(f"{pad}^bb({args}):\n")
        for op in block.ops:
            self.print_operation(op, indent)

    def result(self) -> str:
        return self.stream.getvalue() if isinstance(self.stream, io.StringIO) else ""


def print_module(op: Operation) -> str:
    """Print an operation (typically a ``builtin.module``) to a string."""
    printer = Printer()
    printer.print_operation(op)
    return printer.result()


def print_op(op: Operation) -> str:
    return print_module(op)
