"""Structural IR verification.

Checks the invariants every well-formed module must satisfy:

* parent/child links between operations, blocks and regions are consistent;
* every operand is defined before use (dominance within a block, or is a
  block argument of an enclosing region);
* terminators appear only at the end of blocks;
* per-operation ``verify_`` hooks pass.

Failures are reported as :class:`~repro.ir.diagnostics.Diagnostic` records
with op-path locations.  :func:`verify_module` raises a
:class:`~repro.ir.diagnostics.DiagnosticError` (a ``VerifyException``) on
the first error; :func:`verify_module_diagnostics` collects *all* findings
— the mode the cached ``verify`` analysis and ``shmls-lint`` run in.

Dominance checks are linear: :class:`ModuleVerifier` precomputes one
``op → index`` map per block instead of rescanning ``block.index_of`` for
every operand (``cache_indices=False`` keeps the quadratic behaviour for
the perf micro-benchmark to compare against).
"""

from __future__ import annotations

import dataclasses

from repro.ir.core import (
    Block,
    BlockArgument,
    Operation,
    OpResult,
    Region,
    SSAValue,
    VerifyException,
)
from repro.ir.diagnostics import Diagnostic, DiagnosticEngine, DiagnosticError


def provenance_note(module: Operation) -> str | None:
    """Describe the pass that last transformed ``module``, if known.

    :class:`~repro.ir.passes.PassManager` stamps ``_pass_provenance`` on the
    module after every pass — even with ``verify_each=False`` — so a later
    manual verify can still say which pass produced a broken module.
    """
    provenance = getattr(module, "_pass_provenance", None)
    if not provenance:
        return None
    pass_name, position, spec = provenance
    return (
        f"module last transformed by pass '{pass_name}' "
        f"(position {position} in pipeline '{spec}')"
    )


class ModuleVerifier:
    """One verification run over an operation tree.

    ``collect=True`` gathers every finding into :attr:`engine` and never
    raises; the default raises a :class:`DiagnosticError` at the first
    error (matching the historical fail-fast contract).
    """

    def __init__(
        self,
        *,
        collect: bool = False,
        cache_indices: bool = True,
        engine: DiagnosticEngine | None = None,
    ) -> None:
        self.collect = collect
        self.cache_indices = cache_indices
        self.engine = engine if engine is not None else DiagnosticEngine()
        self._block_indices: dict[Block, dict[Operation, int]] = {}

    # -- failure reporting -----------------------------------------------------

    def _fail(self, message: str, *, op: Operation | None = None) -> None:
        diag = self.engine.error(message, op=op, rule="structural")
        if not self.collect:
            raise DiagnosticError([diag])

    # -- per-block op index cache (linear dominance checks) --------------------

    def _indices_of(self, block: Block) -> dict[Operation, int]:
        mapping = self._block_indices.get(block)
        if mapping is None:
            mapping = {op: i for i, op in enumerate(block.ops)}
            self._block_indices[block] = mapping
        return mapping

    def _index_in(self, block: Block, op: Operation) -> int:
        """Position of ``op`` in ``block``, or -1 when it is not there."""
        if self.cache_indices:
            return self._indices_of(block).get(op, -1)
        try:
            return block.index_of(op)
        except ValueError:
            return -1

    # -- dominance -------------------------------------------------------------

    def _enclosing_blocks(self, op: Operation) -> list[Block]:
        """All blocks lexically enclosing ``op`` (innermost first)."""
        blocks: list[Block] = []
        current: Operation | None = op
        while current is not None and current.parent is not None:
            blocks.append(current.parent)
            current = current.parent_op()
        return blocks

    def _value_visible_from(self, value: SSAValue, op: Operation) -> bool:
        """Whether ``value`` is defined in a scope enclosing ``op``."""
        enclosing = self._enclosing_blocks(op)
        if isinstance(value, BlockArgument):
            return value.block in enclosing
        if isinstance(value, OpResult):
            defining = value.op
            if defining.parent is None:
                return False
            if defining.parent not in enclosing:
                return False
            # Same block: the definition must come before the outermost
            # ancestor of `op` that lives in that block (which may be `op`).
            block = defining.parent
            container: Operation = op
            while container.parent is not block:
                parent = container.parent_op()
                if parent is None:
                    return False
                container = parent
            if defining is container:
                return False
            defining_index = self._index_in(block, defining)
            container_index = self._index_in(block, container)
            if defining_index < 0 or container_index < 0:
                return False
            return defining_index < container_index
        return False

    # -- tree walk ---------------------------------------------------------------

    def verify_operation(self, op: Operation) -> None:
        for i, result in enumerate(op.results):
            if result.op is not op or result.index != i:
                self._fail(f"result {i} back-reference is broken", op=op)
        for region in op.regions:
            if region.parent is not op:
                self._fail("region parent link is broken", op=op)
            self.verify_region(region)
        for i, operand in enumerate(op.operands):
            if op.parent is not None and not self._value_visible_from(operand, op):
                self._fail(
                    f"operand {i} is not visible/dominated at its use", op=op
                )
        try:
            op.verify_()
        except DiagnosticError as err:
            if not self.collect:
                raise
            self.engine.diagnostics.extend(err.diagnostics)
        except VerifyException as err:
            self._fail(str(err), op=op)

    def verify_block(self, block: Block) -> None:
        for i, arg in enumerate(block.args):
            if arg.block is not block or arg.index != i:
                self._fail(
                    "block argument back-reference is broken", op=block.parent_op()
                )
        if self.cache_indices:
            indices = self._indices_of(block)
            ops = list(indices)
            last_index = len(ops) - 1
        else:
            ops = block.ops
            last_index = len(ops) - 1
        for i, op in enumerate(ops):
            if op.parent is not block:
                self._fail("parent block link is broken", op=op)
            if op.is_terminator and i != last_index:
                self._fail(
                    "terminator is not the last operation of its block", op=op
                )
            self.verify_operation(op)

    def verify_region(self, region: Region) -> None:
        for block in region.blocks:
            if block.parent is not region:
                self._fail("block parent link is broken", op=region.parent)
            self.verify_block(block)

    def verify(self, module: Operation) -> list[Diagnostic]:
        """Verify the tree rooted at ``module``; return collected findings.

        A known pass provenance is attached as a note to every finding.
        """
        self.verify_operation(module)
        note = provenance_note(module)
        if note is not None and self.engine.diagnostics:
            self.engine.diagnostics[:] = [
                dataclasses.replace(diag, notes=diag.notes + (note,))
                for diag in self.engine.diagnostics
            ]
        return list(self.engine.diagnostics)


def verify_operation(op: Operation) -> None:
    ModuleVerifier().verify_operation(op)


def verify_block(block: Block) -> None:
    ModuleVerifier().verify_block(block)


def verify_region(region: Region) -> None:
    ModuleVerifier().verify_region(region)


def verify_module(module: Operation) -> None:
    """Verify an operation tree rooted at ``module``; raises on failure."""
    try:
        ModuleVerifier().verify_operation(module)
    except DiagnosticError as err:
        note = provenance_note(module)
        if note is None:
            raise
        raise DiagnosticError(
            [
                dataclasses.replace(diag, notes=diag.notes + (note,))
                for diag in err.diagnostics
            ]
        ) from err.__cause__


def verify_module_diagnostics(module: Operation) -> list[Diagnostic]:
    """Collect *all* structural findings about ``module`` without raising."""
    return ModuleVerifier(collect=True).verify(module)
