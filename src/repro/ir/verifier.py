"""Structural IR verification.

Checks the invariants every well-formed module must satisfy:

* parent/child links between operations, blocks and regions are consistent;
* every operand is defined before use (dominance within a block, or is a
  block argument of an enclosing region);
* terminators appear only at the end of blocks;
* per-operation ``verify_`` hooks pass.
"""

from __future__ import annotations

from repro.ir.core import (
    Block,
    BlockArgument,
    Operation,
    OpResult,
    Region,
    SSAValue,
    VerifyException,
)


def _enclosing_blocks(op: Operation) -> list[Block]:
    """All blocks lexically enclosing ``op`` (innermost first)."""
    blocks: list[Block] = []
    current: Operation | None = op
    while current is not None and current.parent is not None:
        blocks.append(current.parent)
        current = current.parent_op()
    return blocks


def _value_visible_from(value: SSAValue, op: Operation) -> bool:
    """Whether ``value`` is visible (defined in an enclosing scope) at ``op``."""
    enclosing = _enclosing_blocks(op)
    if isinstance(value, BlockArgument):
        return value.block in enclosing
    if isinstance(value, OpResult):
        defining = value.op
        if defining.parent is None:
            return False
        if defining.parent not in enclosing:
            return False
        # Same block: the definition must come before the outermost ancestor
        # of `op` that lives in that block (which may be `op` itself).
        block = defining.parent
        container: Operation = op
        while container.parent is not block:
            parent = container.parent_op()
            if parent is None:
                return False
            container = parent
        if defining is container:
            return False
        return block.index_of(defining) < block.index_of(container)
    return False


def verify_operation(op: Operation) -> None:
    for i, result in enumerate(op.results):
        if result.op is not op or result.index != i:
            raise VerifyException(f"{op.name}: result {i} back-reference is broken")
    for region in op.regions:
        if region.parent is not op:
            raise VerifyException(f"{op.name}: region parent link is broken")
        verify_region(region)
    for i, operand in enumerate(op.operands):
        if op.parent is not None and not _value_visible_from(operand, op):
            raise VerifyException(
                f"{op.name}: operand {i} is not visible/dominated at its use"
            )
    op.verify_()


def verify_block(block: Block) -> None:
    for i, arg in enumerate(block.args):
        if arg.block is not block or arg.index != i:
            raise VerifyException("block argument back-reference is broken")
    ops = block.ops
    for i, op in enumerate(ops):
        if op.parent is not block:
            raise VerifyException(f"{op.name}: parent block link is broken")
        if op.is_terminator and i != len(ops) - 1:
            raise VerifyException(
                f"{op.name}: terminator is not the last operation of its block"
            )
        verify_operation(op)


def verify_region(region: Region) -> None:
    for block in region.blocks:
        if block.parent is not region:
            raise VerifyException("block parent link is broken")
        verify_block(block)


def verify_module(module: Operation) -> None:
    """Verify an operation tree rooted at ``module``; raises on failure."""
    verify_operation(module)
