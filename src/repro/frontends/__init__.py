"""Frontends producing stencil-dialect IR.

The paper drives Stencil-HMLS from the PSyclone Fortran DSL (and notes that
Devito and Flang lower into the same stencil dialect).  Three entry points
are provided here:

* :mod:`repro.frontends.builder` — a programmatic kernel builder (the common
  substrate the other two frontends use);
* :mod:`repro.frontends.psyclone` — a PSyclone-like frontend that parses
  Fortran-style stencil assignments;
* :mod:`repro.frontends.devito` — a Devito-like symbolic interface (grids,
  functions, equations).
"""

from repro.frontends.expr import (
    BinOp,
    Constant,
    Expr,
    FieldAccess,
    GridIndex,
    ScalarRef,
    SmallDataAccess,
    UnaryOp,
    fabs,
    fmax,
    fmin,
    sqrt,
)
from repro.frontends.builder import StencilKernelBuilder, FieldHandle, ScalarHandle, SmallDataHandle
from repro.frontends.devito import DevitoGrid, DevitoFunction, DevitoConstant, Eq, DevitoOperator
from repro.frontends.psyclone import PSycloneFrontend, PSycloneKernel, PSycloneParseError

__all__ = [
    "BinOp",
    "Constant",
    "DevitoConstant",
    "DevitoFunction",
    "DevitoGrid",
    "DevitoOperator",
    "Eq",
    "Expr",
    "FieldAccess",
    "FieldHandle",
    "GridIndex",
    "PSycloneFrontend",
    "PSycloneKernel",
    "PSycloneParseError",
    "ScalarHandle",
    "ScalarRef",
    "SmallDataAccess",
    "SmallDataHandle",
    "StencilKernelBuilder",
    "UnaryOp",
    "fabs",
    "fmax",
    "fmin",
    "sqrt",
]
