"""Expression AST shared by all frontends.

A small, side-effect free expression language over grid fields: relative
field accesses, scalar parameters, small (1-D) constant arrays indexed by a
grid dimension, grid indices and the usual floating point arithmetic.  The
kernel builder lowers this AST into a ``stencil.apply`` region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Number = Union[int, float]


class Expr:
    """Base class of all expression nodes; supports Python operators."""

    # -- operator overloading -------------------------------------------------

    def __add__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("*", _wrap(other), self)

    def __truediv__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("/", self, _wrap(other))

    def __rtruediv__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("/", _wrap(other), self)

    def __neg__(self) -> "UnaryOp":
        return UnaryOp("neg", self)

    # -- queries ------------------------------------------------------------------

    def fields_read(self) -> set[str]:
        """Names of grid fields referenced by this expression."""
        found: set[str] = set()
        _collect(self, FieldAccess, lambda node: found.add(node.field))
        return found

    def scalars_read(self) -> set[str]:
        found: set[str] = set()
        _collect(self, ScalarRef, lambda node: found.add(node.name))
        return found

    def small_data_read(self) -> set[str]:
        found: set[str] = set()
        _collect(self, SmallDataAccess, lambda node: found.add(node.name))
        return found

    def accesses(self) -> list["FieldAccess"]:
        found: list[FieldAccess] = []
        _collect(self, FieldAccess, found.append)
        return found

    def max_radius(self) -> int:
        radius = 0
        for access in self.accesses():
            for component in access.offset:
                radius = max(radius, abs(component))
        return radius

    def count_flops(self) -> int:
        count = 0

        def visit(node: Expr) -> None:
            nonlocal count
            if isinstance(node, (BinOp, UnaryOp)):
                count += 1

        _collect(self, Expr, visit)
        return count


@dataclass(frozen=True)
class FieldAccess(Expr):
    """``u[i+di, j+dj, k+dk]`` — read a field at a relative offset."""

    field: str
    offset: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "offset", tuple(int(o) for o in self.offset))


@dataclass(frozen=True)
class ScalarRef(Expr):
    """A scalar kernel parameter (time step, grid spacing, ...)."""

    name: str


@dataclass(frozen=True)
class SmallDataAccess(Expr):
    """``c[k + offset]`` — read a small 1-D constant array along one grid dim."""

    name: str
    dim: int
    offset: int = 0


@dataclass(frozen=True)
class GridIndex(Expr):
    """The current grid index along a dimension, as a floating point value."""

    dim: int


@dataclass(frozen=True)
class Constant(Expr):
    """A floating point literal."""

    value: float


@dataclass(frozen=True)
class BinOp(Expr):
    op: str      # '+', '-', '*', '/', 'max', 'min'
    lhs: Expr
    rhs: Expr

    VALID_OPS = ("+", "-", "*", "/", "max", "min")

    def __post_init__(self) -> None:
        if self.op not in self.VALID_OPS:
            raise ValueError(f"unknown binary operator '{self.op}'")


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str      # 'neg', 'abs', 'sqrt', 'exp'
    operand: Expr

    VALID_OPS = ("neg", "abs", "sqrt", "exp")

    def __post_init__(self) -> None:
        if self.op not in self.VALID_OPS:
            raise ValueError(f"unknown unary operator '{self.op}'")


# -- convenience constructors -----------------------------------------------------


def _wrap(value: "Expr | Number") -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Constant(float(value))
    raise TypeError(f"cannot use {value!r} in a stencil expression")


def fmax(lhs: "Expr | Number", rhs: "Expr | Number") -> BinOp:
    return BinOp("max", _wrap(lhs), _wrap(rhs))


def fmin(lhs: "Expr | Number", rhs: "Expr | Number") -> BinOp:
    return BinOp("min", _wrap(lhs), _wrap(rhs))


def fabs(value: "Expr | Number") -> UnaryOp:
    return UnaryOp("abs", _wrap(value))


def sqrt(value: "Expr | Number") -> UnaryOp:
    return UnaryOp("sqrt", _wrap(value))


def _collect(root: Expr, node_type: type, action) -> None:
    """Walk the expression tree and call ``action`` on nodes of ``node_type``."""
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            action(node)
        if isinstance(node, BinOp):
            stack.append(node.lhs)
            stack.append(node.rhs)
        elif isinstance(node, UnaryOp):
            stack.append(node.operand)
