"""Programmatic construction of stencil-dialect kernels.

:class:`StencilKernelBuilder` is the substrate all frontends share: declare
fields, small constant arrays and scalars; add stencil definitions (an
output field plus an expression over relative field accesses); and build a
``builtin.module`` containing the stencil-dialect kernel function, ready for
the CPU lowering, the Stencil-HMLS FPGA flow or the baseline models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dialects import arith, math as math_d, memref as memref_d, stencil
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir.core import Block, SSAValue
from repro.ir.types import MemRefType, f64
from repro.frontends.expr import (
    BinOp,
    Constant,
    Expr,
    FieldAccess,
    GridIndex,
    ScalarRef,
    SmallDataAccess,
    UnaryOp,
)


class FrontendError(Exception):
    """Raised for inconsistent kernel declarations."""


@dataclass(frozen=True)
class FieldHandle:
    """Handle to a declared grid field; indexing yields a relative access."""

    name: str
    rank: int

    def __getitem__(self, offsets) -> FieldAccess:
        if not isinstance(offsets, tuple):
            offsets = (offsets,)
        if len(offsets) != self.rank:
            raise FrontendError(
                f"field '{self.name}' has rank {self.rank}, got {len(offsets)} offsets"
            )
        return FieldAccess(self.name, tuple(int(o) for o in offsets))

    @property
    def centre(self) -> FieldAccess:
        return FieldAccess(self.name, (0,) * self.rank)


@dataclass(frozen=True)
class SmallDataHandle:
    """Handle to a small 1-D constant array indexed along one grid dimension."""

    name: str
    dim: int

    def __getitem__(self, offset: int) -> SmallDataAccess:
        return SmallDataAccess(self.name, self.dim, int(offset))

    @property
    def here(self) -> SmallDataAccess:
        return SmallDataAccess(self.name, self.dim, 0)


ScalarHandle = ScalarRef


@dataclass
class StencilDefinition:
    """One stencil computation: an output field and its defining expression."""

    output: str
    expression: Expr
    lower: tuple[int, ...] | None = None
    upper: tuple[int, ...] | None = None


class StencilKernelBuilder:
    """Declarative builder for stencil kernels."""

    def __init__(self, name: str, shape: Sequence[int]) -> None:
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.rank = len(self.shape)
        self._fields: dict[str, bool] = {}          # name -> declared as output
        self._small_data: dict[str, tuple[int, int]] = {}   # name -> (length, dim)
        self._scalars: list[str] = []
        self._stencils: list[StencilDefinition] = []

    # -- declarations ------------------------------------------------------------

    def field(self, name: str, output: bool = False) -> FieldHandle:
        if name in self._fields or name in self._small_data or name in self._scalars:
            raise FrontendError(f"argument '{name}' declared twice")
        self._fields[name] = output
        return FieldHandle(name, self.rank)

    def input_field(self, name: str) -> FieldHandle:
        return self.field(name, output=False)

    def output_field(self, name: str) -> FieldHandle:
        return self.field(name, output=True)

    def small_data(self, name: str, length: int, dim: int | None = None) -> SmallDataHandle:
        if name in self._fields or name in self._small_data or name in self._scalars:
            raise FrontendError(f"argument '{name}' declared twice")
        dim = self.rank - 1 if dim is None else dim
        self._small_data[name] = (int(length), int(dim))
        return SmallDataHandle(name, dim)

    def scalar(self, name: str) -> ScalarRef:
        if name in self._fields or name in self._small_data or name in self._scalars:
            raise FrontendError(f"argument '{name}' declared twice")
        self._scalars.append(name)
        return ScalarRef(name)

    # -- stencil definitions --------------------------------------------------------

    def add_stencil(
        self,
        output: FieldHandle | str,
        expression: Expr,
        lower: Sequence[int] | None = None,
        upper: Sequence[int] | None = None,
    ) -> StencilDefinition:
        output_name = output.name if isinstance(output, FieldHandle) else output
        if output_name not in self._fields:
            raise FrontendError(f"'{output_name}' is not a declared field")
        # A field that gets written is an output, even if declared as input.
        self._fields[output_name] = True
        for read in expression.fields_read():
            if read not in self._fields:
                raise FrontendError(f"expression reads undeclared field '{read}'")
        for read in expression.small_data_read():
            if read not in self._small_data:
                raise FrontendError(f"expression reads undeclared small data '{read}'")
        for read in expression.scalars_read():
            if read not in self._scalars:
                raise FrontendError(f"expression reads undeclared scalar '{read}'")
        definition = StencilDefinition(
            output=output_name,
            expression=expression,
            lower=tuple(lower) if lower is not None else None,
            upper=tuple(upper) if upper is not None else None,
        )
        self._stencils.append(definition)
        return definition

    # -- queries ----------------------------------------------------------------------

    @property
    def num_stencils(self) -> int:
        return len(self._stencils)

    @property
    def max_radius(self) -> int:
        return max((d.expression.max_radius() for d in self._stencils), default=1) or 1

    def default_domain(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        radius = max(self.max_radius, 1)
        lower = tuple(radius for _ in self.shape)
        upper = tuple(extent - radius for extent in self.shape)
        return lower, upper

    # -- module construction --------------------------------------------------------------

    def build(self) -> ModuleOp:
        if not self._stencils:
            raise FrontendError(f"kernel '{self.name}' has no stencil definitions")
        module = ModuleOp()
        field_names = list(self._fields)
        small_names = list(self._small_data)
        scalar_names = list(self._scalars)

        arg_types = []
        for _ in field_names:
            arg_types.append(MemRefType(self.shape, f64))
        for name in small_names:
            length, _dim = self._small_data[name]
            arg_types.append(MemRefType([length], f64))
        for _ in scalar_names:
            arg_types.append(f64)

        func = FuncOp.with_body(self.name, arg_types, [])
        module.add_op(func)
        entry = func.entry_block
        all_names = field_names + small_names + scalar_names
        args_by_name: dict[str, SSAValue] = {}
        for arg, name in zip(entry.args, all_names):
            arg.name_hint = name
            args_by_name[name] = arg

        default_lower, default_upper = self.default_domain()
        bounds = [(0, extent) for extent in self.shape]
        field_type = stencil.FieldType(bounds, f64)

        for definition in self._stencils:
            self._emit_stencil(
                entry,
                definition,
                args_by_name,
                field_type,
                default_lower,
                default_upper,
            )

        entry.add_op(ReturnOp())
        return module

    # -- per-stencil emission ----------------------------------------------------------------

    def _emit_stencil(
        self,
        block: Block,
        definition: StencilDefinition,
        args_by_name: dict[str, SSAValue],
        field_type: stencil.FieldType,
        default_lower: tuple[int, ...],
        default_upper: tuple[int, ...],
    ) -> None:
        expression = definition.expression
        read_fields = [name for name in self._fields if name in expression.fields_read()]
        read_small = [name for name in self._small_data if name in expression.small_data_read()]
        read_scalars = [name for name in self._scalars if name in expression.scalars_read()]

        # Fresh loads per stencil so writes by earlier stencils are observed
        # (this is how inter-stencil dependencies are expressed in the IR).
        temps: dict[str, SSAValue] = {}
        for name in read_fields:
            ext = stencil.ExternalLoadOp(args_by_name[name], field_type)
            ext.result.name_hint = f"{name}_field"
            block.add_op(ext)
            load = stencil.LoadOp(ext.result)
            load.result.name_hint = f"{name}_temp"
            block.add_op(load)
            temps[name] = load.result

        operands: list[SSAValue] = [temps[name] for name in read_fields]
        operands += [args_by_name[name] for name in read_small]
        operands += [args_by_name[name] for name in read_scalars]

        apply_op = stencil.ApplyOp(operands, [stencil.TempType([-1] * self.rank, f64)])
        block.add_op(apply_op)
        body = apply_op.body
        arg_index = {name: i for i, name in enumerate(read_fields + read_small + read_scalars)}

        value = self._emit_expr(body, expression, arg_index, body.args)
        body.add_op(stencil.ReturnOp([value]))

        out_ext = stencil.ExternalLoadOp(args_by_name[definition.output], field_type)
        out_ext.result.name_hint = f"{definition.output}_field"
        block.add_op(out_ext)
        lower = definition.lower if definition.lower is not None else default_lower
        upper = definition.upper if definition.upper is not None else default_upper
        block.add_op(stencil.StoreOp(apply_op.results[0], out_ext.result, lower, upper))

    def _emit_expr(
        self,
        body: Block,
        expression: Expr,
        arg_index: dict[str, int],
        block_args: Sequence[SSAValue],
    ) -> SSAValue:
        if isinstance(expression, FieldAccess):
            access = stencil.AccessOp(block_args[arg_index[expression.field]], expression.offset)
            body.add_op(access)
            return access.result
        if isinstance(expression, ScalarRef):
            return block_args[arg_index[expression.name]]
        if isinstance(expression, Constant):
            const = arith.ConstantOp.from_float(expression.value)
            body.add_op(const)
            return const.result
        if isinstance(expression, SmallDataAccess):
            index_op = stencil.IndexOp(expression.dim)
            body.add_op(index_op)
            index_value = index_op.result
            if expression.offset:
                offset = arith.ConstantOp.from_index(expression.offset)
                body.add_op(offset)
                add = arith.AddiOp(index_value, offset.result)
                body.add_op(add)
                index_value = add.result
            load = memref_d.LoadOp(block_args[arg_index[expression.name]], [index_value])
            body.add_op(load)
            return load.result
        if isinstance(expression, GridIndex):
            index_op = stencil.IndexOp(expression.dim)
            body.add_op(index_op)
            to_float = arith.SIToFPOp(index_op.result, f64)
            body.add_op(to_float)
            return to_float.result
        if isinstance(expression, BinOp):
            lhs = self._emit_expr(body, expression.lhs, arg_index, block_args)
            rhs = self._emit_expr(body, expression.rhs, arg_index, block_args)
            op_class = {
                "+": arith.AddfOp,
                "-": arith.SubfOp,
                "*": arith.MulfOp,
                "/": arith.DivfOp,
                "max": arith.MaximumfOp,
                "min": arith.MinimumfOp,
            }[expression.op]
            op = op_class(lhs, rhs)
            body.add_op(op)
            return op.result
        if isinstance(expression, UnaryOp):
            operand = self._emit_expr(body, expression.operand, arg_index, block_args)
            if expression.op == "neg":
                op = arith.NegfOp(operand)
            elif expression.op == "abs":
                op = math_d.AbsFOp(operand)
            elif expression.op == "sqrt":
                op = math_d.SqrtOp(operand)
            elif expression.op == "exp":
                op = math_d.ExpOp(operand)
            else:  # pragma: no cover - guarded by UnaryOp.__post_init__
                raise FrontendError(f"unknown unary operator '{expression.op}'")
            body.add_op(op)
            return op.result
        raise FrontendError(f"cannot lower expression node {expression!r}")
