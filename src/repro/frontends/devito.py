"""Devito-like symbolic frontend.

Devito expresses PDE kernels as symbolic equations over functions defined on
a grid; its MLIR backend lowers them into the stencil dialect.  This module
provides a minimal work-alike surface (``DevitoGrid``, ``DevitoFunction``,
``Eq``, ``DevitoOperator``) that produces exactly the same stencil-dialect
modules as the other frontends, so Stencil-HMLS can be driven from symbolic
equations as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.dialects.builtin import ModuleOp
from repro.frontends.builder import FieldHandle, StencilKernelBuilder
from repro.frontends.expr import Expr, FieldAccess, ScalarRef


class DevitoError(Exception):
    """Raised for inconsistent symbolic kernel definitions."""


@dataclass(frozen=True)
class DevitoGrid:
    """A structured grid; all functions of one operator share it."""

    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))

    @property
    def rank(self) -> int:
        return len(self.shape)


class DevitoFunction:
    """A grid function; indexing with relative offsets yields accesses."""

    def __init__(self, name: str, grid: DevitoGrid) -> None:
        self.name = name
        self.grid = grid

    def __getitem__(self, offsets) -> FieldAccess:
        if not isinstance(offsets, tuple):
            offsets = (offsets,)
        if len(offsets) != self.grid.rank:
            raise DevitoError(
                f"function '{self.name}' is {self.grid.rank}-dimensional, "
                f"got {len(offsets)} offsets"
            )
        return FieldAccess(self.name, tuple(int(o) for o in offsets))

    @property
    def centre(self) -> FieldAccess:
        return FieldAccess(self.name, (0,) * self.grid.rank)


class DevitoConstant(ScalarRef):
    """A scalar parameter of the operator (named constant)."""


@dataclass(frozen=True)
class Eq:
    """A symbolic equation assigning an expression to a function."""

    lhs: DevitoFunction | FieldAccess
    rhs: Expr

    @property
    def target_name(self) -> str:
        if isinstance(self.lhs, DevitoFunction):
            return self.lhs.name
        if isinstance(self.lhs, FieldAccess):
            if any(self.lhs.offset):
                raise DevitoError("the left hand side of an Eq must be the centre point")
            return self.lhs.field
        raise DevitoError(f"unsupported Eq left hand side: {self.lhs!r}")


class DevitoOperator:
    """Collects equations and lowers them to a stencil-dialect module."""

    def __init__(self, equations: Sequence[Eq], name: str = "devito_kernel") -> None:
        if not equations:
            raise DevitoError("an operator needs at least one equation")
        self.equations = list(equations)
        self.name = name

    def build_module(self) -> ModuleOp:
        grid = self._grid()
        builder = StencilKernelBuilder(self.name, grid.shape)
        declared: dict[str, FieldHandle] = {}

        def declare_field(name: str) -> None:
            if name not in declared:
                declared[name] = builder.field(name)

        # Declare every function (inputs first, in order of appearance).
        for eq in self.equations:
            for name in sorted(eq.rhs.fields_read()):
                declare_field(name)
            declare_field(eq.target_name)
            for scalar in sorted(eq.rhs.scalars_read()):
                if scalar not in builder._scalars:
                    builder.scalar(scalar)

        for eq in self.equations:
            builder.add_stencil(eq.target_name, eq.rhs)
        return builder.build()

    def _grid(self) -> DevitoGrid:
        grids = {
            eq.lhs.grid
            for eq in self.equations
            if isinstance(eq.lhs, DevitoFunction)
        }
        if len(grids) > 1:
            raise DevitoError("all equations of an operator must share one grid")
        if grids:
            return next(iter(grids))
        raise DevitoError("could not infer the grid; use DevitoFunction left hand sides")
