"""PSyclone-like Fortran frontend.

PSyclone is the Fortran DSL the paper evaluates with: the scientist writes
Fortran array assignments, PSyclone's xDSL backend turns them into the
stencil dialect.  This module parses the same style of Fortran statements::

    su(i,j,k) = tzc1(k)*u(i,j,k-1) + tzc2(k)*u(i,j,k+1) - 0.5*dt*u(i,j,k)

and produces the stencil-dialect module through the shared kernel builder.
Supported syntax: array references with index expressions ``i±c``/``j±c``/
``k±c``, scalar parameters, floating point literals, ``+ - * /``,
parentheses, and the intrinsics ``abs``, ``sqrt``, ``exp``, ``max``, ``min``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.dialects.builtin import ModuleOp
from repro.frontends.builder import StencilKernelBuilder
from repro.frontends.expr import (
    BinOp,
    Constant,
    Expr,
    FieldAccess,
    ScalarRef,
    SmallDataAccess,
    UnaryOp,
)


class PSycloneParseError(Exception):
    """Raised when a kernel statement cannot be parsed."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d*(?:[eEdD][+-]?\d+)?|\.\d+|\d+(?:[eEdD][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<symbol>\*\*|[()+\-*/,=]))"
)


@dataclass
class _Token:
    kind: str
    text: str


def _tokenise(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise PSycloneParseError(f"unexpected character {text[pos]!r} in: {text}")
        pos = match.end()
        for kind in ("number", "name", "symbol"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value))
                break
    return tokens


@dataclass
class PSycloneKernel:
    """Declaration of a PSyclone-style kernel: arguments plus Fortran body."""

    name: str
    shape: tuple[int, ...]
    field_args: list[str]
    scalar_args: list[str] = field(default_factory=list)
    small_data_args: dict[str, int] = field(default_factory=dict)   # name -> length
    statements: list[str] = field(default_factory=list)
    index_names: tuple[str, ...] = ("i", "j", "k")

    def add_statement(self, statement: str) -> None:
        self.statements.append(statement)


class _Parser:
    """Recursive descent parser for one Fortran assignment statement."""

    def __init__(self, tokens: list[_Token], kernel: PSycloneKernel) -> None:
        self.tokens = tokens
        self.kernel = kernel
        self.pos = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise PSycloneParseError("unexpected end of statement")
        self.pos += 1
        return token

    def _expect(self, text: str) -> None:
        token = self._next()
        if token.text != text:
            raise PSycloneParseError(f"expected '{text}', found '{token.text}'")

    # -- grammar --------------------------------------------------------------------

    def parse_assignment(self) -> tuple[str, Expr]:
        target = self._next()
        if target.kind != "name":
            raise PSycloneParseError("assignment must start with an array reference")
        self._expect("(")
        offsets = self._parse_index_list()
        if any(offsets):
            raise PSycloneParseError("the assignment target must be the centre point")
        self._expect("=")
        expression = self.parse_expression()
        if self._peek() is not None:
            raise PSycloneParseError(f"trailing tokens after expression: '{self._peek().text}'")
        return target.text, expression

    def parse_expression(self) -> Expr:
        node = self.parse_term()
        while (token := self._peek()) is not None and token.text in ("+", "-"):
            self._next()
            rhs = self.parse_term()
            node = BinOp(token.text, node, rhs)
        return node

    def parse_term(self) -> Expr:
        node = self.parse_unary()
        while (token := self._peek()) is not None and token.text in ("*", "/"):
            self._next()
            rhs = self.parse_unary()
            node = BinOp(token.text, node, rhs)
        return node

    def parse_unary(self) -> Expr:
        token = self._peek()
        if token is not None and token.text == "-":
            self._next()
            return UnaryOp("neg", self.parse_unary())
        if token is not None and token.text == "+":
            self._next()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self._next()
        if token.kind == "number":
            return Constant(float(token.text.replace("d", "e").replace("D", "E")))
        if token.text == "(":
            node = self.parse_expression()
            self._expect(")")
            return node
        if token.kind == "name":
            return self._parse_reference(token.text)
        raise PSycloneParseError(f"unexpected token '{token.text}'")

    # -- references ---------------------------------------------------------------------

    def _parse_reference(self, name: str) -> Expr:
        lowered = name.lower()
        next_token = self._peek()
        if next_token is not None and next_token.text == "(":
            if lowered in ("abs", "sqrt", "exp"):
                self._next()
                argument = self.parse_expression()
                self._expect(")")
                return UnaryOp({"abs": "abs", "sqrt": "sqrt", "exp": "exp"}[lowered], argument)
            if lowered in ("max", "min"):
                self._next()
                lhs = self.parse_expression()
                self._expect(",")
                rhs = self.parse_expression()
                self._expect(")")
                return BinOp(lowered, lhs, rhs)
            # Array reference.
            self._next()
            if name in self.kernel.field_args:
                offsets = self._parse_index_list()
                if len(offsets) != len(self.kernel.shape):
                    raise PSycloneParseError(
                        f"field '{name}' indexed with {len(offsets)} indices, expected "
                        f"{len(self.kernel.shape)}"
                    )
                return FieldAccess(name, tuple(offsets))
            if name in self.kernel.small_data_args:
                dim, offset = self._parse_single_index()
                return SmallDataAccess(name, dim, offset)
            raise PSycloneParseError(f"reference to undeclared array '{name}'")
        if name in self.kernel.scalar_args:
            return ScalarRef(name)
        raise PSycloneParseError(f"reference to undeclared symbol '{name}'")

    def _parse_index_list(self) -> list[int]:
        offsets: list[int] = []
        while True:
            offsets.append(self._parse_index_expr()[1])
            token = self._next()
            if token.text == ")":
                return offsets
            if token.text != ",":
                raise PSycloneParseError(f"expected ',' or ')' in index list, found '{token.text}'")

    def _parse_single_index(self) -> tuple[int, int]:
        dim, offset = self._parse_index_expr()
        self._expect(")")
        return dim, offset

    def _parse_index_expr(self) -> tuple[int, int]:
        """Parse ``i``, ``j+1``, ``k-2`` style index expressions."""
        token = self._next()
        if token.kind != "name" or token.text not in self.kernel.index_names:
            raise PSycloneParseError(
                f"index expressions must use {self.kernel.index_names}, found '{token.text}'"
            )
        dim = self.kernel.index_names.index(token.text)
        offset = 0
        peeked = self._peek()
        if peeked is not None and peeked.text in ("+", "-"):
            sign = 1 if self._next().text == "+" else -1
            number = self._next()
            if number.kind != "number":
                raise PSycloneParseError("index offsets must be integer literals")
            offset = sign * int(float(number.text))
        return dim, offset


class PSycloneFrontend:
    """Lower PSyclone-style kernels to the stencil dialect."""

    def lower(self, kernel: PSycloneKernel) -> ModuleOp:
        builder = self.builder_for(kernel)
        return builder.build()

    def builder_for(self, kernel: PSycloneKernel) -> StencilKernelBuilder:
        if not kernel.statements:
            raise PSycloneParseError(f"kernel '{kernel.name}' has no statements")
        builder = StencilKernelBuilder(kernel.name, kernel.shape)
        for name in kernel.field_args:
            builder.field(name)
        for name, length in kernel.small_data_args.items():
            builder.small_data(name, length, dim=len(kernel.shape) - 1)
        for name in kernel.scalar_args:
            builder.scalar(name)
        for statement in kernel.statements:
            target, expression = self.parse_statement(statement, kernel)
            builder.add_stencil(target, expression)
        return builder

    def parse_statement(self, statement: str, kernel: PSycloneKernel) -> tuple[str, Expr]:
        tokens = _tokenise(statement)
        parser = _Parser(tokens, kernel)
        target, expression = parser.parse_assignment()
        if target not in kernel.field_args:
            raise PSycloneParseError(f"assignment target '{target}' is not a field argument")
        return target, expression
