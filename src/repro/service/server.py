"""The asyncio HTTP + JSONL-streaming compile service (``shmls-serve``).

One long-lived process turns the batch evaluation harness into a front
door that can face many concurrent clients:

* **Canonical addressing** — every POSTed request spec is canonicalised
  (:func:`~repro.service.spec.parse_request`) and content-addressed by
  the result-stage cache-key digests of its expanded cases
  (:func:`~repro.service.spec.request_digest`).
* **Warm fast path** — a request whose every case is already in the
  resumability manifest or the tiered
  :class:`~repro.core.compile_cache.CompileCache` (local disk *and* the
  ``--remote-cache-dir`` network tier; presence established by the
  restore-free :meth:`~repro.core.compile_cache.CompileCache.probe`) is
  answered entirely on the event loop — no compile executor, no flight.
* **Single-flight** — identical in-flight requests coalesce onto one
  :class:`~repro.service.singleflight.Flight`: one compile runs, its
  event stream fans out to every waiter byte-identically.
* **Admission control** — at most ``max_inflight`` flights may be
  queued/running; beyond that the server sheds with ``429`` and a
  ``Retry-After`` header instead of building an unbounded backlog.
* **Streaming** — results stream as JSONL *as cases land*, bridged off
  :meth:`EvaluationHarness.run_matrix(on_result=…)
  <repro.evaluation.harness.EvaluationHarness.run_matrix>` running on a
  compile-executor thread via ``loop.call_soon_threadsafe``.
* **Resumability** — every completed case is appended to
  ``state_dir/manifest-service.jsonl`` (the orchestrator's manifest
  format); a restarted server reloads every ``manifest-*.jsonl`` in its
  state dir, so a client reconnecting after a mid-stream kill gets the
  already-completed cases back with zero recompiles.

Protocol (see ``docs/service.md``):

* ``POST /compile`` — request spec JSON in, ``application/x-ndjson``
  event stream out (``request_accepted``, ``case_result`` per case,
  terminal ``request_complete``/``request_failed``).
* ``GET /stats`` — requests/coalescing/shed counters, cache stats,
  manifest size, in-flight table state.
* ``GET /healthz`` — liveness.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.compile_cache import CACHE_FORMATS, CacheKey, CompileCache
from repro.evaluation.harness import BenchmarkCase, EvaluationHarness
from repro.evaluation.metrics import FrameworkResult
from repro.evaluation.orchestrator import case_to_dict, read_events
from repro.evaluation.report import _deterministic_entry, merge_results
from repro.fpga.device import device_by_name
from repro.ir.interning import open_shared_table
from repro.service.singleflight import Flight, SingleFlightTable
from repro.service.spec import RequestSpec, RequestSpecError, parse_request, request_digest

#: Hard caps keeping one hostile/broken client from exhausting the loop.
_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 1024 * 1024


@dataclass
class ServiceStats:
    """Lifetime request counters (the /stats payload's service section)."""

    requests: int = 0
    #: Requests answered entirely from manifest/cache on the event loop.
    warm_requests: int = 0
    #: Flights actually dispatched to the compile executor.
    dispatched: int = 0
    #: Requests answered 429 because the in-flight table was saturated.
    shed: int = 0
    #: Flights that finished with an error event.
    failed_flights: int = 0
    bad_requests: int = 0
    cases_streamed: int = 0
    cases_compiled: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "warm_requests": self.warm_requests,
            "dispatched": self.dispatched,
            "shed": self.shed,
            "failed_flights": self.failed_flights,
            "bad_requests": self.bad_requests,
            "cases_streamed": self.cases_streamed,
            "cases_compiled": self.cases_compiled,
        }


def load_service_manifest(state_dir: str | Path) -> dict[str, dict[str, Any]]:
    """Every ``manifest-*.jsonl`` entry in ``state_dir``, digest-keyed.

    Deliberately a superset of the orchestrator's ``manifest-shard*``
    glob: a service pointed at a finished fleet sweep's state dir resumes
    from the fleet's manifests too.
    """
    completed: dict[str, dict[str, Any]] = {}
    for path in sorted(Path(state_dir).glob("manifest-*.jsonl")):
        for entry in read_events(path):
            digest = entry.get("digest")
            if digest and "result" in entry:
                completed[digest] = entry
    return completed


class CompileService:
    """The front-door service object (one per process).

    Separate from the socket layer so tests can drive request handling
    in-process; :meth:`start`/:meth:`stop` manage the listening socket.
    """

    def __init__(
        self,
        *,
        cache: CompileCache | None = None,
        state_dir: str | Path | None = None,
        max_inflight: int = 4,
        compile_threads: int = 1,
        retry_after: float = 1.0,
        chaos_kill_after: int | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if compile_threads < 1:
            raise ValueError(f"compile_threads must be >= 1, got {compile_threads}")
        self.cache = cache
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.max_inflight = max_inflight
        self.compile_threads = compile_threads
        self.retry_after = retry_after
        #: Fault injection (tests/CI): SIGKILL this process after N
        #: lifetime manifest appends — a deterministic mid-stream kill.
        self.chaos_kill_after = chaos_kill_after

        self.table = SingleFlightTable()
        self.stats = ServiceStats()
        self.started_at = time.monotonic()
        self._inflight = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        from concurrent.futures import ThreadPoolExecutor

        self._compile_pool = ThreadPoolExecutor(
            max_workers=compile_threads, thread_name_prefix="shmls-compile"
        )
        #: Per-(device, repeats) harnesses sharing one cache and one
        #: kernel-module memo namespace each; created lazily.
        self._harnesses: dict[tuple[str, int], EvaluationHarness] = {}
        self._manifest_lock = threading.Lock()
        self._manifest_appends = 0
        self._manifest: dict[str, dict[str, Any]] = {}
        self._manifest_path: Path | None = None
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self._manifest_path = self.state_dir / "manifest-service.jsonl"
            self._manifest = load_service_manifest(self.state_dir)

    # -- wiring ---------------------------------------------------------------

    def harness_for(self, spec: RequestSpec) -> EvaluationHarness:
        key = (spec.device, spec.repeats)
        harness = self._harnesses.get(key)
        if harness is None:
            harness = EvaluationHarness(
                device=device_by_name(spec.device),
                repeats=spec.repeats,
                cache=self.cache,
            )
            self._harnesses[key] = harness
        return harness

    @property
    def manifest_entries(self) -> int:
        return len(self._manifest)

    def stats_payload(self) -> dict[str, Any]:
        if self.cache is not None:
            self.cache.disk_bytes()
        return {
            "service": self.stats.as_dict(),
            "singleflight": {
                "led": self.table.led,
                "coalesced": self.table.coalesced,
                "inflight": len(self.table),
            },
            "manifest_entries": self.manifest_entries,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "cache": self.cache.stats.as_dict() if self.cache is not None else None,
        }

    # -- manifest -------------------------------------------------------------

    def _manifest_get(self, digest: str) -> dict[str, Any] | None:
        with self._manifest_lock:
            return self._manifest.get(digest)

    def _manifest_record(
        self, digest: str, key: CacheKey, case: BenchmarkCase, entry: dict[str, Any]
    ) -> None:
        """Append one completed case (executor thread; idempotent)."""
        record = {
            "digest": digest,
            "key": key.as_dict(),
            "case": case_to_dict(case),
            "result": entry,
        }
        with self._manifest_lock:
            if digest in self._manifest:
                return
            self._manifest[digest] = record
            if self._manifest_path is not None:
                with self._manifest_path.open("a") as handle:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                    handle.flush()
            self._manifest_appends += 1
            appends = self._manifest_appends
        if self.chaos_kill_after is not None and appends >= self.chaos_kill_after:
            # Die like a real `kill -9`: manifest flushed, stream torn
            # mid-flight, no cleanup.  Deterministic because the compile
            # thread itself pulls the trigger after the N-th append.
            os.kill(os.getpid(), signal.SIGKILL)

    # -- request handling (event-loop side) -----------------------------------

    def _warm_entry(
        self, digest: str, key: CacheKey
    ) -> tuple[dict[str, Any] | None, str]:
        """A case's deterministic result entry if it is warm: manifest
        first, then a cache probe (restore only on a positive probe)."""
        entry = self._manifest_get(digest)
        if entry is not None:
            return entry["result"], "manifest"
        if self.cache is not None and self.cache.probe(key, "result"):
            payload = self.cache.get(key, "result")
            if payload is not None:
                return _deterministic_entry(payload), "cache"
        return None, ""

    def handle_compile_request(self, payload: Any) -> tuple[Any, dict[str, Any]]:
        """Route one parsed /compile body (must run on the event loop).

        Returns ``(queue_or_events, preamble)``: either a finished event
        list (warm/shed/bad request — nothing in flight) or a live
        subscription queue yielding events until a ``None`` sentinel.
        """
        self.stats.requests += 1
        try:
            spec = parse_request(payload)
        except RequestSpecError as err:
            self.stats.bad_requests += 1
            return [{"event": "request_failed", "error": str(err)}], {
                "status": 400
            }
        harness = self.harness_for(spec)
        cases = spec.cases()
        keys = [harness.result_key(case) for case in cases]
        digests = [key.digest("result") for key in keys]
        digest = request_digest(spec, harness)
        preamble = {
            "status": 200,
            "digest": digest,
            "cases": len(cases),
            "spec": spec.as_dict(),
        }

        flight = self.table.get(digest)
        if flight is None:
            # Warm fast path: only when *every* case is already served —
            # manifest or cache — do we answer without a flight.  (With a
            # flight in progress we join it instead: its stream already
            # carries these events.)
            warm: list[tuple[dict[str, Any], str]] = []
            for slot_digest, key in zip(digests, keys):
                entry, source = self._warm_entry(slot_digest, key)
                if entry is None:
                    break
                warm.append((entry, source))
            if len(warm) == len(cases):
                self.stats.warm_requests += 1
                events: list[dict[str, Any]] = []
                for index, ((entry, source), case, slot_digest) in enumerate(
                    zip(warm, cases, digests)
                ):
                    events.append(
                        _case_event(index + 1, case, entry, slot_digest, True, source)
                    )
                events.append(_complete_event(digest, [e for e, _ in warm]))
                self.stats.cases_streamed += len(cases)
                preamble.update(coalesced=False, warm=True)
                return events, preamble

        flight, leader = self.table.join(digest)
        preamble.update(coalesced=not leader, warm=False)
        if leader:
            if self._inflight >= self.max_inflight:
                self.table.abandon(flight)
                self.stats.shed += 1
                return [
                    {
                        "event": "request_shed",
                        "error": "service saturated; retry later",
                        "retry_after": self.retry_after,
                    }
                ], {"status": 429, "retry_after": self.retry_after}
            self._inflight += 1
            self.stats.dispatched += 1
            task = asyncio.get_running_loop().create_task(
                self._run_flight(flight, spec, harness, cases, keys, digests, digest)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        return flight.subscribe(), preamble

    async def _run_flight(
        self,
        flight: Flight,
        spec: RequestSpec,
        harness: EvaluationHarness,
        cases: list[BenchmarkCase],
        keys: list[CacheKey],
        digests: list[str],
        digest: str,
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            entries = await loop.run_in_executor(
                self._compile_pool,
                self._compile_sync,
                flight, harness, cases, keys, digests, loop,
            )
            flight.publish(_complete_event(digest, entries))
            self.table.finish(flight)
        except Exception as err:  # noqa: BLE001 - every failure must fan out
            self.stats.failed_flights += 1
            flight.publish(
                {
                    "event": "request_failed",
                    "digest": digest,
                    "error": f"{type(err).__name__}: {err}",
                }
            )
            self.table.finish(flight, error=str(err))
        finally:
            self._inflight -= 1

    def _compile_sync(
        self,
        flight: Flight,
        harness: EvaluationHarness,
        cases: list[BenchmarkCase],
        keys: list[CacheKey],
        digests: list[str],
        loop: asyncio.AbstractEventLoop,
    ) -> list[dict[str, Any]]:
        """Run one flight's cases on the compile executor thread.

        Manifest-resumed cases stream first (zero recompiles after a
        restart), then :meth:`run_matrix` handles the rest — cache-warm
        cases ahead of fresh compiles, every completion bridged back to
        the event loop thread-safely.
        """
        index = 0
        entries: list[dict[str, Any]] = []

        def publish(event: dict[str, Any]) -> None:
            self.stats.cases_streamed += 1
            loop.call_soon_threadsafe(flight.publish, event)

        pending: list[BenchmarkCase] = []
        key_by_case: dict[tuple, tuple[CacheKey, str]] = {}
        for case, key, slot_digest in zip(cases, keys, digests):
            entry = self._manifest_get(slot_digest)
            if entry is not None:
                index += 1
                entries.append(entry["result"])
                publish(
                    _case_event(
                        index, case, entry["result"], slot_digest, True, "manifest"
                    )
                )
                continue
            pending.append(case)
            key_by_case[_case_identity(case)] = (key, slot_digest)

        def on_result(
            case: BenchmarkCase, framework: str,
            result: FrameworkResult, cached: bool,
        ) -> None:
            nonlocal index
            index += 1
            key, slot_digest = key_by_case[_case_identity(case)]
            entry = _deterministic_entry(result.as_dict())
            entries.append(entry)
            if not cached:
                self.stats.cases_compiled += 1
            self._manifest_record(slot_digest, key, case, entry)
            publish(
                _case_event(
                    index, case, entry, slot_digest, cached,
                    "cache" if cached else "compile",
                )
            )

        if pending:
            harness.run_matrix(cases=pending, on_result=on_result)
        return entries

    # -- socket layer ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and serve; returns the bound port (``port=0`` = ephemeral)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        self._compile_pool.shutdown(wait=False, cancel_futures=True)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, body = await _read_http_request(reader)
        except (_HTTPError, asyncio.IncompleteReadError, ValueError) as err:
            status = err.status if isinstance(err, _HTTPError) else 400
            await _write_json(writer, status, {"error": str(err) or "bad request"})
            return
        except (ConnectionError, asyncio.LimitOverrunError):
            writer.close()
            return
        try:
            if method == "GET" and path == "/healthz":
                await _write_json(writer, 200, {"ok": True})
            elif method == "GET" and path == "/stats":
                await _write_json(writer, 200, self.stats_payload())
            elif method == "POST" and path == "/compile":
                await self._stream_compile(writer, body)
            else:
                await _write_json(
                    writer, 404, {"error": f"no route for {method} {path}"}
                )
        except (ConnectionError, asyncio.CancelledError):
            pass  # the client went away; the flight (if any) lives on
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _stream_compile(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as err:
            self.stats.bad_requests += 1
            await _write_json(writer, 400, {"error": f"request body is not JSON: {err}"})
            return
        source, preamble = self.handle_compile_request(payload)
        status = preamble.pop("status")
        if status != 200:
            extra_headers = []
            if "retry_after" in preamble:
                extra_headers.append(f"Retry-After: {max(1, round(preamble['retry_after']))}")
            event = source[0] if isinstance(source, list) and source else {}
            await _write_json(writer, status, event, extra_headers)
            return

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        async def emit(event: dict[str, Any]) -> None:
            writer.write(_jsonl(event))
            # Per-event drain: each client's backpressure is its own —
            # a slow reader fills only its socket buffer and its queue,
            # never the flight or another waiter.
            await writer.drain()

        await emit({"event": "request_accepted", **preamble})
        if isinstance(source, list):
            for event in source:
                await emit(event)
            return
        while True:
            event = await source.get()
            if event is None:
                break
            await emit(event)


# -- event shapes -------------------------------------------------------------


def _case_identity(case: BenchmarkCase) -> tuple:
    return (case.kernel, case.size.label, case.framework, case.variant)


def _case_event(
    index: int,
    case: BenchmarkCase,
    entry: dict[str, Any],
    digest: str,
    cached: bool,
    source: str,
) -> dict[str, Any]:
    return {
        "event": "case_result",
        "index": index,
        "label": case.label,
        "framework": case.framework,
        "variant": case.variant,
        "status": entry.get("status", "ok"),
        "cached": cached,
        "source": source,
        "digest": digest,
        "result": entry,
    }


def _complete_event(digest: str, entries: list[dict[str, Any]]) -> dict[str, Any]:
    return {
        "event": "request_complete",
        "ok": True,
        "digest": digest,
        "cases": len(entries),
        # merge_results sorts deterministically, so the final result set
        # is byte-identical no matter which order cases landed in.
        "results": merge_results(entries),
    }


def _jsonl(event: dict[str, Any]) -> bytes:
    return (json.dumps(event, sort_keys=True, ensure_ascii=False) + "\n").encode("utf-8")


# -- minimal HTTP/1.1 plumbing ------------------------------------------------


class _HTTPError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def _read_http_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes]:
    request_line = await reader.readline()
    if not request_line:
        raise _HTTPError(400, "empty request")
    try:
        method, path, _version = request_line.decode("latin-1").split(None, 2)
    except ValueError as err:
        raise _HTTPError(400, "malformed request line") from err
    headers: dict[str, str] = {}
    total = len(request_line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise _HTTPError(431, "request headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY_BYTES:
        raise _HTTPError(413, "request body too large")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, body


_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 413: "Payload Too Large",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


async def _write_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict[str, Any],
    extra_headers: list[str] | None = None,
) -> None:
    body = json.dumps(payload, sort_keys=True, ensure_ascii=False).encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
        *(extra_headers or []),
    ]
    writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


# -- in-thread wrapper (tests / benchmarks) -----------------------------------


class ServiceThread:
    """Run a :class:`CompileService` on a background event-loop thread.

    The blocking-client test battery and the soak benchmark drive a real
    served socket without subprocess overhead::

        with ServiceThread(cache=CompileCache(tmp)) as server:
            ServiceClient("127.0.0.1", server.port).healthz()
    """

    def __init__(self, host: str = "127.0.0.1", **service_kwargs: Any) -> None:
        self.service = CompileService(**service_kwargs)
        self.host = host
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    def __enter__(self) -> "ServiceThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            self.port = await self.service.start(self.host, 0)
            self._ready.set()

        self._loop.run_until_complete(boot())
        self._loop.run_forever()
        # Drain cancellations scheduled by stop() before closing the loop.
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._loop.close()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.service.stop(), self._loop)
        try:
            future.result(timeout=10)
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._loop = None


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="shmls-serve",
        description="Serve compile/evaluation requests over HTTP with JSONL "
        "streaming, single-flight coalescing and a warm-cache fast path",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8471,
                        help="bind port (0 = ephemeral; default 8471)")
    parser.add_argument("--port-file", default=None, metavar="FILE",
                        help="write the bound port here once listening "
                        "(how scripts discover an ephemeral --port 0)")
    parser.add_argument("--state-dir", default=".shmls-serve", metavar="DIR",
                        help="service state directory: the resumability "
                        "manifest lives here (default .shmls-serve)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed compile cache directory "
                        "(warm requests are answered straight from it)")
    parser.add_argument("--remote-cache-dir", default=None, metavar="DIR",
                        help="shared network cache tier behind --cache-dir")
    parser.add_argument("--cache-format", choices=CACHE_FORMATS, default="pickle",
                        help="compile-cache storage format (default pickle)")
    parser.add_argument("--shared-intern-table", default=None, metavar="DIR",
                        help="shared attribute intern table to open read-only "
                        "(cache hits resolve attribute references against it)")
    parser.add_argument("--max-inflight", type=int, default=4, metavar="N",
                        help="admission control: maximum queued+running "
                        "compile flights before shedding with 429 (default 4)")
    parser.add_argument("--compile-threads", type=int, default=1, metavar="N",
                        help="compile executor width (default 1: distinct "
                        "requests queue; identical ones coalesce regardless)")
    parser.add_argument("--retry-after", type=float, default=1.0, metavar="S",
                        help="Retry-After seconds suggested on 429 (default 1)")
    parser.add_argument("--chaos-kill-after", type=int, default=None, metavar="N",
                        help="fault injection (tests/CI): SIGKILL the server "
                        "after N manifest appends")
    args = parser.parse_args(argv)

    cache = None
    if args.cache_dir or args.remote_cache_dir:
        cache = CompileCache(
            args.cache_dir, remote_dir=args.remote_cache_dir, fmt=args.cache_format
        )
    if args.shared_intern_table:
        open_shared_table(args.shared_intern_table)
    service = CompileService(
        cache=cache,
        state_dir=args.state_dir,
        max_inflight=args.max_inflight,
        compile_threads=args.compile_threads,
        retry_after=args.retry_after,
        chaos_kill_after=args.chaos_kill_after,
    )

    async def serve() -> None:
        port = await service.start(args.host, args.port)
        if args.port_file:
            Path(args.port_file).write_text(f"{port}\n")
        print(
            f"shmls-serve listening on http://{args.host}:{port} "
            f"(state {args.state_dir}, manifest {service.manifest_entries} "
            f"entr{'y' if service.manifest_entries == 1 else 'ies'}, "
            f"max-inflight {args.max_inflight})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        await service.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
