"""Single-flight coalescing for identical in-flight requests.

The table maps a request's content address (:func:`~repro.service.spec.
request_digest`) to the one :class:`Flight` doing the work.  The first
joiner becomes the *leader* and runs the compile; every later joiner
subscribes to the same flight and receives the identical event sequence
— buffered events are replayed first, then live ones — so N coalesced
clients stream byte-identical result sets while exactly one compile
runs.

The table is an asyncio-native, loop-confined object: every method must
be called from the event-loop thread (the server bridges executor-thread
callbacks through ``loop.call_soon_threadsafe``), so no locks are
needed and there is no window in which a finished flight could be joined.

A flight that *fails* publishes a terminal error event to every waiter
and leaves the table just like a successful one: the in-flight table can
never wedge on an exception, and the next identical request starts a
fresh flight.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any


#: A queue entry signalling "no more events" to a subscriber.
_DONE = None


@dataclass
class Flight:
    """One in-flight request and its fan-out state."""

    key: str
    #: Every event published so far (replayed to late subscribers).
    events: list[dict[str, Any]] = field(default_factory=list)
    #: Live subscriber queues (one per streaming client).
    _queues: list[asyncio.Queue] = field(default_factory=list)
    #: How many requests this flight served (leader included).
    joiners: int = 1
    done: bool = False
    #: Terminal error message ('' = completed normally).
    error: str = ""

    def subscribe(self) -> asyncio.Queue:
        """A queue yielding this flight's events: all buffered ones first,
        then live ones, then a ``None`` sentinel once the flight is done."""
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.events:
            queue.put_nowait(event)
        if self.done:
            queue.put_nowait(_DONE)
        else:
            self._queues.append(queue)
        return queue

    def publish(self, event: dict[str, Any]) -> None:
        """Record ``event`` and push it to every live subscriber."""
        if self.done:
            raise RuntimeError(f"flight {self.key[:12]} already finished")
        self.events.append(event)
        for queue in self._queues:
            queue.put_nowait(event)

    def finish(self, error: str = "") -> None:
        """Mark the flight done (``error`` non-empty = failed) and release
        every subscriber.  Idempotent."""
        if self.done:
            return
        self.done = True
        self.error = error
        for queue in self._queues:
            queue.put_nowait(_DONE)
        self._queues.clear()


class SingleFlightTable:
    """The in-flight request table (loop-confined; see module docstring).

    >>> import asyncio
    >>> async def demo():
    ...     table = SingleFlightTable()
    ...     flight, leader = table.join("digest-a")
    ...     again, leader2 = table.join("digest-a")
    ...     assert flight is again and leader and not leader2
    ...     table.finish(flight)
    ...     fresh, leader3 = table.join("digest-a")
    ...     return flight is not fresh and leader3
    >>> asyncio.run(demo())
    True
    """

    def __init__(self) -> None:
        self._flights: dict[str, Flight] = {}
        #: Lifetime counters surfaced by the server's /stats endpoint.
        self.led = 0
        self.coalesced = 0

    def join(self, key: str) -> tuple[Flight, bool]:
        """The flight for ``key`` and whether the caller leads it.

        A leader is responsible for eventually calling :meth:`finish`
        (directly or through the server's compile task) — even on error —
        or the key would stay in-flight forever.
        """
        flight = self._flights.get(key)
        if flight is not None:
            flight.joiners += 1
            self.coalesced += 1
            return flight, False
        flight = Flight(key=key)
        self._flights[key] = flight
        self.led += 1
        return flight, True

    def abandon(self, flight: Flight) -> None:
        """Remove a flight that never ran (admission shed before launch):
        later identical requests must start fresh, not wait forever."""
        self.led -= 1
        if self._flights.get(flight.key) is flight:
            del self._flights[flight.key]

    def finish(self, flight: Flight, error: str = "") -> None:
        """Finish ``flight`` and drop it from the in-flight table."""
        flight.finish(error)
        if self._flights.get(flight.key) is flight:
            del self._flights[flight.key]

    def get(self, key: str) -> Flight | None:
        return self._flights.get(key)

    def __len__(self) -> int:
        return len(self._flights)
