"""A thin blocking client for the compile service.

Raw ``socket`` + HTTP/1.1 with ``Connection: close`` — nothing beyond
the standard library, matching the server.  The tests, the soak
benchmark and the CI smoke driver all speak through this module, and
:meth:`ServiceClient.compile_with_retry` is the reference reconnect
loop: on saturation (429) it sleeps the advertised ``Retry-After``; on a
mid-stream disconnect it simply re-POSTs the identical request — the
request's content address is stable, so the restarted server answers the
already-manifested cases warm and only compiles what never finished.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Iterator


class ServiceError(RuntimeError):
    """Base class for client-visible service failures."""


class ServiceSaturated(ServiceError):
    """The server shed the request (HTTP 429); retry after a delay."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RequestRejected(ServiceError):
    """The server rejected the request spec (HTTP 4xx other than 429)."""

    def __init__(self, message: str, status: int) -> None:
        super().__init__(message)
        self.status = status


class RequestFailed(ServiceError):
    """The flight itself failed: the terminal event was ``request_failed``."""


class StreamInterrupted(ServiceError):
    """The connection died before a terminal event arrived.

    ``events`` holds everything received so far, so a caller can resume
    (re-POST) and compare.
    """

    def __init__(self, message: str, events: list[dict[str, Any]]) -> None:
        super().__init__(message)
        self.events = events


class ServiceClient:
    """Blocking JSON/JSONL client bound to one ``host:port``."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: bytes = b""
    ) -> tuple[int, dict[str, str], Any]:
        """One request; returns ``(status, headers, body-file)``.

        The body file reads until EOF (the server always closes), which
        is what makes JSONL streaming a plain line iteration.
        """
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        sock.sendall(head + body)
        stream = sock.makefile("rb")
        status_line = stream.readline().decode("latin-1")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            stream.close()
            sock.close()
            raise StreamInterrupted(f"malformed status line {status_line!r}", [])
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = stream.readline().decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, stream

    def _json_request(self, method: str, path: str, payload: Any = None) -> Any:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        status, headers, stream = self._request(method, path, body)
        try:
            data = json.loads(stream.read() or b"null")
        finally:
            stream.close()
        if status != 200:
            self._raise_for_status(status, headers, data)
        return data

    @staticmethod
    def _raise_for_status(status: int, headers: dict[str, str], data: Any) -> None:
        message = (data or {}).get("error", f"HTTP {status}") if isinstance(data, dict) else f"HTTP {status}"
        if status == 429:
            retry_after = float(headers.get("retry-after", 1) or 1)
            if isinstance(data, dict) and "retry_after" in data:
                retry_after = float(data["retry_after"])
            raise ServiceSaturated(message, retry_after=retry_after)
        raise RequestRejected(message, status=status)

    # -- endpoints ------------------------------------------------------------

    def healthz(self) -> bool:
        return bool(self._json_request("GET", "/healthz").get("ok"))

    def stats(self) -> dict[str, Any]:
        return self._json_request("GET", "/stats")

    def compile_events(self, spec: dict[str, Any]) -> Iterator[dict[str, Any]]:
        """POST ``spec`` and yield the JSONL event stream as dicts.

        Raises :class:`ServiceSaturated` on 429, :class:`RequestRejected`
        on other 4xx, :class:`StreamInterrupted` if the connection dies
        before a terminal ``request_complete``/``request_failed`` event.
        """
        body = json.dumps(spec).encode("utf-8")
        status, headers, stream = self._request("POST", "/compile", body)
        if status != 200:
            try:
                data = json.loads(stream.read() or b"null")
            except json.JSONDecodeError:
                data = None
            finally:
                stream.close()
            self._raise_for_status(status, headers, data)
        events: list[dict[str, Any]] = []
        terminal = False
        try:
            for raw in stream:
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                event = json.loads(line)
                events.append(event)
                yield event
                if event.get("event") in ("request_complete", "request_failed"):
                    terminal = True
                    return
        except (OSError, json.JSONDecodeError) as err:
            raise StreamInterrupted(f"stream died mid-flight: {err}", events) from err
        finally:
            stream.close()
        if not terminal:
            raise StreamInterrupted(
                f"connection closed after {len(events)} event(s) with no terminal event",
                events,
            )

    def compile(self, spec: dict[str, Any]) -> dict[str, Any]:
        """POST ``spec``, collect the whole stream, return a summary dict:
        ``accepted`` (the preamble), ``events`` (per-case), ``complete``
        (the terminal event).  Raises :class:`RequestFailed` if the
        flight errored."""
        accepted: dict[str, Any] = {}
        case_events: list[dict[str, Any]] = []
        complete: dict[str, Any] = {}
        for event in self.compile_events(spec):
            kind = event.get("event")
            if kind == "request_accepted":
                accepted = event
            elif kind == "case_result":
                case_events.append(event)
            elif kind == "request_complete":
                complete = event
            elif kind == "request_failed":
                raise RequestFailed(event.get("error", "request failed"))
        return {"accepted": accepted, "events": case_events, "complete": complete}

    def compile_with_retry(
        self,
        spec: dict[str, Any],
        *,
        attempts: int = 20,
        reconnect_delay: float = 0.2,
    ) -> dict[str, Any]:
        """:meth:`compile` with the reference resume loop.

        Saturation sleeps the advertised ``Retry-After``; a mid-stream
        interruption (server killed, connection reset) waits
        ``reconnect_delay`` and re-POSTs the identical spec — resumption
        is free because the restarted server serves everything already in
        its manifest without recompiling.
        """
        last: ServiceError | None = None
        for _ in range(max(attempts, 1)):
            try:
                return self.compile(spec)
            except ServiceSaturated as err:
                last = err
                time.sleep(err.retry_after)
            except (StreamInterrupted, ConnectionError, OSError) as err:
                last = err if isinstance(err, ServiceError) else StreamInterrupted(str(err), [])
                time.sleep(reconnect_delay)
        raise ServiceError(f"request did not complete after {attempts} attempts: {last}")


def wait_for_service(
    host: str, port: int, *, timeout: float = 30.0, poll: float = 0.1
) -> ServiceClient:
    """Block until ``host:port`` answers /healthz (subprocess startup)."""
    client = ServiceClient(host, port, timeout=5.0)
    deadline = time.monotonic() + timeout
    while True:
        try:
            if client.healthz():
                return client
        except (ConnectionError, OSError, ServiceError):
            pass
        if time.monotonic() > deadline:
            raise TimeoutError(f"service at {host}:{port} did not come up in {timeout}s")
        time.sleep(poll)
