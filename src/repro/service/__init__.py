"""Compile-as-a-service front door.

The batch toolchain's primitives — streaming ``run_matrix(on_result=…)``,
result-stage :class:`~repro.core.compile_cache.CacheKey` digests, the
resumability manifest format and the tiered
:class:`~repro.core.compile_cache.CompileCache` — assembled into a
long-lived asyncio service (``shmls-serve``):

* :mod:`repro.service.spec` — canonical request specs: what a client
  POSTs, canonicalised so field/option/list order can never change the
  request's content address;
* :mod:`repro.service.singleflight` — the in-flight table coalescing
  identical requests into one compile whose events fan out to every
  waiter;
* :mod:`repro.service.server` — the HTTP + JSONL-streaming front door
  (warm cache fast path, admission control, manifest resume);
* :mod:`repro.service.client` — a thin blocking client used by the
  tests, the benchmarks and the CI smoke drivers.

See ``docs/service.md`` for the protocol and a two-client walkthrough.
"""

from repro.service.client import (
    RequestFailed,
    RequestRejected,
    ServiceClient,
    ServiceError,
    ServiceSaturated,
    StreamInterrupted,
    wait_for_service,
)
from repro.service.singleflight import Flight, SingleFlightTable
from repro.service.spec import (
    RequestSpec,
    RequestSpecError,
    parse_request,
    request_digest,
)

#: The server pulls in the whole evaluation stack, and importing it
#: eagerly here would also shadow `python -m repro.service.server`
#: (runpy warns about re-executing an already-imported module) — so its
#: two public names load lazily on first attribute access.
_SERVER_EXPORTS = ("CompileService", "ServiceThread")


def __getattr__(name: str) -> object:
    if name in _SERVER_EXPORTS:
        from repro.service import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CompileService",
    "Flight",
    "RequestFailed",
    "RequestRejected",
    "RequestSpec",
    "RequestSpecError",
    "ServiceClient",
    "ServiceError",
    "ServiceSaturated",
    "ServiceThread",
    "SingleFlightTable",
    "StreamInterrupted",
    "parse_request",
    "request_digest",
    "wait_for_service",
]
