"""Canonical compile-request specs for the service front door.

A client POSTs a JSON object naming what to evaluate::

    {"kernel": "pw_advection", "sizes": ["8M"],
     "frameworks": ["Stencil-HMLS"], "variants": ["staged", "depth-8"],
     "device": "Alveo U280", "repeats": 1}

:func:`parse_request` validates and *canonicalises* it into a frozen
:class:`RequestSpec`: singular/plural field spellings collapse
(``size``/``sizes``), lists are deduplicated and reordered into the
registry order of the harness tables, raw pipeline specs are
canonicalised through
:func:`~repro.ir.pass_registry.canonical_pipeline_spec` (so option order
inside ``{…}`` braces cannot matter), and unknown fields are rejected.

The spec's content address (:func:`request_digest`) is computed from the
*result-stage cache-key digests* of the expanded cases — each of which
already embeds the module fingerprint, the canonicalised pipeline spec,
the framework, the device and the repeat count.  Two requests that could
reuse each other's work therefore hash identically no matter how their
JSON was spelled, which is exactly the key the single-flight table
coalesces on and the key the cache answers warm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.baselines import ALL_FRAMEWORKS
from repro.core.compile_cache import CacheKey
from repro.evaluation.harness import (
    FRAMEWORKS_BY_NAME,
    KERNEL_SIZES,
    PIPELINE_VARIANTS,
    BenchmarkCase,
    EvaluationHarness,
    expand_matrix_slots,
)
from repro.fpga.device import ALVEO_U280, device_by_name
from repro.ir.hashing import fingerprint_text
from repro.ir.pass_registry import PipelineParseError, canonical_pipeline_spec


class RequestSpecError(ValueError):
    """A malformed or unsatisfiable request (the server answers 400)."""


#: Fields a request JSON object may carry (singular forms are aliases).
_KNOWN_FIELDS = {
    "kernel", "kernels", "size", "sizes", "framework", "frameworks",
    "variant", "variants", "device", "repeats",
}


@dataclass(frozen=True)
class RequestSpec:
    """One canonicalised compile request (a mini scenario matrix).

    Instances are only built by :func:`parse_request`; the field tuples
    are already validated, deduplicated and canonically ordered, so two
    specs describing the same work compare (and hash) equal.
    """

    kernels: tuple[str, ...]
    sizes: tuple[str, ...]
    frameworks: tuple[str, ...]
    variants: tuple[str, ...]
    device: str = ALVEO_U280.name
    repeats: int = 1

    def cases(self) -> list[BenchmarkCase]:
        """The fully-pinned benchmark cases this request expands to, in
        deterministic case-major order (the stream order)."""
        expanded = [
            BenchmarkCase(kernel, KERNEL_SIZES[kernel][size], None, variant)
            for kernel in self.kernels
            for size in self.sizes
            if size in KERNEL_SIZES[kernel]
            for variant in self.variants
        ]
        return [
            BenchmarkCase(case.kernel, case.size, name, case.variant)
            for case, name in expand_matrix_slots(expanded, list(self.frameworks))
        ]

    def result_keys(self, harness: EvaluationHarness) -> list[CacheKey]:
        """Result-stage cache keys of every expanded case, stream order."""
        return [harness.result_key(case) for case in self.cases()]

    def as_dict(self) -> dict[str, Any]:
        """The canonical JSON form (what the server echoes back)."""
        return {
            "kernels": list(self.kernels),
            "sizes": list(self.sizes),
            "frameworks": list(self.frameworks),
            "variants": list(self.variants),
            "device": self.device,
            "repeats": self.repeats,
        }


def _listify(payload: dict[str, Any], singular: str, plural: str) -> list[Any]:
    """Collect ``singular``/``plural`` spellings into one list."""
    if singular in payload and plural in payload:
        raise RequestSpecError(f"give either '{singular}' or '{plural}', not both")
    value = payload.get(plural, payload.get(singular))
    if value is None:
        return []
    if isinstance(value, (str, int, float)):
        return [value]
    if isinstance(value, list):
        return list(value)
    raise RequestSpecError(f"'{plural}' must be a string or a list of strings")


def _ordered_unique(values: Sequence[str], order: Sequence[str]) -> tuple[str, ...]:
    """Dedup ``values`` and reorder them into registry ``order`` — the
    canonicalisation that makes list permutations irrelevant."""
    chosen = set(values)
    return tuple(entry for entry in order if entry in chosen)


def parse_request(payload: Any) -> RequestSpec:
    """Validate + canonicalise one request JSON object.

    Raises :class:`RequestSpecError` with a client-presentable message on
    anything malformed: unknown fields, kernels, sizes, frameworks,
    variants or devices, unparsable raw pipeline specs, bad repeats.

    >>> spec = parse_request({"kernel": "pw_advection", "size": "8M"})
    >>> spec.kernels, spec.sizes, spec.frameworks
    (('pw_advection',), ('8M',), ('Stencil-HMLS',))
    >>> parse_request({"kernel": "pw_advection", "size": "8M",
    ...                "variants": ["depth-8", "staged"]}) == parse_request(
    ...     {"size": "8M", "kernel": "pw_advection",
    ...      "variants": ["staged", "depth-8", "staged"]})
    True
    """
    if not isinstance(payload, dict):
        raise RequestSpecError("request body must be a JSON object")
    unknown = set(payload) - _KNOWN_FIELDS
    if unknown:
        raise RequestSpecError(
            f"unknown request field(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(_KNOWN_FIELDS))})"
        )

    kernels = [str(k) for k in _listify(payload, "kernel", "kernels")]
    if not kernels:
        raise RequestSpecError("request needs a 'kernel' (or 'kernels') field")
    for kernel in kernels:
        if kernel not in KERNEL_SIZES:
            raise RequestSpecError(
                f"unknown kernel '{kernel}' (known: {', '.join(KERNEL_SIZES)})"
            )
    kernels = _ordered_unique(kernels, list(KERNEL_SIZES))

    sizes = [str(s) for s in _listify(payload, "size", "sizes")]
    if not sizes:
        raise RequestSpecError("request needs a 'size' (or 'sizes') field")
    #: Size labels shared by table order of the *first* kernel that knows
    #: them; each must be known to at least one requested kernel.
    size_order: list[str] = []
    for kernel in kernels:
        for label in KERNEL_SIZES[kernel]:
            if label not in size_order:
                size_order.append(label)
    for size in sizes:
        if size not in size_order:
            raise RequestSpecError(
                f"unknown problem size '{size}' for kernel(s) "
                f"{', '.join(kernels)} (known: {', '.join(size_order)})"
            )
    sizes = _ordered_unique(sizes, size_order)

    frameworks = [str(f) for f in _listify(payload, "framework", "frameworks")]
    if not frameworks:
        frameworks = ["Stencil-HMLS"]
    for name in frameworks:
        if name not in FRAMEWORKS_BY_NAME:
            raise RequestSpecError(
                f"unknown framework '{name}' "
                f"(known: {', '.join(FRAMEWORKS_BY_NAME)})"
            )
    frameworks = _ordered_unique(frameworks, [cls.name for cls in ALL_FRAMEWORKS])

    raw_variants = [str(v) for v in _listify(payload, "variant", "variants")]
    if not raw_variants:
        raw_variants = ["default"]
    variants: list[str] = []
    for variant in raw_variants:
        if variant in PIPELINE_VARIANTS:
            variants.append(variant)
            continue
        # A raw textual pipeline spec: canonicalise it so option spelling
        # and ordering inside {…} cannot produce distinct requests.
        try:
            variants.append(canonical_pipeline_spec(variant))
        except (PipelineParseError, KeyError, ValueError) as err:
            raise RequestSpecError(
                f"unknown variant or unparsable pipeline spec {variant!r}: {err}"
            ) from err
    named = [v for v in PIPELINE_VARIANTS if v in set(variants)]
    raw = sorted(set(variants) - set(PIPELINE_VARIANTS))
    variants = tuple(named + raw)
    if any(v != "default" for v in variants) and "Stencil-HMLS" not in frameworks:
        raise RequestSpecError(
            "non-default pipeline variants need the Stencil-HMLS framework"
        )

    device = str(payload.get("device", ALVEO_U280.name))
    try:
        device = device_by_name(device).name  # canonical capitalisation
    except KeyError as err:
        raise RequestSpecError(err.args[0]) from err

    repeats = payload.get("repeats", 1)
    if not isinstance(repeats, int) or isinstance(repeats, bool) or repeats < 1:
        raise RequestSpecError(f"'repeats' must be a positive integer, got {repeats!r}")

    spec = RequestSpec(
        kernels=kernels,
        sizes=sizes,
        frameworks=frameworks,
        variants=variants,
        device=device,
        repeats=repeats,
    )
    if not spec.cases():
        raise RequestSpecError(
            "request expands to zero cases (no requested size is defined "
            "for any requested kernel)"
        )
    return spec


def request_digest(spec: RequestSpec, harness: EvaluationHarness) -> str:
    """Content address of one request: a fingerprint over the *sorted*
    result-stage cache-key digests of its expanded cases.

    Each per-case digest embeds the module fingerprint, the canonicalised
    pipeline spec of the variant, the framework, the device and the
    repeat count — so digest equality means "the same compiled artefacts
    answer both requests", which is the exact condition under which the
    single-flight table may coalesce them.
    """
    digests = sorted(key.digest("result") for key in spec.result_keys(harness))
    return fingerprint_text("\x1f".join(digests))
