"""Behavioural model of directly feeding the C kernel to AMD Xilinx Vitis HLS.

This is the "HLS" column of the paper's figures/tables: the stencil kernel
ported to C and synthesised without any restructuring.  The resulting code
keeps its Von-Neumann structure (the same structure our
:class:`~repro.transforms.stencil_to_scf.StencilToSCFPass` produces), so
every loop iteration performs its external-memory reads and writes in-line:
the initiation interval is dominated by the external read latency plus the
floating point chain plus the write latency (~163 on the tracer advection
critical path, §4), resources are small and independent of the problem size.
"""

from __future__ import annotations

from repro.baselines.base import Framework, FrameworkArtifact
from repro.dialects.builtin import ModuleOp
from repro.fpga.resource_model import estimate_loop_kernel
from repro.fpga.synthesis import KernelDesign, StageTiming
from repro.transforms.stencil_analysis import StencilKernelAnalysis

#: Latency components of the un-optimised loop body (cycles).
EXTERNAL_READ_LATENCY = 70
EXTERNAL_WRITE_LATENCY = 65
CYCLES_PER_FLOP = 3


def von_neumann_ii(analysis: StencilKernelAnalysis) -> int:
    """II of a loop nest that reads/computes/writes external memory in-line."""
    flops = max(
        (stage.flops for stage in analysis.stages), default=1
    )
    return EXTERNAL_READ_LATENCY + CYCLES_PER_FLOP * flops + EXTERNAL_WRITE_LATENCY


class VitisHLSFramework(Framework):
    name = "Vitis HLS"
    supports_multi_bank = True      # connectivity written by hand, as in the paper
    supports_cu_replication = False

    #: Extra II multiplier (1.0 for plain Vitis; SODA-opt overrides).
    ii_scale: float = 1.0
    pipeline_depth_scale: float = 1.2

    def compile(self, stencil_module: ModuleOp, **options) -> FrameworkArtifact:
        analysis = self._analyse(stencil_module)
        interfaces = self.default_interfaces(analysis, bundle_small_data=True)
        ports = len({i.bundle for i in interfaces if i.protocol == "m_axi"})
        resources = estimate_loop_kernel(
            num_stages=analysis.num_stencil_stages,
            flops_per_point=analysis.total_flops_per_point // max(analysis.num_stencil_stages, 1),
            num_ports=ports,
            pipeline_depth_scale=self.pipeline_depth_scale,
        )
        ii = max(int(von_neumann_ii(analysis) * self.ii_scale), 1)
        design = KernelDesign(
            kernel_name=f"{analysis.func_name}_{self.name.lower().replace(' ', '_').replace('-', '_')}",
            framework=self.name,
            device=self.device,
            clock_mhz=self.device.default_clock_mhz,
            compute_units=1,
            ports_per_cu=ports,
            resources=resources,
            interfaces=interfaces,
            notes=[f"critical-path II={ii}"],
        )
        points = analysis.domain_points
        for stage in analysis.stages:
            design.add_group(
                [
                    StageTiming(
                        name=f"loop_nest_{stage.index}",
                        kind="compute",
                        ii=ii,
                        depth=ii + 40,
                        trip_count=points,
                    )
                ]
            )
        reads_per_stage = 3
        design.bytes_moved = analysis.num_stencil_stages * reads_per_stage * analysis.total_grid_points * 8
        return FrameworkArtifact(self.name, design, analysis, notes=list(design.notes))
