"""Comparator frameworks.

Behavioural models of the four state-of-the-art flows the paper compares
against (§2.1, §4), plus a wrapper giving Stencil-HMLS the same interface so
the evaluation harness treats every framework uniformly.

Each model consumes the *same* stencil-dialect module as Stencil-HMLS and
produces a :class:`~repro.fpga.synthesis.KernelDesign` reflecting how that
flow structures the kernel (initiation interval, sequential vs dataflow
stages, compute-unit replication, memory-bank assignment, resource
footprint), including the failure modes reported in the paper (DaCe's lack
of automatic multi-bank assignment, SODA-opt's disabled unrolling and
removed buffers, StencilFlow's deadlock on PW advection and unsupported
subselections on tracer advection).
"""

from repro.baselines.base import (
    CompilationFailure,
    DeadlockError,
    Framework,
    FrameworkArtifact,
    FrameworkError,
    UnsupportedKernelError,
)
from repro.baselines.dace import DaCeFramework
from repro.baselines.soda import SODAOptFramework
from repro.baselines.vitis import VitisHLSFramework
from repro.baselines.stencilflow import StencilFlowFramework
from repro.baselines.stencil_hmls import StencilHMLSFramework

ALL_FRAMEWORKS = (
    StencilHMLSFramework,
    DaCeFramework,
    SODAOptFramework,
    VitisHLSFramework,
    StencilFlowFramework,
)

__all__ = [
    "ALL_FRAMEWORKS",
    "CompilationFailure",
    "DaCeFramework",
    "DeadlockError",
    "Framework",
    "FrameworkArtifact",
    "FrameworkError",
    "SODAOptFramework",
    "StencilFlowFramework",
    "StencilHMLSFramework",
    "UnsupportedKernelError",
    "VitisHLSFramework",
]
