"""Behavioural model of the SODA-opt flow.

SODA-opt performs MLIR-level design space exploration (unrolling, buffer
allocation) and feeds the AMD Xilinx backend with LLVM-IR.  Behaviours
reproduced from §4 of the paper:

* loop unrolling had to be disabled on the U280 — even a single full unroll
  produced a pipeline too large for the device's resources;
* the memory buffers SODA-opt generates become ``malloc`` calls in the IR,
  which the AMD Xilinx backend cannot handle, so they were disabled: the
  kernel reads external memory directly, like the plain Vitis HLS port;
* the resulting initiation interval is essentially that of the naive code
  (164 vs 163 on the tracer advection critical path), with the PW advection
  variant slightly worse still (lowest overall performance on that kernel);
* resource usage is small and flat across problem sizes.
"""

from __future__ import annotations

from repro.baselines.base import FrameworkArtifact
from repro.baselines.vitis import VitisHLSFramework
from repro.dialects.builtin import ModuleOp
from repro.fpga.resource_model import ResourceUsage


class SODAOptFramework(VitisHLSFramework):
    name = "SODA-opt"
    supports_multi_bank = True
    supports_cu_replication = False

    #: Slightly worse than the plain Vitis code: the outlined affine regions
    #: add handshaking overhead once unrolling and local buffers are disabled
    #: (the paper reports II=164 for SODA-opt vs 163 for Vitis on the tracer
    #: advection critical path).
    ii_scale = 1.02
    pipeline_depth_scale = 1.0

    def compile(self, stencil_module: ModuleOp, **options) -> FrameworkArtifact:
        artifact = super().compile(stencil_module, **options)
        artifact.design.kernel_name = artifact.design.kernel_name.replace("vitis_hls", "soda_opt")
        artifact.notes.extend(
            [
                "loop unrolling disabled: full-unroll pipeline does not fit the U280",
                "SODA-opt local buffers disabled: malloc is incompatible with the AMD Xilinx backend",
            ]
        )
        artifact.design.notes.extend(artifact.notes[-2:])
        # No local buffers at all: shave the BRAM the naive flow spends on its
        # small read caches so resources stay flat and minimal.
        res = artifact.design.resources
        artifact.design.resources = ResourceUsage(
            luts=int(res.luts * 0.80),
            flip_flops=res.flip_flops,
            bram_36k=max(res.bram_36k - 2, 1),
            uram=res.uram,
            dsps=res.dsps,
        )
        return artifact
