"""Common interface shared by all framework models."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.plan import InterfaceSpec
from repro.dialects.builtin import ModuleOp
from repro.fpga.dataflow_sim import TimingModel, TimingReport
from repro.fpga.device import ALVEO_U280, FPGADevice
from repro.fpga.power_model import PowerModel, PowerReport
from repro.fpga.synthesis import KernelDesign
from repro.fpga.xclbin import Xclbin
from repro.transforms.stencil_analysis import StencilKernelAnalysis, analyse_module


class FrameworkError(Exception):
    """Base class of all framework-level failures."""


class CompilationFailure(FrameworkError):
    """The flow could not produce a bitstream for this kernel / problem size."""


class DeadlockError(FrameworkError):
    """The generated design deadlocks at run time (never completes)."""


class UnsupportedKernelError(FrameworkError):
    """The kernel uses constructs the flow cannot express."""


@dataclass
class FrameworkArtifact:
    """What a framework's compile step produces."""

    framework: str
    design: KernelDesign
    analysis: StencilKernelAnalysis
    xclbin: Xclbin | None = None
    notes: list[str] = field(default_factory=list)
    #: Per-pass timing/change statistics of the compilation, when the
    #: framework's flow is pass-based (:class:`~repro.ir.passes.PassStatistics`).
    pass_statistics: list = field(default_factory=list)

    @property
    def achieved_ii(self) -> int:
        return self.design.achieved_ii

    def estimate_performance(self) -> TimingReport:
        points = self.analysis.domain_points
        return TimingModel().estimate(self.design, points)

    def estimate_power(self, timing: TimingReport | None = None) -> PowerReport:
        timing = timing or self.estimate_performance()
        model = PowerModel(self.design.device)
        return model.estimate(
            self.design.resources,
            activity=timing.activity,
            sustained_bandwidth_gbs=timing.sustained_bandwidth_gbs,
            runtime_s=timing.runtime_s,
            clock_mhz=self.design.clock_mhz,
        )

    def utilisation(self) -> dict[str, float]:
        return self.design.utilisation()


class Framework:
    """Base class: compile a stencil module for a device, model its execution."""

    name: str = "framework"
    #: Whether the flow can assign buffers to multiple HBM banks automatically
    #: (or, as for Stencil-HMLS / SODA-opt / Vitis, with hand-written
    #: connectivity files, which the paper counts as supported).
    supports_multi_bank: bool = True
    #: Whether the flow can replicate compute units.
    supports_cu_replication: bool = True

    def __init__(self, device: FPGADevice = ALVEO_U280) -> None:
        self.device = device

    # -- to implement -------------------------------------------------------------

    def compile(self, stencil_module: ModuleOp, **options) -> FrameworkArtifact:
        raise NotImplementedError

    def execute(self, artifact: FrameworkArtifact) -> TimingReport:
        """Model one kernel execution; may raise :class:`DeadlockError`."""
        return artifact.estimate_performance()

    # -- helpers -------------------------------------------------------------------

    def _analyse(self, stencil_module: ModuleOp) -> StencilKernelAnalysis:
        return analyse_module(stencil_module)

    @staticmethod
    def default_interfaces(analysis: StencilKernelAnalysis, bundle_small_data: bool = True) -> list[InterfaceSpec]:
        """One m_axi bundle per field argument, plus one for the small data."""
        interfaces: list[InterfaceSpec] = []
        for info in analysis.arguments:
            if info.is_field:
                interfaces.append(
                    InterfaceSpec(info.name, f"gmem_{info.name}", "m_axi",
                                  "out" if info.kind == "field_output" else "in")
                )
            elif info.kind == "small_data":
                bundle = "gmem_small" if bundle_small_data else f"gmem_{info.name}"
                interfaces.append(InterfaceSpec(info.name, bundle, "m_axi", "in", is_small_data=True))
            else:
                interfaces.append(InterfaceSpec(info.name, "control", "s_axilite", "in"))
        return interfaces

    @staticmethod
    def field_bytes(analysis: StencilKernelAnalysis) -> dict[str, int]:
        return {
            info.name: info.num_elements * info.element_bits // 8
            for info in analysis.arguments
            if info.is_field or info.kind == "small_data"
        }
