"""Behavioural model of the DaCe FPGA flow.

DaCe (and StencilFlow on top of it) compiles Python programs into Stateful
Dataflow Multigraphs and generates HLS C++ for the Vitis frontend.  The
relevant behaviours reproduced from §4 of the paper:

* the generated code achieves an initiation interval of ~9 on these kernels;
* each stencil computation remains a separate, sequentially executed map —
  there is no per-field dataflow split;
* there is no option to replicate compute units (results are for 1 CU);
* multi-bank HBM assignment is not automatic, so every buffer must fit in a
  single 256 MB bank — the 134M-point PW advection case therefore fails to
  compile;
* resource usage: LUT-heavy relative to Stencil-HMLS (deep pipelines in the
  generated C++), much less BRAM (no shift buffers in local memory).
"""

from __future__ import annotations

from repro.baselines.base import CompilationFailure, Framework, FrameworkArtifact
from repro.dialects.builtin import ModuleOp
from repro.fpga.hbm import HBMAllocationError, HBMAllocator
from repro.fpga.resource_model import ResourceUsage, estimate_loop_kernel
from repro.fpga.synthesis import KernelDesign, StageTiming

#: Initiation interval of the DaCe-generated pipelines on these kernels (§4).
DACE_II = 9

#: Fixed cost of the SDFG orchestration / glue logic DaCe emits around the
#: computational maps (streams, access nodes, inter-state control), which is
#: what makes the DaCe designs comparatively LUT-heavy in Tables 1 and 2.
SDFG_OVERHEAD_LUT = 70_000
SDFG_OVERHEAD_FF = 45_000
SDFG_OVERHEAD_BRAM = 18


class DaCeFramework(Framework):
    name = "DaCe"
    supports_multi_bank = False
    supports_cu_replication = False

    def compile(self, stencil_module: ModuleOp, **options) -> FrameworkArtifact:
        analysis = self._analyse(stencil_module)

        # DaCe generates the connectivity file automatically but cannot split
        # a buffer across banks: each field must fit within one bank.
        try:
            HBMAllocator(self.device, multi_bank=False).allocate(self.field_bytes(analysis))
        except HBMAllocationError as err:
            raise CompilationFailure(
                f"DaCe cannot compile this problem size: {err}"
            ) from err

        interfaces = self.default_interfaces(analysis, bundle_small_data=False)
        ports = len({i.bundle for i in interfaces if i.protocol == "m_axi"})
        resources = estimate_loop_kernel(
            num_stages=analysis.num_stencil_stages,
            flops_per_point=analysis.total_flops_per_point,
            num_ports=ports,
            pipeline_depth_scale=4.0,   # deeply pipelined generated C++
        ) + ResourceUsage(
            luts=SDFG_OVERHEAD_LUT,
            flip_flops=SDFG_OVERHEAD_FF,
            bram_36k=SDFG_OVERHEAD_BRAM,
        )
        design = KernelDesign(
            kernel_name=f"{analysis.func_name}_dace",
            framework=self.name,
            device=self.device,
            clock_mhz=self.device.default_clock_mhz,
            compute_units=1,
            ports_per_cu=ports,
            resources=resources,
            interfaces=interfaces,
            notes=["single compute unit (no replication support)",
                   "II=9 reported by Vitis HLS for the generated code"],
        )
        points = analysis.domain_points
        # Each stencil map executes sequentially at II=9.
        for stage in analysis.stages:
            design.add_group(
                [
                    StageTiming(
                        name=f"sdfg_map_{stage.index}",
                        kind="compute",
                        ii=DACE_II,
                        depth=180,
                        trip_count=points,
                    )
                ]
            )
        fields_per_stage = 3
        design.bytes_moved = analysis.num_stencil_stages * fields_per_stage * analysis.total_grid_points * 8
        return FrameworkArtifact(self.name, design, analysis, notes=list(design.notes))
