"""Behavioural model of StencilFlow.

StencilFlow maps stencil programs described in JSON onto spatial dataflow
pipelines on top of DaCe.  Behaviours reproduced from §4 of the paper:

* the PW advection kernel compiles (its resource usage appears in Table 1,
  close to Stencil-HMLS's: it also builds shift-buffer pipelines and reaches
  an II of 1) but the generated design never completes execution — a likely
  deadlock — so no runtime numbers exist;
* the tracer advection kernel cannot be expressed at all because StencilFlow
  lacks support for the subselections that benchmark relies on;
* being built on DaCe, it inherits the single-bank limitation, so the
  134M-point PW advection case cannot be handled either.
"""

from __future__ import annotations

from repro.baselines.base import (
    CompilationFailure,
    DeadlockError,
    Framework,
    FrameworkArtifact,
    UnsupportedKernelError,
)
from repro.dialects.builtin import ModuleOp
from repro.fpga.dataflow_sim import TimingReport
from repro.fpga.hbm import HBMAllocationError, HBMAllocator
from repro.fpga.resource_model import ResourceUsage, estimate_loop_kernel
from repro.fpga.synthesis import KernelDesign, StageTiming

#: Stencil chains deeper than this cannot be expressed without subselections.
MAX_EXPRESSIBLE_STAGES = 8


class StencilFlowFramework(Framework):
    name = "StencilFlow"
    supports_multi_bank = False
    supports_cu_replication = False

    def compile(self, stencil_module: ModuleOp, **options) -> FrameworkArtifact:
        analysis = self._analyse(stencil_module)

        if analysis.num_stencil_stages > MAX_EXPRESSIBLE_STAGES or analysis.num_waves > 4:
            raise UnsupportedKernelError(
                "StencilFlow cannot express this kernel: the chained stencil "
                "computations require subselections, which are not supported"
            )

        try:
            HBMAllocator(self.device, multi_bank=False).allocate(self.field_bytes(analysis))
        except HBMAllocationError as err:
            raise CompilationFailure(str(err)) from err

        interfaces = self.default_interfaces(analysis, bundle_small_data=False)
        ports = len({i.bundle for i in interfaces if i.protocol == "m_axi"})

        # StencilFlow builds a shift-buffer pipeline much like ours, so its
        # footprint resembles Stencil-HMLS's (Table 1) with some extra routing.
        plane = 1
        for extent in analysis.grid_shape[1:]:
            plane *= extent
        buffer_bits = len(analysis.field_inputs) * 3 * analysis.max_radius * plane * 64 * 4
        resources = estimate_loop_kernel(
            num_stages=analysis.num_stencil_stages * 3,
            flops_per_point=analysis.total_flops_per_point,
            num_ports=ports,
            local_buffer_bits=buffer_bits,
            pipeline_depth_scale=2.5,
        )
        resources = resources + ResourceUsage(dsps=analysis.total_flops_per_point * 6)

        design = KernelDesign(
            kernel_name=f"{analysis.func_name}_stencilflow",
            framework=self.name,
            device=self.device,
            clock_mhz=self.device.default_clock_mhz,
            compute_units=1,
            ports_per_cu=ports,
            resources=resources,
            interfaces=interfaces,
            notes=["II=1 dataflow pipeline", "execution deadlocks (no runtime numbers)"],
        )
        group = [
            StageTiming(name=f"sf_stage_{stage.index}", kind="compute", ii=1,
                        depth=120, trip_count=analysis.domain_points)
            for stage in analysis.stages
        ]
        design.add_group(group)
        design.bytes_moved = (
            (len(analysis.field_inputs) + len(analysis.field_outputs))
            * analysis.total_grid_points * 8
        )
        return FrameworkArtifact(self.name, design, analysis, notes=list(design.notes))

    def execute(self, artifact: FrameworkArtifact) -> TimingReport:
        raise DeadlockError(
            "StencilFlow design did not complete execution within 10 minutes "
            "(likely deadlock between dataflow stages)"
        )
