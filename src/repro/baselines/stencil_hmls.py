"""Stencil-HMLS wrapped in the common framework interface."""

from __future__ import annotations

from repro.baselines.base import CompilationFailure, Framework, FrameworkArtifact
from repro.core.compile_cache import CompileCache
from repro.core.config import CompilerOptions
from repro.core.pipeline import StencilHMLSCompiler
from repro.dialects.builtin import ModuleOp
from repro.fpga.device import ALVEO_U280, FPGADevice
from repro.fpga.hbm import HBMAllocationError
from repro.fpga.synthesis import SynthesisError


class StencilHMLSFramework(Framework):
    """The paper's contribution, driven exactly like the baselines."""

    name = "Stencil-HMLS"
    supports_multi_bank = True
    supports_cu_replication = True

    def __init__(
        self,
        device: FPGADevice = ALVEO_U280,
        options: CompilerOptions | None = None,
        pass_pipeline: str | None = None,
        cache: CompileCache | None = None,
    ) -> None:
        super().__init__(device)
        self.options = options or CompilerOptions()
        self.pass_pipeline = pass_pipeline
        self.cache = cache

    def compile(self, stencil_module: ModuleOp, **options) -> FrameworkArtifact:
        compiler = StencilHMLSCompiler(
            self.options, self.device, pass_pipeline=self.pass_pipeline, cache=self.cache
        )
        try:
            xclbin = compiler.compile(stencil_module)
        except (SynthesisError, HBMAllocationError) as err:
            raise CompilationFailure(str(err)) from err
        return FrameworkArtifact(
            framework=self.name,
            design=xclbin.design,
            analysis=xclbin.plan.analysis,
            xclbin=xclbin,
            notes=list(xclbin.design.notes),
            pass_statistics=list(compiler.pass_statistics),
        )
