"""The f++ preprocessing step (§3.2).

Responsibilities replicated from the paper:

* identify the annotation calls produced by the HLS→LLVM lowering via
  pattern matching on the callee name, and replace them with the
  corresponding metadata: pipeline and unroll annotations are attached to
  the innermost enclosing loop (f++ "makes use of LLVM passes that determine
  where in the loop tree the call was found"); dataflow and interface
  annotations are attached to the enclosing function;
* verify that every stream satisfies the two legality conditions the AMD
  Xilinx backend imposes (pointer-to-struct type, and a
  ``llvm.fpga.set.stream.depth`` call on the first struct element obtained
  through a ``getelementptr`` with offset ``[0, 0]``);
* link the module against the dataflow runtime by recording which runtime
  functions the generated code requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.core import Operation
from repro.ir.attributes import IntAttr, StringAttr, UnitAttr
from repro.ir.types import LLVMStructType
from repro.dialects import llvm as llvm_d, scf
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import CallOp, FuncOp
from repro.transforms.hls_to_llvm import (
    ARRAY_PARTITION_PREFIX,
    DATAFLOW_ANNOTATION,
    INTERFACE_ANNOTATION,
    PIPELINE_PREFIX,
    UNROLL_PREFIX,
)

#: Runtime functions f++ links against (the C++ runtime of the paper).
RUNTIME_FUNCTION_PREFIXES = ("load_data", "shift_buffer", "write_data", "duplicate_")


class FPPError(Exception):
    """Raised when the IR violates a constraint of the AMD Xilinx backend."""


@dataclass
class FPPReport:
    """What f++ did to the module, for inspection and testing."""

    pipelined_loops: int = 0
    unrolled_loops: int = 0
    dataflow_functions: int = 0
    interface_annotations: int = 0
    array_partitions: int = 0
    streams_checked: int = 0
    runtime_functions: list[str] = field(default_factory=list)
    kernel_functions: list[str] = field(default_factory=list)

    @property
    def total_directives(self) -> int:
        return (
            self.pipelined_loops
            + self.unrolled_loops
            + self.dataflow_functions
            + self.interface_annotations
            + self.array_partitions
        )


def _enclosing_loop(op: Operation) -> Operation | None:
    parent = op.parent_op()
    while parent is not None:
        if isinstance(parent, (scf.ForOp, scf.ParallelOp, scf.WhileOp)):
            return parent
        parent = parent.parent_op()
    return None


def _enclosing_func(op: Operation) -> FuncOp | None:
    parent = op.parent_op()
    while parent is not None:
        if isinstance(parent, FuncOp):
            return parent
        parent = parent.parent_op()
    return None


def run_fpp(module: ModuleOp, *, strict: bool = True) -> FPPReport:
    """Rewrite annotation calls into metadata and validate stream legality."""
    report = FPPReport()

    # --- directive rewriting -------------------------------------------------
    for op in list(module.walk()):
        if not isinstance(op, CallOp) or op.parent is None:
            continue
        callee = op.callee
        if callee.startswith(PIPELINE_PREFIX):
            loop = _enclosing_loop(op)
            target = loop if loop is not None else _enclosing_func(op)
            if target is None:
                raise FPPError("pipeline annotation found outside any loop or function")
            target.attributes["llvm.loop.pipeline.ii"] = IntAttr(int(callee[len(PIPELINE_PREFIX):]))
            op.erase()
            report.pipelined_loops += 1
        elif callee.startswith(UNROLL_PREFIX):
            loop = _enclosing_loop(op)
            if loop is None:
                raise FPPError("unroll annotation found outside any loop")
            loop.attributes["llvm.loop.unroll.count"] = IntAttr(int(callee[len(UNROLL_PREFIX):]))
            op.erase()
            report.unrolled_loops += 1
        elif callee == DATAFLOW_ANNOTATION:
            func = _enclosing_func(op)
            if func is None:
                raise FPPError("dataflow annotation found outside any function")
            func.attributes["fpga.dataflow.func"] = UnitAttr()
            op.erase()
            report.dataflow_functions += 1
        elif callee == INTERFACE_ANNOTATION:
            func = _enclosing_func(op)
            if func is None:
                raise FPPError("interface annotation found outside any function")
            arg = op.operands[0]
            arg_name = arg.name_hint or f"arg{getattr(arg, 'index', 0)}"
            bundle = op.attributes.get("bundle", StringAttr("gmem0")).data
            protocol = op.attributes.get("protocol", StringAttr("m_axi")).data
            func.attributes[f"fpga.interface.{arg_name}"] = StringAttr(f"{protocol}:{bundle}")
            op.erase()
            report.interface_annotations += 1
        elif callee.startswith(ARRAY_PARTITION_PREFIX):
            func = _enclosing_func(op)
            if func is not None:
                func.attributes.setdefault("xlx.array.partition", IntAttr(0))
                func.attributes["xlx.array.partition"] = IntAttr(
                    func.attributes["xlx.array.partition"].value + 1
                )
            op.erase()
            report.array_partitions += 1

    # --- stream legality checks -----------------------------------------------
    streams_with_depth: set[int] = set()
    for op in module.walk():
        if isinstance(op, llvm_d.CallOp) and op.callee == llvm_d.SET_STREAM_DEPTH_INTRINSIC:
            pointer = op.operands[0]
            owner = getattr(pointer, "op", None)
            if not isinstance(owner, llvm_d.GEPOp) or owner.indices[:2] != (0, 0):
                if strict:
                    raise FPPError(
                        "llvm.fpga.set.stream.depth must be applied to the first "
                        "struct element obtained through getelementptr [0, 0]"
                    )
                continue
            base = owner.pointer
            base_owner = getattr(base, "op", None)
            if isinstance(base_owner, llvm_d.AllocaOp):
                streams_with_depth.add(id(base_owner))

    for op in module.walk():
        if isinstance(op, llvm_d.AllocaOp) and isinstance(op.pointee_type, LLVMStructType):
            report.streams_checked += 1
            if not llvm_d.is_legal_stream_type(op.result.type):
                raise FPPError(f"illegal stream type {op.result.type}")
            if strict and id(op) not in streams_with_depth:
                raise FPPError(
                    "stream allocation without a matching llvm.fpga.set.stream.depth call"
                )

    # --- runtime linking -------------------------------------------------------
    for op in module.body.ops:
        if isinstance(op, FuncOp) and op.is_declaration:
            if op.sym_name.startswith(RUNTIME_FUNCTION_PREFIXES):
                report.runtime_functions.append(op.sym_name)
        elif isinstance(op, FuncOp) and "hls.kernel" in op.attributes:
            report.kernel_functions.append(op.sym_name)

    return report
