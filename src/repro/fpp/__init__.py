"""f++ — the LLVM-IR preprocessing tool of the flow.

The paper's f++ (developed for Fortran-HLS and reused here) takes the
LLVM-IR produced by the HLS-dialect lowering, pattern-matches the calls to
the directive-encoding annotation functions and replaces them with the
intrinsics or metadata the AMD Xilinx HLS backend understands, taking the
loop-nest structure into account for pipelining and unrolling.  It also
links the generated IR against the dataflow runtime.
"""

from repro.fpp.preprocessor import FPPReport, FPPError, run_fpp

__all__ = ["FPPError", "FPPReport", "run_fpp"]
