"""arith dialect: scalar integer and floating point arithmetic."""

from __future__ import annotations

import operator
from typing import Callable

from repro.ir.core import Attribute, Operation, Pure, SSAValue, VerifyException
from repro.ir.attributes import FloatAttr, IntAttr, StringAttr
from repro.ir.types import FloatType, IndexType, IntegerType, f64, i1, i64, index


class ConstantOp(Operation):
    """``arith.constant`` — materialise an integer/float/index constant."""

    name = "arith.constant"
    traits = frozenset([Pure])

    def __init__(self, value: IntAttr | FloatAttr) -> None:
        super().__init__(result_types=[value.type], attributes={"value": value})

    @classmethod
    def from_int(cls, value: int, type: Attribute = i64) -> "ConstantOp":
        return cls(IntAttr(value, type))

    @classmethod
    def from_index(cls, value: int) -> "ConstantOp":
        return cls(IntAttr(value, index))

    @classmethod
    def from_float(cls, value: float, type: Attribute = f64) -> "ConstantOp":
        return cls(FloatAttr(value, type))

    @property
    def value(self):
        return self.attributes["value"].value

    def verify_(self) -> None:
        if self.attributes["value"].type != self.result.type:
            raise VerifyException("arith.constant: attribute/result type mismatch")


class _BinaryOp(Operation):
    """Shared implementation for elementwise binary scalar operations."""

    traits = frozenset([Pure])
    py_func: Callable = operator.add
    requires_float = False
    requires_int = False

    def __init__(self, lhs: SSAValue, rhs: SSAValue, result_type: Attribute | None = None) -> None:
        super().__init__(operands=[lhs, rhs], result_types=[result_type or lhs.type])

    @property
    def lhs(self) -> SSAValue:
        return self.operands[0]

    @property
    def rhs(self) -> SSAValue:
        return self.operands[1]

    def verify_(self) -> None:
        lhs_t, rhs_t = self.lhs.type, self.rhs.type
        if lhs_t != rhs_t:
            raise VerifyException(f"{self.name}: operand types differ ({lhs_t} vs {rhs_t})")
        if self.requires_float and not isinstance(lhs_t, FloatType):
            raise VerifyException(f"{self.name}: requires floating point operands, got {lhs_t}")
        if self.requires_int and not isinstance(lhs_t, (IntegerType, IndexType)):
            raise VerifyException(f"{self.name}: requires integer operands, got {lhs_t}")


class AddfOp(_BinaryOp):
    name = "arith.addf"
    py_func = operator.add
    requires_float = True


class SubfOp(_BinaryOp):
    name = "arith.subf"
    py_func = operator.sub
    requires_float = True


class MulfOp(_BinaryOp):
    name = "arith.mulf"
    py_func = operator.mul
    requires_float = True


class DivfOp(_BinaryOp):
    name = "arith.divf"
    py_func = operator.truediv
    requires_float = True


class MaximumfOp(_BinaryOp):
    name = "arith.maximumf"
    py_func = max
    requires_float = True


class MinimumfOp(_BinaryOp):
    name = "arith.minimumf"
    py_func = min
    requires_float = True


class AddiOp(_BinaryOp):
    name = "arith.addi"
    py_func = operator.add
    requires_int = True


class SubiOp(_BinaryOp):
    name = "arith.subi"
    py_func = operator.sub
    requires_int = True


class MuliOp(_BinaryOp):
    name = "arith.muli"
    py_func = operator.mul
    requires_int = True


class DivsiOp(_BinaryOp):
    name = "arith.divsi"
    py_func = operator.floordiv
    requires_int = True


class RemsiOp(_BinaryOp):
    name = "arith.remsi"
    py_func = operator.mod
    requires_int = True


class MaxsiOp(_BinaryOp):
    name = "arith.maxsi"
    py_func = max
    requires_int = True


class MinsiOp(_BinaryOp):
    name = "arith.minsi"
    py_func = min
    requires_int = True


class NegfOp(Operation):
    name = "arith.negf"
    traits = frozenset([Pure])

    def __init__(self, operand: SSAValue) -> None:
        super().__init__(operands=[operand], result_types=[operand.type])

    @property
    def operand(self) -> SSAValue:
        return self.operands[0]


_CMPF_PREDICATES = {
    "oeq": operator.eq,
    "one": operator.ne,
    "olt": operator.lt,
    "ole": operator.le,
    "ogt": operator.gt,
    "oge": operator.ge,
}

_CMPI_PREDICATES = {
    "eq": operator.eq,
    "ne": operator.ne,
    "slt": operator.lt,
    "sle": operator.le,
    "sgt": operator.gt,
    "sge": operator.ge,
    "ult": operator.lt,
    "ule": operator.le,
    "ugt": operator.gt,
    "uge": operator.ge,
}


class CmpfOp(Operation):
    """``arith.cmpf`` — ordered floating point comparison, yields ``i1``."""

    name = "arith.cmpf"
    traits = frozenset([Pure])

    def __init__(self, predicate: str, lhs: SSAValue, rhs: SSAValue) -> None:
        if predicate not in _CMPF_PREDICATES:
            raise VerifyException(f"arith.cmpf: unknown predicate '{predicate}'")
        super().__init__(
            operands=[lhs, rhs],
            result_types=[i1],
            attributes={"predicate": StringAttr(predicate)},
        )

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"].data

    @property
    def py_func(self) -> Callable:
        return _CMPF_PREDICATES[self.predicate]


class CmpiOp(Operation):
    """``arith.cmpi`` — integer comparison, yields ``i1``."""

    name = "arith.cmpi"
    traits = frozenset([Pure])

    def __init__(self, predicate: str, lhs: SSAValue, rhs: SSAValue) -> None:
        if predicate not in _CMPI_PREDICATES:
            raise VerifyException(f"arith.cmpi: unknown predicate '{predicate}'")
        super().__init__(
            operands=[lhs, rhs],
            result_types=[i1],
            attributes={"predicate": StringAttr(predicate)},
        )

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"].data

    @property
    def py_func(self) -> Callable:
        return _CMPI_PREDICATES[self.predicate]


class SelectOp(Operation):
    """``arith.select`` — ternary select on an ``i1`` condition."""

    name = "arith.select"
    traits = frozenset([Pure])

    def __init__(self, condition: SSAValue, true_value: SSAValue, false_value: SSAValue) -> None:
        super().__init__(
            operands=[condition, true_value, false_value],
            result_types=[true_value.type],
        )

    @property
    def condition(self) -> SSAValue:
        return self.operands[0]

    @property
    def true_value(self) -> SSAValue:
        return self.operands[1]

    @property
    def false_value(self) -> SSAValue:
        return self.operands[2]

    def verify_(self) -> None:
        if self.true_value.type != self.false_value.type:
            raise VerifyException("arith.select: branch value types differ")


class IndexCastOp(Operation):
    """``arith.index_cast`` — convert between index and integer types."""

    name = "arith.index_cast"
    traits = frozenset([Pure])

    def __init__(self, operand: SSAValue, result_type: Attribute) -> None:
        super().__init__(operands=[operand], result_types=[result_type])

    @property
    def input(self) -> SSAValue:
        return self.operands[0]


class SIToFPOp(Operation):
    name = "arith.sitofp"
    traits = frozenset([Pure])

    def __init__(self, operand: SSAValue, result_type: Attribute = f64) -> None:
        super().__init__(operands=[operand], result_types=[result_type])

    @property
    def input(self) -> SSAValue:
        return self.operands[0]


class FPToSIOp(Operation):
    name = "arith.fptosi"
    traits = frozenset([Pure])

    def __init__(self, operand: SSAValue, result_type: Attribute = i64) -> None:
        super().__init__(operands=[operand], result_types=[result_type])

    @property
    def input(self) -> SSAValue:
        return self.operands[0]


class ExtFOp(Operation):
    name = "arith.extf"
    traits = frozenset([Pure])

    def __init__(self, operand: SSAValue, result_type: Attribute = f64) -> None:
        super().__init__(operands=[operand], result_types=[result_type])


class TruncFOp(Operation):
    name = "arith.truncf"
    traits = frozenset([Pure])

    def __init__(self, operand: SSAValue, result_type: Attribute) -> None:
        super().__init__(operands=[operand], result_types=[result_type])


#: All binary arithmetic op classes, used by the interpreter and cost models.
BINARY_OPS = (
    AddfOp, SubfOp, MulfOp, DivfOp, MaximumfOp, MinimumfOp,
    AddiOp, SubiOp, MuliOp, DivsiOp, RemsiOp, MaxsiOp, MinsiOp,
)
