"""MLIR-style dialects used by the Stencil-HMLS flow.

* ``builtin``, ``arith``, ``math``, ``func``, ``scf``, ``memref``, ``llvm`` —
  the standard dialects the paper's lowering relies on.
* ``stencil`` — the MLIR stencil dialect produced by the PSyclone / Devito /
  Flang frontends.
* ``hls`` — the paper's new dialect abstracting Vitis HLS dataflow concepts.
"""
