"""Builtin dialect: the module container and conversion casts."""

from __future__ import annotations

from typing import Sequence

from repro.ir.core import Attribute, Block, Operation, Region
from repro.ir.attributes import StringAttr

# Re-export the type and attribute constructors so dialect users can write
# ``from repro.dialects.builtin import f64, IntAttr`` like they would in xDSL.
from repro.ir.types import (  # noqa: F401
    DYNAMIC,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    LLVMArrayType,
    LLVMPointerType,
    LLVMStructType,
    LLVMVoidType,
    MemRefType,
    NoneType,
    TensorType,
    VectorType,
    bitwidth_of,
    f16,
    f32,
    f64,
    i1,
    i8,
    i32,
    i64,
    index,
    packed_interface_type,
)
from repro.ir.attributes import (  # noqa: F401
    ArrayAttr,
    BoolAttr,
    DenseIntArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    py_value,
    unit,
)


class ModuleOp(Operation):
    """Top-level container; all compilation pipelines operate on a module."""

    name = "builtin.module"

    def __init__(self, ops: Sequence[Operation] = (), attributes: dict | None = None) -> None:
        body = Block()
        body.add_ops(ops)
        super().__init__(regions=[Region([body])], attributes=attributes)

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    def add_op(self, op: Operation) -> Operation:
        return self.body.add_op(op)

    def get_symbol(self, name: str) -> Operation | None:
        """Look up a symbol-defining operation (e.g. a function) by name."""
        for op in self.body.ops:
            sym = op.attributes.get("sym_name")
            if isinstance(sym, StringAttr) and sym.data == name:
                return op
        return None


class UnrealizedConversionCastOp(Operation):
    """Bridges values across dialect type systems during progressive lowering."""

    name = "builtin.unrealized_conversion_cast"

    def __init__(self, operand, result_type: Attribute) -> None:
        super().__init__(operands=[operand], result_types=[result_type])

    @property
    def input(self):
        return self.operands[0]
