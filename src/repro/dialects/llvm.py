"""llvm dialect (subset): the operations the HLS→LLVM lowering emits.

The paper's lowering (§3.2) produces LLVM-IR in which

* HLS directives appear as calls to empty void functions with well-known
  names (so they do not perturb the IR structure), and
* HLS streams appear as pointers to single-element structs, with a call to
  the ``llvm.fpga.set.stream.depth`` intrinsic on the first struct element
  obtained through a ``getelementptr`` with offset ``[0, 0]``.

This module provides exactly that vocabulary.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.core import Attribute, IsTerminator, Operation, Pure, SSAValue, VerifyException
from repro.ir.attributes import ArrayAttr, IntAttr, StringAttr, TypeAttr
from repro.ir.types import LLVMPointerType, LLVMStructType, LLVMVoidType, i32, i64

#: Name of the Vitis intrinsic that declares a stream's FIFO depth.
SET_STREAM_DEPTH_INTRINSIC = "llvm.fpga.set.stream.depth"


class LLVMFuncOp(Operation):
    """``llvm.func`` — declaration of an external function / intrinsic."""

    name = "llvm.func"

    def __init__(self, sym_name: str, arg_types: Sequence[Attribute], result_type: Attribute | None = None) -> None:
        super().__init__(
            attributes={
                "sym_name": StringAttr(sym_name),
                "arg_types": ArrayAttr([TypeAttr(t) for t in arg_types]),
                "result_type": TypeAttr(result_type if result_type is not None else LLVMVoidType()),
            }
        )

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].data


class CallOp(Operation):
    """``llvm.call`` — call to a named function (possibly an annotation)."""

    name = "llvm.call"

    def __init__(
        self,
        callee: str,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[Attribute] = (),
    ) -> None:
        super().__init__(
            operands=operands,
            result_types=result_types,
            attributes={"callee": StringAttr(callee)},
        )

    @property
    def callee(self) -> str:
        return self.attributes["callee"].data


class AllocaOp(Operation):
    """``llvm.alloca`` — allocate stack storage, yielding a typed pointer."""

    name = "llvm.alloca"

    def __init__(self, count: SSAValue, pointee_type: Attribute) -> None:
        super().__init__(
            operands=[count],
            result_types=[LLVMPointerType(pointee_type)],
            attributes={"elem_type": TypeAttr(pointee_type)},
        )

    @property
    def pointee_type(self) -> Attribute:
        return self.attributes["elem_type"].type


class GEPOp(Operation):
    """``llvm.getelementptr`` — pointer arithmetic with constant indices.

    The offsets are stored as an attribute; offset ``[0, 0]`` on a stream
    struct pointer yields the pointer to the first element that the
    ``set.stream.depth`` intrinsic requires (§3.2 condition 2).
    """

    name = "llvm.getelementptr"
    traits = frozenset([Pure])

    def __init__(self, pointer: SSAValue, indices: Sequence[int], result_pointee: Attribute) -> None:
        super().__init__(
            operands=[pointer],
            result_types=[LLVMPointerType(result_pointee)],
            attributes={
                "rawConstantIndices": ArrayAttr([IntAttr(i, i32) for i in indices]),
            },
        )

    @property
    def pointer(self) -> SSAValue:
        return self.operands[0]

    @property
    def indices(self) -> tuple[int, ...]:
        return tuple(a.value for a in self.attributes["rawConstantIndices"].data)

    def verify_(self) -> None:
        if not isinstance(self.pointer.type, LLVMPointerType):
            raise VerifyException("llvm.getelementptr: operand must be a pointer")


class LoadOp(Operation):
    name = "llvm.load"

    def __init__(self, pointer: SSAValue, result_type: Attribute) -> None:
        super().__init__(operands=[pointer], result_types=[result_type])

    @property
    def pointer(self) -> SSAValue:
        return self.operands[0]


class StoreOp(Operation):
    name = "llvm.store"

    def __init__(self, value: SSAValue, pointer: SSAValue) -> None:
        super().__init__(operands=[value, pointer])

    @property
    def value(self) -> SSAValue:
        return self.operands[0]

    @property
    def pointer(self) -> SSAValue:
        return self.operands[1]


class UndefOp(Operation):
    name = "llvm.mlir.undef"
    traits = frozenset([Pure])

    def __init__(self, result_type: Attribute) -> None:
        super().__init__(result_types=[result_type])


class ConstantOp(Operation):
    name = "llvm.mlir.constant"
    traits = frozenset([Pure])

    def __init__(self, value: int, result_type: Attribute = i64) -> None:
        super().__init__(
            result_types=[result_type],
            attributes={"value": IntAttr(int(value), i64)},
        )

    @property
    def value(self) -> int:
        return self.attributes["value"].value


class ExtractValueOp(Operation):
    """``llvm.extractvalue`` — read a field of a struct/array SSA value."""

    name = "llvm.extractvalue"
    traits = frozenset([Pure])

    def __init__(self, container: SSAValue, indices: Sequence[int], result_type: Attribute) -> None:
        super().__init__(
            operands=[container],
            result_types=[result_type],
            attributes={"position": ArrayAttr([IntAttr(i, i64) for i in indices])},
        )

    @property
    def position(self) -> tuple[int, ...]:
        return tuple(a.value for a in self.attributes["position"].data)


class InsertValueOp(Operation):
    """``llvm.insertvalue`` — write a field of a struct/array SSA value."""

    name = "llvm.insertvalue"
    traits = frozenset([Pure])

    def __init__(self, container: SSAValue, value: SSAValue, indices: Sequence[int]) -> None:
        super().__init__(
            operands=[container, value],
            result_types=[container.type],
            attributes={"position": ArrayAttr([IntAttr(i, i64) for i in indices])},
        )

    @property
    def position(self) -> tuple[int, ...]:
        return tuple(a.value for a in self.attributes["position"].data)


class ReturnOp(Operation):
    name = "llvm.return"
    traits = frozenset([IsTerminator])

    def __init__(self, operands: Sequence[SSAValue] = ()) -> None:
        super().__init__(operands=operands)


def is_legal_stream_type(type_: Attribute) -> bool:
    """Check the Vitis stream legality condition 1 of §3.2.

    A legal stream is a pointer to a struct; the element type of the stream
    is the (single) type contained within the struct.
    """
    return (
        isinstance(type_, LLVMPointerType)
        and isinstance(type_.pointee, LLVMStructType)
        and len(type_.pointee.element_types) >= 1
    )


def stream_element_type(type_: Attribute) -> Attribute:
    if not is_legal_stream_type(type_):
        raise VerifyException(f"{type_} is not a legal Vitis stream type")
    return type_.pointee.element_types[0]
