"""func dialect: functions, calls and returns."""

from __future__ import annotations

from typing import Sequence

from repro.ir.core import (
    Attribute,
    Block,
    IsTerminator,
    Operation,
    Region,
    SSAValue,
    VerifyException,
)
from repro.ir.attributes import StringAttr, TypeAttr
from repro.ir.types import FunctionType


class FuncOp(Operation):
    """``func.func`` — a named function.

    A function with an empty body region acts as a declaration (this is how
    the HLS→LLVM lowering encodes directive functions and the runtime's
    ``load_data`` / ``shift_buffer`` / ``write_data`` externals).
    """

    name = "func.func"

    def __init__(
        self,
        sym_name: str,
        function_type: FunctionType,
        body: Region | None = None,
        visibility: str = "public",
        attributes: dict[str, Attribute] | None = None,
    ) -> None:
        attrs: dict[str, Attribute] = dict(attributes or {})
        attrs["sym_name"] = StringAttr(sym_name)
        attrs["function_type"] = TypeAttr(function_type)
        attrs["visibility"] = StringAttr(visibility)
        regions = [body if body is not None else Region()]
        super().__init__(attributes=attrs, regions=regions)

    @classmethod
    def declaration(cls, sym_name: str, inputs: Sequence[Attribute], outputs: Sequence[Attribute]) -> "FuncOp":
        return cls(sym_name, FunctionType(inputs, outputs), visibility="private")

    @classmethod
    def with_body(
        cls,
        sym_name: str,
        inputs: Sequence[Attribute],
        outputs: Sequence[Attribute],
        attributes: dict[str, Attribute] | None = None,
    ) -> "FuncOp":
        """Create a function with a single entry block whose args match ``inputs``."""
        body = Region([Block(inputs)])
        return cls(sym_name, FunctionType(inputs, outputs), body=body, attributes=attributes)

    # -- accessors -----------------------------------------------------------

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].data

    @property
    def function_type(self) -> FunctionType:
        return self.attributes["function_type"].type

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def is_declaration(self) -> bool:
        return not self.body.blocks or not self.body.blocks[0].ops

    @property
    def entry_block(self) -> Block:
        if not self.body.blocks:
            raise VerifyException(f"function '{self.sym_name}' has no body")
        return self.body.blocks[0]

    @property
    def args(self) -> tuple[SSAValue, ...]:
        return tuple(self.entry_block.args)

    def set_function_type(self, function_type: FunctionType) -> None:
        self.attributes["function_type"] = TypeAttr(function_type)

    def verify_(self) -> None:
        if self.body.blocks and self.body.blocks[0].ops:
            entry = self.body.blocks[0]
            if len(entry.args) != len(self.function_type.inputs):
                raise VerifyException(
                    f"func.func '{self.sym_name}': entry block has {len(entry.args)} "
                    f"arguments but the type declares {len(self.function_type.inputs)}"
                )


class ReturnOp(Operation):
    """``func.return`` — terminator returning values from a function."""

    name = "func.return"
    traits = frozenset([IsTerminator])

    def __init__(self, operands: Sequence[SSAValue] = ()) -> None:
        super().__init__(operands=operands)


class CallOp(Operation):
    """``func.call`` — direct call to a named function.

    Calls to void functions with well-known names are the vehicle the paper
    uses to carry HLS directives through LLVM-IR (see §3.2); ``f++`` later
    pattern-matches those names.
    """

    name = "func.call"

    def __init__(
        self,
        callee: str,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[Attribute] = (),
    ) -> None:
        super().__init__(
            operands=operands,
            result_types=result_types,
            attributes={"callee": StringAttr(callee)},
        )

    @property
    def callee(self) -> str:
        return self.attributes["callee"].data
