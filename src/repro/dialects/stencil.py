"""stencil dialect: high-level representation of stencil computations.

This mirrors the MLIR/xDSL stencil dialect that PSyclone, Devito and Flang
lower into (§2.2.1 of the paper).  The central operation is
``stencil.apply``: a region executed for every grid cell, reading
neighbouring values through ``stencil.access`` with relative offsets and
producing the cell's outputs through ``stencil.return``.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.core import (
    Attribute,
    Block,
    IsTerminator,
    Operation,
    Pure,
    Region,
    SSAValue,
    TypeAttribute,
    VerifyException,
)
from repro.ir.attributes import DenseIntArrayAttr, IntAttr
from repro.ir.types import DYNAMIC


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


class FieldType(TypeAttribute):
    """``!stencil.field<[lb,ub]x...xT>`` — a grid field backed by external memory."""

    name = "stencil.field"

    def __init__(self, bounds: Sequence[tuple[int, int]], element_type: Attribute) -> None:
        self.bounds = tuple((int(lb), int(ub)) for lb, ub in bounds)
        self.element_type = element_type
        for lb, ub in self.bounds:
            if ub < lb:
                raise VerifyException(f"field bound [{lb},{ub}] is empty")

    def parameters(self) -> tuple:
        return (self.bounds, self.element_type)

    @property
    def rank(self) -> int:
        return len(self.bounds)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(ub - lb for lb, ub in self.bounds)

    @property
    def num_elements(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    def __str__(self) -> str:
        dims = "x".join(f"[{lb},{ub}]" for lb, ub in self.bounds)
        return f"!stencil.field<{dims}x{self.element_type}>"


class TempType(TypeAttribute):
    """``!stencil.temp<?x...xT>`` — a value-semantics temporary grid."""

    name = "stencil.temp"

    def __init__(self, shape: Sequence[int], element_type: Attribute) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.element_type = element_type

    def parameters(self) -> tuple:
        return (self.shape, self.element_type)

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def has_static_shape(self) -> bool:
        return all(dim != DYNAMIC for dim in self.shape)

    def __str__(self) -> str:
        dims = "x".join("?" if d == DYNAMIC else str(d) for d in self.shape)
        return f"!stencil.temp<{dims}x{self.element_type}>"


class ResultType(TypeAttribute):
    """``!stencil.result<T>`` — per-cell result produced inside an apply."""

    name = "stencil.result"

    def __init__(self, element_type: Attribute) -> None:
        self.element_type = element_type

    def parameters(self) -> tuple:
        return (self.element_type,)

    def __str__(self) -> str:
        return f"!stencil.result<{self.element_type}>"


def dynamic_temp_like(field: FieldType) -> TempType:
    """A rank-matching fully dynamic temp type (what ``stencil.load`` yields)."""
    return TempType([DYNAMIC] * field.rank, field.element_type)


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------


class ExternalLoadOp(Operation):
    """``stencil.external_load`` — view external memory (a memref) as a field."""

    name = "stencil.external_load"

    def __init__(self, source: SSAValue, field_type: FieldType) -> None:
        super().__init__(operands=[source], result_types=[field_type])

    @property
    def source(self) -> SSAValue:
        return self.operands[0]

    @property
    def field(self) -> SSAValue:
        return self.result

    def verify_(self) -> None:
        if not isinstance(self.result.type, FieldType):
            raise VerifyException("stencil.external_load: result must be a field")


class ExternalStoreOp(Operation):
    """``stencil.external_store`` — write a field back to external memory."""

    name = "stencil.external_store"

    def __init__(self, field: SSAValue, target: SSAValue) -> None:
        super().__init__(operands=[field, target])

    @property
    def field(self) -> SSAValue:
        return self.operands[0]

    @property
    def target(self) -> SSAValue:
        return self.operands[1]


class LoadOp(Operation):
    """``stencil.load`` — make a field readable inside apply regions."""

    name = "stencil.load"
    traits = frozenset([Pure])

    def __init__(self, field: SSAValue, temp_type: TempType | None = None) -> None:
        if temp_type is None:
            if not isinstance(field.type, FieldType):
                raise VerifyException("stencil.load: operand must be a field")
            temp_type = dynamic_temp_like(field.type)
        super().__init__(operands=[field], result_types=[temp_type])

    @property
    def field(self) -> SSAValue:
        return self.operands[0]

    @property
    def temp(self) -> SSAValue:
        return self.result


class StoreOp(Operation):
    """``stencil.store`` — write a temp into a field over an index range."""

    name = "stencil.store"

    def __init__(
        self,
        temp: SSAValue,
        field: SSAValue,
        lower_bound: Sequence[int],
        upper_bound: Sequence[int],
    ) -> None:
        super().__init__(
            operands=[temp, field],
            attributes={
                "lb": DenseIntArrayAttr(lower_bound),
                "ub": DenseIntArrayAttr(upper_bound),
            },
        )

    @property
    def temp(self) -> SSAValue:
        return self.operands[0]

    @property
    def field(self) -> SSAValue:
        return self.operands[1]

    @property
    def lower_bound(self) -> tuple[int, ...]:
        return self.attributes["lb"].as_tuple()

    @property
    def upper_bound(self) -> tuple[int, ...]:
        return self.attributes["ub"].as_tuple()

    def verify_(self) -> None:
        lb, ub = self.lower_bound, self.upper_bound
        if len(lb) != len(ub):
            raise VerifyException("stencil.store: bound ranks differ")
        if any(u < l for l, u in zip(lb, ub)):
            raise VerifyException("stencil.store: empty bounds")
        if not isinstance(self.field.type, FieldType):
            raise VerifyException("stencil.store: target must be a field")


class ApplyOp(Operation):
    """``stencil.apply`` — the per-grid-cell computation.

    The region's block takes one argument per operand (in order); results
    are temps, one per value carried by the terminating ``stencil.return``.
    """

    name = "stencil.apply"

    def __init__(
        self,
        operands: Sequence[SSAValue],
        result_types: Sequence[TempType],
        body: Region | None = None,
    ) -> None:
        if body is None:
            body = Region([Block([o.type for o in operands])])
        super().__init__(operands=operands, result_types=result_types, regions=[body])

    @classmethod
    def build(cls, operands: Sequence[SSAValue], result_types: Sequence[TempType]) -> "ApplyOp":
        return cls(operands, result_types)

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def block_args(self) -> tuple[SSAValue, ...]:
        return tuple(self.body.args)

    def arg_for_operand(self, operand: SSAValue) -> SSAValue:
        """The block argument corresponding to a given operand."""
        for i, op_operand in enumerate(self.operands):
            if op_operand is operand:
                return self.body.args[i]
        raise ValueError("value is not an operand of this apply")

    def operand_for_arg(self, arg: SSAValue) -> SSAValue:
        for i, block_arg in enumerate(self.body.args):
            if block_arg is arg:
                return self.operands[i]
        raise ValueError("value is not a block argument of this apply")

    @property
    def return_op(self) -> "ReturnOp":
        terminator = self.body.terminator
        if not isinstance(terminator, ReturnOp):
            raise VerifyException("stencil.apply: body must end in stencil.return")
        return terminator

    def verify_(self) -> None:
        if len(self.body.args) != len(self.operands):
            raise VerifyException(
                "stencil.apply: region must take one block argument per operand"
            )
        terminator = self.body.terminator
        if not isinstance(terminator, ReturnOp):
            raise VerifyException("stencil.apply: body must end in stencil.return")
        if len(terminator.operands) != len(self.results):
            raise VerifyException(
                "stencil.apply: stencil.return carries "
                f"{len(terminator.operands)} values but the op has {len(self.results)} results"
            )


class AccessOp(Operation):
    """``stencil.access`` — read a neighbouring cell at a relative offset."""

    name = "stencil.access"
    traits = frozenset([Pure])

    def __init__(self, temp: SSAValue, offset: Sequence[int]) -> None:
        element_type = getattr(temp.type, "element_type", None)
        if element_type is None:
            raise VerifyException("stencil.access: operand must be a stencil temp")
        super().__init__(
            operands=[temp],
            result_types=[element_type],
            attributes={"offset": DenseIntArrayAttr(offset)},
        )

    @property
    def temp(self) -> SSAValue:
        return self.operands[0]

    @property
    def offset(self) -> tuple[int, ...]:
        return self.attributes["offset"].as_tuple()

    def verify_(self) -> None:
        temp_type = self.temp.type
        if isinstance(temp_type, TempType) and len(self.offset) != temp_type.rank:
            raise VerifyException(
                f"stencil.access: offset rank {len(self.offset)} does not match "
                f"temp rank {temp_type.rank}"
            )


class IndexOp(Operation):
    """``stencil.index`` — the current cell index along one dimension."""

    name = "stencil.index"
    traits = frozenset([Pure])

    def __init__(self, dim: int, offset: Sequence[int] | None = None) -> None:
        from repro.ir.types import index as index_type

        super().__init__(
            result_types=[index_type],
            attributes={
                "dim": IntAttr(dim),
                "offset": DenseIntArrayAttr(offset or ()),
            },
        )

    @property
    def dim(self) -> int:
        return self.attributes["dim"].value


class DynAccessOp(Operation):
    """``stencil.dyn_access`` — access at a data-dependent offset (bounded)."""

    name = "stencil.dyn_access"

    def __init__(
        self,
        temp: SSAValue,
        offsets: Sequence[SSAValue],
        lb: Sequence[int],
        ub: Sequence[int],
    ) -> None:
        element_type = getattr(temp.type, "element_type", None)
        super().__init__(
            operands=[temp, *offsets],
            result_types=[element_type],
            attributes={"lb": DenseIntArrayAttr(lb), "ub": DenseIntArrayAttr(ub)},
        )

    @property
    def temp(self) -> SSAValue:
        return self.operands[0]


class ReturnOp(Operation):
    """``stencil.return`` — per-cell results of a ``stencil.apply`` region."""

    name = "stencil.return"
    traits = frozenset([IsTerminator])

    def __init__(self, operands: Sequence[SSAValue]) -> None:
        super().__init__(operands=operands)


class CastOp(Operation):
    """``stencil.cast`` — reinterpret the bounds of a field."""

    name = "stencil.cast"
    traits = frozenset([Pure])

    def __init__(self, field: SSAValue, result_type: FieldType) -> None:
        super().__init__(operands=[field], result_types=[result_type])

    @property
    def field(self) -> SSAValue:
        return self.operands[0]


# ---------------------------------------------------------------------------
# Helpers used by the transformations
# ---------------------------------------------------------------------------


def access_extent(apply_op: ApplyOp) -> tuple[tuple[int, int], ...]:
    """Per-dimension (min, max) offsets accessed by an apply region.

    This determines the shift-buffer window the FPGA lowering must provide
    (3 values in 1-D, 9 in 2-D, 27 in 3-D for unit-radius stencils).
    """
    rank = None
    mins: list[int] = []
    maxs: list[int] = []
    for access in apply_op.walk_type(AccessOp):
        offset = access.offset
        if rank is None:
            rank = len(offset)
            mins = list(offset)
            maxs = list(offset)
        else:
            for d, value in enumerate(offset):
                mins[d] = min(mins[d], value)
                maxs[d] = max(maxs[d], value)
    if rank is None:
        return ()
    return tuple(zip(mins, maxs))


def stencil_radius(apply_op: ApplyOp) -> int:
    """The maximum absolute offset used by any access of the apply."""
    radius = 0
    for access in apply_op.walk_type(AccessOp):
        for value in access.offset:
            radius = max(radius, abs(value))
    return radius
