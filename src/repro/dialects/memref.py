"""memref dialect: allocation, load/store and shape queries on buffers."""

from __future__ import annotations

from typing import Sequence

from repro.ir.core import Operation, Pure, SSAValue, VerifyException
from repro.ir.attributes import StringAttr, TypeAttr
from repro.ir.types import MemRefType, index


class AllocOp(Operation):
    """``memref.alloc`` — heap-style allocation of a buffer."""

    name = "memref.alloc"

    def __init__(self, memref_type: MemRefType, dynamic_sizes: Sequence[SSAValue] = ()) -> None:
        super().__init__(operands=list(dynamic_sizes), result_types=[memref_type])

    @property
    def memref_type(self) -> MemRefType:
        return self.result.type


class AllocaOp(Operation):
    """``memref.alloca`` — stack/local (on-FPGA BRAM) allocation of a buffer.

    The Stencil-HMLS transformation uses local allocations for the copies of
    small constant data moved into BRAM/URAM (step 8 of §3.3).
    """

    name = "memref.alloca"

    def __init__(self, memref_type: MemRefType, dynamic_sizes: Sequence[SSAValue] = ()) -> None:
        super().__init__(operands=list(dynamic_sizes), result_types=[memref_type])

    @property
    def memref_type(self) -> MemRefType:
        return self.result.type


class DeallocOp(Operation):
    name = "memref.dealloc"

    def __init__(self, memref: SSAValue) -> None:
        super().__init__(operands=[memref])


class LoadOp(Operation):
    """``memref.load`` — indexed read from a buffer."""

    name = "memref.load"

    def __init__(self, memref: SSAValue, indices: Sequence[SSAValue]) -> None:
        memref_type = memref.type
        if not isinstance(memref_type, MemRefType):
            raise VerifyException("memref.load: operand must have memref type")
        super().__init__(
            operands=[memref, *indices], result_types=[memref_type.element_type]
        )

    @property
    def memref(self) -> SSAValue:
        return self.operands[0]

    @property
    def indices(self) -> tuple[SSAValue, ...]:
        return self.operands[1:]

    def verify_(self) -> None:
        memref_type = self.memref.type
        if isinstance(memref_type, MemRefType) and len(self.indices) != memref_type.rank:
            raise VerifyException(
                f"memref.load: expected {memref_type.rank} indices, got {len(self.indices)}"
            )


class StoreOp(Operation):
    """``memref.store`` — indexed write to a buffer."""

    name = "memref.store"

    def __init__(self, value: SSAValue, memref: SSAValue, indices: Sequence[SSAValue]) -> None:
        super().__init__(operands=[value, memref, *indices])

    @property
    def value(self) -> SSAValue:
        return self.operands[0]

    @property
    def memref(self) -> SSAValue:
        return self.operands[1]

    @property
    def indices(self) -> tuple[SSAValue, ...]:
        return self.operands[2:]

    def verify_(self) -> None:
        memref_type = self.memref.type
        if not isinstance(memref_type, MemRefType):
            raise VerifyException("memref.store: target must have memref type")
        if len(self.indices) != memref_type.rank:
            raise VerifyException(
                f"memref.store: expected {memref_type.rank} indices, got {len(self.indices)}"
            )


class DimOp(Operation):
    """``memref.dim`` — query a (possibly dynamic) dimension size."""

    name = "memref.dim"
    traits = frozenset([Pure])

    def __init__(self, memref: SSAValue, dimension: SSAValue) -> None:
        super().__init__(operands=[memref, dimension], result_types=[index])

    @property
    def memref(self) -> SSAValue:
        return self.operands[0]

    @property
    def dimension(self) -> SSAValue:
        return self.operands[1]


class CopyOp(Operation):
    """``memref.copy`` — bulk copy between buffers of identical shape."""

    name = "memref.copy"

    def __init__(self, source: SSAValue, target: SSAValue) -> None:
        super().__init__(operands=[source, target])

    @property
    def source(self) -> SSAValue:
        return self.operands[0]

    @property
    def target(self) -> SSAValue:
        return self.operands[1]


class CastOp(Operation):
    """``memref.cast`` — static/dynamic shape conversion of a memref."""

    name = "memref.cast"
    traits = frozenset([Pure])

    def __init__(self, source: SSAValue, result_type: MemRefType) -> None:
        super().__init__(operands=[source], result_types=[result_type])

    @property
    def source(self) -> SSAValue:
        return self.operands[0]


class GlobalOp(Operation):
    """``memref.global`` — module-level named buffer (used for constants)."""

    name = "memref.global"

    def __init__(self, sym_name: str, memref_type: MemRefType) -> None:
        super().__init__(
            attributes={
                "sym_name": StringAttr(sym_name),
                "type": TypeAttr(memref_type),
            }
        )

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].data


class GetGlobalOp(Operation):
    name = "memref.get_global"
    traits = frozenset([Pure])

    def __init__(self, sym_name: str, memref_type: MemRefType) -> None:
        super().__init__(
            result_types=[memref_type],
            attributes={"name": StringAttr(sym_name)},
        )
