"""scf dialect: structured control flow (for, if, while, yield)."""

from __future__ import annotations

from typing import Sequence

from repro.ir.core import (
    Attribute,
    Block,
    IsTerminator,
    Operation,
    Region,
    SSAValue,
    VerifyException,
)
from repro.ir.types import IndexType, index


class YieldOp(Operation):
    """``scf.yield`` — terminator forwarding values out of an scf region."""

    name = "scf.yield"
    traits = frozenset([IsTerminator])

    def __init__(self, operands: Sequence[SSAValue] = ()) -> None:
        super().__init__(operands=operands)


class ForOp(Operation):
    """``scf.for`` — counted loop with optional loop-carried values.

    The body block receives the induction variable followed by the
    iteration arguments; it must terminate in an ``scf.yield`` carrying the
    next iteration's values.
    """

    name = "scf.for"

    def __init__(
        self,
        lower_bound: SSAValue,
        upper_bound: SSAValue,
        step: SSAValue,
        iter_args: Sequence[SSAValue] = (),
        body: Region | None = None,
    ) -> None:
        iter_args = list(iter_args)
        if body is None:
            body = Region([Block([index] + [a.type for a in iter_args])])
        super().__init__(
            operands=[lower_bound, upper_bound, step, *iter_args],
            result_types=[a.type for a in iter_args],
            regions=[body],
        )

    # -- accessors -----------------------------------------------------------

    @property
    def lower_bound(self) -> SSAValue:
        return self.operands[0]

    @property
    def upper_bound(self) -> SSAValue:
        return self.operands[1]

    @property
    def step(self) -> SSAValue:
        return self.operands[2]

    @property
    def iter_args(self) -> tuple[SSAValue, ...]:
        return self.operands[3:]

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def induction_variable(self) -> SSAValue:
        return self.body.args[0]

    @property
    def body_iter_args(self) -> tuple[SSAValue, ...]:
        return tuple(self.body.args[1:])

    def verify_(self) -> None:
        for bound in (self.lower_bound, self.upper_bound, self.step):
            if not isinstance(bound.type, IndexType):
                raise VerifyException("scf.for: bounds and step must have index type")
        if len(self.body.args) != 1 + len(self.iter_args):
            raise VerifyException(
                "scf.for: body block must take the induction variable plus one "
                "argument per iter_arg"
            )
        terminator = self.body.terminator
        if terminator is not None and not isinstance(terminator, YieldOp):
            raise VerifyException("scf.for: body must terminate with scf.yield")
        if isinstance(terminator, YieldOp) and len(terminator.operands) != len(self.iter_args):
            raise VerifyException(
                "scf.for: scf.yield must carry exactly one value per iter_arg"
            )


class IfOp(Operation):
    """``scf.if`` — conditional with a then region and an optional else region."""

    name = "scf.if"

    def __init__(
        self,
        condition: SSAValue,
        result_types: Sequence[Attribute] = (),
        then_region: Region | None = None,
        else_region: Region | None = None,
    ) -> None:
        then_region = then_region if then_region is not None else Region([Block()])
        else_region = else_region if else_region is not None else Region([Block()])
        super().__init__(
            operands=[condition],
            result_types=result_types,
            regions=[then_region, else_region],
        )

    @property
    def condition(self) -> SSAValue:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def else_block(self) -> Block:
        return self.regions[1].blocks[0]

    @property
    def has_else(self) -> bool:
        return bool(self.regions[1].blocks and self.regions[1].blocks[0].ops)


class WhileOp(Operation):
    """``scf.while`` — general while loop (before/after regions).

    Only needed by a couple of baseline models; the main flow uses ``scf.for``.
    """

    name = "scf.while"

    def __init__(
        self,
        init_args: Sequence[SSAValue],
        result_types: Sequence[Attribute],
        before: Region,
        after: Region,
    ) -> None:
        super().__init__(
            operands=list(init_args),
            result_types=list(result_types),
            regions=[before, after],
        )


class ConditionOp(Operation):
    """``scf.condition`` — terminator of the "before" region of scf.while."""

    name = "scf.condition"
    traits = frozenset([IsTerminator])

    def __init__(self, condition: SSAValue, args: Sequence[SSAValue] = ()) -> None:
        super().__init__(operands=[condition, *args])


class ParallelOp(Operation):
    """``scf.parallel`` — multi-dimensional parallel loop nest.

    Used by the CPU lowering of the stencil dialect; each dimension has a
    lower bound, upper bound and step operand.
    """

    name = "scf.parallel"

    def __init__(
        self,
        lower_bounds: Sequence[SSAValue],
        upper_bounds: Sequence[SSAValue],
        steps: Sequence[SSAValue],
        body: Region | None = None,
    ) -> None:
        rank = len(lower_bounds)
        if body is None:
            body = Region([Block([index] * rank)])
        super().__init__(
            operands=[*lower_bounds, *upper_bounds, *steps],
            regions=[body],
        )
        self.attributes = dict(self.attributes)
        self._rank = rank

    @property
    def rank(self) -> int:
        return len(self.operands) // 3

    @property
    def lower_bounds(self) -> tuple[SSAValue, ...]:
        return self.operands[: self.rank]

    @property
    def upper_bounds(self) -> tuple[SSAValue, ...]:
        return self.operands[self.rank : 2 * self.rank]

    @property
    def steps(self) -> tuple[SSAValue, ...]:
        return self.operands[2 * self.rank :]

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def induction_variables(self) -> tuple[SSAValue, ...]:
        return tuple(self.body.args)

    def verify_(self) -> None:
        if len(self.operands) % 3 != 0:
            raise VerifyException("scf.parallel: operand count must be 3 * rank")
        if len(self.body.args) != self.rank:
            raise VerifyException(
                "scf.parallel: body must take one index argument per dimension"
            )
