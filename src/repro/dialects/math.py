"""math dialect: transcendental scalar functions used in stencil kernels."""

from __future__ import annotations

import math
from typing import Callable

from repro.ir.core import Operation, Pure, SSAValue, VerifyException
from repro.ir.types import FloatType


class _UnaryMathOp(Operation):
    traits = frozenset([Pure])
    py_func: Callable = math.sqrt

    def __init__(self, operand: SSAValue) -> None:
        super().__init__(operands=[operand], result_types=[operand.type])

    @property
    def operand(self) -> SSAValue:
        return self.operands[0]

    def verify_(self) -> None:
        if not isinstance(self.operand.type, FloatType):
            raise VerifyException(f"{self.name}: operand must be floating point")


class SqrtOp(_UnaryMathOp):
    name = "math.sqrt"
    py_func = math.sqrt


class ExpOp(_UnaryMathOp):
    name = "math.exp"
    py_func = math.exp


class LogOp(_UnaryMathOp):
    name = "math.log"
    py_func = math.log


class AbsFOp(_UnaryMathOp):
    name = "math.absf"
    py_func = abs


class SinOp(_UnaryMathOp):
    name = "math.sin"
    py_func = math.sin


class CosOp(_UnaryMathOp):
    name = "math.cos"
    py_func = math.cos


class TanhOp(_UnaryMathOp):
    name = "math.tanh"
    py_func = math.tanh


class PowFOp(Operation):
    name = "math.powf"
    traits = frozenset([Pure])
    py_func = staticmethod(math.pow)

    def __init__(self, base: SSAValue, exponent: SSAValue) -> None:
        super().__init__(operands=[base, exponent], result_types=[base.type])

    @property
    def lhs(self) -> SSAValue:
        return self.operands[0]

    @property
    def rhs(self) -> SSAValue:
        return self.operands[1]


class FmaOp(Operation):
    """Fused multiply-add: ``a * b + c``."""

    name = "math.fma"
    traits = frozenset([Pure])

    def __init__(self, a: SSAValue, b: SSAValue, c: SSAValue) -> None:
        super().__init__(operands=[a, b, c], result_types=[a.type])


UNARY_OPS = (SqrtOp, ExpOp, LogOp, AbsFOp, SinOp, CosOp, TanhOp)
