"""hls dialect: the paper's new MLIR dialect for FPGA high-level synthesis.

It replicates the Vitis HLS feature set in a vendor-agnostic way (§3.1):
two attributes (``hls.axi_protocol`` and ``hls.streamtype``) and ten
operations (interface, pipeline, unroll, array_partition, dataflow,
create_stream, read, write, empty, full).  The dialect can be lowered to
annotated LLVM-IR (this repository, §3.2) or alternatively to a
CIRCT-style structural representation (future work in the paper,
implemented as an extension in ``repro.transforms.hls_to_circt``).
"""

from __future__ import annotations


from repro.ir.core import (
    Attribute,
    Block,
    Operation,
    Region,
    SSAValue,
    TypeAttribute,
    VerifyException,
)
from repro.ir.attributes import IntAttr, StringAttr
from repro.ir.types import i1


# ---------------------------------------------------------------------------
# Attributes (Listing 2)
# ---------------------------------------------------------------------------

#: AXI protocol codes, mirroring the i32 encoding the dialect uses.
AXI_PROTOCOLS = {
    "m_axi": 0,       # memory-mapped AXI4 master (bulk data)
    "axis": 1,        # AXI4-Stream
    "s_axilite": 2,   # control/status register interface
}


class AxiProtocolAttr(Attribute):
    """``hls.axi_protocol`` — which AXI protocol a kernel interface uses."""

    name = "hls.axi_protocol"

    def __init__(self, protocol: str | int) -> None:
        if isinstance(protocol, int):
            reverse = {v: k for k, v in AXI_PROTOCOLS.items()}
            if protocol not in reverse:
                raise VerifyException(f"unknown AXI protocol code {protocol}")
            protocol = reverse[protocol]
        if protocol not in AXI_PROTOCOLS:
            raise VerifyException(f"unknown AXI protocol '{protocol}'")
        self.protocol = protocol

    def parameters(self) -> tuple:
        return (self.protocol,)

    @property
    def code(self) -> int:
        return AXI_PROTOCOLS[self.protocol]

    def __str__(self) -> str:
        return f"#hls.axi_protocol<{self.protocol}>"


class StreamType(TypeAttribute):
    """``hls.streamtype`` — the type of an HLS FIFO stream of elements."""

    name = "hls.streamtype"

    def __init__(self, element_type: Attribute) -> None:
        self.element_type = element_type

    def parameters(self) -> tuple:
        return (self.element_type,)

    def __str__(self) -> str:
        return f"!hls.stream<{self.element_type}>"


# Default FIFO depth used when creating streams (matches the runtime).
DEFAULT_STREAM_DEPTH = 16


# ---------------------------------------------------------------------------
# Operations (Listing 3)
# ---------------------------------------------------------------------------


class InterfaceOp(Operation):
    """``hls.interface`` — bind a kernel argument to an AXI interface bundle.

    Step 9 of the transformation assigns each input/output argument to its
    own bundle (and HBM bank) to maximise external bandwidth; small constant
    data shares a single bundle to avoid wasting ports.
    """

    name = "hls.interface"

    def __init__(
        self,
        argument: SSAValue,
        protocol: AxiProtocolAttr | str,
        bundle: str,
    ) -> None:
        if isinstance(protocol, str):
            protocol = AxiProtocolAttr(protocol)
        super().__init__(
            operands=[argument],
            attributes={"protocol": protocol, "bundle": StringAttr(bundle)},
        )

    @property
    def argument(self) -> SSAValue:
        return self.operands[0]

    @property
    def protocol(self) -> str:
        return self.attributes["protocol"].protocol

    @property
    def bundle(self) -> str:
        return self.attributes["bundle"].data


class PipelineOp(Operation):
    """``hls.pipeline`` — request pipelining of the enclosing loop with a target II."""

    name = "hls.pipeline"

    def __init__(self, ii: int = 1) -> None:
        if ii < 1:
            raise VerifyException("hls.pipeline: initiation interval must be >= 1")
        super().__init__(attributes={"ii": IntAttr(ii)})

    @property
    def ii(self) -> int:
        return self.attributes["ii"].value


class UnrollOp(Operation):
    """``hls.unroll`` — request unrolling of the enclosing loop by a factor."""

    name = "hls.unroll"

    def __init__(self, factor: int = 0) -> None:
        if factor < 0:
            raise VerifyException("hls.unroll: factor must be >= 0 (0 = full unroll)")
        super().__init__(attributes={"factor": IntAttr(factor)})

    @property
    def factor(self) -> int:
        return self.attributes["factor"].value


class ArrayPartitionOp(Operation):
    """``hls.array_partition`` — partition a local array across BRAM banks."""

    name = "hls.array_partition"

    def __init__(
        self,
        array: SSAValue | None = None,
        kind: str = "complete",
        factor: int = 0,
        dim: int = 0,
    ) -> None:
        operands = [array] if array is not None else []
        super().__init__(
            operands=operands,
            attributes={
                "kind": StringAttr(kind),
                "factor": IntAttr(factor),
                "dim": IntAttr(dim),
            },
        )

    @property
    def kind(self) -> str:
        return self.attributes["kind"].data


class DataflowOp(Operation):
    """``hls.dataflow`` — a region of concurrently executing dataflow stages.

    Stages inside separate dataflow regions run concurrently for different
    elements, connected through streams; this is the construct the paper
    uses to express the load → shift-buffer → duplicate → compute → write
    structure of Figure 3.
    """

    name = "hls.dataflow"

    def __init__(self, body: Region | None = None, label: str | None = None) -> None:
        attrs = {"label": StringAttr(label)} if label else {}
        super().__init__(
            regions=[body if body is not None else Region([Block()])],
            attributes=attrs,
        )

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def label(self) -> str:
        attr = self.attributes.get("label")
        return attr.data if isinstance(attr, StringAttr) else ""


class CreateStreamOp(Operation):
    """``hls.create_stream`` — create a FIFO stream of a given element type."""

    name = "hls.create_stream"

    def __init__(self, element_type: Attribute, depth: int = DEFAULT_STREAM_DEPTH, name_hint: str | None = None) -> None:
        if depth < 1:
            raise VerifyException("hls.create_stream: depth must be >= 1")
        super().__init__(
            result_types=[StreamType(element_type)],
            attributes={"depth": IntAttr(depth)},
        )
        if name_hint:
            self.result.name_hint = name_hint

    @property
    def element_type(self) -> Attribute:
        return self.result.type.element_type

    @property
    def depth(self) -> int:
        return self.attributes["depth"].value

    @property
    def stream(self) -> SSAValue:
        return self.result


class ReadOp(Operation):
    """``hls.read`` — blocking pop of one element from a stream."""

    name = "hls.read"

    def __init__(self, stream: SSAValue) -> None:
        if not isinstance(stream.type, StreamType):
            raise VerifyException("hls.read: operand must be an hls stream")
        super().__init__(operands=[stream], result_types=[stream.type.element_type])

    @property
    def stream(self) -> SSAValue:
        return self.operands[0]


class WriteOp(Operation):
    """``hls.write`` — blocking push of one element onto a stream."""

    name = "hls.write"

    def __init__(self, stream: SSAValue, value: SSAValue) -> None:
        if not isinstance(stream.type, StreamType):
            raise VerifyException("hls.write: first operand must be an hls stream")
        super().__init__(operands=[stream, value])

    @property
    def stream(self) -> SSAValue:
        return self.operands[0]

    @property
    def value(self) -> SSAValue:
        return self.operands[1]

    def verify_(self) -> None:
        if self.value.type != self.stream.type.element_type:
            raise VerifyException(
                "hls.write: value type does not match the stream element type"
            )


class EmptyOp(Operation):
    """``hls.empty`` — non-blocking emptiness test of a stream."""

    name = "hls.empty"

    def __init__(self, stream: SSAValue) -> None:
        if not isinstance(stream.type, StreamType):
            raise VerifyException("hls.empty: operand must be an hls stream")
        super().__init__(operands=[stream], result_types=[i1])

    @property
    def stream(self) -> SSAValue:
        return self.operands[0]


class FullOp(Operation):
    """``hls.full`` — non-blocking fullness test of a stream."""

    name = "hls.full"

    def __init__(self, stream: SSAValue) -> None:
        if not isinstance(stream.type, StreamType):
            raise VerifyException("hls.full: operand must be an hls stream")
        super().__init__(operands=[stream], result_types=[i1])

    @property
    def stream(self) -> SSAValue:
        return self.operands[0]


#: The ten operations of the dialect, as enumerated in the paper.
DIALECT_OPERATIONS = (
    InterfaceOp,
    PipelineOp,
    UnrollOp,
    ArrayPartitionOp,
    DataflowOp,
    CreateStreamOp,
    ReadOp,
    WriteOp,
    EmptyOp,
    FullOp,
)
