"""Command line entry points.

* ``shmls-compile`` — compile one of the benchmark kernels (or report its
  plan/design summary), the equivalent of the paper artifact's ``all-xdsl`` +
  ``vitis`` Makefile targets.
* ``shmls-bench`` — regenerate the evaluation figures/tables, the equivalent
  of ``benchmarks/run_benchmarks.py`` + the plotting scripts.
* ``shmls-orchestrate`` — plan, shard and run the scenario matrix across
  workers with prefix-aware scheduling, streaming JSONL progress and a
  resumability manifest (see ``docs/orchestration.md``).
* ``shmls-serve`` — the compile-as-a-service front door: an asyncio HTTP
  server streaming per-case results as JSONL, answering warm requests
  straight from the cache, coalescing identical in-flight requests and
  shedding load past a bounded in-flight queue (see ``docs/service.md``).
* ``shmls-lint`` — semantic lint over kernels, planned sweeps and the
  seeded-defect diagnostics corpus (``--verify-diagnostics``); exit code
  distinguishes clean/warnings/errors (see ``docs/analysis.md``).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.compile_cache import CACHE_FORMATS, CompileCache
from repro.core.config import CompilerOptions
from repro.ir.interning import open_shared_table, publish_intern_table
from repro.core.pipeline import StencilHMLSCompiler
from repro.ir.pass_registry import PipelineParseError
from repro.evaluation import report as report_module
from repro.fpga.device import device_by_name
from repro.ir.printer import print_module
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.tracer_advection import build_tracer_advection

_KERNELS = {
    "pw_advection": (build_pw_advection, PW_ADVECTION_SIZES),
    "tracer_advection": (build_tracer_advection, TRACER_ADVECTION_SIZES),
}


def main_compile(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Compile a benchmark kernel with Stencil-HMLS")
    parser.add_argument("kernel", choices=sorted(_KERNELS), help="kernel to compile")
    parser.add_argument("--size", default="8M", help="problem size label (default 8M)")
    parser.add_argument("--device", default="Alveo U280", help="target device")
    parser.add_argument("--no-pack", action="store_true", help="disable 512-bit interface packing")
    parser.add_argument("--no-split", action="store_true", help="disable the per-field dataflow split")
    parser.add_argument("--single-bundle", action="store_true", help="share one AXI bundle between all arguments")
    parser.add_argument(
        "--pass-pipeline",
        default=None,
        metavar="SPEC",
        help="textual middle-end pipeline spec, e.g. "
        '"canonicalize,convert-stencil-to-hls{pack=0},convert-hls-to-llvm"',
    )
    parser.add_argument("--timing", action="store_true",
                        help="print per-pass statistics (and cache hit/miss counts)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed compile cache directory")
    parser.add_argument("--remote-cache-dir", default=None, metavar="DIR",
                        help="shared network cache tier behind --cache-dir "
                        "(an NFS/sshfs-mounted path): read-through on miss, "
                        "written back on store")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir and recompile from scratch")
    parser.add_argument("--cache-max-bytes", type=int, default=None, metavar="BYTES",
                        help="evict least-recently-used cache entries down to this "
                        "on-disk budget after compiling")
    parser.add_argument("--cache-format", choices=CACHE_FORMATS, default="pickle",
                        help="compile-cache storage format: 'pickle' (one blob "
                        "per entry) or 'mapped' (sectioned container, mmap'd + "
                        "lazily decoded on hits; default pickle)")
    parser.add_argument("--shared-intern-table", default=None, metavar="DIR",
                        help="shared attribute intern table directory: opened "
                        "read-only before compiling (cache hits resolve "
                        "attribute references against it) and republished "
                        "with this compilation's attributes afterwards")
    parser.add_argument("--print-hls", action="store_true", help="print the HLS-dialect IR")
    parser.add_argument("--print-llvm", action="store_true", help="print the annotated LLVM-dialect IR")
    parser.add_argument("--metadata", default=None, help="write xclbin metadata JSON to this path")
    args = parser.parse_args(argv)

    builder, sizes = _KERNELS[args.kernel]
    if args.size not in sizes:
        parser.error(f"unknown size '{args.size}' for {args.kernel} (known: {', '.join(sizes)})")
    shape = sizes[args.size].shape

    options = CompilerOptions(
        pack_interfaces=not args.no_pack,
        split_compute_per_field=not args.no_split,
        separate_bundles=not args.single_bundle,
    )
    device = device_by_name(args.device)
    cache = None
    if (args.cache_dir or args.remote_cache_dir) and not args.no_cache:
        cache = CompileCache(
            args.cache_dir, remote_dir=args.remote_cache_dir, fmt=args.cache_format
        )
    if args.cache_max_bytes is not None and (cache is None or cache.cache_dir is None):
        parser.error("--cache-max-bytes needs an active local cache "
                     "(--cache-dir without --no-cache)")
    if args.shared_intern_table:
        # Tolerates a missing table (first run publishes it below).
        open_shared_table(args.shared_intern_table)
    compiler = StencilHMLSCompiler(options, device, pass_pipeline=args.pass_pipeline, cache=cache)
    module = builder(shape)
    try:
        xclbin = compiler.compile(module)
    except PipelineParseError as err:
        parser.error(str(err))
    except ValueError as err:
        if args.pass_pipeline is None:
            raise
        # Bad user-provided pipeline (missing stage, bad option value, …):
        # report it as CLI usage feedback, not a traceback.
        parser.error(f"--pass-pipeline: {err}")

    print(f"compiled {args.kernel} @ {args.size} for {device.name}")
    for key, value in xclbin.summary().items():
        print(f"  {key:<16}: {value}")
    if args.shared_intern_table:
        # Republish so the table accumulates this compilation's attributes
        # (append-only; a no-op when nothing new was interned).
        publish_intern_table(args.shared_intern_table)
    if cache is not None and args.cache_max_bytes is not None:
        cache.gc(args.cache_max_bytes)
    if args.timing:
        print("per-pass statistics:")
        for stat in compiler.pass_statistics:
            status = "changed" if stat.changed else "no change"
            if stat.note:
                status += f" ({stat.note})"
            print(f"  {stat.name:<44} {stat.seconds * 1e3:9.3f} ms  {status}")
        if compiler.analysis_statistics is not None:
            for line in compiler.analysis_statistics.summary_lines():
                print(line)
        if cache is not None:
            cache.disk_bytes()
            for line in cache.stats.summary_lines():
                print(line)
    if args.print_hls and xclbin.hls_module is not None:
        print(print_module(xclbin.hls_module))
    if args.print_llvm and xclbin.llvm_module is not None:
        print(print_module(xclbin.llvm_module))
    if args.metadata:
        path = xclbin.save_metadata(args.metadata)
        print(f"metadata written to {path}")
    return 0


def main_bench(argv: list[str] | None = None) -> int:
    return report_module.main(argv)


def main_orchestrate(argv: list[str] | None = None) -> int:
    from repro.evaluation import orchestrator

    return orchestrator.main(argv)


def main_serve(argv: list[str] | None = None) -> int:
    from repro.service import server

    return server.main(argv)


def main_lint(argv: list[str] | None = None) -> int:
    from repro.tools import lint

    return lint.main(argv)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_compile())
