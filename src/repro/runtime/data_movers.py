"""Functional implementations of the dataflow runtime functions.

These mirror the C++ runtime the paper links against the generated LLVM-IR:

* ``load_data``  — reads each input field from external memory in 512-bit
  chunks and pushes the elements onto that field's input stream;
* ``shift_buffer`` — consumes a field's input stream and produces, for every
  point of the output domain, the full window of neighbouring values;
* ``write_data`` — pops results from the compute stages' output streams and
  writes them back to external memory in 512-bit chunks.

The factory :func:`make_externals` builds callables specialised for a given
:class:`~repro.core.plan.DataflowPlan` (the paper specialises ``load_data``
for the number of required input fields, §3.3 step 7) and returns them keyed
by the callee names the transformation emitted, so the functional simulator
can simply hand the dictionary to the interpreter.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.plan import DataflowPlan, LoadSpec, ShiftSpec, WriteSpec
from repro.runtime.streams import FIFOStream
from repro.runtime.window import window_offsets


def _iter_box(lower: Sequence[int], upper: Sequence[int]):
    if len(lower) == 0:
        yield ()
        return
    for head in range(lower[0], upper[0]):
        for rest in _iter_box(lower[1:], upper[1:]):
            yield (head, *rest)


def load_data(arrays: Sequence[np.ndarray], streams: Sequence[FIFOStream], lanes: int) -> None:
    """Stream each array's elements, grouped into ``lanes``-wide packs."""
    for array, stream in zip(arrays, streams):
        flat = np.asarray(array, dtype=np.float64).reshape(-1)
        for start in range(0, flat.size, lanes):
            stream.write(np.array(flat[start : start + lanes]))


def shift_buffer(
    in_stream: FIFOStream,
    out_stream: FIFOStream,
    *,
    grid_shape: Sequence[int],
    field_lower: Sequence[int],
    domain_lower: Sequence[int],
    domain_upper: Sequence[int],
    radius: int,
) -> None:
    """Reassemble the field and emit one full neighbour window per domain point.

    The hardware implementation keeps ``2·radius`` planes of the grid in BRAM
    and shifts one element per cycle; functionally that is equivalent to the
    gather below, and the resource/timing cost is modelled separately from
    :class:`~repro.core.plan.ShiftSpec`.
    """
    shape = tuple(grid_shape)
    packs = []
    while not in_stream.empty():
        packs.append(np.asarray(in_stream.read(), dtype=np.float64).reshape(-1))
    if packs:
        flat = np.concatenate(packs)[: int(np.prod(shape))]
    else:
        flat = np.zeros(int(np.prod(shape)))
    field = flat.reshape(shape)
    offsets = window_offsets(len(shape), radius)
    lower = tuple(field_lower)
    for point in _iter_box(domain_lower, domain_upper):
        window = np.empty(len(offsets), dtype=np.float64)
        for lane, offset in enumerate(offsets):
            idx = tuple(p + o - l for p, o, l in zip(point, offset, lower))
            window[lane] = field[idx]
        out_stream.write(window)


def duplicate_stream(source: FIFOStream, copies: Sequence[FIFOStream]) -> None:
    """Fan one stream out to several consumers (step 3's duplication stage)."""
    while not source.empty():
        value = source.read()
        for copy in copies:
            copy.write(np.array(value, copy=True))


def write_data(
    streams: Sequence[FIFOStream],
    arrays: Sequence[np.ndarray],
    field_specs: Sequence[dict],
    lanes: int,
) -> None:
    """Write each result stream back into its field's domain region."""
    for stream, array, spec in zip(streams, arrays, field_specs):
        lower = spec["lower"]
        upper = spec["upper"]
        field_lower = spec["field_lower"]
        for point in _iter_box(lower, upper):
            value = stream.read()
            idx = tuple(p - l for p, l in zip(point, field_lower))
            array[idx] = float(value)


# ---------------------------------------------------------------------------
# Externals factory
# ---------------------------------------------------------------------------


def make_externals(plan: DataflowPlan) -> dict[str, Callable]:
    """Build the specialised runtime callables for a dataflow plan.

    The returned mapping is keyed by the callee names the stencil→HLS
    transformation emitted (``load_data_w<i>``, ``shift_buffer_<field>_w<i>``,
    ``duplicate_<field>_w<i>``, ``write_data_w<i>``) and is handed to the
    interpreter as its ``externals`` table.
    """
    externals: dict[str, Callable] = {}

    for wave in plan.waves:
        load = wave.load

        def _load(*args, _spec: LoadSpec = load):
            count = len(_spec.fields)
            arrays, streams = args[:count], args[count:]
            load_data(arrays, streams, _spec.lanes)

        externals[load.callee] = _load

        for shift in wave.shifts:
            def _shift(in_stream, out_stream, _spec: ShiftSpec = shift):
                shift_buffer(
                    in_stream,
                    out_stream,
                    grid_shape=_spec.grid_shape,
                    field_lower=_spec.field_lower,
                    domain_lower=_spec.domain_lower,
                    domain_upper=_spec.domain_upper,
                    radius=_spec.radius,
                )

            externals[shift.callee] = _shift

        for dup in wave.duplicates:
            def _dup(source, *copies, _n=len(dup.copies)):
                duplicate_stream(source, copies)

            externals[dup.callee] = _dup

        write = wave.write

        def _write(*args, _spec: WriteSpec = write):
            count = len(_spec.fields)
            streams, arrays = args[:count], args[count:]
            specs = [
                {"lower": f.lower, "upper": f.upper, "field_lower": f.field_lower}
                for f in _spec.fields
            ]
            write_data(streams, arrays, specs, _spec.lanes)

        externals[write.callee] = _write

    return externals
