"""Shift-buffer window ordering.

The shift buffer does not provide a single value per cycle but *all* the
stencil values that could be required: 3 values in 1-D, 9 in 2-D and 27 in
3-D for unit-radius stencils (§3.3 step 3 and Figure 2).  The compiler maps
each ``stencil.access`` offset to a lane of that window (step 5); the
runtime's shift buffer must therefore fill the window in exactly the same
order.  Both sides use the helpers below.
"""

from __future__ import annotations

from typing import Sequence


def window_offsets(rank: int, radius: int) -> list[tuple[int, ...]]:
    """All relative offsets of the window, in canonical (row-major) order."""
    if rank <= 0:
        return [()]
    offsets: list[tuple[int, ...]] = [()]
    for _ in range(rank):
        offsets = [
            (*prefix, component)
            for prefix in offsets
            for component in range(-radius, radius + 1)
        ]
    return offsets


def window_strides(rank: int, radius: int) -> tuple[int, ...]:
    """Strides used to linearise an offset into a window lane index."""
    side = 2 * radius + 1
    strides = []
    for d in range(rank):
        strides.append(side ** (rank - 1 - d))
    return tuple(strides)


def window_index(offset: Sequence[int], radius: int) -> int:
    """Lane index of ``offset`` within the canonical window ordering."""
    rank = len(offset)
    strides = window_strides(rank, radius)
    index = 0
    for component, stride in zip(offset, strides):
        if abs(component) > radius:
            raise ValueError(
                f"offset {tuple(offset)} exceeds the window radius {radius}"
            )
        index += (component + radius) * stride
    return index


def window_size(rank: int, radius: int) -> int:
    return (2 * radius + 1) ** rank
