"""HLS FIFO stream model.

Functionally a stream is an unbounded FIFO (the dataflow stages are executed
to completion one after another by the functional simulator, so capacity
never limits correctness).  The declared depth is retained because the
timing model and the f++ stream-depth intrinsic both need it, and because
the cycle-level simulator optionally enforces it to detect deadlocks, which
is how the StencilFlow baseline's behaviour on PW advection is reproduced.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable


class StreamClosedError(Exception):
    """Raised when reading from a stream whose producer finished early."""


class FIFOStream:
    """A first-in first-out stream of elements."""

    def __init__(self, name: str = "stream", depth: int = 16, element_bits: int = 64) -> None:
        self.name = name
        self.depth = depth
        self.element_bits = element_bits
        self._queue: deque[Any] = deque()
        self._total_pushed = 0
        self._total_popped = 0
        self.high_water_mark = 0

    # -- blocking interface (functional semantics) ------------------------------

    def write(self, value: Any) -> None:
        self._queue.append(value)
        self._total_pushed += 1
        self.high_water_mark = max(self.high_water_mark, len(self._queue))

    def read(self) -> Any:
        if not self._queue:
            raise StreamClosedError(
                f"stream '{self.name}': read from an empty stream "
                "(producer under-produced or stage ordering is wrong)"
            )
        self._total_popped += 1
        return self._queue.popleft()

    # -- non-blocking queries -----------------------------------------------------

    def empty(self) -> bool:
        return not self._queue

    def full(self) -> bool:
        return len(self._queue) >= self.depth

    def __len__(self) -> int:
        return len(self._queue)

    # -- statistics -----------------------------------------------------------------

    @property
    def total_pushed(self) -> int:
        return self._total_pushed

    @property
    def total_popped(self) -> int:
        return self._total_popped

    def drain(self) -> list[Any]:
        """Remove and return all remaining elements (used by write_data)."""
        items = list(self._queue)
        self._total_popped += len(items)
        self._queue.clear()
        return items

    def extend(self, values: Iterable[Any]) -> None:
        for value in values:
            self.write(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FIFOStream {self.name} depth={self.depth} queued={len(self._queue)}>"
