"""Dataflow runtime components.

The paper links the generated LLVM-IR against a small C++ runtime providing
``load_data``, ``shift_buffer`` and ``write_data`` dataflow functions (§3.3).
This package provides the Python equivalents used by the functional dataflow
simulator, plus the window-ordering convention shared between the compiler
(which emits ``llvm.extractvalue`` indices) and the shift buffer (which fills
the window in the same order).
"""

from repro.runtime.streams import FIFOStream, StreamClosedError
from repro.runtime.window import window_offsets, window_index, window_strides
from repro.runtime.data_movers import make_externals

__all__ = [
    "FIFOStream",
    "StreamClosedError",
    "make_externals",
    "window_index",
    "window_offsets",
    "window_strides",
]
