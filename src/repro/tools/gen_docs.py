"""Generate ``docs/passes.md`` from the pass registry.

The pass reference is *derived*, never hand-written: every registered pass
contributes a section (anchored by its canonical name) with its aliases,
its docstring summary and the pipeline options it accepts, so the
document can never drift from the registry.  CI runs ``--check`` and
fails when the committed file is stale::

    python -m repro.tools.gen_docs          # rewrite docs/passes.md
    python -m repro.tools.gen_docs --check  # exit 1 when out of date

The option tables are derived too: stencil-lowering sub-passes accept any
:data:`repro.core.config.PIPELINE_OPTION_ALIASES` override whose
consuming stage has not already run (``check_override_timing``), and
ordinary passes expose their constructor keywords.
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import sys
from pathlib import Path

from repro.core.config import CompilerOptions, PIPELINE_OPTION_ALIASES
from repro.ir.pass_registry import PassRegistry
from repro.transforms.stencil_hls.context import (
    _OPTION_CONSUMER_PHASE,
    _PHASE_HINTS,
    StencilLoweringPass,
)

HEADER = """\
# Pass reference

<!-- GENERATED FILE - DO NOT EDIT.
     Regenerate with:  python -m repro.tools.gen_docs
     CI checks this file with:  python -m repro.tools.gen_docs --check -->

All middle-end passes register in `repro.ir.pass_registry.PassRegistry`
and are scheduled by MLIR-style textual pipeline specs — a comma-separated
pass list where each entry may carry `{key=value,...}` options:

```
canonicalize,cse,convert-stencil-to-hls{pack=0},convert-hls-to-llvm
```

Specs are accepted by `--pass-pipeline` (CLI), `PassRegistry.parse`
(API) and the named variants in
`repro.evaluation.harness.PIPELINE_VARIANTS`.  Option keys accept the
short aliases below or full `CompilerOptions` field names; see the
[option reference](#compileroptions-pipeline-aliases) at the end.
"""


def _summary(obj: object) -> str:
    """First docstring paragraph, joined to one line."""
    doc = inspect.getdoc(obj) or ""
    first = doc.split("\n\n", 1)[0]
    return " ".join(first.split())


def _alias_table(registry: PassRegistry) -> dict[str, list[str]]:
    """Canonical name → sorted aliases."""
    aliases: dict[str, list[str]] = {}
    for alias, target in registry._aliases.items():
        aliases.setdefault(target, []).append(alias)
    return {name: sorted(entries) for name, entries in aliases.items()}


def _lowering_option_rows(pass_cls: type[StencilLoweringPass]) -> list[tuple[str, str, str]]:
    """(alias, field, default) rows legal on one stencil-lowering sub-pass."""
    defaults = {f.name: f.default for f in dataclasses.fields(CompilerOptions)}
    rows = []
    for alias in sorted(PIPELINE_OPTION_ALIASES):
        field_name = PIPELINE_OPTION_ALIASES[alias]
        consumer = _OPTION_CONSUMER_PHASE.get(field_name)
        if consumer is not None and consumer < pass_cls.produces_phase:
            continue  # an earlier stage already consumed this option
        rows.append((alias, field_name, repr(defaults[field_name])))
    return rows


def _constructor_option_rows(pass_cls: type) -> list[tuple[str, str, str]]:
    """(keyword, annotation, default) rows from an ``__init__`` signature."""
    try:
        signature = inspect.signature(pass_cls.__init__)
    except (TypeError, ValueError):
        return []
    rows = []
    for name, parameter in signature.parameters.items():
        if name in ("self",) or parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        annotation = (
            parameter.annotation
            if isinstance(parameter.annotation, str)
            else getattr(parameter.annotation, "__name__", str(parameter.annotation))
        )
        if annotation is inspect.Parameter.empty:
            annotation = ""
        default = (
            "" if parameter.default is inspect.Parameter.empty else repr(parameter.default)
        )
        rows.append((name, str(annotation), default))
    return rows


def render_pass_reference(registry: PassRegistry | None = None) -> str:
    """The full markdown pass reference as a string."""
    registry = registry or PassRegistry.default()
    aliases = _alias_table(registry)
    lines = [HEADER]

    lines.append("## Registered passes\n")
    lines.append("| pass | aliases | summary |")
    lines.append("|------|---------|---------|")
    for name in registry.registered_names:
        factory = registry._factories[name]
        alias_text = ", ".join(f"`{a}`" for a in aliases.get(name, [])) or "—"
        lines.append(
            f"| [`{name}`](#{name}) | {alias_text} | {_summary(factory)} |"
        )
    lines.append("")

    for name in registry.registered_names:
        factory = registry._factories[name]
        lines.append(f"### `{name}`\n")
        lines.append(f'<a id="{name}"></a>\n')
        doc = inspect.getdoc(factory) or ""
        if doc:
            lines.append(doc.strip())
            lines.append("")
        if aliases.get(name):
            lines.append(
                "Aliases: " + ", ".join(f"`{a}`" for a in aliases[name]) + "\n"
            )
        if isinstance(factory, type) and issubclass(factory, StencilLoweringPass):
            phase = _PHASE_HINTS.get(factory.produces_phase, "")
            if factory.requires_phase != factory.produces_phase:
                lines.append(
                    f"Lowering stage: requires phase {factory.requires_phase}, "
                    f"produces phase {factory.produces_phase}"
                    + (f" (`{phase}`)." if phase else ".")
                    + "\n"
                )
            rows = _lowering_option_rows(factory)
            lines.append(
                "Accepts `CompilerOptions` overrides in braces; options whose "
                "consuming stage already ran are rejected by "
                "`check_override_timing`:\n"
            )
            lines.append("| option | `CompilerOptions` field | default |")
            lines.append("|--------|-------------------------|---------|")
            for alias, field_name, default in rows:
                lines.append(f"| `{alias}` | `{field_name}` | `{default}` |")
            lines.append("")
        else:
            rows = _constructor_option_rows(factory)
            if rows:
                lines.append("| option | type | default |")
                lines.append("|--------|------|---------|")
                for key, annotation, default in rows:
                    annotation_text = f"`{annotation}`" if annotation else "—"
                    default_text = f"`{default}`" if default else "required"
                    lines.append(f"| `{key}` | {annotation_text} | {default_text} |")
                lines.append("")
            else:
                lines.append("This pass takes no pipeline options.\n")

    lines.append('## `CompilerOptions` pipeline aliases\n')
    lines.append('<a id="compileroptions-pipeline-aliases"></a>\n')
    lines.append(
        "Short option names accepted in any pipeline spec (full field names "
        "work too; dashes may replace underscores):\n"
    )
    defaults = {f.name: f.default for f in dataclasses.fields(CompilerOptions)}
    lines.append("| alias | field | default |")
    lines.append("|-------|-------|---------|")
    for alias in sorted(PIPELINE_OPTION_ALIASES):
        field_name = PIPELINE_OPTION_ALIASES[alias]
        lines.append(f"| `{alias}` | `{field_name}` | `{defaults[field_name]!r}` |")
    lines.append("")
    return "\n".join(lines)


def default_output_path() -> Path:
    """``docs/passes.md`` of the source checkout.

    Resolved relative to this file only under the repo's ``src`` layout;
    from an installed package (site-packages) it falls back to the current
    working directory, so a stray ``docs/`` is never created next to the
    installed modules.
    """
    package_root = Path(__file__).resolve().parents[2]
    if package_root.name == "src":
        return package_root.parent / "docs" / "passes.md"
    return Path.cwd() / "docs" / "passes.md"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Generate docs/passes.md from the pass registry"
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write here instead of docs/passes.md",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="do not write; exit 1 if the committed file is out of date",
    )
    args = parser.parse_args(argv)

    path = Path(args.output) if args.output else default_output_path()
    rendered = render_pass_reference()
    if args.check:
        try:
            current = path.read_text()
        except OSError:
            current = ""
        if current != rendered:
            print(
                f"{path} is out of date; regenerate with "
                "`python -m repro.tools.gen_docs`",
                file=sys.stderr,
            )
            return 1
        print(f"{path} is up to date")
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rendered)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
