"""Developer tooling that is shipped with the package but not part of the
compilation flow itself (documentation generators, maintenance scripts)."""
